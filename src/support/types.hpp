// Fundamental scalar types shared across all parlap subsystems.
#pragma once

#include <cstdint>

namespace parlap {

/// Vertex identifier. Graphs are limited to ~2.1e9 vertices.
using Vertex = std::int32_t;

/// Edge identifier / edge count. Multi-graphs produced by edge splitting can
/// exceed 2^31 multi-edges, so edge indices are 64-bit.
using EdgeId = std::int64_t;

/// Edge weight / matrix entry.
using Weight = double;

/// Sentinel for "no vertex".
inline constexpr Vertex kInvalidVertex = -1;

}  // namespace parlap
