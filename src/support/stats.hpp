// Online and batch summary statistics used by tests and the bench harness.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace parlap {

/// Welford online accumulator: count / mean / variance / min / max in O(1)
/// space. Mergeable, so per-thread accumulators can be reduced.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch percentile (nearest-rank). `q` in [0, 1]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Least-squares slope of log(y) against log(x); the empirical scaling
/// exponent used by the work-scaling experiments (E1, E6).
[[nodiscard]] double log_log_slope(std::span<const double> x,
                                   std::span<const double> y);

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins. Used for walk-length distributions (E5).
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x) noexcept;
  [[nodiscard]] std::int64_t bin_count(int b) const { return counts_.at(static_cast<std::size_t>(b)); }
  [[nodiscard]] int bins() const noexcept { return static_cast<int>(counts_.size()); }
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(int b) const noexcept;
  [[nodiscard]] double bin_hi(int b) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace parlap
