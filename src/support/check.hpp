// Lightweight runtime contract checking.
//
// PARLAP_CHECK stays enabled in all build types: the algorithms in this
// library are randomized and their preconditions (connectivity, positive
// weights, 5-DD structure) are cheap to state and expensive to debug when
// silently violated. PARLAP_DCHECK compiles away under NDEBUG and is meant
// for hot loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace parlap::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& message) {
  std::ostringstream os;
  os << "parlap check failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::runtime_error(os.str());
}

}  // namespace parlap::detail

#define PARLAP_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) [[unlikely]]                                           \
      ::parlap::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (false)

#define PARLAP_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      std::ostringstream parlap_check_os;                               \
      parlap_check_os << msg;                                           \
      ::parlap::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                     parlap_check_os.str());            \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define PARLAP_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define PARLAP_DCHECK(cond) PARLAP_CHECK(cond)
#endif
