#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace parlap {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> names, int precision) {
  header_ = std::move(names);
  precision_ = precision;
}

void TextTable::add_row(std::vector<Cell> cells) {
  PARLAP_CHECK_MSG(cells.size() == header_.size(),
                   "row width " << cells.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::defaultfloat << std::get<double>(c);
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t j = 0; j < header_.size(); ++j) width[j] = header_[j].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) {
      r.push_back(render(row[j]));
      width[j] = std::max(width[j], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t j = 0; j < cells.size(); ++j) {
      os << (j == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[j]))
         << cells[j];
    }
    os << " |\n";
  };
  line(header_);
  os << '|';
  for (std::size_t j = 0; j < header_.size(); ++j) {
    os << std::string(width[j] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& r : rendered) line(r);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (j > 0) os << ',';
      os << cells[j];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(render(c));
    emit(r);
  }
}

}  // namespace parlap
