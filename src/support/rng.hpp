// Deterministic, counter-based random number generation.
//
// All randomness in parlap flows through Philox4x32-10 [Salmon et al.,
// SC'11] keyed by (user seed, purpose tag) with the per-object index in the
// counter. A parallel loop can hand every iteration its own statistically
// independent stream without any shared state, so results are bit-identical
// regardless of thread count or iteration order — the property the test
// suite relies on to validate the parallel implementation against the
// sequential semantics of the paper's algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace parlap {

/// Purpose tags separating independent random streams derived from one user
/// seed. Values are arbitrary but fixed for reproducibility.
enum class RngTag : std::uint64_t {
  kGraphGen = 0x67656E67u,      // graph generators
  kEdgeSplit = 0x73706C74u,     // alpha-bounding edge splitting
  kFiveDd = 0x35646473u,        // 5DDSubset vertex sampling
  kTerminalWalk = 0x77616C6Bu,  // C-terminal random walks
  kLeverage = 0x6C657665u,      // leverage-score sketching
  kBaseline = 0x62617365u,      // baseline solvers (KS16)
  kTest = 0x74657374u,          // unit tests
};

/// Philox4x32-10 counter-based PRNG. Stateless core: a (key, counter) pair
/// maps to 128 random bits, so results are reproducible for a fixed seed
/// regardless of thread count or iteration order.
class Philox {
 public:
  using Block = std::array<std::uint32_t, 4>;

  /// Generates one 128-bit block for the given 64-bit key pair and counter.
  static Block block(std::uint64_t key_lo, std::uint64_t key_hi,
                     std::uint64_t ctr_lo, std::uint64_t ctr_hi) noexcept {
    std::uint32_t k0 = static_cast<std::uint32_t>(key_lo);
    std::uint32_t k1 = static_cast<std::uint32_t>(key_lo >> 32);
    // Fold the high key word into the counter so the full 128 bits of
    // (key_lo, key_hi) influence the output.
    Block c = {static_cast<std::uint32_t>(ctr_lo),
               static_cast<std::uint32_t>(ctr_lo >> 32),
               static_cast<std::uint32_t>(ctr_hi ^ key_hi),
               static_cast<std::uint32_t>(ctr_hi >> 32 ^ key_hi >> 32)};
    for (int round = 0; round < 10; ++round) {
      c = single_round(c, k0, k1);
      k0 += kWeyl0;
      k1 += kWeyl1;
    }
    return c;
  }

 private:
  static constexpr std::uint32_t kMult0 = 0xD2511F53u;
  static constexpr std::uint32_t kMult1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;

  static Block single_round(const Block& c, std::uint32_t k0,
                            std::uint32_t k1) noexcept {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMult0) * c[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMult1) * c[2];
    return {static_cast<std::uint32_t>(p1 >> 32) ^ c[1] ^ k0,
            static_cast<std::uint32_t>(p1),
            static_cast<std::uint32_t>(p0 >> 32) ^ c[3] ^ k1,
            static_cast<std::uint32_t>(p0)};
  }
};

/// SplitMix64 bit-mixer; used to hash tags/indices into Philox keys.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// A buffered stream view over Philox output. Cheap to construct (no state
/// beyond key + counter); satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Stream for logical object `index` under `tag`, all derived from `seed`.
  Rng(std::uint64_t seed, RngTag tag, std::uint64_t index) noexcept
      : key_lo_(splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(tag)))),
        key_hi_(splitmix64(index ^ 0xA5A5A5A5DEADBEEFull)) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    if (have_ == 0) refill();
    --have_;
    const std::uint64_t lo = buffer_[2 * have_];
    const std::uint64_t hi = buffer_[2 * have_ + 1];
    return lo | (hi << 32);
  }

  std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64());
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    PARLAP_DCHECK(bound > 0);
    while (true) {
      const std::uint64_t x = next_u64();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= static_cast<std::uint64_t>(-bound) % bound)
        return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

 private:
  void refill() noexcept {
    const Philox::Block b = Philox::block(key_lo_, key_hi_, counter_++, 0);
    buffer_ = b;
    have_ = 2;
  }

  std::uint64_t key_lo_;
  std::uint64_t key_hi_;
  std::uint64_t counter_ = 0;
  Philox::Block buffer_{};
  int have_ = 0;
};

}  // namespace parlap
