// Precision — the storage-precision knob of the mixed-precision apply
// path (ISSUE 10).
//
// kFp64 is the default and the compatibility mode: every value array is
// double and solves are bit-identical to the pre-precision code. kFp32
// stores the factorization's value arrays (Jacobi diagonals, sub-CSR
// weights, dense base pseudo-inverse) in float — index arrays stay
// int32/int64 — and the chain apply computes in native float (half the
// bytes, twice the SIMD lanes per register); the requested accuracy is
// recovered by the fp64 outer Richardson loop (iterative refinement),
// escalating to an fp64 factorization when refinement stalls. kAuto
// resolves per graph at solve setup: refinement needs a few extra outer
// iterations to pay off, so tiny systems (where the chain is
// cache-resident and the apply is too short to amortize them) stay
// fp64, and everything else takes the fp32 chain.
//
// kAuto never survives past setup: it is resolved to kFp64/kFp32 BEFORE
// FactorizationCache keys are formed, so cache entries are keyed by the
// storage precision actually built and an fp32 chain can never be
// returned to an fp64 request (or vice versa).
#pragma once

#include <optional>
#include <string_view>

#include "support/types.hpp"

namespace parlap {

enum class Precision : int {
  kFp64 = 0,
  kFp32 = 1,
  kAuto = 2,
};

/// Vertex count below which kAuto resolves to fp64: at this size the
/// whole chain fits in L2/L3, so halving bytes buys nothing and the
/// refinement iterations are pure overhead.
inline constexpr Vertex kAutoFp32MinVertices = 2048;

/// Lower-case mode name ("fp64" / "fp32" / "auto").
[[nodiscard]] inline const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kAuto:
      return "auto";
    case Precision::kFp64:
    default:
      return "fp64";
  }
}

/// Parses "fp64" / "fp32" / "auto" (aliases: "double", "float").
/// Unknown names return nullopt.
[[nodiscard]] inline std::optional<Precision> parse_precision(
    std::string_view name) noexcept {
  if (name == "fp64" || name == "double") return Precision::kFp64;
  if (name == "fp32" || name == "float") return Precision::kFp32;
  if (name == "auto") return Precision::kAuto;
  return std::nullopt;
}

/// Resolves kAuto against the operator's dimension (deterministic: the
/// same graph always resolves the same way, so cache keys are stable).
[[nodiscard]] inline Precision resolve_precision(Precision p,
                                                 Vertex n) noexcept {
  if (p != Precision::kAuto) return p;
  return n >= kAutoFp32MinVertices ? Precision::kFp32 : Precision::kFp64;
}

}  // namespace parlap
