// Wall-clock timing utilities for benches and examples.
#pragma once

#include <chrono>

namespace parlap {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parlap
