// Wall-clock timing utilities for benches and examples.
//
// Every wall-clock measurement in the tree — WallTimer, the obs span
// tracer, and the obs metrics histograms — reads the one steady clock
// below, so durations from different subsystems are directly
// comparable and no caller re-implements its own clock choice.
#pragma once

#include <chrono>
#include <cstdint>

namespace parlap {

/// Nanoseconds on the process-wide monotonic clock. The single time
/// source for all timing in the tree.
[[nodiscard]] inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_ns_(steady_now_ns()) {}

  void reset() { start_ns_ = steady_now_ns(); }

  /// Seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return static_cast<double>(steady_now_ns() - start_ns_) * 1e-9;
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::uint64_t start_ns_;
};

}  // namespace parlap
