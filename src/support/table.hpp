// Aligned console tables + CSV output for the benchmark harness.
//
// Every bench binary prints its experiment as one or more of these tables so
// EXPERIMENTS.md rows can be regenerated verbatim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace parlap {

/// A single table cell: text, integer, or floating point (with per-column
/// precision applied at render time).
using Cell = std::variant<std::string, std::int64_t, double>;

class TextTable {
 public:
  explicit TextTable(std::string title = {});

  /// Defines the column layout. `precision` applies to double cells.
  void set_header(std::vector<std::string> names, int precision = 4);

  void add_row(std::vector<Cell> cells);

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed for our
  /// numeric content; strings are passed through).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  [[nodiscard]] std::string render(const Cell& c) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace parlap
