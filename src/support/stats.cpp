#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace parlap {

void OnlineStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  PARLAP_CHECK(!values.empty());
  PARLAP_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double log_log_slope(std::span<const double> x, std::span<const double> y) {
  PARLAP_CHECK(x.size() == y.size());
  PARLAP_CHECK(x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    PARLAP_CHECK(x[i] > 0.0 && y[i] > 0.0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  PARLAP_CHECK(hi > lo);
  PARLAP_CHECK(bins > 0);
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto b = static_cast<std::int64_t>(std::floor(t));
  b = std::clamp<std::int64_t>(b, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

double Histogram::bin_lo(int b) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(int b) const noexcept { return bin_lo(b + 1); }

}  // namespace parlap
