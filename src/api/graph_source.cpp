#include "api/graph_source.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/io.hpp"

namespace parlap {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Splits "family:a,b,c" into the family name and numeric arguments.
struct ParsedSpec {
  std::string family;
  std::vector<double> args;
};

ParsedSpec parse_spec(const std::string& spec, const char* what) {
  ParsedSpec out;
  const std::size_t colon = spec.find(':');
  out.family = spec.substr(0, colon);
  if (out.family.empty()) {
    throw std::invalid_argument(std::string(what) + " spec '" + spec +
                                "' has no family name");
  }
  if (colon == std::string::npos) return out;
  for (const std::string& tok : split_list(spec.substr(colon + 1))) {
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == nullptr || *end != '\0') {
      throw std::invalid_argument(std::string(what) + " spec '" + spec +
                                  "': bad numeric argument '" + tok + "'");
    }
    out.args.push_back(v);
  }
  return out;
}

/// args[i] as a non-negative integer argument. The range check precedes
/// the float->int cast (casting an out-of-range double is UB).
std::int64_t int_arg(const ParsedSpec& p, std::size_t i, const char* name) {
  const double v = p.args.at(i);
  if (!std::isfinite(v) || v < 0.0 ||
      v >= static_cast<double>(std::numeric_limits<std::int64_t>::max())) {
    throw std::invalid_argument("generator '" + p.family + "': argument " +
                                name + " must be a non-negative integer");
  }
  const auto iv = static_cast<std::int64_t>(v);
  if (v != static_cast<double>(iv)) {
    throw std::invalid_argument("generator '" + p.family + "': argument " +
                                name + " must be a non-negative integer");
  }
  return iv;
}

/// args[i] as a vertex count, rejecting values beyond the Vertex type.
Vertex vertex_arg(const ParsedSpec& p, std::size_t i, const char* name) {
  const std::int64_t iv = int_arg(p, i, name);
  if (iv > std::numeric_limits<Vertex>::max()) {
    throw std::invalid_argument(
        "generator '" + p.family + "': argument " + name + " = " +
        std::to_string(iv) + " exceeds the 32-bit vertex-id limit");
  }
  return static_cast<Vertex>(iv);
}

void expect_args(const ParsedSpec& p, std::size_t lo, std::size_t hi,
                 const char* usage) {
  if (p.args.size() < lo || p.args.size() > hi) {
    throw std::invalid_argument("generator '" + p.family +
                                "': expected arguments " + usage + ", got " +
                                std::to_string(p.args.size()));
  }
}

}  // namespace

Multigraph load_graph_file(const std::string& path, GraphFileFormat format,
                           MatrixMarketKind kind) {
  if (format == GraphFileFormat::kAuto) {
    format = ends_with(path, ".mtx") ? GraphFileFormat::kMatrixMarket
                                     : GraphFileFormat::kEdgeList;
  }
  return format == GraphFileFormat::kMatrixMarket
             ? read_matrix_market_file(path, kind)
             : read_edge_list_file(path);
}

std::vector<std::string> split_list(const std::string& list, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t next = list.find(sep, pos);
    out.push_back(
        list.substr(pos, next == std::string::npos ? next : next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

Multigraph make_generated_graph(const std::string& spec, std::uint64_t seed) {
  const ParsedSpec p = parse_spec(spec, "generator");
  const auto n = [&](std::size_t i = 0) { return vertex_arg(p, i, "n"); };
  if (p.family == "path") {
    expect_args(p, 1, 1, "path:n");
    return make_path(n());
  }
  if (p.family == "cycle") {
    expect_args(p, 1, 1, "cycle:n");
    return make_cycle(n());
  }
  if (p.family == "complete") {
    expect_args(p, 1, 1, "complete:n");
    return make_complete(n());
  }
  if (p.family == "star") {
    expect_args(p, 1, 1, "star:n");
    return make_star(n());
  }
  if (p.family == "btree") {
    expect_args(p, 1, 1, "btree:n");
    return make_binary_tree(n());
  }
  if (p.family == "grid2d") {
    expect_args(p, 1, 2, "grid2d:nx[,ny]");
    const Vertex nx = n(0);
    const Vertex ny = p.args.size() > 1 ? n(1) : nx;
    return make_grid2d(nx, ny);
  }
  if (p.family == "grid3d") {
    expect_args(p, 1, 3, "grid3d:nx[,ny,nz]");
    const Vertex nx = n(0);
    const Vertex ny = p.args.size() > 1 ? n(1) : nx;
    const Vertex nz = p.args.size() > 2 ? n(2) : nx;
    return make_grid3d(nx, ny, nz);
  }
  if (p.family == "barbell") {
    expect_args(p, 1, 2, "barbell:clique[,path_len]");
    const Vertex k = n(0);
    const Vertex len = p.args.size() > 1 ? n(1) : k / 2;
    return make_barbell(k, len);
  }
  if (p.family == "gnm") {
    expect_args(p, 2, 2, "gnm:n,m");
    return make_erdos_renyi(n(0), static_cast<EdgeId>(int_arg(p, 1, "m")),
                            seed);
  }
  if (p.family == "regular") {
    expect_args(p, 2, 2, "regular:n,d");
    // d > n is legal for multigraphs (superposed Hamiltonian cycles);
    // the bound only guards the narrowing to int.
    const std::int64_t d = int_arg(p, 1, "d");
    if (d > std::numeric_limits<int>::max()) {
      throw std::invalid_argument("generator 'regular': degree d = " +
                                  std::to_string(d) + " is out of range");
    }
    return make_random_regular(n(0), static_cast<int>(d), seed);
  }
  if (p.family == "ws") {
    expect_args(p, 2, 3, "ws:n,k[,beta]");
    const std::int64_t k = int_arg(p, 1, "k");
    if (k > std::numeric_limits<int>::max()) {
      throw std::invalid_argument("generator 'ws': degree k = " +
                                  std::to_string(k) + " is out of range");
    }
    const double beta = p.args.size() > 2 ? p.args[2] : 0.1;
    if (!std::isfinite(beta) || beta < 0.0 || beta > 1.0) {
      throw std::invalid_argument(
          "generator 'ws': beta must be in [0, 1]");
    }
    return make_watts_strogatz(n(0), static_cast<int>(k), beta, seed);
  }
  if (p.family == "rmat") {
    expect_args(p, 1, 2, "rmat:scale[,m]");
    // Validate before the default-m shift: 8 << scale overflows int64
    // from scale 60, and make_rmat itself requires scale < 31.
    const std::int64_t scale = int_arg(p, 0, "scale");
    if (scale > 30) {
      throw std::invalid_argument(
          "generator 'rmat': scale = " + std::to_string(scale) +
          " exceeds the 2^30-vertex limit");
    }
    const EdgeId m = p.args.size() > 1
                         ? static_cast<EdgeId>(int_arg(p, 1, "m"))
                         : EdgeId{8} << scale;
    return make_rmat(static_cast<int>(scale), m, seed);
  }
  throw std::invalid_argument("unknown generator family '" + p.family +
                              "'; accepted specs:\n" + generator_spec_help());
}

std::string generator_spec_help() {
  return "  path:n               path graph on n vertices\n"
         "  cycle:n              cycle on n vertices\n"
         "  complete:n           complete graph K_n\n"
         "  star:n               star on n vertices\n"
         "  btree:n              complete binary tree on n vertices\n"
         "  grid2d:nx[,ny]       2D grid (ny defaults to nx)\n"
         "  grid3d:nx[,ny,nz]    3D grid (ny,nz default to nx)\n"
         "  barbell:k[,len]      two k-cliques joined by a len-vertex path\n"
         "  gnm:n,m              Erdos-Renyi G(n,m), connected overlay\n"
         "  regular:n,d          random d-regular multigraph\n"
         "  rmat:scale[,m]       RMAT, 2^scale vertices (m defaults 8*2^scale)\n"
         "  ws:n,k[,beta]        Watts-Strogatz small world: k-ring, rewire\n"
         "                       prob beta (default 0.1)";
}

WeightModel parse_weight_model(const std::string& spec) {
  const ParsedSpec p = parse_spec(spec, "weight-model");
  if (p.family == "unit") {
    expect_args(p, 0, 0, "unit");
    return WeightModel::unit();
  }
  // NaN fails every ordered comparison, so bounds are checked through
  // the affirmative form (is finite AND in range), never its negation.
  const auto valid_bounds = [&p] {
    return std::isfinite(p.args[0]) && std::isfinite(p.args[1]) &&
           p.args[0] > 0.0 && p.args[1] >= p.args[0];
  };
  if (p.family == "uniform") {
    expect_args(p, 2, 2, "uniform:lo,hi");
    if (!valid_bounds()) {
      throw std::invalid_argument(
          "weight-model 'uniform': need finite 0 < lo <= hi");
    }
    return WeightModel::uniform(p.args[0], p.args[1]);
  }
  if (p.family == "powerlaw") {
    expect_args(p, 3, 3, "powerlaw:lo,hi,exponent");
    if (!valid_bounds() || !std::isfinite(p.args[2])) {
      throw std::invalid_argument(
          "weight-model 'powerlaw': need finite 0 < lo <= hi and a "
          "finite exponent");
    }
    return WeightModel::power_law(p.args[0], p.args[1], p.args[2]);
  }
  throw std::invalid_argument(
      "unknown weight model '" + p.family +
      "'; accepted: unit, uniform:lo,hi, powerlaw:lo,hi,exponent");
}

}  // namespace parlap
