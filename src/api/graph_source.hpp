// Where a graph comes from — the input half of the api facade.
//
// Every tool and test funnels graph acquisition through these helpers:
// files (plain edge lists or Matrix Market, dispatched on extension) and
// generator specs ("grid2d:64", "rmat:12") that map onto
// graph/generators.hpp. Parse errors throw std::invalid_argument /
// std::runtime_error with messages meant to be shown to end users.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"
#include "graph/multigraph.hpp"

namespace parlap {

/// On-disk formats load_graph_file() understands.
enum class GraphFileFormat {
  kAuto,          ///< by extension: ".mtx" = Matrix Market, else edge list
  kEdgeList,      ///< "u v w" lines per graph/io.hpp
  kMatrixMarket,  ///< coordinate .mtx per graph/matrix_market.hpp
};

/// Reads a graph from `path`. `kind` selects how Matrix Market entries
/// are interpreted (adjacency weights vs Laplacian values); it is ignored
/// for edge lists. Throws on unreadable or malformed input.
[[nodiscard]] Multigraph load_graph_file(
    const std::string& path, GraphFileFormat format = GraphFileFormat::kAuto,
    MatrixMarketKind kind = MatrixMarketKind::kAdjacency);

/// Builds a graph from a generator spec "family:arg[,arg...]" — e.g.
/// "grid2d:64", "gnm:10000,40000", "rmat:12". generator_spec_help() lists
/// the families. Randomized families use `seed`. Throws
/// std::invalid_argument on unknown families or malformed arguments.
[[nodiscard]] Multigraph make_generated_graph(const std::string& spec,
                                              std::uint64_t seed = 1);

/// One line per accepted generator family, for --help and error text.
[[nodiscard]] std::string generator_spec_help();

/// Parses an edge-weight model spec: "unit", "uniform:lo,hi", or
/// "powerlaw:lo,hi,exponent" (see WeightModel). Throws
/// std::invalid_argument on anything else.
[[nodiscard]] WeightModel parse_weight_model(const std::string& spec);

/// Splits "a,b,c" on `sep` into its fields (empty fields preserved) —
/// the tokenizer behind spec parsing, shared with the CLI.
[[nodiscard]] std::vector<std::string> split_list(const std::string& list,
                                                  char sep = ',');

}  // namespace parlap
