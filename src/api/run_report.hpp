// The unified per-solve record every facade method reports.
//
// RunReport is deliberately method-agnostic: whatever runs behind
// AnySolver — the paper's solver, a baseline, or a future backend — a
// caller (parlap_cli, benches, services) gets the same fields with the
// same meaning, so methods can be compared or swapped without per-class
// plumbing. Residuals are always measured against the *input* graph's
// Laplacian, never a method's internal approximation.
#pragma once

#include <string>

#include "core/build_stats.hpp"
#include "support/precision.hpp"
#include "support/types.hpp"

namespace parlap {

/// What one AnySolver::solve() call did, in method-agnostic fields.
struct RunReport {
  std::string method;   ///< registry key ("parlap", "cg-tree", ...)
  Vertex vertices = 0;  ///< input graph size n
  EdgeId edges = 0;     ///< input multi-edges m
  Vertex components = 0;  ///< connected components of the input
  /// Wall-clock seconds the factory spent factorizing (paid once per
  /// solver instance, repeated verbatim in every report it produces).
  double setup_seconds = 0.0;
  double solve_seconds = 0.0;  ///< this solve() call only
  int iterations = 0;          ///< outer iterations; 0 for direct methods
  /// ||b_p - L x|| / ||b_p|| with b_p the right-hand side after
  /// projecting out per-component means (the solvable part of b). For
  /// panel solves this is the TRUE residual of this RHS against the
  /// input operator, never a panel-wide maximum.
  double relative_residual = 0.0;
  bool converged = false;  ///< relative_residual <= the requested eps
  int threads = 1;         ///< OpenMP threads available during the solve
  /// Columns solved together in the blocked call that produced this
  /// report (1 for scalar solve()). In a panel, solve_seconds is the
  /// panel's shared wall time divided evenly over its columns, so sums
  /// over jobs stay meaningful.
  int panel_width = 1;
  /// Preconditioner-apply wall seconds attributed to this right-hand
  /// side (the panel's shared apply time divided over its columns).
  /// Reported by blocked paths of methods that measure it; 0 otherwise.
  double apply_seconds = 0.0;
  /// Build-phase attribution of the factorization behind this solve
  /// (per-phase seconds, arena counters; repeated verbatim in every
  /// report the instance produces, like setup_seconds). Only methods
  /// that factor through the chain pipeline report it.
  bool has_build_stats = false;
  BuildStats build;
  /// Factorization storage precision behind this solve (kFp64 for every
  /// method without a precision knob; never kAuto — the solver resolves
  /// auto at construction). fp32 solves still meet the requested eps via
  /// fp64 refinement; only fp64 is bit-reproducible across precisions.
  Precision precision = Precision::kFp64;
  /// Refinement/escalation rounds the paper solver spent past the first
  /// factorization on this solve (0 = first chain converged; for fp32
  /// mode, > 0 means the solve escalated to an fp64 chain). Always 0
  /// for methods without the escalation ladder.
  int escalations = 0;
};

}  // namespace parlap
