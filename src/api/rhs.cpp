#include "api/rhs.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

Vector demand_rhs(Vertex n, Vertex s, Vertex t) {
  PARLAP_CHECK_MSG(s >= 0 && s < n && t >= 0 && t < n,
                   "demand endpoints (" << s << ", " << t
                                        << ") out of range for n = " << n);
  PARLAP_CHECK_MSG(s != t, "demand endpoints must differ, got " << s);
  Vector b(static_cast<std::size_t>(n), 0.0);
  b[static_cast<std::size_t>(s)] = 1.0;
  b[static_cast<std::size_t>(t)] = -1.0;
  return b;
}

Vector random_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 0x7268u /* "rh" */);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

Vector read_rhs_file(const std::string& path, Vertex n) {
  std::ifstream is(path);
  if (!is.good()) {
    throw std::runtime_error("cannot open rhs file " + path);
  }
  Vector b(static_cast<std::size_t>(n), 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (!(is >> b[i])) {
      throw std::runtime_error("rhs file " + path + " is short or malformed: "
                               "need " + std::to_string(n) +
                               " numeric values, failed at value " +
                               std::to_string(i + 1));
    }
  }
  return b;
}

RhsCompatibility check_rhs_compatibility(std::span<const double> b,
                                         const Components& comps,
                                         double tol) {
  PARLAP_CHECK(comps.label.size() == b.size());
  RhsCompatibility out;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) return out;
  std::vector<double> sums(static_cast<std::size_t>(comps.count), 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    sums[static_cast<std::size_t>(comps.label[i])] += b[i];
  }
  for (std::size_t c = 0; c < sums.size(); ++c) {
    const double imbalance = std::abs(sums[c]) / b_norm;
    if (imbalance > out.worst_imbalance) {
      out.worst_imbalance = imbalance;
      out.worst_component = static_cast<Vertex>(c);
    }
  }
  out.compatible = out.worst_imbalance <= tol;
  return out;
}

}  // namespace parlap
