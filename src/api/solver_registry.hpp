// SolverRegistry — string-keyed factory over every AnySolver method.
//
// The registry is the single place a solver name ("parlap", "cg-tree",
// "dense", ...) turns into a factorized solver object. It ships
// pre-populated with the built-in methods (see solver_registry.cpp) and
// accepts runtime registration, which is the extension point future
// backends plug into: register a factory once and every consumer of the
// facade — parlap_cli, tests, benches — can reach the new method by name.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/any_solver.hpp"
#include "graph/multigraph.hpp"

namespace parlap {

/// Thrown by SolverRegistry::create() for names nobody registered; the
/// message lists the known methods so CLI/users see their options.
class UnknownSolverError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// One registry entry as reported by SolverRegistry::methods().
struct SolverMethodInfo {
  std::string name;         ///< registry key, e.g. "cg-tree"
  std::string description;  ///< one line for --help / docs
};

/// Name -> factory map behind the AnySolver facade. Registration is not
/// thread-safe (register methods at startup); create() and lookups are
/// const and safe to share afterwards.
class SolverRegistry {
 public:
  /// Builds a factorized solver for `g`; may throw (e.g. bad options).
  using Factory = std::function<std::unique_ptr<AnySolver>(
      const Multigraph& g, const SolverConfig& config)>;

  /// The process-wide registry, pre-populated with the built-in methods
  /// (parlap, parlap-lev, cg, cg-jacobi, cg-tree, ks16, dense).
  static SolverRegistry& instance();

  /// An empty registry (tests; embedding several method sets).
  SolverRegistry() = default;

  /// Adds a method. Throws std::invalid_argument on an empty name or a
  /// name registered before (methods are never silently replaced).
  void register_method(std::string name, std::string description,
                       Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// All methods, sorted by name.
  [[nodiscard]] std::vector<SolverMethodInfo> methods() const;

  /// Comma-separated sorted names, for error and usage text.
  [[nodiscard]] std::string known_names() const;

  /// Factorizes `g` under the named method. Throws UnknownSolverError
  /// for unregistered names; propagates factory exceptions (e.g. "ks16
  /// requires a connected graph").
  [[nodiscard]] std::unique_ptr<AnySolver> create(
      const std::string& name, const Multigraph& g,
      const SolverConfig& config = {}) const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace parlap
