#include "api/solver_registry.hpp"

#include <omp.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "baselines/cg.hpp"
#include "baselines/dense_direct.hpp"
#include "baselines/ks16.hpp"
#include "baselines/tree_solver.hpp"
#include "core/solver.hpp"
#include "core/spanning_tree.hpp"
#include "graph/connectivity.hpp"
#include "linalg/laplacian_op.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace parlap {

namespace {

// Shared adapter plumbing: every built-in method keeps the exact input
// Laplacian and its component structure, projects the right-hand side
// onto the solvable subspace once, and measures the residual against the
// *input* operator so reports are comparable across methods.
class SolverBase : public AnySolver {
 public:
  [[nodiscard]] RunReport solve(std::span<const double> b,
                                std::span<double> x, double eps) const final {
    const auto n = static_cast<std::size_t>(op_.dimension());
    PARLAP_CHECK_MSG(b.size() == n && x.size() == n,
                     "solver dimension " << n << " vs b " << b.size()
                                         << ", x " << x.size());
    Vector bp(b.begin(), b.end());
    project_out_ones_per_component(bp, comps_.label, comps_.count);
    const double b_norm = norm2(bp);

    RunReport report;
    report.method = method_;
    report.vertices = op_.dimension();
    report.edges = op_.num_multi_edges();
    report.components = comps_.count;
    report.setup_seconds = setup_seconds_;
    report.threads = omp_get_max_threads();
    report.precision = precision_;
    if (const BuildStats* bs = build_stats()) {
      report.has_build_stats = true;
      report.build = *bs;
    }

    fill(x, 0.0);
    WallTimer timer;
    if (b_norm > 0.0) {
      report.iterations = run(bp, x, eps, report.escalations);
    }
    report.solve_seconds = timer.seconds();

    if (b_norm > 0.0) {
      Vector residual = op_.apply(x);
      axpy(-1.0, bp, residual);  // residual = L x - b_p
      report.relative_residual = norm2(residual) / b_norm;
    }
    report.converged = report.relative_residual <= eps;
    return report;
  }

  /// Blocked path: projects and measures residuals per column (so each
  /// report's relative_residual is the true per-RHS residual against the
  /// input operator), delegating the solve itself to run_panel — a
  /// sequential loop by default, a true blocked solve for methods that
  /// override it. solve_seconds is the panel's shared wall time divided
  /// evenly over its columns.
  [[nodiscard]] std::vector<RunReport> solve_panel(
      std::span<const Vector> bs, std::span<Vector> xs,
      double eps) const final {
    PARLAP_CHECK(bs.size() == xs.size());
    if (bs.empty()) return {};
    const auto n = static_cast<std::size_t>(op_.dimension());
    const std::size_t k = bs.size();
    Panel bp;
    panel_from_vectors(bs, bp);
    PARLAP_CHECK_MSG(bp.rows() == n, "solver dimension " << n << " vs rhs "
                                                         << bp.rows());
    std::vector<double> b_norms(k);
    for (std::size_t c = 0; c < k; ++c) {
      project_out_ones_per_component(bp.col(c), comps_.label, comps_.count);
      b_norms[c] = norm2(bp.col(c));
    }

    RunReport proto;
    proto.method = method_;
    proto.vertices = op_.dimension();
    proto.edges = op_.num_multi_edges();
    proto.components = comps_.count;
    proto.setup_seconds = setup_seconds_;
    proto.threads = omp_get_max_threads();
    proto.precision = precision_;
    proto.panel_width = static_cast<int>(k);
    if (const BuildStats* bs_ptr = build_stats()) {
      proto.has_build_stats = true;
      proto.build = *bs_ptr;
    }

    Panel x(n, k);
    std::vector<int> iterations(k, 0);
    std::vector<int> escalations(k, 0);
    double apply_seconds = 0.0;
    WallTimer timer;
    run_panel(bp, x, eps, b_norms, iterations, escalations, apply_seconds);
    const double solve_share = timer.seconds() / static_cast<double>(k);

    // True per-RHS residuals against the input operator: one blocked
    // L-apply, then per-column norms (never a panel max).
    Panel residual;
    op_.apply(x, residual);
    panel_axpy(-1.0, bp, residual);  // residual = L x - b_p
    std::vector<RunReport> reports(k, proto);
    for (std::size_t c = 0; c < k; ++c) {
      RunReport& r = reports[c];
      r.iterations = iterations[c];
      r.escalations = escalations[c];
      r.solve_seconds = solve_share;
      r.apply_seconds = apply_seconds / static_cast<double>(k);
      if (b_norms[c] > 0.0) {
        r.relative_residual = norm2(residual.col(c)) / b_norms[c];
      }
      r.converged = r.relative_residual <= eps;
      const auto col = x.col(c);
      xs[c].assign(col.begin(), col.end());
    }
    return reports;
  }

  [[nodiscard]] const std::string& method() const noexcept final {
    return method_;
  }
  [[nodiscard]] double setup_seconds() const noexcept final {
    return setup_seconds_;
  }
  [[nodiscard]] Vertex dimension() const noexcept final {
    return op_.dimension();
  }

  void set_setup_seconds(double s) noexcept { setup_seconds_ = s; }

 protected:
  SolverBase(std::string method, const Multigraph& g)
      : method_(std::move(method)),
        op_(g),
        comps_(connected_components(g)) {}

  /// Storage precision stamped into every report (kFp64 unless the
  /// method has a precision knob). Call from the adapter constructor.
  void set_precision(Precision p) noexcept { precision_ = p; }

  /// Solves L x = b_p (already kernel-projected, nonzero) to eps and
  /// returns the outer-iteration count, recording escalation rounds for
  /// methods that have them. x arrives zero-filled. Must be safe for
  /// concurrent callers (the AnySolver threading contract).
  virtual int run(std::span<const double> bp, std::span<double> x, double eps,
                  int& escalations) const = 0;

  /// Blocked analogue of run(): solves every column of `bp` (already
  /// kernel-projected; columns with b_norms[c] == 0 must be left as the
  /// zero vector) into `x` (arrives zero-filled), recording per-column
  /// outer-iteration and escalation counts and, when the method measures
  /// it, the panel's total preconditioner-apply seconds. Default: a
  /// sequential loop of run(), which is the loop fallback every baseline
  /// inherits.
  virtual void run_panel(const Panel& bp, Panel& x, double eps,
                         std::span<const double> b_norms,
                         std::span<int> iterations,
                         std::span<int> escalations,
                         double& apply_seconds) const {
    (void)apply_seconds;
    for (std::size_t c = 0; c < bp.cols(); ++c) {
      if (b_norms[c] > 0.0) {
        iterations[c] = run(bp.col(c), x.col(c), eps, escalations[c]);
      }
    }
  }

  [[nodiscard]] const LaplacianOperator& op() const noexcept { return op_; }

  void require_connected() const {
    if (comps_.count > 1) {
      throw std::invalid_argument(
          "method '" + method_ + "' requires a connected graph; input has " +
          std::to_string(comps_.count) + " components");
    }
  }

 private:
  std::string method_;
  LaplacianOperator op_;
  Components comps_;
  double setup_seconds_ = 0.0;
  Precision precision_ = Precision::kFp64;
};

/// Times the whole factorization (base construction included) and stamps
/// it into the adapter, so setup_seconds is uniform across methods.
template <typename T, typename... Args>
std::unique_ptr<AnySolver> timed_make(Args&&... args) {
  PARLAP_TRACE_SPAN("solver.factor", "build");
  WallTimer timer;
  auto solver = std::make_unique<T>(std::forward<Args>(args)...);
  solver->set_setup_seconds(timer.seconds());
  static obs::LatencyHistogram& factor_hist =
      obs::MetricsRegistry::global().histogram("parlap.solver.factor_seconds");
  factor_hist.record_seconds(solver->setup_seconds());
  return solver;
}

// --- The paper's solver (Theorems 1.1 / 1.2) -----------------------------

class ParlapAdapter final : public SolverBase {
 public:
  ParlapAdapter(std::string name, const Multigraph& g, const SolverConfig& c,
                SplitStrategy split)
      : SolverBase(std::move(name), g) {
    SolverOptions options;
    options.seed = c.seed;
    options.split = split;
    options.precision = c.precision;
    if (c.split_scale > 0.0) options.split_scale = c.split_scale;
    if (c.max_iterations > 0)
      options.richardson.max_iterations = c.max_iterations;
    impl_.emplace(g, options);
    // The solver resolves kAuto at construction; reports carry the
    // concrete storage precision it picked.
    set_precision(impl_->info().precision);
  }

 public:
  [[nodiscard]] EdgeId stored_entries() const noexcept override {
    return std::max<EdgeId>(1, impl_->info().stored_entries);
  }

  [[nodiscard]] std::size_t stored_bytes() const noexcept override {
    // True value bytes of the resident chains: fp32 storage reports
    // half the fp64 footprint of the same structure.
    return std::max<std::size_t>(1, impl_->info().stored_value_bytes);
  }

  [[nodiscard]] const BuildStats* build_stats() const noexcept override {
    return &impl_->build_stats();
  }

 private:
  int run(std::span<const double> bp, std::span<double> x, double eps,
          int& escalations) const override {
    const SolveStats stats = impl_->solve(bp, x, eps);
    escalations = stats.rebuilds;
    return stats.iterations;
  }

  /// True blocked solve: one chain traversal per preconditioner apply
  /// serves the whole panel (zero-norm columns come back as zero from
  /// the projected Richardson, matching the scalar convention).
  void run_panel(const Panel& bp, Panel& x, double eps,
                 std::span<const double> b_norms,
                 std::span<int> iterations,
                 std::span<int> escalations,
                 double& apply_seconds) const override {
    (void)b_norms;
    const std::vector<SolveStats> stats = impl_->solve_panel(bp, x, eps);
    for (std::size_t c = 0; c < stats.size(); ++c) {
      iterations[c] = stats[c].iterations;
      escalations[c] = stats[c].rebuilds;
      apply_seconds += stats[c].apply_seconds;
    }
  }

  std::optional<LaplacianSolver> impl_;
};

// --- Conjugate gradient family -------------------------------------------

class CgAdapter final : public SolverBase {
 public:
  enum class Kind { kPlain, kJacobi, kTree };

  CgAdapter(std::string name, const Multigraph& g, const SolverConfig& c,
            Kind kind)
      : SolverBase(std::move(name), g) {
    cg_options_.max_iterations = c.max_iterations;
    if (kind == Kind::kJacobi) {
      precond_ = jacobi_diagonal_preconditioner(op());
    } else if (kind == Kind::kTree) {
      require_connected();
      tree_.emplace(sample_spanning_tree(g, c.seed));
      precond_ = [this](std::span<const double> r, std::span<double> y) {
        tree_->solve(r, y);
      };
    }
  }

 public:
  [[nodiscard]] EdgeId stored_entries() const noexcept override {
    // CSR of the operator plus the (diagonal / tree) preconditioner.
    return std::max<EdgeId>(
        1, op().num_multi_edges() + static_cast<EdgeId>(dimension()));
  }

 private:
  int run(std::span<const double> bp, std::span<double> x, double eps,
          int& /*escalations*/) const override {
    const IterationStats stats =
        precond_ ? preconditioned_cg(op(), precond_, bp, x, eps, cg_options_)
                 : conjugate_gradient(op(), bp, x, eps, cg_options_);
    return stats.iterations;
  }

  CgOptions cg_options_;
  std::optional<TreeSolver> tree_;
  LinearMap precond_;  // empty = unpreconditioned
};

// --- KS16 sequential approximate Cholesky --------------------------------

class Ks16Adapter final : public SolverBase {
 public:
  Ks16Adapter(std::string name, const Multigraph& g, const SolverConfig& c)
      : SolverBase(std::move(name), g) {
    require_connected();
    Ks16Options options;
    options.seed = c.seed;
    if (c.split_scale > 0.0) options.split_scale = c.split_scale;
    options.cg_max_iterations = c.max_iterations;
    impl_.emplace(g, options);
  }

 public:
  [[nodiscard]] EdgeId stored_entries() const noexcept override {
    return std::max<EdgeId>(1, impl_->factor_entries());
  }

 private:
  int run(std::span<const double> bp, std::span<double> x, double eps,
          int& /*escalations*/) const override {
    return impl_->solve(bp, x, eps).iterations;
  }

  std::optional<Ks16Solver> impl_;
};

// --- Dense ground truth ---------------------------------------------------

class DenseAdapter final : public SolverBase {
 public:
  static constexpr Vertex kMaxVertices = 4096;

  DenseAdapter(std::string name, const Multigraph& g, const SolverConfig&)
      : SolverBase(std::move(name), g) {
    if (g.num_vertices() > kMaxVertices) {
      throw std::invalid_argument(
          "method 'dense' is O(n^3) time / O(n^2) memory; refusing n = " +
          std::to_string(g.num_vertices()) + " > " +
          std::to_string(kMaxVertices));
    }
    impl_.emplace(g);
  }

 public:
  [[nodiscard]] EdgeId stored_entries() const noexcept override {
    const auto n = static_cast<EdgeId>(dimension());
    return std::max<EdgeId>(1, n * n);  // dense pseudo-inverse
  }

 private:
  int run(std::span<const double> bp, std::span<double> x, double /*eps*/,
          int& /*escalations*/) const override {
    impl_->solve(bp, x);
    return 0;
  }

  std::optional<DenseDirectSolver> impl_;
};

void register_builtins(SolverRegistry& r) {
  r.register_method(
      "parlap",
      "paper solver: uniform edge split (Thm 1.1), block Cholesky chain, "
      "preconditioned Richardson",
      [](const Multigraph& g, const SolverConfig& c) {
        return timed_make<ParlapAdapter>("parlap", g, c,
                                         SplitStrategy::kUniform);
      });
  r.register_method(
      "parlap-lev",
      "paper solver with leverage-score edge splitting (Thm 1.2)",
      [](const Multigraph& g, const SolverConfig& c) {
        return timed_make<ParlapAdapter>("parlap-lev", g, c,
                                         SplitStrategy::kLeverage);
      });
  r.register_method("cg", "plain conjugate gradient, no preconditioner",
                    [](const Multigraph& g, const SolverConfig& c) {
                      return timed_make<CgAdapter>("cg", g, c,
                                                   CgAdapter::Kind::kPlain);
                    });
  r.register_method("cg-jacobi",
                    "conjugate gradient with the Jacobi (diagonal) "
                    "preconditioner",
                    [](const Multigraph& g, const SolverConfig& c) {
                      return timed_make<CgAdapter>("cg-jacobi", g, c,
                                                   CgAdapter::Kind::kJacobi);
                    });
  r.register_method(
      "cg-tree",
      "conjugate gradient preconditioned by an exact random "
      "spanning-tree solve (connected graphs)",
      [](const Multigraph& g, const SolverConfig& c) {
        return timed_make<CgAdapter>("cg-tree", g, c, CgAdapter::Kind::kTree);
      });
  r.register_method(
      "ks16",
      "Kyng-Sachdeva (FOCS'16) sequential approximate Cholesky + PCG "
      "(connected graphs)",
      [](const Multigraph& g, const SolverConfig& c) {
        return timed_make<Ks16Adapter>("ks16", g, c);
      });
  r.register_method(
      "dense",
      "exact dense pseudo-inverse; ground truth for small instances",
      [](const Multigraph& g, const SolverConfig& c) {
        return timed_make<DenseAdapter>("dense", g, c);
      });
}

}  // namespace

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry;
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::register_method(std::string name, std::string description,
                                     Factory factory) {
  if (name.empty()) throw std::invalid_argument("solver name must not be empty");
  if (!factory) {
    throw std::invalid_argument("null factory for solver '" + name + "'");
  }
  if (entries_.count(name) != 0) {
    throw std::invalid_argument("solver '" + name + "' is already registered");
  }
  entries_.emplace(std::move(name),
                   Entry{std::move(description), std::move(factory)});
}

bool SolverRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<SolverMethodInfo> SolverRegistry::methods() const {
  std::vector<SolverMethodInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back({name, entry.description});
  }
  return out;  // std::map iterates in sorted order
}

std::string SolverRegistry::known_names() const {
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::unique_ptr<AnySolver> SolverRegistry::create(
    const std::string& name, const Multigraph& g,
    const SolverConfig& config) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw UnknownSolverError("unknown solver method '" + name +
                             "'; known methods: " + known_names());
  }
  return it->second.factory(g, config);
}

}  // namespace parlap
