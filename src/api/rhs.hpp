// Right-hand-side construction and compatibility checking.
//
// A Laplacian system L x = b is solvable exactly iff b sums to zero on
// every connected component (Fact 2.3: the kernel is the per-component
// constants). The helpers here build the standard right-hand sides and —
// crucially for disconnected inputs, where silently projecting would
// mis-solve the user's system — quantify how far a given b is from
// solvable so callers (parlap_cli) can fail loudly or opt into the
// least-squares projection.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/connectivity.hpp"
#include "linalg/vector_ops.hpp"
#include "support/types.hpp"

namespace parlap {

/// Unit demand b = e_s - e_t (one unit of current in at s, out at t).
/// Requires s != t, both in [0, n).
[[nodiscard]] Vector demand_rhs(Vertex n, Vertex s, Vertex t);

/// Deterministic uniform [-1, 1) entries with the global mean projected
/// out; keyed by (seed, index) so it is stable across platforms.
[[nodiscard]] Vector random_rhs(Vertex n, std::uint64_t seed);

/// Reads n whitespace-separated values from `path` (one per vertex).
/// Throws on unreadable files or fewer than n values.
[[nodiscard]] Vector read_rhs_file(const std::string& path, Vertex n);

/// How far b is from exactly solvable, per component.
struct RhsCompatibility {
  bool compatible = true;   ///< every imbalance within tolerance
  Vertex worst_component = 0;  ///< component with the largest imbalance
  double worst_imbalance = 0.0;  ///< |sum of b over that component| / ||b||
};

/// Checks b against the component structure: compatible iff for every
/// component C, |sum_{v in C} b_v| <= tol * ||b|| (a zero b is always
/// compatible). `comps` must label exactly b.size() vertices.
[[nodiscard]] RhsCompatibility check_rhs_compatibility(
    std::span<const double> b, const Components& comps, double tol = 1e-9);

}  // namespace parlap
