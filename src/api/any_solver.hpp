// AnySolver — the one interface every solve path in the repo sits behind.
//
// The facade of the api layer: LaplacianSolver (Theorems 1.1/1.2), the
// KS16 and CG baselines, and the dense ground truth all present the same
// factor-once / solve-many surface. Instances are created by name through
// SolverRegistry (solver_registry.hpp); each solve() returns a RunReport
// with uniformly-defined timings and residuals. Tools and future
// subsystems (batching, sharding, services) program against this header
// instead of the concrete solver classes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "api/run_report.hpp"
#include "core/build_stats.hpp"
#include "linalg/vector_ops.hpp"
#include "support/check.hpp"
#include "support/precision.hpp"
#include "support/types.hpp"

namespace parlap {

/// Method-agnostic tuning knobs forwarded to SolverRegistry factories.
/// A method ignores the fields it has no use for; zero-valued knobs mean
/// "use the method's own default".
struct SolverConfig {
  std::uint64_t seed = 42;  ///< randomized methods (parlap*, ks16, cg-tree)
  /// Edge-split scale (LaplacianSolver / KS16 alpha knob); 0 = default.
  double split_scale = 0.0;
  int max_iterations = 0;  ///< outer-iteration cap; 0 = method default
  /// Factorization storage precision (paper solver only; baselines
  /// ignore it). kFp32 halves the chain's value bytes and wraps the
  /// solve in fp64 iterative refinement; kAuto picks by problem size.
  /// Callers that key caches on the config (solve_engine) must resolve
  /// kAuto against the concrete graph first (resolve_precision), so an
  /// auto job and the explicit mode it resolves to share one entry.
  Precision precision = Precision::kFp64;
};

/// Type-erased Laplacian solver: factorized at construction (by a
/// SolverRegistry factory), then solves any number of right-hand sides.
/// Implementations must accept any b; the component of b in the kernel of
/// L is projected out first (the least-squares convention), and reported
/// residuals are relative to the projected b.
///
/// Threading contract: one instance may serve many callers. solve() is
/// const and MUST be safe to call concurrently from multiple threads on
/// the same instance (implementations keep per-call scratch, typically
/// via WorkspacePool, never mutable member buffers) and deterministic:
/// for fixed (b, eps) the result is bit-identical regardless of which
/// thread runs it, how many other solves are in flight, or the OpenMP
/// thread count. The solve-engine subsystem (src/service/) relies on
/// both properties to share cached factorizations across a worker pool.
class AnySolver {
 public:
  virtual ~AnySolver() = default;

  AnySolver(const AnySolver&) = delete;
  AnySolver& operator=(const AnySolver&) = delete;

  /// Solves L x = b to relative residual eps. `x` is overwritten (no
  /// warm start); `b.size()` and `x.size()` must equal dimension().
  /// Thread-safe (see the class contract above).
  [[nodiscard]] virtual RunReport solve(std::span<const double> b,
                                        std::span<double> x,
                                        double eps) const = 0;

  /// Solves one system per entry of `bs`, returning one RunReport per
  /// right-hand side. xs[i] receives the solution of bs[i] and must be
  /// bit-identical to solve(bs[i], xs[i], eps) — a caller may batch any
  /// subset of its traffic without changing results. The default is a
  /// sequential loop of solve(); blocked implementations (the paper's
  /// solver) share one factorization traversal per preconditioner
  /// application across the whole panel. Residuals stay per-RHS against
  /// the input operator. Thread-safe under the same contract as solve().
  [[nodiscard]] virtual std::vector<RunReport> solve_panel(
      std::span<const Vector> bs, std::span<Vector> xs, double eps) const {
    PARLAP_CHECK_MSG(bs.size() == xs.size(),
                     "solve_panel wants one output per rhs, got "
                         << bs.size() << " rhs vs " << xs.size());
    std::vector<RunReport> reports;
    reports.reserve(bs.size());
    for (std::size_t i = 0; i < bs.size(); ++i) {
      reports.push_back(solve(bs[i], xs[i], eps));
    }
    return reports;
  }

  /// The registry key this instance was created under.
  [[nodiscard]] virtual const std::string& method() const noexcept = 0;

  /// Wall-clock seconds spent factorizing at construction.
  [[nodiscard]] virtual double setup_seconds() const noexcept = 0;

  /// Problem dimension = vertex count of the input graph.
  [[nodiscard]] virtual Vertex dimension() const noexcept = 0;

  /// Memory-cost proxy of the resident factorization, in stored matrix
  /// entries (FactorizationInfo::stored_entries for the paper's solver;
  /// comparable analogues for the baselines). Never less than 1.
  [[nodiscard]] virtual EdgeId stored_entries() const noexcept {
    return dimension() > 0 ? static_cast<EdgeId>(dimension()) : EdgeId{1};
  }

  /// Resident value-array bytes of the factorization. The default
  /// charges 8 bytes (one fp64 value) per stored entry; methods with
  /// narrower storage (the paper solver's fp32 chains) override with
  /// their true byte footprint so FactorizationCache — which budgets in
  /// fp64-equivalent entries, i.e. stored_bytes()/8 — charges an fp32
  /// factorization half an fp64 one. Never less than 1.
  [[nodiscard]] virtual std::size_t stored_bytes() const noexcept {
    return static_cast<std::size_t>(stored_entries()) * sizeof(double);
  }

  /// Build-phase telemetry of the factorization (BuildStats recorded by
  /// the chain-construction pipeline), or nullptr for methods that do
  /// not factor through it. The pointer stays valid for the instance's
  /// lifetime; RunReports embed a copy.
  [[nodiscard]] virtual const BuildStats* build_stats() const noexcept {
    return nullptr;
  }

 protected:
  AnySolver() = default;
};

}  // namespace parlap
