// Dense symmetric linear algebra.
//
// Two roles: (a) the O(1)-size base-case solve of BlockCholesky (the chain
// stops at <= 100 vertices, Thm 3.9-(3)); (b) the test oracle — exact
// pseudo-inverses, Schur complements, effective resistances, and Loewner-
// order certificates against which the randomized algorithms are verified
// on small instances.
#pragma once

#include <span>
#include <vector>

#include "graph/multigraph.hpp"
#include "linalg/vector_ops.hpp"
#include "support/types.hpp"

namespace parlap {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0.0) {}

  static DenseMatrix identity(int n);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(int i, int j) {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }
  [[nodiscard]] double operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }

  /// Contiguous row-major storage (rows()*cols() doubles).
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  [[nodiscard]] DenseMatrix transpose() const;
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;
  [[nodiscard]] DenseMatrix add(const DenseMatrix& other, double scale = 1.0) const;
  [[nodiscard]] Vector apply(std::span<const double> x) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;
  /// max_ij |A_ij - B_ij|
  [[nodiscard]] double max_abs_diff(const DenseMatrix& other) const;
  /// Symmetrizes in place: A <- (A + A') / 2.
  void symmetrize();

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// A = vectors * diag(values) * vectors'. Columns of `vectors` are
/// orthonormal eigenvectors; `values` ascending.
struct EigenDecomposition {
  Vector values;
  DenseMatrix vectors;
};

/// Cyclic Jacobi rotations; intended for n up to a few hundred.
[[nodiscard]] EigenDecomposition symmetric_eigen(DenseMatrix a,
                                                 int max_sweeps = 64);

/// Moore-Penrose pseudo-inverse of a symmetric matrix; eigenvalues with
/// |lambda| <= rel_tol * max|lambda| are treated as kernel.
[[nodiscard]] DenseMatrix pseudo_inverse(const DenseMatrix& a,
                                         double rel_tol = 1e-10);

/// Cholesky factor (lower triangular) of a symmetric PD matrix. Throws on a
/// non-positive pivot.
[[nodiscard]] DenseMatrix cholesky_factor(const DenseMatrix& a);
[[nodiscard]] Vector cholesky_solve(const DenseMatrix& chol,
                                    std::span<const double> b);

/// Dense Laplacian of a multi-graph.
[[nodiscard]] DenseMatrix laplacian_dense(MultigraphView g);

/// Exact Schur complement of symmetric `m` onto index set `keep` (the
/// paper's C), eliminating the complement F: SC = M_CC - M_CF M_FF^-1 M_FC.
/// Rows/cols of the result follow the order of `keep`.
[[nodiscard]] DenseMatrix schur_complement_dense(const DenseMatrix& m,
                                                 std::span<const Vertex> keep);

/// Exact leverage score tau(e) = w(e) * b_e' L^+ b_e for every multi-edge.
[[nodiscard]] Vector leverage_scores_dense(const Multigraph& g);

/// Extreme generalized eigenvalues of (A, B) restricted to range(B), i.e.
/// the spectrum of B^{+/2} A B^{+/2} off the joint kernel, plus the largest
/// leakage of A on ker(B) (should be ~0 when ker(B) subset ker(A)).
struct SpectralBounds {
  double lo = 0.0;
  double hi = 0.0;
  double kernel_leakage = 0.0;
};
[[nodiscard]] SpectralBounds relative_spectral_bounds(const DenseMatrix& a,
                                                      const DenseMatrix& b,
                                                      double kernel_tol = 1e-9);

/// Certifies A ~eps B in the paper's sense: e^-eps B <= A <= e^eps B
/// (Loewner), within numerical slack `tol`.
[[nodiscard]] bool is_eps_approximation(const DenseMatrix& a,
                                        const DenseMatrix& b, double eps,
                                        double tol = 1e-7);

}  // namespace parlap
