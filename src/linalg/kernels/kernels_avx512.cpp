// AVX-512 tier. Compiled with -mavx512f -mavx512vl -mavx512dq
// -mavx512bw -ffp-contract=off on x86-64; elsewhere the tables are
// absent and dispatch tops out at AVX2 or scalar.
//
// Two traits share the kernel bodies: V8 (fp64 storage, 8 double lanes
// in __m512d) and V16F (fp32 storage, 16 NATIVE float lanes in __m512 —
// twice the columns per instruction, float lane arithmetic matching the
// fp32 scalar reference bit for bit; see kernels_vec_impl.hpp for why
// fp32 computes natively instead of widening to double).
#include "linalg/kernels/kernels_tables.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "linalg/kernels/kernels_vec_impl.hpp"

namespace parlap::kernels {

namespace {

struct V8 {
  using reg = __m512d;
  using elem = double;
  static constexpr std::size_t W = 8;
  /// Narrow-panel (k < W) delegation target: the AVX2 tier's half-width
  /// registers (any AVX-512 host runs AVX2; scalar is a build-paranoia
  /// fallback).
  static const KernelTable& lower() {
    const KernelTable* t = avx2_table();
    return t != nullptr ? *t : scalar_table();
  }
  static reg zero() { return _mm512_setzero_pd(); }
  static reg set1(double x) { return _mm512_set1_pd(x); }
  static reg loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm512_storeu_pd(p, v); }
  /// Dumps the W double lanes (chunk_dots' reduction outputs stay fp64).
  static void store_lanes(double* p, reg v) { _mm512_storeu_pd(p, v); }
  static reg add(reg a, reg b) { return _mm512_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm512_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm512_mul_pd(a, b); }
  /// Lane l = p[l * stride] (column-major lane-per-column loads).
  static reg gather_cols(const double* p, std::size_t stride) {
    return _mm512_set_pd(p[7 * stride], p[6 * stride], p[5 * stride],
                         p[4 * stride], p[3 * stride], p[2 * stride],
                         p[stride], p[0]);
  }
  /// Lane l = base[idx[l]] (int32 row indices).
  static reg gather_idx(const double* base, const Vertex* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm512_i32gather_pd(vi, base, 8);
  }
  /// base[idx[l]] = lane l (hardware scatter; row lists are duplicate-free).
  static void scatter_idx(double* base, const Vertex* idx, reg v) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    _mm512_i32scatter_pd(base, vi, v, 8);
  }
};

struct V16F {
  using reg = __m512;
  using elem = float;
  static constexpr std::size_t W = 16;
  /// Narrow-panel (k < W) delegation target: the AVX2 tier's 8-float
  /// __m256 pass — the common width-8 panel lands exactly there.
  static const KernelTableF32& lower() {
    const KernelTableF32* t = avx2_table_f32();
    return t != nullptr ? *t : scalar_table_f32();
  }
  static reg zero() { return _mm512_setzero_ps(); }
  /// Broadcast coefficients arrive as double; one narrowing per call
  /// site, mirroring the scalar reference (widened weights round-trip
  /// losslessly).
  static reg set1(double x) {
    return _mm512_set1_ps(static_cast<float>(x));
  }
  static reg loadu(const float* p) { return _mm512_loadu_ps(p); }
  static void storeu(float* p, reg v) { _mm512_storeu_ps(p, v); }
  /// chunk_dots' reduction outputs stay fp64: widen the 16 float lanes
  /// on the final store (exact conversion).
  static void store_lanes(double* p, reg v) {
    _mm512_storeu_pd(p, _mm512_cvtps_pd(_mm512_castps512_ps256(v)));
    _mm512_storeu_pd(p + 8, _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1)));
  }
  static reg add(reg a, reg b) { return _mm512_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm512_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm512_mul_ps(a, b); }
  static reg gather_cols(const float* p, std::size_t stride) {
    return _mm512_set_ps(p[15 * stride], p[14 * stride], p[13 * stride],
                         p[12 * stride], p[11 * stride], p[10 * stride],
                         p[9 * stride], p[8 * stride], p[7 * stride],
                         p[6 * stride], p[5 * stride], p[4 * stride],
                         p[3 * stride], p[2 * stride], p[stride], p[0]);
  }
  static reg gather_idx(const float* base, const Vertex* idx) {
    const __m512i vi = _mm512_loadu_si512(idx);
    return _mm512_i32gather_ps(vi, base, 4);
  }
  /// base[idx[l]] = lane l (hardware scatter; row lists are duplicate-free).
  static void scatter_idx(float* base, const Vertex* idx, reg v) {
    const __m512i vi = _mm512_loadu_si512(idx);
    _mm512_i32scatter_ps(base, vi, v, 4);
  }
};

constexpr KernelTable kTable = make_table<V8>(SimdLevel::kAvx512, "avx512");
constexpr KernelTableF32 kTableF32 =
    make_table<V16F>(SimdLevel::kAvx512, "avx512");

}  // namespace

const KernelTable* avx512_table() noexcept { return &kTable; }
const KernelTableF32* avx512_table_f32() noexcept { return &kTableF32; }

}  // namespace parlap::kernels

#else  // !defined(__AVX512F__)

namespace parlap::kernels {
const KernelTable* avx512_table() noexcept { return nullptr; }
const KernelTableF32* avx512_table_f32() noexcept { return nullptr; }
}  // namespace parlap::kernels

#endif
