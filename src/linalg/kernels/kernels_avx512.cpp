// AVX-512 tier (8 doubles/lane). Compiled with -mavx512f -mavx512vl
// -mavx512dq -mavx512bw -ffp-contract=off on x86-64; elsewhere the table
// is absent and dispatch tops out at AVX2 or scalar.
#include "linalg/kernels/kernels_tables.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "linalg/kernels/kernels_vec_impl.hpp"

namespace parlap::kernels {

namespace {

struct V8 {
  using reg = __m512d;
  static constexpr std::size_t W = 8;
  static reg zero() { return _mm512_setzero_pd(); }
  static reg set1(double x) { return _mm512_set1_pd(x); }
  static reg loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm512_storeu_pd(p, v); }
  static reg add(reg a, reg b) { return _mm512_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm512_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm512_mul_pd(a, b); }
  /// Lane l = p[l * stride] (column-major lane-per-column loads).
  static reg gather_cols(const double* p, std::size_t stride) {
    return _mm512_set_pd(p[7 * stride], p[6 * stride], p[5 * stride],
                         p[4 * stride], p[3 * stride], p[2 * stride],
                         p[stride], p[0]);
  }
  /// Lane l = base[idx[l]] (int32 row indices).
  static reg gather_idx(const double* base, const Vertex* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm512_i32gather_pd(vi, base, 8);
  }
  /// base[idx[l]] = lane l (hardware scatter; row lists are duplicate-free).
  static void scatter_idx(double* base, const Vertex* idx, reg v) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    _mm512_i32scatter_pd(base, vi, v, 8);
  }
};

constexpr KernelTable kTable = make_table<V8>(SimdLevel::kAvx512, "avx512");

}  // namespace

const KernelTable* avx512_table() noexcept { return &kTable; }

}  // namespace parlap::kernels

#else  // !defined(__AVX512F__)

namespace parlap::kernels {
const KernelTable* avx512_table() noexcept { return nullptr; }
}  // namespace parlap::kernels

#endif
