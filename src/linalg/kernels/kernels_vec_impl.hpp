// Shared SIMD kernel bodies, templated over a vector trait V (one per
// ISA tier and storage type). Included ONLY by the per-ISA translation
// units, which are compiled with the matching -m flags plus
// -ffp-contract=off.
//
// A trait names its STORED element type (V::elem: double or float) and
// its NATIVE vector register (V::reg): a double vector for fp64 traits,
// a float vector for fp32 traits. Lane arithmetic happens in elem
// precision, so the fp32 tiers pack TWICE the lanes per register
// (__m256 = 8 floats, __m512 = 16) — that lane doubling, not byte
// halving, is where the fp32 apply speedup comes from on compute-bound
// hosts (a widen-to-double design keeps fp64 lane counts and measures
// at ~1.0x). The accuracy cost of float arithmetic is owned by the fp64
// refinement loop above the chain.
//
// Two scalars cross the type boundary, mirrored exactly by the scalar
// reference: set1() narrows its double argument once per call site
// (weights arrive as widened elems, so their round trip is lossless;
// axpy's genuine double coefficient rounds once, identically to the
// scalar reference's single narrowing), and chunk_dots widens its elem
// accumulators to the double* output on the final store (exact).
//
// The bit-identity discipline, concretely:
//   * Interleaved kernels (csr_*, dense_rows) put one COLUMN per vector
//     lane: a lane performs its column's adds/subs/muls in exactly the
//     scalar order, and mul/add/sub intrinsics are never fused (no FMA
//     intrinsics; contraction disabled), so lane results equal the
//     scalar kernel bit-for-bit — per storage type (fp32 lanes match
//     the fp32 scalar reference, never the fp64 one).
//   * Column-major elementwise kernels (axpy_cols, gather/scatter)
//     vectorize along rows — each element's arithmetic is independent,
//     so packing cannot reorder anything.
//   * chunk_dots must accumulate each column in ROW order (the
//     deterministic-dot contract), so it vectorizes across columns with
//     strided lane loads; the row-major accumulation order per lane is
//     untouched.
//   * Remainder columns (k % W) and rows fall back to the scalar
//     pattern (elem accumulator, same native arithmetic), which is the
//     same operation sequence by construction.
//   * Kernels that put one column per LANE (chunk_dots, csr_*,
//     dense_rows) delegate k < W to the NEXT LOWER tier (V::lower():
//     avx512 -> avx2 -> scalar): a panel that fills no lanes here may
//     exactly fill the half-width register one tier down — the fp32
//     avx512 tier holds 16 float lanes, so the common width-8 panel
//     lands on the avx2 tier's single __m256 pass instead of a
//     per-column remainder loop. The chain bottoms out at the scalar
//     reference, whose dedicated single-column register fast paths E19
//     measured 15-50% faster than any vector tail at width 1. Same bits
//     at every hop (all tiers match the scalar reference per storage
//     type), so delegation is a pure scheduling choice.
#pragma once

#include <algorithm>
#include <cstddef>

#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/kernels_tables.hpp"

namespace parlap::kernels {

template <class V>
struct VecKernels {
  using reg = typename V::reg;
  using elem = typename V::elem;
  static constexpr std::size_t W = V::W;

  static void axpy_cols(double a, const elem* x, elem* y, std::size_t lo,
                        std::size_t hi, std::size_t ld, std::size_t k,
                        const unsigned char* mask) {
    const reg av = V::set1(a);
    const elem ae = static_cast<elem>(a);
    for (std::size_t c = 0; c < k; ++c) {
      if (mask != nullptr && mask[c] == 0) continue;
      const elem* xc = x + c * ld;
      elem* yc = y + c * ld;
      std::size_t i = lo;
      for (; i + W <= hi; i += W) {
        V::storeu(yc + i, V::add(V::loadu(yc + i), V::mul(av, V::loadu(xc + i))));
      }
      for (; i < hi; ++i) {
        yc[i] = static_cast<elem>(yc[i] + ae * xc[i]);
      }
    }
  }

  static void chunk_dots(const elem* a, const elem* b, std::size_t lo,
                         std::size_t hi, std::size_t ld, std::size_t k,
                         double* out) {
    if (k < W) {
      V::lower().chunk_dots(a, b, lo, hi, ld, k, out);
      return;
    }
    std::size_t c0 = 0;
    for (; c0 + W <= k; c0 += W) {
      const elem* ac = a + c0 * ld;
      const elem* bc = b + c0 * ld;
      reg acc = V::zero();
      for (std::size_t i = lo; i < hi; ++i) {
        acc = V::add(acc, V::mul(V::gather_cols(ac + i, ld),
                                 V::gather_cols(bc + i, ld)));
      }
      double lanes[W];
      V::store_lanes(lanes, acc);
      for (std::size_t l = 0; l < W; ++l) out[c0 + l] = lanes[l];
    }
    for (; c0 < k; ++c0) {
      const elem* ac = a + c0 * ld;
      const elem* bc = b + c0 * ld;
      elem s{};
      for (std::size_t i = lo; i < hi; ++i) {
        s = static_cast<elem>(s + ac[i] * bc[i]);
      }
      out[c0] = static_cast<double>(s);
    }
  }

  static void gather_rows(const elem* src, std::size_t src_ld,
                          const Vertex* rows, std::size_t lo, std::size_t hi,
                          std::size_t dst_ld, std::size_t k, elem* dst) {
    for (std::size_t c = 0; c < k; ++c) {
      const elem* sc = src + c * src_ld;
      elem* dc = dst + c * dst_ld;
      std::size_t i = lo;
      for (; i + W <= hi; i += W) {
        V::storeu(dc + i, V::gather_idx(sc, rows + i));
      }
      for (; i < hi; ++i) dc[i] = sc[static_cast<std::size_t>(rows[i])];
    }
  }

  static void scatter_rows(const elem* src, std::size_t src_ld,
                           const Vertex* rows, std::size_t lo, std::size_t hi,
                           std::size_t dst_ld, std::size_t k, elem* dst) {
    for (std::size_t c = 0; c < k; ++c) {
      const elem* sc = src + c * src_ld;
      elem* dc = dst + c * dst_ld;
      std::size_t i = lo;
      for (; i + W <= hi; i += W) {
        V::scatter_idx(dc, rows + i, V::loadu(sc + i));
      }
      for (; i < hi; ++i) dc[static_cast<std::size_t>(rows[i])] = sc[i];
    }
  }

  static void csr_jacobi(std::size_t lo, std::size_t hi, std::size_t k,
                         const EdgeId* off, const Vertex* nbr, const elem* w,
                         const elem* inv_x, const elem* y_diag,
                         const elem* xb, const elem* cur, elem* tmp) {
    if (k < W) {
      V::lower().csr_jacobi(lo, hi, k, off, nbr, w, inv_x, y_diag, xb, cur,
                            tmp);
      return;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const EdgeId plo = off[i];
      const EdgeId phi = off[i + 1];
      const elem ydi = y_diag[i];
      const elem xii = inv_x[i];
      const reg yd = V::set1(static_cast<double>(ydi));
      const reg xi = V::set1(static_cast<double>(xii));
      std::size_t c0 = 0;
      for (; c0 + W <= k; c0 += W) {
        reg acc = V::mul(yd, V::loadu(cur + i * k + c0));
        for (EdgeId p = plo; p < phi; ++p) {
          const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
          const reg wp = V::set1(static_cast<double>(w[static_cast<std::size_t>(p)]));
          acc = V::sub(acc, V::mul(wp, V::loadu(cur + t * k + c0)));
        }
        V::storeu(tmp + i * k + c0,
                  V::sub(V::loadu(xb + i * k + c0), V::mul(xi, acc)));
      }
      for (; c0 < k; ++c0) {
        elem acc = static_cast<elem>(ydi * cur[i * k + c0]);
        for (EdgeId p = plo; p < phi; ++p) {
          acc = static_cast<elem>(
              acc -
              w[static_cast<std::size_t>(p)] *
                  cur[static_cast<std::size_t>(
                          nbr[static_cast<std::size_t>(p)]) * k + c0]);
        }
        tmp[i * k + c0] = static_cast<elem>(xb[i * k + c0] - xii * acc);
      }
    }
  }

  static void csr_fwd(std::size_t lo, std::size_t hi, std::size_t k,
                      const EdgeId* off, const Vertex* nbr, const elem* w,
                      const Vertex* idx, const elem* seed, const elem* src,
                      elem* out) {
    if (k < W) {
      V::lower().csr_fwd(lo, hi, k, off, nbr, w, idx, seed, src, out);
      return;
    }
    for (std::size_t j = lo; j < hi; ++j) {
      const auto sj = static_cast<std::size_t>(idx[j]);
      const EdgeId plo = off[j];
      const EdgeId phi = off[j + 1];
      std::size_t c0 = 0;
      for (; c0 + W <= k; c0 += W) {
        reg acc = V::loadu(seed + sj * k + c0);
        for (EdgeId p = plo; p < phi; ++p) {
          const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
          const reg wp = V::set1(static_cast<double>(w[static_cast<std::size_t>(p)]));
          acc = V::add(acc, V::mul(wp, V::loadu(src + t * k + c0)));
        }
        V::storeu(out + j * k + c0, acc);
      }
      for (; c0 < k; ++c0) {
        elem acc = seed[sj * k + c0];
        for (EdgeId p = plo; p < phi; ++p) {
          acc = static_cast<elem>(
              acc +
              w[static_cast<std::size_t>(p)] *
                  src[static_cast<std::size_t>(
                          nbr[static_cast<std::size_t>(p)]) * k + c0]);
        }
        out[j * k + c0] = acc;
      }
    }
  }

  static void csr_bwd(std::size_t lo, std::size_t hi, std::size_t k,
                      const EdgeId* off, const Vertex* nbr, const elem* w,
                      const elem* src, elem* out) {
    if (k < W) {
      V::lower().csr_bwd(lo, hi, k, off, nbr, w, src, out);
      return;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const EdgeId plo = off[i];
      const EdgeId phi = off[i + 1];
      std::size_t c0 = 0;
      for (; c0 + W <= k; c0 += W) {
        reg acc = V::zero();
        for (EdgeId p = plo; p < phi; ++p) {
          const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
          const reg wp = V::set1(static_cast<double>(w[static_cast<std::size_t>(p)]));
          acc = V::sub(acc, V::mul(wp, V::loadu(src + t * k + c0)));
        }
        V::storeu(out + i * k + c0, acc);
      }
      for (; c0 < k; ++c0) {
        elem acc{};
        for (EdgeId p = plo; p < phi; ++p) {
          acc = static_cast<elem>(
              acc -
              w[static_cast<std::size_t>(p)] *
                  src[static_cast<std::size_t>(
                          nbr[static_cast<std::size_t>(p)]) * k + c0]);
        }
        out[i * k + c0] = acc;
      }
    }
  }

  static void dense_rows(std::size_t lo, std::size_t hi, std::size_t k,
                         std::size_t n, const elem* a, const elem* in,
                         elem* out) {
    if (k < W) {
      V::lower().dense_rows(lo, hi, k, n, a, in, out);
      return;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const elem* row = a + i * n;
      std::size_t c0 = 0;
      for (; c0 + W <= k; c0 += W) {
        reg acc = V::zero();
        for (std::size_t j = 0; j < n; ++j) {
          acc = V::add(acc, V::mul(V::set1(static_cast<double>(row[j])),
                                   V::loadu(in + j * k + c0)));
        }
        V::storeu(out + i * k + c0, acc);
      }
      for (; c0 < k; ++c0) {
        elem acc{};
        for (std::size_t j = 0; j < n; ++j) {
          acc = static_cast<elem>(acc + row[j] * in[j * k + c0]);
        }
        out[i * k + c0] = acc;
      }
    }
  }
};

/// Builds a tier's kernel table (fp64 or fp32 storage, per the trait's
/// elem type) from the trait instantiation.
template <class V>
constexpr KernelTableT<typename V::elem> make_table(SimdLevel level,
                                                    const char* name) {
  return KernelTableT<typename V::elem>{
      level,
      name,
      &VecKernels<V>::axpy_cols,
      &VecKernels<V>::chunk_dots,
      &VecKernels<V>::gather_rows,
      &VecKernels<V>::scatter_rows,
      &VecKernels<V>::csr_jacobi,
      &VecKernels<V>::csr_fwd,
      &VecKernels<V>::csr_bwd,
      &VecKernels<V>::dense_rows,
  };
}

}  // namespace parlap::kernels
