// Shared SIMD kernel bodies, templated over a vector trait V (one per
// ISA tier: W=4 AVX2 doubles, W=8 AVX-512 doubles). Included ONLY by the
// per-ISA translation units, which are compiled with the matching -m
// flags plus -ffp-contract=off.
//
// The bit-identity discipline, concretely:
//   * Interleaved kernels (csr_*, dense_rows) put one COLUMN per vector
//     lane: a lane performs its column's adds/subs/muls in exactly the
//     scalar order, and mul/add/sub intrinsics are never fused (no FMA
//     intrinsics; contraction disabled), so lane results equal the
//     scalar kernel bit-for-bit.
//   * Column-major elementwise kernels (axpy_cols, gather/scatter)
//     vectorize along rows — each element's arithmetic is independent,
//     so packing cannot reorder anything.
//   * chunk_dots must accumulate each column in ROW order (the
//     deterministic-dot contract), so it vectorizes across columns with
//     strided lane loads; the row-major accumulation order per lane is
//     untouched.
//   * Remainder columns (k % W) and rows fall back to the scalar
//     pattern, which is the same arithmetic by construction.
//   * Kernels that put one column per LANE (chunk_dots, csr_*,
//     dense_rows) delegate k == 1 to the scalar reference outright: a
//     single column fills no lanes, and the scalar table has dedicated
//     single-column register fast paths the remainder loop here lacks —
//     E19 measures the vector tail 15-50% slower at width 1. Same bits
//     either way (scalar IS the reference); this keeps the width-1
//     latency path as fast under auto dispatch as under --simd=scalar.
#pragma once

#include <algorithm>
#include <cstddef>

#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/kernels_tables.hpp"

namespace parlap::kernels {

template <class V>
struct VecKernels {
  using reg = typename V::reg;
  static constexpr std::size_t W = V::W;

  static void axpy_cols(double a, const double* x, double* y, std::size_t lo,
                        std::size_t hi, std::size_t ld, std::size_t k,
                        const unsigned char* mask) {
    const reg av = V::set1(a);
    for (std::size_t c = 0; c < k; ++c) {
      if (mask != nullptr && mask[c] == 0) continue;
      const double* xc = x + c * ld;
      double* yc = y + c * ld;
      std::size_t i = lo;
      for (; i + W <= hi; i += W) {
        V::storeu(yc + i, V::add(V::loadu(yc + i), V::mul(av, V::loadu(xc + i))));
      }
      for (; i < hi; ++i) yc[i] += a * xc[i];
    }
  }

  static void chunk_dots(const double* a, const double* b, std::size_t lo,
                         std::size_t hi, std::size_t ld, std::size_t k,
                         double* out) {
    if (k == 1) {
      scalar_table().chunk_dots(a, b, lo, hi, ld, k, out);
      return;
    }
    std::size_t c0 = 0;
    for (; c0 + W <= k; c0 += W) {
      const double* ac = a + c0 * ld;
      const double* bc = b + c0 * ld;
      reg acc = V::zero();
      for (std::size_t i = lo; i < hi; ++i) {
        acc = V::add(acc, V::mul(V::gather_cols(ac + i, ld),
                                 V::gather_cols(bc + i, ld)));
      }
      double lanes[W];
      V::storeu(lanes, acc);
      for (std::size_t l = 0; l < W; ++l) out[c0 + l] = lanes[l];
    }
    for (; c0 < k; ++c0) {
      const double* ac = a + c0 * ld;
      const double* bc = b + c0 * ld;
      double s = 0.0;
      for (std::size_t i = lo; i < hi; ++i) s += ac[i] * bc[i];
      out[c0] = s;
    }
  }

  static void gather_rows(const double* src, std::size_t src_ld,
                          const Vertex* rows, std::size_t lo, std::size_t hi,
                          std::size_t dst_ld, std::size_t k, double* dst) {
    for (std::size_t c = 0; c < k; ++c) {
      const double* sc = src + c * src_ld;
      double* dc = dst + c * dst_ld;
      std::size_t i = lo;
      for (; i + W <= hi; i += W) {
        V::storeu(dc + i, V::gather_idx(sc, rows + i));
      }
      for (; i < hi; ++i) dc[i] = sc[static_cast<std::size_t>(rows[i])];
    }
  }

  static void scatter_rows(const double* src, std::size_t src_ld,
                           const Vertex* rows, std::size_t lo, std::size_t hi,
                           std::size_t dst_ld, std::size_t k, double* dst) {
    for (std::size_t c = 0; c < k; ++c) {
      const double* sc = src + c * src_ld;
      double* dc = dst + c * dst_ld;
      std::size_t i = lo;
      for (; i + W <= hi; i += W) {
        V::scatter_idx(dc, rows + i, V::loadu(sc + i));
      }
      for (; i < hi; ++i) dc[static_cast<std::size_t>(rows[i])] = sc[i];
    }
  }

  static void csr_jacobi(std::size_t lo, std::size_t hi, std::size_t k,
                         const EdgeId* off, const Vertex* nbr, const Weight* w,
                         const double* inv_x, const double* y_diag,
                         const double* xb, const double* cur, double* tmp) {
    if (k == 1) {
      scalar_table().csr_jacobi(lo, hi, k, off, nbr, w, inv_x, y_diag, xb,
                                cur, tmp);
      return;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const EdgeId plo = off[i];
      const EdgeId phi = off[i + 1];
      const reg yd = V::set1(y_diag[i]);
      const reg xi = V::set1(inv_x[i]);
      std::size_t c0 = 0;
      for (; c0 + W <= k; c0 += W) {
        reg acc = V::mul(yd, V::loadu(cur + i * k + c0));
        for (EdgeId p = plo; p < phi; ++p) {
          const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
          const reg wp = V::set1(w[static_cast<std::size_t>(p)]);
          acc = V::sub(acc, V::mul(wp, V::loadu(cur + t * k + c0)));
        }
        V::storeu(tmp + i * k + c0,
                  V::sub(V::loadu(xb + i * k + c0), V::mul(xi, acc)));
      }
      for (; c0 < k; ++c0) {
        double acc = y_diag[i] * cur[i * k + c0];
        for (EdgeId p = plo; p < phi; ++p) {
          acc -= w[static_cast<std::size_t>(p)] *
                 cur[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]) * k + c0];
        }
        tmp[i * k + c0] = xb[i * k + c0] - inv_x[i] * acc;
      }
    }
  }

  static void csr_fwd(std::size_t lo, std::size_t hi, std::size_t k,
                      const EdgeId* off, const Vertex* nbr, const Weight* w,
                      const Vertex* idx, const double* seed, const double* src,
                      double* out) {
    if (k == 1) {
      scalar_table().csr_fwd(lo, hi, k, off, nbr, w, idx, seed, src, out);
      return;
    }
    for (std::size_t j = lo; j < hi; ++j) {
      const auto sj = static_cast<std::size_t>(idx[j]);
      const EdgeId plo = off[j];
      const EdgeId phi = off[j + 1];
      std::size_t c0 = 0;
      for (; c0 + W <= k; c0 += W) {
        reg acc = V::loadu(seed + sj * k + c0);
        for (EdgeId p = plo; p < phi; ++p) {
          const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
          const reg wp = V::set1(w[static_cast<std::size_t>(p)]);
          acc = V::add(acc, V::mul(wp, V::loadu(src + t * k + c0)));
        }
        V::storeu(out + j * k + c0, acc);
      }
      for (; c0 < k; ++c0) {
        double acc = seed[sj * k + c0];
        for (EdgeId p = plo; p < phi; ++p) {
          acc += w[static_cast<std::size_t>(p)] *
                 src[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]) * k + c0];
        }
        out[j * k + c0] = acc;
      }
    }
  }

  static void csr_bwd(std::size_t lo, std::size_t hi, std::size_t k,
                      const EdgeId* off, const Vertex* nbr, const Weight* w,
                      const double* src, double* out) {
    if (k == 1) {
      scalar_table().csr_bwd(lo, hi, k, off, nbr, w, src, out);
      return;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const EdgeId plo = off[i];
      const EdgeId phi = off[i + 1];
      std::size_t c0 = 0;
      for (; c0 + W <= k; c0 += W) {
        reg acc = V::zero();
        for (EdgeId p = plo; p < phi; ++p) {
          const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
          const reg wp = V::set1(w[static_cast<std::size_t>(p)]);
          acc = V::sub(acc, V::mul(wp, V::loadu(src + t * k + c0)));
        }
        V::storeu(out + i * k + c0, acc);
      }
      for (; c0 < k; ++c0) {
        double acc = 0.0;
        for (EdgeId p = plo; p < phi; ++p) {
          acc -= w[static_cast<std::size_t>(p)] *
                 src[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]) * k + c0];
        }
        out[i * k + c0] = acc;
      }
    }
  }

  static void dense_rows(std::size_t lo, std::size_t hi, std::size_t k,
                         std::size_t n, const double* a, const double* in,
                         double* out) {
    if (k == 1) {
      scalar_table().dense_rows(lo, hi, k, n, a, in, out);
      return;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const double* row = a + i * n;
      std::size_t c0 = 0;
      for (; c0 + W <= k; c0 += W) {
        reg acc = V::zero();
        for (std::size_t j = 0; j < n; ++j) {
          acc = V::add(acc, V::mul(V::set1(row[j]), V::loadu(in + j * k + c0)));
        }
        V::storeu(out + i * k + c0, acc);
      }
      for (; c0 < k; ++c0) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) acc += row[j] * in[j * k + c0];
        out[i * k + c0] = acc;
      }
    }
  }
};

/// Builds the tier's KernelTable from the trait instantiation.
template <class V>
constexpr KernelTable make_table(SimdLevel level, const char* name) {
  return KernelTable{
      level,
      name,
      &VecKernels<V>::axpy_cols,
      &VecKernels<V>::chunk_dots,
      &VecKernels<V>::gather_rows,
      &VecKernels<V>::scatter_rows,
      &VecKernels<V>::csr_jacobi,
      &VecKernels<V>::csr_fwd,
      &VecKernels<V>::csr_bwd,
      &VecKernels<V>::dense_rows,
  };
}

}  // namespace parlap::kernels
