#include "linalg/kernels/numa.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "parallel/for_each.hpp"

namespace parlap::kernels {

namespace {

constexpr std::size_t kPage = 4096;

NumaPolicy initial_policy() {
  if (const char* env = std::getenv("PARLAP_NUMA")) {
    if (const auto parsed = parse_numa_policy(env)) return *parsed;
  }
  return NumaPolicy::kLocal;
}

std::atomic<int>& policy_slot() {
  static std::atomic<int> slot{static_cast<int>(initial_policy())};
  return slot;
}

int count_nodes() {
  namespace fs = std::filesystem;
  std::error_code ec;
  int nodes = 0;
  for (const auto& entry : fs::directory_iterator("/sys/devices/system/node", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) == 0 &&
        name.find_first_not_of("0123456789", 4) == std::string::npos &&
        name.size() > 4) {
      ++nodes;
    }
  }
  return nodes > 0 ? nodes : 1;
}

}  // namespace

const char* numa_policy_name(NumaPolicy policy) noexcept {
  return policy == NumaPolicy::kInterleave ? "interleave" : "local";
}

std::optional<NumaPolicy> parse_numa_policy(std::string_view name) noexcept {
  if (name == "local") return NumaPolicy::kLocal;
  if (name == "interleave") return NumaPolicy::kInterleave;
  return std::nullopt;
}

NumaPolicy active_numa_policy() noexcept {
  return static_cast<NumaPolicy>(policy_slot().load(std::memory_order_relaxed));
}

void set_numa_policy(NumaPolicy policy) noexcept {
  policy_slot().store(static_cast<int>(policy), std::memory_order_relaxed);
}

int numa_node_count() noexcept {
  static const int nodes = count_nodes();
  return nodes;
}

void first_touch(void* p, std::size_t bytes) {
  if (bytes == 0) return;
  if (active_numa_policy() == NumaPolicy::kLocal || numa_node_count() <= 1 ||
      !parallelism_allowed()) {
    // One thread touches every page: pages land on the caller's node.
    std::memset(p, 0, bytes);
    return;
  }
  // Page-granular static schedule: consecutive pages are touched by the
  // worker team round-robin, striping the buffer across the nodes the
  // team spans.
  char* base = static_cast<char*>(p);
  const std::size_t pages = (bytes + kPage - 1) / kPage;
#pragma omp parallel for schedule(static, 1)
  for (std::int64_t pg = 0; pg < static_cast<std::int64_t>(pages); ++pg) {
    const std::size_t lo = static_cast<std::size_t>(pg) * kPage;
    std::memset(base + lo, 0, std::min(kPage, bytes - lo));
  }
}

}  // namespace parlap::kernels
