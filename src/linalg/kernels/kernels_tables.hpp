// Internal: per-tier table accessors wired together by dispatch.cpp.
// The SIMD accessors return nullptr when the tier was not compiled in
// (non-x86 target or a toolchain without the -m flags).
#pragma once

#include "linalg/kernels/kernels.hpp"

namespace parlap::kernels {

const KernelTable& scalar_table() noexcept;
const KernelTable* avx2_table() noexcept;
const KernelTable* avx512_table() noexcept;

}  // namespace parlap::kernels
