// Internal: per-tier table accessors wired together by dispatch.cpp.
// The SIMD accessors return nullptr when the tier was not compiled in
// (non-x86 target or a toolchain without the -m flags). Every tier
// exports a double (fp64) and a float (fp32-storage) table; the two are
// built from the same kernel bodies and always ship together.
#pragma once

#include "linalg/kernels/kernels.hpp"

namespace parlap::kernels {

const KernelTable& scalar_table() noexcept;
const KernelTableF32& scalar_table_f32() noexcept;
const KernelTable* avx2_table() noexcept;
const KernelTableF32* avx2_table_f32() noexcept;
const KernelTable* avx512_table() noexcept;
const KernelTableF32* avx512_table_f32() noexcept;

/// Storage-type-generic scalar reference (the k == 1 delegation target
/// of the vector kernels).
template <typename T>
const KernelTableT<T>& scalar_table_for() noexcept;
template <>
inline const KernelTableT<double>& scalar_table_for<double>() noexcept {
  return scalar_table();
}
template <>
inline const KernelTableT<float>& scalar_table_for<float>() noexcept {
  return scalar_table_f32();
}

}  // namespace parlap::kernels
