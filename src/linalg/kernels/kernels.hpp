// Runtime-dispatched SIMD kernel layer for the apply hot loop.
//
// Every serving solve funnels through a handful of flat loops: the
// column-major Panel kernels (axpy, per-column reductions, indexed
// gather/scatter) and the interleaved sub-CSR sweeps of
// ApplyChain::apply_cols (Jacobi iterations, the L_CF / L_FC block
// applies, the dense base solve). This layer packages each of those as a
// function pointer in a KernelTable, with three implementations —
// scalar, AVX2, AVX-512 — selected ONCE per process by CPUID (or forced
// via the PARLAP_SIMD env var / the --simd flag on parlap_cli and
// parlap_serve).
//
// Bit-identity contract ("lane = column"): SIMD variants vectorize ONLY
// across independent columns (or across independent output rows, for
// pure copies). A lane always carries one column's arithmetic in exactly
// the scalar order, every kernel translation unit is compiled with
// -ffp-contract=off, and no FMA intrinsics are used — so every dispatch
// level produces bit-identical outputs to the scalar reference, and the
// k=1 / PR-5 panel bit-identity contract survives dispatch unchanged.
// tests/linalg/kernel_dispatch_test.cpp enforces exact equality;
// docs/PERFORMANCE.md documents the design rule.
//
// Precision: the table is templated over the STORED value type T.
// KernelTableT<double> is the default fp64 path; KernelTableT<float> is
// the fp32-storage tier behind the mixed-precision apply chain. The
// fp32 kernels compute in NATIVE float arithmetic — half the bytes per
// value AND twice the lanes per vector register (__m256 holds 8 floats,
// __m512 holds 16), which is where the fp32 apply speedup comes from;
// the fp64 refinement loop above the chain owns the accuracy contract.
// The bit-identity contract holds PER STORAGE TYPE: fp32-scalar and
// fp32-SIMD agree bit for bit (both do the same float operations in the
// same order), just like their fp64 counterparts — fp32 results are
// never bit-compared against fp64 ones.
//
// Kernels are SERIAL over a row range [lo, hi): callers own the
// parallelization (for_row_blocks below), so OpenMP structure — and with
// it the deterministic chunking of reductions — is identical at every
// dispatch level.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "parallel/for_each.hpp"
#include "support/types.hpp"

namespace parlap::kernels {

/// Instruction-set tiers the dispatcher can select. Order is capability
/// order: a level implies all lower ones.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Lower-case level name ("scalar" / "avx2" / "avx512").
[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

/// Parses "scalar" / "avx2" / "avx512"; "auto" maps to the detected
/// level. Unknown names return nullopt.
[[nodiscard]] std::optional<SimdLevel> parse_simd_level(
    std::string_view name) noexcept;

/// Best level this CPU supports (CPUID, queried once).
[[nodiscard]] SimdLevel detected_simd_level() noexcept;

/// The level the process is currently dispatching to. Initialized on
/// first use from $PARLAP_SIMD (default: the detected level).
[[nodiscard]] SimdLevel active_simd_level() noexcept;

/// Selects the dispatch level, clamping to detected_simd_level() (a
/// request above the hardware's capability selects the detected level
/// and returns the clamped value). Call at startup, before solves run.
SimdLevel set_simd_level(SimdLevel level) noexcept;

/// One ISA tier's kernel set, templated over the stored value type T
/// (double = fp64 storage, float = fp32 storage with native float
/// arithmetic). All row/column counts are element counts; layouts:
/// "col-major" kernels address element (i, c) at c*ld + i (Panel
/// layout), "interleaved" kernels at i*k + c (the apply-chain workspace
/// layout, so a row's k column values are contiguous). Scalar
/// coefficients (axpy's a) and reduction outputs (chunk_dots' out) stay
/// double in every instantiation's SIGNATURE — the fp32 tier narrows
/// the coefficient once on entry and widens its accumulators once on
/// the final store.
template <typename T>
struct KernelTableT {
  SimdLevel level = SimdLevel::kScalar;
  const char* name = "scalar";

  // --- column-major Panel kernels -----------------------------------------
  /// Rows [lo, hi): y(i, c) += a * x(i, c) for every column with
  /// mask[c] != 0 (mask == nullptr: all k columns).
  void (*axpy_cols)(double a, const T* x, T* y, std::size_t lo,
                    std::size_t hi, std::size_t ld, std::size_t k,
                    const unsigned char* mask);
  /// One reduction chunk: out[c] = sum_{i in [lo, hi)} a(i, c) * b(i, c),
  /// accumulated in row order per column (the deterministic-dot order).
  void (*chunk_dots)(const T* a, const T* b, std::size_t lo,
                     std::size_t hi, std::size_t ld, std::size_t k,
                     double* out);
  /// Rows [lo, hi) of the index list: dst(i, c) = src(rows[i], c).
  void (*gather_rows)(const T* src, std::size_t src_ld,
                      const Vertex* rows, std::size_t lo, std::size_t hi,
                      std::size_t dst_ld, std::size_t k, T* dst);
  /// Rows [lo, hi) of the index list: dst(rows[i], c) = src(i, c).
  void (*scatter_rows)(const T* src, std::size_t src_ld,
                       const Vertex* rows, std::size_t lo, std::size_t hi,
                       std::size_t dst_ld, std::size_t k, T* dst);

  // --- interleaved apply-chain kernels ------------------------------------
  /// One Jacobi iteration over rows [lo, hi) (absolute CSR offsets into
  /// nbr/w): tmp(i, :) = xb(i, :) - inv_x[i] * (y_diag[i] * cur(i, :)
  ///                                            - sum_p w[p] * cur(nbr[p], :)).
  void (*csr_jacobi)(std::size_t lo, std::size_t hi, std::size_t k,
                     const EdgeId* off, const Vertex* nbr, const T* w,
                     const T* inv_x, const T* y_diag,
                     const T* xb, const T* cur, T* tmp);
  /// Forward elimination rows [lo, hi):
  /// out(j, :) = seed(idx[j], :) + sum_p w[p] * src(nbr[p], :).
  void (*csr_fwd)(std::size_t lo, std::size_t hi, std::size_t k,
                  const EdgeId* off, const Vertex* nbr, const T* w,
                  const Vertex* idx, const T* seed, const T* src,
                  T* out);
  /// Back-substitution rows [lo, hi):
  /// out(i, :) = - sum_p w[p] * src(nbr[p], :).
  void (*csr_bwd)(std::size_t lo, std::size_t hi, std::size_t k,
                  const EdgeId* off, const Vertex* nbr, const T* w,
                  const T* src, T* out);
  /// Dense base solve rows [lo, hi) of an n x n row-major matrix:
  /// out(i, :) = sum_j a[i*n + j] * in(j, :).
  void (*dense_rows)(std::size_t lo, std::size_t hi, std::size_t k,
                     std::size_t n, const T* a, const T* in,
                     T* out);
};

/// The fp64 table (Weight == double) every pre-existing caller uses.
using KernelTable = KernelTableT<double>;
/// The fp32-storage tier (float arrays, native float arithmetic).
using KernelTableF32 = KernelTableT<float>;

/// The table for the active dispatch level (one relaxed atomic load).
[[nodiscard]] const KernelTable& active() noexcept;

/// The fp32-storage table at the active dispatch level (same SimdLevel
/// selection as active(); the two tiers always dispatch together).
[[nodiscard]] const KernelTableF32& active_f32() noexcept;

/// The table for an explicit level (microbenchmarks / parity tests).
/// Levels above detected_simd_level() fall back to the scalar table.
[[nodiscard]] const KernelTable& table_for(SimdLevel level) noexcept;

/// fp32 analogue of table_for().
[[nodiscard]] const KernelTableF32& table_for_f32(SimdLevel level) noexcept;

/// Whether `level`'s native table is compiled in AND supported by this
/// CPU (table_for() returns the real table, not a fallback).
[[nodiscard]] bool simd_level_available(SimdLevel level) noexcept;

/// Value-type-generic accessors for code templated over the storage
/// type (ApplyChain's apply path).
template <typename T>
[[nodiscard]] const KernelTableT<T>& active_for() noexcept;
template <>
[[nodiscard]] inline const KernelTableT<double>& active_for<double>() noexcept {
  return active();
}
template <>
[[nodiscard]] inline const KernelTableT<float>& active_for<float>() noexcept {
  return active_f32();
}

template <typename T>
[[nodiscard]] const KernelTableT<T>& table_for_type(SimdLevel level) noexcept;
template <>
[[nodiscard]] inline const KernelTableT<double>& table_for_type<double>(
    SimdLevel level) noexcept {
  return table_for(level);
}
template <>
[[nodiscard]] inline const KernelTableT<float>& table_for_type<float>(
    SimdLevel level) noexcept {
  return table_for_f32(level);
}

/// Reduction chunk length shared with vector_ops' deterministic dot:
/// per-column chunk partials are accumulated serially and folded in
/// chunk order, so panel reductions equal norm2/dot bit-for-bit.
inline constexpr std::size_t kReductionChunk = std::size_t{1} << 14;

/// Row-block width the drivers hand to the serial kernels; one OpenMP
/// work item per block.
inline constexpr std::size_t kRowBlock = 2048;

/// Runs fn(lo, hi) over [0, n) in kRowBlock-sized blocks, in parallel
/// when more than one block exists (outputs are per-row independent, so
/// scheduling never affects results).
template <typename Fn>
void for_row_blocks(std::size_t n, Fn&& fn) {
  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  if (blocks <= 1) {
    if (n > 0) fn(std::size_t{0}, n);
    return;
  }
  parallel_for(
      std::size_t{0}, blocks,
      [&](std::size_t b) {
        fn(b * kRowBlock, std::min(n, (b + 1) * kRowBlock));
      },
      /*grain=*/2);
}

/// Best-effort software prefetch of [p, p + bytes), one touch per cache
/// line, read-only with moderate temporal locality. Used by the chain
/// apply to pull the NEXT level's packed CSR slices into cache while the
/// current level is still computing.
inline void prefetch_bytes(const void* p, std::size_t bytes) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  const char* c = static_cast<const char*>(p);
  for (std::size_t o = 0; o < bytes; o += 64) {
    __builtin_prefetch(c + o, /*rw=*/0, /*locality=*/2);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace parlap::kernels
