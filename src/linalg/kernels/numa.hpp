// NUMA placement policy for the apply-side hot arrays.
//
// The packed CSR arrays and ApplyWorkspace buffers are allocated with
// AlignedBuffer (aligned_buffer.hpp), which defers the FIRST TOUCH of
// every page to an explicit first_touch() call so the kernel's
// first-touch page placement puts the memory where the policy asks:
//
//   kLocal      — the calling thread touches every page, so pages land
//                 on that thread's node. ApplyChain::finalize and
//                 prepare_workspace run on the engine worker that will
//                 traverse the arrays, making "local" the natural
//                 serving placement.
//   kInterleave — pages are touched round-robin by the OpenMP worker
//                 team, striping the arrays across nodes. Useful when
//                 one chain is shared by solvers on several nodes.
//
// No libnuma dependency: placement is entirely first-touch driven, and
// the node count is read from /sys/devices/system/node. On single-node
// hosts the two policies behave identically.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace parlap::kernels {

enum class NumaPolicy : int {
  kLocal = 0,
  kInterleave = 1,
};

/// Lower-case policy name ("local" / "interleave").
[[nodiscard]] const char* numa_policy_name(NumaPolicy policy) noexcept;

/// Parses "local" / "interleave"; unknown names return nullopt.
[[nodiscard]] std::optional<NumaPolicy> parse_numa_policy(
    std::string_view name) noexcept;

/// Process-wide placement policy. Initialized on first use from
/// $PARLAP_NUMA (default kLocal); set via --numa at startup.
[[nodiscard]] NumaPolicy active_numa_policy() noexcept;
void set_numa_policy(NumaPolicy policy) noexcept;

/// Number of online NUMA nodes (/sys/devices/system/node); 1 when the
/// sysfs topology is unavailable.
[[nodiscard]] int numa_node_count() noexcept;

/// Zero-fills [p, p + bytes) with the page-touch pattern of the active
/// policy: serially on the calling thread (kLocal) or page-striped
/// across the OpenMP team (kInterleave). Called by AlignedBuffer when a
/// reallocation produces untouched pages.
void first_touch(void* p, std::size_t bytes);

}  // namespace parlap::kernels
