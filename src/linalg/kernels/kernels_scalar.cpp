// Scalar reference kernels: the arithmetic ground truth every SIMD tier
// must match bit-for-bit. Per column, each loop is the exact operation
// order of the pre-dispatch ApplyChain / Panel code (and of vector_ops'
// chunked dot): CSR sweeps stream each row's entries once per
// kColChunk-wide column group with per-column accumulators, and k == 1
// keeps the single-register accumulator of the original hot path.
//
// Templated over the stored value type T, and ACCUMULATION IS NATIVE T:
// the fp64 instantiation computes in double (operation for operation the
// pre-template code), the fp32 instantiation computes in float. Native
// fp32 arithmetic is what lets the vector tiers pack twice the lanes per
// register — widen-on-load designs keep fp64 lane counts and measure at
// ~1.0x; the accuracy cost is owned by the fp64 refinement loop above
// the chain (docs/PERFORMANCE.md "Precision modes"). Two scalars cross
// the type boundary: axpy's coefficient `a` arrives as double and is
// narrowed ONCE to T before the loop, and chunk_dots' outputs widen
// T -> double on the final store (exact) — both choices are mirrored by
// the vector tiers, which is what keeps fp32-scalar the exact reference
// for the fp32 SIMD tiers.
//
// Compiled with the library's baseline flags — no -march, no contraction
// surprises.
#include <algorithm>

#include "linalg/kernels/kernels.hpp"

namespace parlap::kernels {

namespace scalar_impl {

namespace {
/// Column-chunk width of the CSR row kernels (matches the pre-dispatch
/// apply code): per row, up to kColChunk columns accumulate in a stack
/// buffer while the row's entries stream once.
constexpr std::size_t kColChunk = 8;
}  // namespace

template <typename T>
void axpy_cols(double a, const T* x, T* y, std::size_t lo,
               std::size_t hi, std::size_t ld, std::size_t k,
               const unsigned char* mask) {
  const T av = static_cast<T>(a);
  for (std::size_t c = 0; c < k; ++c) {
    if (mask != nullptr && mask[c] == 0) continue;
    const T* xc = x + c * ld;
    T* yc = y + c * ld;
    for (std::size_t i = lo; i < hi; ++i) {
      yc[i] = static_cast<T>(yc[i] + av * xc[i]);
    }
  }
}

template <typename T>
void chunk_dots(const T* a, const T* b, std::size_t lo,
                std::size_t hi, std::size_t ld, std::size_t k, double* out) {
  for (std::size_t c = 0; c < k; ++c) {
    const T* ac = a + c * ld;
    const T* bc = b + c * ld;
    T s{};
    for (std::size_t i = lo; i < hi; ++i) {
      s = static_cast<T>(s + ac[i] * bc[i]);
    }
    out[c] = static_cast<double>(s);
  }
}

template <typename T>
void gather_rows(const T* src, std::size_t src_ld, const Vertex* rows,
                 std::size_t lo, std::size_t hi, std::size_t dst_ld,
                 std::size_t k, T* dst) {
  for (std::size_t i = lo; i < hi; ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    for (std::size_t c = 0; c < k; ++c) {
      dst[c * dst_ld + i] = src[c * src_ld + r];
    }
  }
}

template <typename T>
void scatter_rows(const T* src, std::size_t src_ld, const Vertex* rows,
                  std::size_t lo, std::size_t hi, std::size_t dst_ld,
                  std::size_t k, T* dst) {
  for (std::size_t i = lo; i < hi; ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    for (std::size_t c = 0; c < k; ++c) {
      dst[c * dst_ld + r] = src[c * src_ld + i];
    }
  }
}

template <typename T>
void csr_jacobi(std::size_t lo, std::size_t hi, std::size_t k,
                const EdgeId* off, const Vertex* nbr, const T* w,
                const T* inv_x, const T* y_diag, const T* xb,
                const T* cur, T* tmp) {
  if (k == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      const EdgeId plo = off[i];
      const EdgeId phi = off[i + 1];
      T acc = static_cast<T>(y_diag[i] * cur[i]);
      for (EdgeId p = plo; p < phi; ++p) {
        acc = static_cast<T>(
            acc -
            w[static_cast<std::size_t>(p)] *
                cur[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)])]);
      }
      tmp[i] = static_cast<T>(xb[i] - inv_x[i] * acc);
    }
    return;
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const EdgeId plo = off[i];
    const EdgeId phi = off[i + 1];
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      T acc[kColChunk];
      for (std::size_t cc = 0; cc < cw; ++cc) {
        acc[cc] = static_cast<T>(y_diag[i] * cur[i * k + c0 + cc]);
      }
      for (EdgeId p = plo; p < phi; ++p) {
        const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
        const T wp = w[static_cast<std::size_t>(p)];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] = static_cast<T>(acc[cc] - wp * cur[t * k + c0 + cc]);
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        tmp[i * k + c0 + cc] =
            static_cast<T>(xb[i * k + c0 + cc] - inv_x[i] * acc[cc]);
      }
    }
  }
}

template <typename T>
void csr_fwd(std::size_t lo, std::size_t hi, std::size_t k, const EdgeId* off,
             const Vertex* nbr, const T* w, const Vertex* idx,
             const T* seed, const T* src, T* out) {
  if (k == 1) {
    for (std::size_t j = lo; j < hi; ++j) {
      const EdgeId plo = off[j];
      const EdgeId phi = off[j + 1];
      T acc = seed[static_cast<std::size_t>(idx[j])];
      for (EdgeId p = plo; p < phi; ++p) {
        acc = static_cast<T>(
            acc +
            w[static_cast<std::size_t>(p)] *
                src[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)])]);
      }
      out[j] = acc;
    }
    return;
  }
  for (std::size_t j = lo; j < hi; ++j) {
    const auto sj = static_cast<std::size_t>(idx[j]);
    const EdgeId plo = off[j];
    const EdgeId phi = off[j + 1];
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      T acc[kColChunk];
      for (std::size_t cc = 0; cc < cw; ++cc) {
        acc[cc] = seed[sj * k + c0 + cc];
      }
      for (EdgeId p = plo; p < phi; ++p) {
        const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
        const T wp = w[static_cast<std::size_t>(p)];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] = static_cast<T>(acc[cc] + wp * src[t * k + c0 + cc]);
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        out[j * k + c0 + cc] = acc[cc];
      }
    }
  }
}

template <typename T>
void csr_bwd(std::size_t lo, std::size_t hi, std::size_t k, const EdgeId* off,
             const Vertex* nbr, const T* w, const T* src, T* out) {
  if (k == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      const EdgeId plo = off[i];
      const EdgeId phi = off[i + 1];
      T acc{};
      for (EdgeId p = plo; p < phi; ++p) {
        acc = static_cast<T>(
            acc -
            w[static_cast<std::size_t>(p)] *
                src[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)])]);
      }
      out[i] = acc;
    }
    return;
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const EdgeId plo = off[i];
    const EdgeId phi = off[i + 1];
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      T acc[kColChunk] = {};
      for (EdgeId p = plo; p < phi; ++p) {
        const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
        const T wp = w[static_cast<std::size_t>(p)];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] = static_cast<T>(acc[cc] - wp * src[t * k + c0 + cc]);
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        out[i * k + c0 + cc] = acc[cc];
      }
    }
  }
}

template <typename T>
void dense_rows(std::size_t lo, std::size_t hi, std::size_t k, std::size_t n,
                const T* a, const T* in, T* out) {
  if (k == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      const T* row = a + i * n;
      T acc{};
      for (std::size_t j = 0; j < n; ++j) {
        acc = static_cast<T>(acc + row[j] * in[j]);
      }
      out[i] = acc;
    }
    return;
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const T* row = a + i * n;
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      T acc[kColChunk] = {};
      for (std::size_t j = 0; j < n; ++j) {
        const T aj = row[j];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] = static_cast<T>(acc[cc] + aj * in[j * k + c0 + cc]);
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        out[i * k + c0 + cc] = acc[cc];
      }
    }
  }
}

template <typename T>
constexpr KernelTableT<T> make_scalar_table() {
  return KernelTableT<T>{
      SimdLevel::kScalar,
      "scalar",
      &axpy_cols<T>,
      &chunk_dots<T>,
      &gather_rows<T>,
      &scatter_rows<T>,
      &csr_jacobi<T>,
      &csr_fwd<T>,
      &csr_bwd<T>,
      &dense_rows<T>,
  };
}

}  // namespace scalar_impl

const KernelTable& scalar_table() noexcept {
  static constexpr KernelTable table = scalar_impl::make_scalar_table<double>();
  return table;
}

const KernelTableF32& scalar_table_f32() noexcept {
  static constexpr KernelTableF32 table =
      scalar_impl::make_scalar_table<float>();
  return table;
}

}  // namespace parlap::kernels
