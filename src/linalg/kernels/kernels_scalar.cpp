// Scalar reference kernels: the arithmetic ground truth every SIMD tier
// must match bit-for-bit. Per column, each loop is the exact operation
// order of the pre-dispatch ApplyChain / Panel code (and of vector_ops'
// chunked dot): CSR sweeps stream each row's entries once per
// kColChunk-wide column group with per-column accumulators, and k == 1
// keeps the single-register accumulator of the original hot path.
// Compiled with the library's baseline flags — no -march, no contraction
// surprises.
#include <algorithm>

#include "linalg/kernels/kernels.hpp"

namespace parlap::kernels {

namespace scalar_impl {

namespace {
/// Column-chunk width of the CSR row kernels (matches the pre-dispatch
/// apply code): per row, up to kColChunk columns accumulate in a stack
/// buffer while the row's entries stream once.
constexpr std::size_t kColChunk = 8;
}  // namespace

void axpy_cols(double a, const double* x, double* y, std::size_t lo,
               std::size_t hi, std::size_t ld, std::size_t k,
               const unsigned char* mask) {
  for (std::size_t c = 0; c < k; ++c) {
    if (mask != nullptr && mask[c] == 0) continue;
    const double* xc = x + c * ld;
    double* yc = y + c * ld;
    for (std::size_t i = lo; i < hi; ++i) yc[i] += a * xc[i];
  }
}

void chunk_dots(const double* a, const double* b, std::size_t lo,
                std::size_t hi, std::size_t ld, std::size_t k, double* out) {
  for (std::size_t c = 0; c < k; ++c) {
    const double* ac = a + c * ld;
    const double* bc = b + c * ld;
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += ac[i] * bc[i];
    out[c] = s;
  }
}

void gather_rows(const double* src, std::size_t src_ld, const Vertex* rows,
                 std::size_t lo, std::size_t hi, std::size_t dst_ld,
                 std::size_t k, double* dst) {
  for (std::size_t i = lo; i < hi; ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    for (std::size_t c = 0; c < k; ++c) {
      dst[c * dst_ld + i] = src[c * src_ld + r];
    }
  }
}

void scatter_rows(const double* src, std::size_t src_ld, const Vertex* rows,
                  std::size_t lo, std::size_t hi, std::size_t dst_ld,
                  std::size_t k, double* dst) {
  for (std::size_t i = lo; i < hi; ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    for (std::size_t c = 0; c < k; ++c) {
      dst[c * dst_ld + r] = src[c * src_ld + i];
    }
  }
}

void csr_jacobi(std::size_t lo, std::size_t hi, std::size_t k,
                const EdgeId* off, const Vertex* nbr, const Weight* w,
                const double* inv_x, const double* y_diag, const double* xb,
                const double* cur, double* tmp) {
  if (k == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      const EdgeId plo = off[i];
      const EdgeId phi = off[i + 1];
      double acc = y_diag[i] * cur[i];
      for (EdgeId p = plo; p < phi; ++p) {
        acc -= w[static_cast<std::size_t>(p)] *
               cur[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)])];
      }
      tmp[i] = xb[i] - inv_x[i] * acc;
    }
    return;
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const EdgeId plo = off[i];
    const EdgeId phi = off[i + 1];
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      double acc[kColChunk];
      for (std::size_t cc = 0; cc < cw; ++cc) {
        acc[cc] = y_diag[i] * cur[i * k + c0 + cc];
      }
      for (EdgeId p = plo; p < phi; ++p) {
        const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
        const Weight wp = w[static_cast<std::size_t>(p)];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] -= wp * cur[t * k + c0 + cc];
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        tmp[i * k + c0 + cc] = xb[i * k + c0 + cc] - inv_x[i] * acc[cc];
      }
    }
  }
}

void csr_fwd(std::size_t lo, std::size_t hi, std::size_t k, const EdgeId* off,
             const Vertex* nbr, const Weight* w, const Vertex* idx,
             const double* seed, const double* src, double* out) {
  if (k == 1) {
    for (std::size_t j = lo; j < hi; ++j) {
      const EdgeId plo = off[j];
      const EdgeId phi = off[j + 1];
      double acc = seed[static_cast<std::size_t>(idx[j])];
      for (EdgeId p = plo; p < phi; ++p) {
        acc += w[static_cast<std::size_t>(p)] *
               src[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)])];
      }
      out[j] = acc;
    }
    return;
  }
  for (std::size_t j = lo; j < hi; ++j) {
    const auto sj = static_cast<std::size_t>(idx[j]);
    const EdgeId plo = off[j];
    const EdgeId phi = off[j + 1];
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      double acc[kColChunk];
      for (std::size_t cc = 0; cc < cw; ++cc) {
        acc[cc] = seed[sj * k + c0 + cc];
      }
      for (EdgeId p = plo; p < phi; ++p) {
        const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
        const Weight wp = w[static_cast<std::size_t>(p)];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] += wp * src[t * k + c0 + cc];
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        out[j * k + c0 + cc] = acc[cc];
      }
    }
  }
}

void csr_bwd(std::size_t lo, std::size_t hi, std::size_t k, const EdgeId* off,
             const Vertex* nbr, const Weight* w, const double* src,
             double* out) {
  if (k == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      const EdgeId plo = off[i];
      const EdgeId phi = off[i + 1];
      double acc = 0.0;
      for (EdgeId p = plo; p < phi; ++p) {
        acc -= w[static_cast<std::size_t>(p)] *
               src[static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)])];
      }
      out[i] = acc;
    }
    return;
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const EdgeId plo = off[i];
    const EdgeId phi = off[i + 1];
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      double acc[kColChunk] = {};
      for (EdgeId p = plo; p < phi; ++p) {
        const auto t = static_cast<std::size_t>(nbr[static_cast<std::size_t>(p)]);
        const Weight wp = w[static_cast<std::size_t>(p)];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] -= wp * src[t * k + c0 + cc];
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        out[i * k + c0 + cc] = acc[cc];
      }
    }
  }
}

void dense_rows(std::size_t lo, std::size_t hi, std::size_t k, std::size_t n,
                const double* a, const double* in, double* out) {
  if (k == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double* row = a + i * n;
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += row[j] * in[j];
      out[i] = acc;
    }
    return;
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const double* row = a + i * n;
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      double acc[kColChunk] = {};
      for (std::size_t j = 0; j < n; ++j) {
        const double aj = row[j];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] += aj * in[j * k + c0 + cc];
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        out[i * k + c0 + cc] = acc[cc];
      }
    }
  }
}

}  // namespace scalar_impl

const KernelTable& scalar_table() noexcept {
  static constexpr KernelTable table{
      SimdLevel::kScalar,
      "scalar",
      &scalar_impl::axpy_cols,
      &scalar_impl::chunk_dots,
      &scalar_impl::gather_rows,
      &scalar_impl::scatter_rows,
      &scalar_impl::csr_jacobi,
      &scalar_impl::csr_fwd,
      &scalar_impl::csr_bwd,
      &scalar_impl::dense_rows,
  };
  return table;
}

}  // namespace parlap::kernels
