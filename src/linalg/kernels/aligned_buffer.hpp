// 64-byte-aligned growable buffer with policy-controlled first touch.
//
// std::vector is the wrong tool for the apply hot arrays twice over: its
// default allocator gives no alignment guarantee past alignof(max_align_t),
// and value-initialization touches every page on the allocating thread —
// defeating any first-touch NUMA placement decided later. AlignedBuffer
// allocates 64-byte-aligned storage (full cache line, the widest vector
// register) and pages it in via kernels::first_touch, so placement
// follows the active NumaPolicy at the moment of growth.
//
// Contents are NOT preserved across resize: every user overwrites the
// buffer before reading it (the buffers are per-apply scratch or packed
// once at finalize), so the copy would be waste. Not copyable; movable.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "linalg/kernels/numa.hpp"

namespace parlap::kernels {

inline constexpr std::size_t kBufferAlign = 64;

template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer holds flat numeric data only");

 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { deallocate(); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      deallocate();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  /// Grows (or shrinks the logical size) to `n` elements. On growth the
  /// old allocation is dropped, a fresh aligned one is made, and every
  /// page is first-touched per the active NumaPolicy (zero-filling it).
  /// Shrinking only adjusts size(); previous contents are never carried
  /// over either way.
  void resize(std::size_t n) {
    if (n > capacity_) {
      deallocate();
      data_ = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kBufferAlign}));
      capacity_ = n;
      first_touch(data_, n * sizeof(T));
    }
    size_ = n;
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

 private:
  void deallocate() noexcept {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kBufferAlign});
      data_ = nullptr;
    }
    capacity_ = 0;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace parlap::kernels
