// Runtime ISA dispatch: detect once via CPUID, honor $PARLAP_SIMD /
// set_simd_level() overrides, and hand out the active KernelTable with a
// single relaxed atomic load. Requests above the hardware's capability
// clamp to the detected level with a one-line stderr note — a forced
// "avx512" on an AVX2 host degrades gracefully instead of SIGILL-ing.
#include "linalg/kernels/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "linalg/kernels/kernels_tables.hpp"

namespace parlap::kernels {

namespace {

SimdLevel detect() noexcept {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(_M_X64))
  __builtin_cpu_init();
  // The AVX-512 tier uses f (foundation) plus vl/dq/bw, the
  // Skylake-X-and-later server baseline the kernels are compiled
  // against; require all four, matching avx512_table()'s build flags.
  if (avx512_table() != nullptr && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw")) {
    return SimdLevel::kAvx512;
  }
  if (avx2_table() != nullptr && __builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

SimdLevel clamp_to_detected(SimdLevel req) noexcept {
  const SimdLevel cap = detected_simd_level();
  if (static_cast<int>(req) <= static_cast<int>(cap)) return req;
  std::fprintf(stderr,
               "parlap: SIMD level '%s' not supported on this host; using "
               "'%s'\n",
               simd_level_name(req), simd_level_name(cap));
  return cap;
}

SimdLevel initial_level() noexcept {
  if (const char* env = std::getenv("PARLAP_SIMD")) {
    if (const auto parsed = parse_simd_level(env)) {
      return clamp_to_detected(*parsed);
    }
    std::fprintf(stderr,
                 "parlap: unknown PARLAP_SIMD value '%s' (want "
                 "scalar|avx2|avx512|auto); using auto\n",
                 env);
  }
  return detected_simd_level();
}

std::atomic<const KernelTable*>& active_slot() noexcept {
  static std::atomic<const KernelTable*> slot{&table_for(initial_level())};
  return slot;
}

}  // namespace

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
    default:
      return "scalar";
  }
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) noexcept {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  if (name == "auto") return detected_simd_level();
  return std::nullopt;
}

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel level = detect();
  return level;
}

SimdLevel active_simd_level() noexcept {
  return active_slot().load(std::memory_order_relaxed)->level;
}

SimdLevel set_simd_level(SimdLevel level) noexcept {
  const SimdLevel eff = clamp_to_detected(level);
  active_slot().store(&table_for(eff), std::memory_order_relaxed);
  return eff;
}

const KernelTable& active() noexcept {
  return *active_slot().load(std::memory_order_relaxed);
}

const KernelTableF32& active_f32() noexcept {
  // The fp32 tier follows the fp64 table's level — one atomic slot
  // selects both tiers, so they can never disagree on the ISA.
  return table_for_f32(active_slot().load(std::memory_order_relaxed)->level);
}

const KernelTable& table_for(SimdLevel level) noexcept {
  // Never hand out a table the CPU cannot execute: an unsupported
  // request falls back to scalar (set_simd_level clamps before here, so
  // this only fires for explicit table_for probes).
  if (!simd_level_available(level)) return scalar_table();
  switch (level) {
    case SimdLevel::kAvx512:
      if (const KernelTable* t = avx512_table()) return *t;
      break;
    case SimdLevel::kAvx2:
      if (const KernelTable* t = avx2_table()) return *t;
      break;
    case SimdLevel::kScalar:
      break;
  }
  return scalar_table();
}

const KernelTableF32& table_for_f32(SimdLevel level) noexcept {
  if (!simd_level_available(level)) return scalar_table_f32();
  switch (level) {
    case SimdLevel::kAvx512:
      if (const KernelTableF32* t = avx512_table_f32()) return *t;
      break;
    case SimdLevel::kAvx2:
      if (const KernelTableF32* t = avx2_table_f32()) return *t;
      break;
    case SimdLevel::kScalar:
      break;
  }
  return scalar_table_f32();
}

bool simd_level_available(SimdLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(detected_simd_level());
}

}  // namespace parlap::kernels
