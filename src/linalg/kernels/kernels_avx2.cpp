// AVX2 tier. Compiled with -mavx2 -ffp-contract=off on x86-64;
// elsewhere the tables are absent and dispatch stays scalar.
//
// Two traits share the kernel bodies: V4 (fp64 storage, 4 double lanes
// in __m256d) and V8F (fp32 storage, 8 NATIVE float lanes in __m256 —
// twice the columns per instruction, float lane arithmetic matching the
// fp32 scalar reference bit for bit; see kernels_vec_impl.hpp for why
// fp32 computes natively instead of widening to double).
#include "linalg/kernels/kernels_tables.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "linalg/kernels/kernels_vec_impl.hpp"

namespace parlap::kernels {

namespace {

struct V4 {
  using reg = __m256d;
  using elem = double;
  static constexpr std::size_t W = 4;
  /// Narrow-panel (k < W) delegation target: this is the lowest vector
  /// tier, so it bottoms out at the scalar reference.
  static const KernelTable& lower() { return scalar_table(); }
  static reg zero() { return _mm256_setzero_pd(); }
  static reg set1(double x) { return _mm256_set1_pd(x); }
  static reg loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm256_storeu_pd(p, v); }
  /// Dumps the W double lanes (chunk_dots' reduction outputs stay fp64).
  static void store_lanes(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  /// Lane l = p[l * stride] (column-major lane-per-column loads).
  static reg gather_cols(const double* p, std::size_t stride) {
    return _mm256_set_pd(p[3 * stride], p[2 * stride], p[stride], p[0]);
  }
  /// Lane l = base[idx[l]] (int32 row indices).
  static reg gather_idx(const double* base, const Vertex* idx) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return _mm256_i32gather_pd(base, vi, 8);
  }
  /// base[idx[l]] = lane l; AVX2 has no scatter, so stores are scalar.
  static void scatter_idx(double* base, const Vertex* idx, reg v) {
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, v);
    for (int l = 0; l < 4; ++l) {
      base[static_cast<std::size_t>(idx[l])] = lanes[l];
    }
  }
};

struct V8F {
  using reg = __m256;
  using elem = float;
  static constexpr std::size_t W = 8;
  /// Narrow-panel (k < W) delegation target: this is the lowest vector
  /// tier, so it bottoms out at the scalar reference.
  static const KernelTableF32& lower() { return scalar_table_f32(); }
  static reg zero() { return _mm256_setzero_ps(); }
  /// Broadcast coefficients arrive as double; one narrowing per call
  /// site, mirroring the scalar reference (widened weights round-trip
  /// losslessly).
  static reg set1(double x) {
    return _mm256_set1_ps(static_cast<float>(x));
  }
  static reg loadu(const float* p) { return _mm256_loadu_ps(p); }
  static void storeu(float* p, reg v) { _mm256_storeu_ps(p, v); }
  /// chunk_dots' reduction outputs stay fp64: widen the 8 float lanes
  /// on the final store (exact conversion).
  static void store_lanes(double* p, reg v) {
    _mm256_storeu_pd(p, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    _mm256_storeu_pd(p + 4, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  static reg add(reg a, reg b) { return _mm256_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_ps(a, b); }
  static reg gather_cols(const float* p, std::size_t stride) {
    return _mm256_set_ps(p[7 * stride], p[6 * stride], p[5 * stride],
                         p[4 * stride], p[3 * stride], p[2 * stride],
                         p[stride], p[0]);
  }
  static reg gather_idx(const float* base, const Vertex* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_i32gather_ps(base, vi, 4);
  }
  /// base[idx[l]] = lane l; AVX2 has no scatter, so stores are scalar.
  static void scatter_idx(float* base, const Vertex* idx, reg v) {
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, v);
    for (int l = 0; l < 8; ++l) {
      base[static_cast<std::size_t>(idx[l])] = lanes[l];
    }
  }
};

constexpr KernelTable kTable = make_table<V4>(SimdLevel::kAvx2, "avx2");
constexpr KernelTableF32 kTableF32 =
    make_table<V8F>(SimdLevel::kAvx2, "avx2");

}  // namespace

const KernelTable* avx2_table() noexcept { return &kTable; }
const KernelTableF32* avx2_table_f32() noexcept { return &kTableF32; }

}  // namespace parlap::kernels

#else  // !defined(__AVX2__)

namespace parlap::kernels {
const KernelTable* avx2_table() noexcept { return nullptr; }
const KernelTableF32* avx2_table_f32() noexcept { return nullptr; }
}  // namespace parlap::kernels

#endif
