// AVX2 tier (4 doubles/lane). Compiled with -mavx2 -ffp-contract=off on
// x86-64; elsewhere the table is absent and dispatch stays scalar.
#include "linalg/kernels/kernels_tables.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "linalg/kernels/kernels_vec_impl.hpp"

namespace parlap::kernels {

namespace {

struct V4 {
  using reg = __m256d;
  static constexpr std::size_t W = 4;
  static reg zero() { return _mm256_setzero_pd(); }
  static reg set1(double x) { return _mm256_set1_pd(x); }
  static reg loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  /// Lane l = p[l * stride] (column-major lane-per-column loads).
  static reg gather_cols(const double* p, std::size_t stride) {
    return _mm256_set_pd(p[3 * stride], p[2 * stride], p[stride], p[0]);
  }
  /// Lane l = base[idx[l]] (int32 row indices).
  static reg gather_idx(const double* base, const Vertex* idx) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return _mm256_i32gather_pd(base, vi, 8);
  }
  /// base[idx[l]] = lane l; AVX2 has no scatter, so stores are scalar.
  static void scatter_idx(double* base, const Vertex* idx, reg v) {
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, v);
    for (int l = 0; l < 4; ++l) {
      base[static_cast<std::size_t>(idx[l])] = lanes[l];
    }
  }
};

constexpr KernelTable kTable = make_table<V4>(SimdLevel::kAvx2, "avx2");

}  // namespace

const KernelTable* avx2_table() noexcept { return &kTable; }

}  // namespace parlap::kernels

#else  // !defined(__AVX2__)

namespace parlap::kernels {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace parlap::kernels

#endif
