#include "linalg/laplacian_op.hpp"

#include <cmath>

#include "parallel/for_each.hpp"
#include "support/check.hpp"

namespace parlap {

void LaplacianOperator::apply(std::span<const double> x,
                              std::span<double> y) const {
  const Vertex n = dimension();
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(n));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(n));
  parallel_for(Vertex{0}, n, [&](Vertex u) {
    const auto nbrs = csr_.neighbors(u);
    const auto ws = csr_.weights(u);
    double acc = csr_.weighted_degree(u) * x[static_cast<std::size_t>(u)];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      acc -= ws[k] * x[static_cast<std::size_t>(nbrs[k])];
    }
    y[static_cast<std::size_t>(u)] = acc;
  });
}

double LaplacianOperator::quadratic_form(std::span<const double> x) const {
  // Summed edge-wise: exactly non-negative, unlike x' (Lx) which can go
  // negative by rounding near the kernel.
  const Vertex n = dimension();
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(n));
  return 0.5 * deterministic_sum(n, [&](std::int64_t ui) {
           const auto u = static_cast<Vertex>(ui);
           const auto nbrs = csr_.neighbors(u);
           const auto ws = csr_.weights(u);
           double acc = 0.0;
           for (std::size_t k = 0; k < nbrs.size(); ++k) {
             const double d = x[static_cast<std::size_t>(u)] -
                              x[static_cast<std::size_t>(nbrs[k])];
             acc += ws[k] * d * d;
           }
           return acc;
         });
}

double LaplacianOperator::laplacian_norm(std::span<const double> x) const {
  return std::sqrt(quadratic_form(x));
}

}  // namespace parlap
