#include "linalg/laplacian_op.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/for_each.hpp"
#include "support/check.hpp"

namespace parlap {

void LaplacianOperator::apply(std::span<const double> x,
                              std::span<double> y) const {
  const Vertex n = dimension();
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(n));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(n));
  parallel_for(Vertex{0}, n, [&](Vertex u) {
    const auto nbrs = csr_.neighbors(u);
    const auto ws = csr_.weights(u);
    double acc = csr_.weighted_degree(u) * x[static_cast<std::size_t>(u)];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      acc -= ws[k] * x[static_cast<std::size_t>(nbrs[k])];
    }
    y[static_cast<std::size_t>(u)] = acc;
  });
}

void LaplacianOperator::apply(const Panel& x, Panel& y) const {
  const Vertex n = dimension();
  PARLAP_CHECK(x.rows() == static_cast<std::size_t>(n));
  y.resize(x.rows(), x.cols());
  if (x.cols() == 1) {  // scalar fast path: register accumulator
    apply(x.col(0), y.col(0));
    return;
  }
  const std::size_t nz = x.rows();
  const std::size_t k = x.cols();
  const double* xd = x.data();
  double* yd = y.data();
  // Column chunks keep the per-row accumulators in a small stack buffer
  // while the row's CSR entries stream once; each column's arithmetic
  // order equals the scalar apply's.
  constexpr std::size_t kColChunk = 8;
  parallel_for(Vertex{0}, n, [&](Vertex u) {
    const auto uz = static_cast<std::size_t>(u);
    const auto nbrs = csr_.neighbors(u);
    const auto ws = csr_.weights(u);
    const double wdeg = csr_.weighted_degree(u);
    for (std::size_t c0 = 0; c0 < k; c0 += kColChunk) {
      const std::size_t cw = std::min(kColChunk, k - c0);
      double acc[kColChunk];
      for (std::size_t cc = 0; cc < cw; ++cc) {
        acc[cc] = wdeg * xd[(c0 + cc) * nz + uz];
      }
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        const auto t = static_cast<std::size_t>(nbrs[e]);
        const double we = ws[e];
        for (std::size_t cc = 0; cc < cw; ++cc) {
          acc[cc] -= we * xd[(c0 + cc) * nz + t];
        }
      }
      for (std::size_t cc = 0; cc < cw; ++cc) {
        yd[(c0 + cc) * nz + uz] = acc[cc];
      }
    }
  });
}

double LaplacianOperator::quadratic_form(std::span<const double> x) const {
  // Summed edge-wise: exactly non-negative, unlike x' (Lx) which can go
  // negative by rounding near the kernel.
  const Vertex n = dimension();
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(n));
  return 0.5 * deterministic_sum(n, [&](std::int64_t ui) {
           const auto u = static_cast<Vertex>(ui);
           const auto nbrs = csr_.neighbors(u);
           const auto ws = csr_.weights(u);
           double acc = 0.0;
           for (std::size_t k = 0; k < nbrs.size(); ++k) {
             const double d = x[static_cast<std::size_t>(u)] -
                              x[static_cast<std::size_t>(nbrs[k])];
             acc += ws[k] * d * d;
           }
           return acc;
         });
}

double LaplacianOperator::laplacian_norm(std::span<const double> x) const {
  return std::sqrt(quadratic_form(x));
}

}  // namespace parlap
