// Panel — a column-major n x k block of right-hand sides / solutions.
//
// The multi-RHS unit of the blocked solve path: one chain traversal (or
// Laplacian apply) serves every column of a panel, amortizing the CSR
// index arrays, the gather/scatter lists, and the parallel-region
// launches across k systems. Columns are contiguous (leading dimension =
// rows), so every per-column reduction (norm2, dot, project_out_ones)
// runs on exactly the memory layout the k=1 path sees — which is what
// makes panel results bit-identical, column for column, to a sequential
// loop of single-RHS solves at any block width and thread count.
//
// The kernels below are "blocked" in the row-major traversal sense: one
// parallel pass over rows with a short inner loop over columns. Each
// column's arithmetic is independent and ordered exactly as the scalar
// kernel orders it, so blocking changes memory traffic, never bits.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "support/types.hpp"

namespace parlap {

/// Column-major rows x cols matrix of doubles; column c is the
/// contiguous range data()[c*rows .. (c+1)*rows).
class Panel {
 public:
  Panel() = default;
  Panel(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Resizes without preserving contents (buffers are recycled across
  /// uses; callers overwrite before reading).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::span<double> col(std::size_t c) noexcept {
    return {data_.data() + c * rows_, rows_};
  }
  [[nodiscard]] std::span<const double> col(std::size_t c) const noexcept {
    return {data_.data() + c * rows_, rows_};
  }

  [[nodiscard]] double& at(std::size_t i, std::size_t c) noexcept {
    return data_[c * rows_ + i];
  }
  [[nodiscard]] double at(std::size_t i, std::size_t c) const noexcept {
    return data_[c * rows_ + i];
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// dst <- one column per entry of `bs` (all must share bs[0]'s size).
void panel_from_vectors(std::span<const Vector> bs, Panel& dst);

/// xs[c] <- column c (each xs[c] is resized to src.rows()).
void panel_to_vectors(const Panel& src, std::span<Vector> xs);

void panel_fill(Panel& p, double value);

/// dst = src (shapes must match).
void panel_assign(Panel& dst, const Panel& src);

/// y.col(c) += a * x.col(c) for every column with mask[c] != 0 (an empty
/// mask means all columns). One pass over rows serving every column.
void panel_axpy(double a, const Panel& x, Panel& y,
                std::span<const unsigned char> mask = {});

/// out[c] = ||p.col(c)||_2, via the deterministic chunked norm2 — per
/// column bit-identical to norm2 on a standalone vector.
void panel_col_norms(const Panel& p, std::span<double> out);

/// out[c] = <a.col(c), b.col(c)> (deterministic per column).
void panel_col_dots(const Panel& a, const Panel& b, std::span<double> out);

/// dst(i, c) = src(rows[i], c): one indexed gather serving k columns.
void panel_gather_rows(const Panel& src, std::span<const Vertex> rows,
                       Panel& dst);

/// dst(rows[i], c) = src(i, c): the inverse scatter.
void panel_scatter_rows(const Panel& src, std::span<const Vertex> rows,
                        Panel& dst);

/// Kernel projection per column: col -= mean(col). Identical to
/// project_out_ones on each column.
void panel_project_out_ones(Panel& p);

}  // namespace parlap
