#include "linalg/panel.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/kernels/kernels.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"

namespace parlap {

namespace {

/// Per-column deterministic dots with the exact chunked_sum structure of
/// vector_ops (kReductionChunk rows per chunk, chunk partials folded in
/// chunk order, serial below one chunk), so panel_col_dots equals
/// dot(col, col) bit-for-bit at every dispatch level. Within a chunk the
/// dispatched kernel accumulates each column in row order (lane =
/// column).
void col_dots_chunked(const double* a, const double* b, std::size_t n,
                      std::size_t k, double* out) {
  const kernels::KernelTable& kt = kernels::active();
  constexpr std::size_t kChunk = kernels::kReductionChunk;
  if (n < kChunk) {
    kt.chunk_dots(a, b, 0, n, n, k, out);
    return;
  }
  const std::size_t chunks = (n + kChunk - 1) / kChunk;
  std::vector<double> partial(chunks * k);
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < static_cast<std::int64_t>(chunks); ++c) {
    const std::size_t lo = static_cast<std::size_t>(c) * kChunk;
    const std::size_t hi = std::min(n, lo + kChunk);
    kt.chunk_dots(a, b, lo, hi, n, k,
                  partial.data() + static_cast<std::size_t>(c) * k);
  }
  for (std::size_t c = 0; c < k; ++c) {
    double total = 0.0;
    for (std::size_t ch = 0; ch < chunks; ++ch) total += partial[ch * k + c];
    out[c] = total;
  }
}

}  // namespace

void panel_from_vectors(std::span<const Vector> bs, Panel& dst) {
  PARLAP_CHECK(!bs.empty());
  const std::size_t n = bs.front().size();
  dst.resize(n, bs.size());
  for (std::size_t c = 0; c < bs.size(); ++c) {
    PARLAP_CHECK_MSG(bs[c].size() == n,
                     "panel columns must agree: column " << c << " has "
                         << bs[c].size() << " rows, column 0 has " << n);
    std::copy(bs[c].begin(), bs[c].end(), dst.col(c).begin());
  }
}

void panel_to_vectors(const Panel& src, std::span<Vector> xs) {
  PARLAP_CHECK(xs.size() == src.cols());
  for (std::size_t c = 0; c < src.cols(); ++c) {
    const auto col = src.col(c);
    xs[c].assign(col.begin(), col.end());
  }
}

void panel_fill(Panel& p, double value) {
  std::fill(p.data(), p.data() + p.rows() * p.cols(), value);
}

void panel_assign(Panel& dst, const Panel& src) {
  PARLAP_CHECK(dst.rows() == src.rows() && dst.cols() == src.cols());
  std::copy(src.data(), src.data() + src.rows() * src.cols(), dst.data());
}

void panel_axpy(double a, const Panel& x, Panel& y,
                std::span<const unsigned char> mask) {
  PARLAP_CHECK(x.rows() == y.rows() && x.cols() == y.cols());
  PARLAP_CHECK(mask.empty() || mask.size() == x.cols());
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  const double* xd = x.data();
  double* yd = y.data();
  const kernels::KernelTable& kt = kernels::active();
  const unsigned char* m = mask.empty() ? nullptr : mask.data();
  kernels::for_row_blocks(n, [&](std::size_t lo, std::size_t hi) {
    kt.axpy_cols(a, xd, yd, lo, hi, n, k, m);
  });
}

void panel_col_norms(const Panel& p, std::span<double> out) {
  PARLAP_CHECK(out.size() == p.cols());
  col_dots_chunked(p.data(), p.data(), p.rows(), p.cols(), out.data());
  for (std::size_t c = 0; c < p.cols(); ++c) out[c] = std::sqrt(out[c]);
}

void panel_col_dots(const Panel& a, const Panel& b, std::span<double> out) {
  PARLAP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  PARLAP_CHECK(out.size() == a.cols());
  col_dots_chunked(a.data(), b.data(), a.rows(), a.cols(), out.data());
}

void panel_gather_rows(const Panel& src, std::span<const Vertex> rows,
                       Panel& dst) {
  dst.resize(rows.size(), src.cols());
  const std::size_t n = src.rows();
  const std::size_t m = rows.size();
  const std::size_t k = src.cols();
  const double* sd = src.data();
  double* dd = dst.data();
  const kernels::KernelTable& kt = kernels::active();
  kernels::for_row_blocks(m, [&](std::size_t lo, std::size_t hi) {
    kt.gather_rows(sd, n, rows.data(), lo, hi, m, k, dd);
  });
}

void panel_scatter_rows(const Panel& src, std::span<const Vertex> rows,
                        Panel& dst) {
  PARLAP_CHECK(src.rows() == rows.size() && src.cols() == dst.cols());
  const std::size_t n = dst.rows();
  const std::size_t m = rows.size();
  const std::size_t k = src.cols();
  const double* sd = src.data();
  double* dd = dst.data();
  const kernels::KernelTable& kt = kernels::active();
  kernels::for_row_blocks(m, [&](std::size_t lo, std::size_t hi) {
    kt.scatter_rows(sd, m, rows.data(), lo, hi, n, k, dd);
  });
}

void panel_project_out_ones(Panel& p) {
  for (std::size_t c = 0; c < p.cols(); ++c) project_out_ones(p.col(c));
}

}  // namespace parlap
