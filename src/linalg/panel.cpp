#include "linalg/panel.hpp"

#include <algorithm>

#include "parallel/for_each.hpp"
#include "support/check.hpp"

namespace parlap {

void panel_from_vectors(std::span<const Vector> bs, Panel& dst) {
  PARLAP_CHECK(!bs.empty());
  const std::size_t n = bs.front().size();
  dst.resize(n, bs.size());
  for (std::size_t c = 0; c < bs.size(); ++c) {
    PARLAP_CHECK_MSG(bs[c].size() == n,
                     "panel columns must agree: column " << c << " has "
                         << bs[c].size() << " rows, column 0 has " << n);
    std::copy(bs[c].begin(), bs[c].end(), dst.col(c).begin());
  }
}

void panel_to_vectors(const Panel& src, std::span<Vector> xs) {
  PARLAP_CHECK(xs.size() == src.cols());
  for (std::size_t c = 0; c < src.cols(); ++c) {
    const auto col = src.col(c);
    xs[c].assign(col.begin(), col.end());
  }
}

void panel_fill(Panel& p, double value) {
  std::fill(p.data(), p.data() + p.rows() * p.cols(), value);
}

void panel_assign(Panel& dst, const Panel& src) {
  PARLAP_CHECK(dst.rows() == src.rows() && dst.cols() == src.cols());
  std::copy(src.data(), src.data() + src.rows() * src.cols(), dst.data());
}

void panel_axpy(double a, const Panel& x, Panel& y,
                std::span<const unsigned char> mask) {
  PARLAP_CHECK(x.rows() == y.rows() && x.cols() == y.cols());
  PARLAP_CHECK(mask.empty() || mask.size() == x.cols());
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  const double* xd = x.data();
  double* yd = y.data();
  parallel_for(std::size_t{0}, n, [&](std::size_t i) {
    for (std::size_t c = 0; c < k; ++c) {
      if (!mask.empty() && mask[c] == 0) continue;
      yd[c * n + i] += a * xd[c * n + i];
    }
  });
}

void panel_col_norms(const Panel& p, std::span<double> out) {
  PARLAP_CHECK(out.size() == p.cols());
  for (std::size_t c = 0; c < p.cols(); ++c) out[c] = norm2(p.col(c));
}

void panel_col_dots(const Panel& a, const Panel& b, std::span<double> out) {
  PARLAP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  PARLAP_CHECK(out.size() == a.cols());
  for (std::size_t c = 0; c < a.cols(); ++c) out[c] = dot(a.col(c), b.col(c));
}

void panel_gather_rows(const Panel& src, std::span<const Vertex> rows,
                       Panel& dst) {
  dst.resize(rows.size(), src.cols());
  const std::size_t n = src.rows();
  const std::size_t m = rows.size();
  const std::size_t k = src.cols();
  const double* sd = src.data();
  double* dd = dst.data();
  parallel_for(std::size_t{0}, m, [&](std::size_t i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    for (std::size_t c = 0; c < k; ++c) dd[c * m + i] = sd[c * n + r];
  });
}

void panel_scatter_rows(const Panel& src, std::span<const Vertex> rows,
                        Panel& dst) {
  PARLAP_CHECK(src.rows() == rows.size() && src.cols() == dst.cols());
  const std::size_t n = dst.rows();
  const std::size_t m = rows.size();
  const std::size_t k = src.cols();
  const double* sd = src.data();
  double* dd = dst.data();
  parallel_for(std::size_t{0}, m, [&](std::size_t i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    for (std::size_t c = 0; c < k; ++c) dd[c * n + r] = sd[c * m + i];
  });
}

void panel_project_out_ones(Panel& p) {
  for (std::size_t c = 0; c < p.cols(); ++c) project_out_ones(p.col(c));
}

}  // namespace parlap
