#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace parlap {

DenseMatrix DenseMatrix::identity(int n) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  PARLAP_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (int j = 0; j < other.cols_; ++j) out(i, j) += a * other(k, j);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::add(const DenseMatrix& other, double s) const {
  PARLAP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  DenseMatrix out = *this;
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out(i, j) += s * other(i, j);
  return out;
}

Vector DenseMatrix::apply(std::span<const double> x) const {
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(cols_));
  Vector y(static_cast<std::size_t>(rows_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (int j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

double DenseMatrix::frobenius_norm() const {
  double s = 0.0;
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) s += (*this)(i, j) * (*this)(i, j);
  return std::sqrt(s);
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  PARLAP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double d = 0.0;
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j)
      d = std::max(d, std::abs((*this)(i, j) - other(i, j)));
  return d;
}

void DenseMatrix::symmetrize() {
  PARLAP_CHECK(rows_ == cols_);
  for (int i = 0; i < rows_; ++i)
    for (int j = i + 1; j < cols_; ++j) {
      const double v = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = v;
      (*this)(j, i) = v;
    }
}

EigenDecomposition symmetric_eigen(DenseMatrix a, int max_sweeps) {
  const int n = a.rows();
  PARLAP_CHECK(n == a.cols());
  DenseMatrix v = DenseMatrix::identity(n);

  auto off_norm = [&]() {
    double s = 0.0;
    for (int p = 0; p < n; ++p)
      for (int q = p + 1; q < n; ++q) s += a(p, q) * a(p, q);
    return std::sqrt(2.0 * s);
  };
  const double scale0 = std::max(a.frobenius_norm(), 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= 1e-14 * scale0) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        // Classical symmetric Jacobi rotation annihilating a(p, q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return a(i, i) < a(j, j); });
  EigenDecomposition out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = DenseMatrix(n, n);
  for (int j = 0; j < n; ++j) {
    out.values[static_cast<std::size_t>(j)] = a(order[static_cast<std::size_t>(j)],
                                                order[static_cast<std::size_t>(j)]);
    for (int i = 0; i < n; ++i)
      out.vectors(i, j) = v(i, order[static_cast<std::size_t>(j)]);
  }
  return out;
}

DenseMatrix pseudo_inverse(const DenseMatrix& a, double rel_tol) {
  const EigenDecomposition eig = symmetric_eigen(a);
  const int n = a.rows();
  double max_abs = 0.0;
  for (const double lambda : eig.values) max_abs = std::max(max_abs, std::abs(lambda));
  const double cutoff = rel_tol * std::max(max_abs, 1e-300);
  DenseMatrix out(n, n);
  for (int k = 0; k < n; ++k) {
    const double lambda = eig.values[static_cast<std::size_t>(k)];
    if (std::abs(lambda) <= cutoff) continue;
    const double inv = 1.0 / lambda;
    for (int i = 0; i < n; ++i) {
      const double vik = eig.vectors(i, k);
      if (vik == 0.0) continue;
      for (int j = 0; j < n; ++j) out(i, j) += inv * vik * eig.vectors(j, k);
    }
  }
  return out;
}

DenseMatrix cholesky_factor(const DenseMatrix& a) {
  const int n = a.rows();
  PARLAP_CHECK(n == a.cols());
  DenseMatrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    PARLAP_CHECK_MSG(d > 0.0, "matrix not positive definite (pivot " << j
                                                                     << ")");
    l(j, j) = std::sqrt(d);
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Vector cholesky_solve(const DenseMatrix& chol, std::span<const double> b) {
  const int n = chol.rows();
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(n));
  Vector y(b.begin(), b.end());
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < i; ++k) y[static_cast<std::size_t>(i)] -= chol(i, k) * y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] /= chol(i, i);
  }
  for (int i = n - 1; i >= 0; --i) {
    for (int k = i + 1; k < n; ++k) y[static_cast<std::size_t>(i)] -= chol(k, i) * y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] /= chol(i, i);
  }
  return y;
}

DenseMatrix laplacian_dense(MultigraphView g) {
  const int n = g.num_vertices();
  DenseMatrix l(n, n);
  const EdgeId m = g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    const int u = g.edge_u(e);
    const int v = g.edge_v(e);
    const double w = g.edge_weight(e);
    l(u, u) += w;
    l(v, v) += w;
    l(u, v) -= w;
    l(v, u) -= w;
  }
  return l;
}

DenseMatrix schur_complement_dense(const DenseMatrix& m,
                                   std::span<const Vertex> keep) {
  const int n = m.rows();
  std::vector<bool> in_keep(static_cast<std::size_t>(n), false);
  for (const Vertex c : keep) {
    PARLAP_CHECK(c >= 0 && c < n);
    in_keep[static_cast<std::size_t>(c)] = true;
  }
  std::vector<Vertex> elim;
  for (Vertex i = 0; i < n; ++i)
    if (!in_keep[static_cast<std::size_t>(i)]) elim.push_back(i);
  const int nf = static_cast<int>(elim.size());
  const int nc = static_cast<int>(keep.size());

  DenseMatrix mff(nf, nf);
  DenseMatrix mfc(nf, nc);
  DenseMatrix out(nc, nc);
  for (int i = 0; i < nf; ++i)
    for (int j = 0; j < nf; ++j)
      mff(i, j) = m(elim[static_cast<std::size_t>(i)], elim[static_cast<std::size_t>(j)]);
  for (int i = 0; i < nf; ++i)
    for (int j = 0; j < nc; ++j)
      mfc(i, j) = m(elim[static_cast<std::size_t>(i)], keep[static_cast<std::size_t>(j)]);
  for (int i = 0; i < nc; ++i)
    for (int j = 0; j < nc; ++j)
      out(i, j) = m(keep[static_cast<std::size_t>(i)], keep[static_cast<std::size_t>(j)]);
  if (nf == 0) return out;

  // SC = M_CC - M_CF M_FF^{-1} M_FC; M_FF of a connected Laplacian with
  // nonempty C is PD, so Cholesky applies.
  const DenseMatrix chol = cholesky_factor(mff);
  for (int j = 0; j < nc; ++j) {
    Vector col(static_cast<std::size_t>(nf));
    for (int i = 0; i < nf; ++i) col[static_cast<std::size_t>(i)] = mfc(i, j);
    const Vector x = cholesky_solve(chol, col);
    for (int i = 0; i < nc; ++i) {
      double acc = 0.0;
      for (int k = 0; k < nf; ++k) acc += mfc(k, i) * x[static_cast<std::size_t>(k)];
      out(i, j) -= acc;
    }
  }
  DenseMatrix sym = out;
  sym.symmetrize();
  return sym;
}

Vector leverage_scores_dense(const Multigraph& g) {
  const DenseMatrix pinv = pseudo_inverse(laplacian_dense(g));
  const EdgeId m = g.num_edges();
  Vector tau(static_cast<std::size_t>(m));
  for (EdgeId e = 0; e < m; ++e) {
    const int u = g.edge_u(e);
    const int v = g.edge_v(e);
    const double r = pinv(u, u) + pinv(v, v) - 2.0 * pinv(u, v);
    tau[static_cast<std::size_t>(e)] = g.edge_weight(e) * r;
  }
  return tau;
}

SpectralBounds relative_spectral_bounds(const DenseMatrix& a,
                                        const DenseMatrix& b,
                                        double kernel_tol) {
  const int n = a.rows();
  PARLAP_CHECK(n == a.cols() && n == b.rows() && n == b.cols());
  const EigenDecomposition eb = symmetric_eigen(b);
  double max_abs = 0.0;
  for (const double lambda : eb.values) max_abs = std::max(max_abs, std::abs(lambda));
  const double cutoff = kernel_tol * std::max(max_abs, 1e-300);

  std::vector<int> range_idx;
  SpectralBounds out;
  for (int k = 0; k < n; ++k) {
    if (std::abs(eb.values[static_cast<std::size_t>(k)]) > cutoff) {
      range_idx.push_back(k);
    } else {
      // Leakage of A on ker(B): |v' A v| should be ~0.
      Vector v(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = eb.vectors(i, k);
      const Vector av = a.apply(v);
      out.kernel_leakage = std::max(out.kernel_leakage, std::abs(dot(v, av)));
    }
  }
  const int r = static_cast<int>(range_idx.size());
  if (r == 0) return out;

  // S = Lambda_r^{-1/2} V_r' A V_r Lambda_r^{-1/2}.
  DenseMatrix vr(n, r);
  for (int j = 0; j < r; ++j) {
    const int k = range_idx[static_cast<std::size_t>(j)];
    const double scl = 1.0 / std::sqrt(eb.values[static_cast<std::size_t>(k)]);
    PARLAP_CHECK_MSG(eb.values[static_cast<std::size_t>(k)] > 0.0,
                     "relative bounds require PSD B");
    for (int i = 0; i < n; ++i) vr(i, j) = eb.vectors(i, k) * scl;
  }
  DenseMatrix s = vr.transpose().multiply(a.multiply(vr));
  s.symmetrize();
  const EigenDecomposition es = symmetric_eigen(std::move(s));
  out.lo = es.values.front();
  out.hi = es.values.back();
  return out;
}

bool is_eps_approximation(const DenseMatrix& a, const DenseMatrix& b,
                          double eps, double tol) {
  const SpectralBounds sb = relative_spectral_bounds(a, b);
  if (sb.kernel_leakage > tol) return false;
  return sb.lo >= std::exp(-eps) - tol && sb.hi <= std::exp(eps) + tol;
}

}  // namespace parlap
