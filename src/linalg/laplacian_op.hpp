// Matrix-free application of a graph Laplacian.
//
// (L x)_u = w(u) x_u - sum_{e=(u,v)} w(e) x_v, computed row-wise over the
// CSR adjacency: O(m) work, O(log m) depth (each row's sum is an
// independent reduction), matching the remark in the proof of Thm 3.10.
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "linalg/panel.hpp"
#include "linalg/vector_ops.hpp"

namespace parlap {

class LaplacianOperator {
 public:
  /// Empty operator (dimension 0); assign before use.
  LaplacianOperator() = default;
  explicit LaplacianOperator(const Multigraph& g) : csr_(g) {}
  explicit LaplacianOperator(CsrGraph csr) : csr_(std::move(csr)) {}

  [[nodiscard]] Vertex dimension() const noexcept { return csr_.num_vertices(); }
  [[nodiscard]] EdgeId num_multi_edges() const noexcept { return csr_.num_edges(); }
  [[nodiscard]] const CsrGraph& csr() const noexcept { return csr_; }

  /// y = L x (parallel over rows).
  void apply(std::span<const double> x, std::span<double> y) const;

  /// Blocked multiply: y.col(c) = L x.col(c) for every column, one CSR
  /// traversal for the whole panel. Column c is bit-identical to
  /// apply() on x.col(c). y is resized to x's shape.
  void apply(const Panel& x, Panel& y) const;

  /// Returns L x.
  [[nodiscard]] Vector apply(std::span<const double> x) const {
    Vector y(static_cast<std::size_t>(dimension()));
    apply(x, y);
    return y;
  }

  /// Quadratic form x' L x = sum_e w(e) (x_u - x_v)^2 >= 0.
  [[nodiscard]] double quadratic_form(std::span<const double> x) const;

  /// Energy norm ||x||_L.
  [[nodiscard]] double laplacian_norm(std::span<const double> x) const;

 private:
  CsrGraph csr_;
};

}  // namespace parlap
