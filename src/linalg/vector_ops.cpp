#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/for_each.hpp"
#include "support/check.hpp"

namespace parlap {

namespace {

/// Deterministic parallel reduction over [0, n): fixed chunks, partials
/// folded in chunk order.
template <typename Map>
double chunked_sum(std::int64_t n, Map&& map) {
  constexpr std::int64_t kChunk = 1 << 14;
  if (n < kChunk) {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) s += map(i);
    return s;
  }
  const std::int64_t chunks = (n + kChunk - 1) / kChunk;
  std::vector<double> partial(static_cast<std::size_t>(chunks));
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = c * kChunk;
    const std::int64_t hi = std::min(n, lo + kChunk);
    double s = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) s += map(i);
    partial[static_cast<std::size_t>(c)] = s;
  }
  double total = 0.0;
  for (const double p : partial) total += p;
  return total;
}

}  // namespace

double dot(std::span<const double> x, std::span<const double> y) {
  PARLAP_CHECK(x.size() == y.size());
  return chunked_sum(static_cast<std::int64_t>(x.size()), [&](std::int64_t i) {
    return x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  });
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double sum(std::span<const double> x) {
  return chunked_sum(static_cast<std::int64_t>(x.size()),
                     [&](std::int64_t i) { return x[static_cast<std::size_t>(i)]; });
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  PARLAP_CHECK(x.size() == y.size());
  parallel_for(std::size_t{0}, x.size(),
               [&](std::size_t i) { y[i] += a * x[i]; });
}

void scale(std::span<double> x, double a) {
  parallel_for(std::size_t{0}, x.size(), [&](std::size_t i) { x[i] *= a; });
}

void assign(std::span<double> dst, std::span<const double> src) {
  PARLAP_CHECK(dst.size() == src.size());
  parallel_for(std::size_t{0}, dst.size(),
               [&](std::size_t i) { dst[i] = src[i]; });
}

void fill(std::span<double> x, double value) {
  parallel_for(std::size_t{0}, x.size(), [&](std::size_t i) { x[i] = value; });
}

void project_out_ones(std::span<double> x) {
  if (x.empty()) return;
  const double mean = sum(x) / static_cast<double>(x.size());
  parallel_for(std::size_t{0}, x.size(), [&](std::size_t i) { x[i] -= mean; });
}

void project_out_ones_per_component(std::span<double> x,
                                    std::span<const Vertex> label,
                                    Vertex num_components) {
  PARLAP_CHECK(x.size() == label.size());
  std::vector<double> comp_sum(static_cast<std::size_t>(num_components), 0.0);
  std::vector<std::int64_t> comp_size(static_cast<std::size_t>(num_components), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    comp_sum[static_cast<std::size_t>(label[i])] += x[i];
    ++comp_size[static_cast<std::size_t>(label[i])];
  }
  parallel_for(std::size_t{0}, x.size(), [&](std::size_t i) {
    const auto c = static_cast<std::size_t>(label[i]);
    x[i] -= comp_sum[c] / static_cast<double>(comp_size[c]);
  });
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  PARLAP_CHECK(x.size() == y.size());
  return parallel_reduce(
      std::size_t{0}, x.size(), 0.0,
      [&](std::size_t i) { return std::abs(x[i] - y[i]); },
      [](double a, double b) { return std::max(a, b); });
}

double deterministic_sum(std::int64_t n,
                         const std::function<double(std::int64_t)>& map) {
  return chunked_sum(n, [&](std::int64_t i) { return map(i); });
}

}  // namespace parlap
