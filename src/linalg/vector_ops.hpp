// Parallel dense vector kernels.
//
// Reductions use fixed-chunk per-thread partials folded in thread order, so
// results are bit-identical across runs at a given thread count and
// numerically stable across thread counts.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace parlap {

using Vector = std::vector<double>;

[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);
[[nodiscard]] double norm2(std::span<const double> x);
[[nodiscard]] double sum(std::span<const double> x);

/// y += a * x
void axpy(double a, std::span<const double> x, std::span<double> y);
/// x *= a
void scale(std::span<double> x, double a);
/// dst = src
void assign(std::span<double> dst, std::span<const double> src);
void fill(std::span<double> x, double value);

/// Projects out the all-ones kernel direction: x -= mean(x). For connected
/// Laplacians this maps x to the range of L.
void project_out_ones(std::span<double> x);

/// Projects out ones per component: x_i -= mean over component(label_i).
void project_out_ones_per_component(std::span<double> x,
                                    std::span<const Vertex> label,
                                    Vertex num_components);

/// max_i |x_i - y_i|
[[nodiscard]] double max_abs_diff(std::span<const double> x,
                                  std::span<const double> y);

/// Deterministic parallel sum of map(i) over [0, n): fixed-size chunks
/// accumulated independently and folded in chunk order, so the result is
/// bit-identical for every thread count. Use this (never an ad-hoc OpenMP
/// reduction) whenever a float sum can influence control flow.
double deterministic_sum(std::int64_t n,
                         const std::function<double(std::int64_t)>& map);

}  // namespace parlap
