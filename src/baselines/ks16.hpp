// Kyng-Sachdeva (FOCS 2016) sequential approximate Cholesky baseline.
//
// This is the solver the paper extends: eliminate vertices one at a time
// in uniformly random order; instead of the full clique that exact
// elimination adds, sample one edge per incident multi-edge — pick
// neighbor z with probability w(v,z)/deg(v) and add (u, z) with weight
// w(v,u) w(v,z) / (w(v,u) + w(v,z)), which reproduces the clique in
// expectation. The resulting approximate LDL' factors precondition CG.
//
// Inherently sequential (each elimination depends on all previous ones) —
// the contrast the paper's abstract draws, regenerated in bench E3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/cg.hpp"
#include "graph/multigraph.hpp"
#include "linalg/laplacian_op.hpp"

namespace parlap {

/// Tuning knobs for the KS16 baseline.
struct Ks16Options {
  std::uint64_t seed = 42;  ///< elimination order + clique sampling
  /// Edge copies = max(1, ceil(split_scale * ceil(log2 n)^2)), matching
  /// the main solver's knob for a like-for-like comparison.
  double split_scale = 1.0;
  int cg_max_iterations = 0;
};

/// Sequential approximate Cholesky factorization used as a PCG
/// preconditioner — the solver the paper parallelizes.
class Ks16Solver {
 public:
  /// Factorizes immediately; requires a connected graph.
  explicit Ks16Solver(const Multigraph& g, Ks16Options opts = {});

  /// Solves L x = b to relative residual eps via PCG with the approximate
  /// LDL' preconditioner.
  IterationStats solve(std::span<const double> b, std::span<double> x,
                       double eps) const;

  /// x = (L D L')^+ b (forward solve, diagonal, backward solve).
  void apply_preconditioner(std::span<const double> b,
                            std::span<double> x) const;

  [[nodiscard]] EdgeId factor_entries() const noexcept;
  [[nodiscard]] Vertex dimension() const noexcept { return n_; }

 private:
  struct Column {
    double degree = 0.0;                        ///< d_v at elimination
    std::vector<std::pair<Vertex, Weight>> nz;  ///< surviving neighbors
  };

  Vertex n_ = 0;
  std::vector<Vertex> order_;    ///< elimination order
  std::vector<Column> columns_;  ///< indexed by vertex id
  LaplacianOperator op_;
  Ks16Options opts_;
};

}  // namespace parlap
