// Exact O(n) solver for tree Laplacians.
//
// A spanning tree T of G is the classic support-graph preconditioner
// (Vaidya; the line of work the paper's §1 contrasts with): T's
// Laplacian pseudo-inverse is applied exactly in linear time by one
// leaf-to-root flow accumulation and one root-to-leaf potential sweep.
// Paired with sample_spanning_tree() this backs the "cg-tree" baseline
// method in the solver registry (PCG on L preconditioned by T^+).
#pragma once

#include <span>
#include <vector>

#include "graph/multigraph.hpp"
#include "support/types.hpp"

namespace parlap {

/// Factor-once exact solver for a connected tree's Laplacian. The
/// constructor takes the tree (exactly n-1 multi-edges, connected; throws
/// otherwise) and records a BFS elimination order; solve() then applies
/// T^+ in O(n) sequential time.
class TreeSolver {
 public:
  /// Requires `tree` connected with exactly n-1 edges; throws otherwise.
  explicit TreeSolver(const Multigraph& tree);

  /// x = T^+ b: the mean of b is projected out (kernel of T), the exact
  /// tree system is solved, and x is returned mean-free. b and x must
  /// have size dimension(); they may alias.
  void solve(std::span<const double> b, std::span<double> x) const;

  [[nodiscard]] Vertex dimension() const noexcept { return n_; }

 private:
  Vertex n_ = 0;
  std::vector<Vertex> order_;    ///< BFS order, root (vertex 0) first
  std::vector<Vertex> parent_;   ///< BFS parent; -1 at the root
  std::vector<Weight> parent_w_;  ///< weight of the edge to the parent
};

}  // namespace parlap
