#include "baselines/cg.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/for_each.hpp"
#include "support/check.hpp"

namespace parlap {

namespace {

IterationStats cg_impl(const LaplacianOperator& a, const LinearMap* precond,
                       std::span<const double> b, std::span<double> x,
                       double tol, const CgOptions& opts) {
  const std::size_t n = b.size();
  PARLAP_CHECK(x.size() == n);
  IterationStats stats;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    fill(x, 0.0);
    stats.reached_target = true;
    return stats;
  }
  const int cap = opts.max_iterations > 0
                      ? opts.max_iterations
                      : std::min<int>(20000, 10 * static_cast<int>(n) + 50);

  fill(x, 0.0);
  Vector r(b.begin(), b.end());
  Vector z(n);
  if (precond != nullptr) {
    (*precond)(r, z);
  } else {
    assign(z, r);
  }
  Vector p(z.begin(), z.end());
  Vector ap(n);
  double rz = dot(r, z);

  for (int k = 1; k <= cap; ++k) {
    a.apply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // numerical breakdown on the semidefinite system
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    stats.iterations = k;
    stats.relative_residual = norm2(r) / b_norm;
    if (stats.relative_residual <= tol) {
      stats.reached_target = true;
      break;
    }
    if (precond != nullptr) {
      (*precond)(r, z);
    } else {
      assign(z, r);
    }
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    parallel_for(std::size_t{0}, n,
                 [&](std::size_t i) { p[i] = z[i] + beta * p[i]; });
    rz = rz_new;
  }
  project_out_ones(x);
  return stats;
}

}  // namespace

IterationStats conjugate_gradient(const LaplacianOperator& a,
                                  std::span<const double> b,
                                  std::span<double> x, double tol,
                                  const CgOptions& opts) {
  return cg_impl(a, nullptr, b, x, tol, opts);
}

IterationStats preconditioned_cg(const LaplacianOperator& a,
                                 const LinearMap& precond,
                                 std::span<const double> b,
                                 std::span<double> x, double tol,
                                 const CgOptions& opts) {
  return cg_impl(a, &precond, b, x, tol, opts);
}

LinearMap jacobi_diagonal_preconditioner(const LaplacianOperator& a) {
  Vector inv_diag(static_cast<std::size_t>(a.dimension()));
  for (Vertex v = 0; v < a.dimension(); ++v) {
    const double d = a.csr().weighted_degree(v);
    inv_diag[static_cast<std::size_t>(v)] = d > 0.0 ? 1.0 / d : 0.0;
  }
  return [inv_diag = std::move(inv_diag)](std::span<const double> r,
                                          std::span<double> y) {
    parallel_for(std::size_t{0}, r.size(),
                 [&](std::size_t i) { y[i] = inv_diag[i] * r[i]; });
  };
}

}  // namespace parlap
