// Conjugate gradient baselines.
//
// CG (optionally preconditioned) is the practitioner default the paper's
// introduction positions against: without preconditioning its iteration
// count scales with sqrt(condition number) — Theta(n) on a path/grid —
// whereas the block Cholesky preconditioner makes the iteration count
// O(log 1/eps) independent of the graph. Bench E3 regenerates that
// comparison.
#pragma once

#include <span>

#include "core/richardson.hpp"  // LinearMap, IterationStats
#include "linalg/laplacian_op.hpp"

namespace parlap {

/// Tuning knobs shared by the CG / PCG baselines.
struct CgOptions {
  /// Iteration cap; 0 = min(20000, 10 n).
  int max_iterations = 0;
};

/// Unpreconditioned CG on L x = b (b must be orthogonal to the kernel;
/// callers project). Stops at relative residual `tol`.
IterationStats conjugate_gradient(const LaplacianOperator& a,
                                  std::span<const double> b,
                                  std::span<double> x, double tol,
                                  const CgOptions& opts = {});

/// Preconditioned CG with a symmetric PSD preconditioner M ~ A^+.
IterationStats preconditioned_cg(const LaplacianOperator& a,
                                 const LinearMap& precond,
                                 std::span<const double> b,
                                 std::span<double> x, double tol,
                                 const CgOptions& opts = {});

/// Jacobi (diagonal) preconditioner for `a`: y = D^-1 r.
[[nodiscard]] LinearMap jacobi_diagonal_preconditioner(
    const LaplacianOperator& a);

}  // namespace parlap
