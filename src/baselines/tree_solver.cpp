#include "baselines/tree_solver.hpp"

#include "graph/csr.hpp"
#include "linalg/vector_ops.hpp"
#include "support/check.hpp"

namespace parlap {

TreeSolver::TreeSolver(const Multigraph& tree) : n_(tree.num_vertices()) {
  PARLAP_CHECK_MSG(n_ > 0, "TreeSolver needs a non-empty tree");
  PARLAP_CHECK_MSG(tree.num_edges() == static_cast<EdgeId>(n_) - 1,
                   "tree must have exactly n-1 edges, got "
                       << tree.num_edges() << " for n = " << n_);
  const CsrGraph csr(tree);
  order_.reserve(static_cast<std::size_t>(n_));
  parent_.assign(static_cast<std::size_t>(n_), Vertex{-1});
  parent_w_.assign(static_cast<std::size_t>(n_), Weight{0});
  std::vector<bool> seen(static_cast<std::size_t>(n_), false);
  order_.push_back(0);
  seen[0] = true;
  for (std::size_t head = 0; head < order_.size(); ++head) {
    const Vertex v = order_[head];
    const auto nbrs = csr.neighbors(v);
    const auto wgts = csr.weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const Vertex u = nbrs[k];
      if (seen[static_cast<std::size_t>(u)]) continue;
      seen[static_cast<std::size_t>(u)] = true;
      parent_[static_cast<std::size_t>(u)] = v;
      parent_w_[static_cast<std::size_t>(u)] = wgts[k];
      order_.push_back(u);
    }
  }
  PARLAP_CHECK_MSG(order_.size() == static_cast<std::size_t>(n_),
                   "tree is not connected (" << order_.size() << " of " << n_
                                             << " vertices reachable)");
}

void TreeSolver::solve(std::span<const double> b, std::span<double> x) const {
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(n_) &&
               x.size() == static_cast<std::size_t>(n_));
  // f starts as the projected demand; the leaf-to-root sweep turns f[v]
  // into the subtree demand sum = the flow on v's parent edge.
  Vector f(b.begin(), b.end());
  project_out_ones(f);
  for (std::size_t i = f.size(); i-- > 1;) {
    const Vertex v = order_[i];
    f[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])] +=
        f[static_cast<std::size_t>(v)];
  }
  // Root-to-leaf: potentials from Ohm's law across each parent edge,
  // x_v = x_parent + flow / weight.
  x[static_cast<std::size_t>(order_[0])] = 0.0;
  for (std::size_t i = 1; i < order_.size(); ++i) {
    const auto v = static_cast<std::size_t>(order_[i]);
    x[v] = x[static_cast<std::size_t>(parent_[v])] + f[v] / parent_w_[v];
  }
  project_out_ones(x);
}

}  // namespace parlap
