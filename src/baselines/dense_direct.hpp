// Exact dense pseudo-inverse solver — the ground-truth comparator for
// small instances (tests and the accuracy columns of benches E3/E7).
#pragma once

#include <algorithm>
#include <span>

#include "graph/multigraph.hpp"
#include "linalg/dense.hpp"

namespace parlap {

/// Exact L^+ via a dense eigensolve; O(n^3) setup, O(n^2) per solve.
class DenseDirectSolver {
 public:
  /// Forms and pseudo-inverts the dense Laplacian of `g` immediately.
  explicit DenseDirectSolver(const Multigraph& g)
      : pinv_(pseudo_inverse(laplacian_dense(g))) {}

  /// x = L^+ b (exact up to the eigensolve tolerance).
  void solve(std::span<const double> b, std::span<double> x) const {
    const Vector r = pinv_.apply(b);
    std::copy(r.begin(), r.end(), x.begin());
  }

  [[nodiscard]] const DenseMatrix& pinv() const noexcept { return pinv_; }

 private:
  DenseMatrix pinv_;
};

}  // namespace parlap
