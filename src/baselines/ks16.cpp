#include "baselines/ks16.hpp"

#include <algorithm>
#include <numeric>

#include "core/alpha_bound.hpp"
#include "graph/connectivity.hpp"
#include "parallel/alias_table.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

Ks16Solver::Ks16Solver(const Multigraph& g, Ks16Options opts)
    : n_(g.num_vertices()), op_(g), opts_(opts) {
  PARLAP_CHECK_MSG(is_connected(g), "Ks16Solver requires a connected graph");
  const Multigraph split =
      split_edges_uniform(g, default_split_copies(n_, opts.split_scale));

  // Dynamic adjacency with lazy deletion of edges to eliminated vertices.
  std::vector<std::vector<std::pair<Vertex, Weight>>> adj(
      static_cast<std::size_t>(n_));
  const EdgeId m = split.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    adj[static_cast<std::size_t>(split.edge_u(e))].emplace_back(
        split.edge_v(e), split.edge_weight(e));
    adj[static_cast<std::size_t>(split.edge_v(e))].emplace_back(
        split.edge_u(e), split.edge_weight(e));
  }

  // Uniformly random elimination order (the KS16 requirement).
  order_.resize(static_cast<std::size_t>(n_));
  std::iota(order_.begin(), order_.end(), Vertex{0});
  Rng perm_rng(opts.seed, RngTag::kBaseline, 0);
  for (Vertex i = n_ - 1; i > 0; --i) {
    const auto j = static_cast<Vertex>(
        perm_rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order_[static_cast<std::size_t>(i)],
              order_[static_cast<std::size_t>(j)]);
  }

  std::vector<std::uint8_t> eliminated(static_cast<std::size_t>(n_), 0);
  columns_.resize(static_cast<std::size_t>(n_));
  std::vector<double> weights_scratch;

  for (std::size_t step = 0; step < order_.size(); ++step) {
    const Vertex v = order_[step];
    auto& list = adj[static_cast<std::size_t>(v)];
    // Compact: drop stale entries (edges consumed by earlier eliminations).
    std::erase_if(list, [&](const std::pair<Vertex, Weight>& p) {
      return eliminated[static_cast<std::size_t>(p.first)] != 0;
    });
    eliminated[static_cast<std::size_t>(v)] = 1;

    Column& col = columns_[static_cast<std::size_t>(v)];
    if (list.empty()) {
      adj[static_cast<std::size_t>(v)].clear();
      adj[static_cast<std::size_t>(v)].shrink_to_fit();
      continue;
    }
    double degree = 0.0;
    for (const auto& [u, w] : list) degree += w;
    col.degree = degree;
    col.nz.assign(list.begin(), list.end());

    // CliqueSample: per incident multi-edge (v,u), pick (v,z) w.p. w_z/d;
    // add (u,z) with the harmonic weight; skip when z == u (self pair).
    weights_scratch.resize(list.size());
    for (std::size_t i = 0; i < list.size(); ++i) {
      weights_scratch[i] = list[i].second;
    }
    const AliasTable table(weights_scratch);
    Rng rng(opts_.seed, RngTag::kBaseline,
            0x4B533136ull ^ static_cast<std::uint64_t>(v));
    for (std::size_t i = 0; i < list.size(); ++i) {
      const auto j = static_cast<std::size_t>(table.sample(rng));
      const auto [u, wu] = list[i];
      const auto [z, wz] = list[j];
      if (u == z) continue;
      const double w_new = wu * wz / (wu + wz);
      adj[static_cast<std::size_t>(u)].emplace_back(z, w_new);
      adj[static_cast<std::size_t>(z)].emplace_back(u, w_new);
    }
    adj[static_cast<std::size_t>(v)].clear();
    adj[static_cast<std::size_t>(v)].shrink_to_fit();
  }
}

void Ks16Solver::apply_preconditioner(std::span<const double> b,
                                      std::span<double> x) const {
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(n_));
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(n_));
  // Forward: y = L^-1 b with unit lower-triangular L, column v holding
  // entries -w/d_v at its (then-)neighbors.
  Vector y(b.begin(), b.end());
  for (const Vertex v : order_) {
    const Column& col = columns_[static_cast<std::size_t>(v)];
    if (col.degree <= 0.0) continue;
    const double yv = y[static_cast<std::size_t>(v)];
    for (const auto& [u, w] : col.nz) {
      y[static_cast<std::size_t>(u)] += (w / col.degree) * yv;
    }
  }
  // Diagonal: z = D^+ y.
  for (Vertex v = 0; v < n_; ++v) {
    const double d = columns_[static_cast<std::size_t>(v)].degree;
    y[static_cast<std::size_t>(v)] = d > 0.0 ? y[static_cast<std::size_t>(v)] / d : 0.0;
  }
  // Backward: x = L^-T z, reverse elimination order.
  for (std::size_t step = order_.size(); step-- > 0;) {
    const Vertex v = order_[step];
    const Column& col = columns_[static_cast<std::size_t>(v)];
    if (col.degree <= 0.0) continue;
    double acc = y[static_cast<std::size_t>(v)];
    for (const auto& [u, w] : col.nz) {
      acc += (w / col.degree) * y[static_cast<std::size_t>(u)];
    }
    y[static_cast<std::size_t>(v)] = acc;
  }
  std::copy(y.begin(), y.end(), x.begin());
  project_out_ones(x);
}

IterationStats Ks16Solver::solve(std::span<const double> b,
                                 std::span<double> x, double eps) const {
  Vector b_proj(b.begin(), b.end());
  project_out_ones(b_proj);
  const LinearMap precond = [this](std::span<const double> r,
                                   std::span<double> y) {
    apply_preconditioner(r, y);
  };
  CgOptions cg;
  cg.max_iterations = opts_.cg_max_iterations;
  return preconditioned_cg(op_, precond, b_proj, x, eps, cg);
}

EdgeId Ks16Solver::factor_entries() const noexcept {
  EdgeId total = 0;
  for (const Column& c : columns_) {
    total += static_cast<EdgeId>(c.nz.size());
  }
  return total;
}

}  // namespace parlap
