#include "core/build_arena.hpp"

#include <type_traits>

namespace parlap {

template <typename Fn>
void ChainBuildArena::for_each_capacity(Fn&& fn) const {
  // Fixed enumeration order: begin_build()/end_build() compare positions.
  const auto vec = [&fn](const auto& v) {
    fn(v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  for (const EdgeBuffer& b : bufs_) {
    vec(b.u);
    vec(b.v);
    vec(b.w);
  }
  vec(wdeg);
  vec(degree_partial);
  vec(f_index);
  vec(c_index);
  vec(walk_graph.off);
  vec(walk_graph.nbr);
  vec(walk_graph.w);
  vec(walk_graph.prob);
  vec(walk_graph.alias);
  vec(walk_build.hist);
  vec(walk_build.base);
  vec(walk_sample.out_u);
  vec(walk_sample.out_v);
  vec(walk_sample.out_w);
  vec(walk_sample.keep);
  vec(five_dd.pos);
  vec(five_dd.sample);
  vec(five_dd.partial);
  vec(five_dd.induced);
  vec(extract_hist);
  vec(extract_base);
  // Staging levels are enumerated last: entries appended mid-build land
  // beyond the begin_build() snapshot and are counted as growth.
  for (const EliminationLevel& lvl : level_staging) {
    vec(lvl.f_list);
    vec(lvl.c_list);
    vec(lvl.inv_x);
    vec(lvl.y_diag);
    for (const EliminationLevel::SubCsr* blk : {&lvl.ff, &lvl.fc, &lvl.cf}) {
      vec(blk->off);
      vec(blk->nbr);
      vec(blk->w);
    }
  }
}

void ChainBuildArena::begin_build() {
  // Reset the double-buffer parity so a rebuild assigns level k to the
  // same physical buffer as the previous build; otherwise an odd-depth
  // chain would emit its (largest) level-0 output into the buffer that
  // only ever held the smaller odd levels, forcing a regrow.
  front_ = 0;
  capacity_snapshot_.clear();
  for_each_capacity(
      [this](std::size_t bytes) { capacity_snapshot_.push_back(bytes); });
}

void ChainBuildArena::end_build(BuildStats& stats) {
  std::size_t total = 0;
  std::int64_t grown = 0;
  std::size_t i = 0;
  for_each_capacity([&](std::size_t bytes) {
    total += bytes;
    // Buffers beyond the snapshot did not exist at begin_build() (e.g.
    // staging for a level deeper than any previous build): any capacity
    // they now hold is growth.
    const std::size_t before =
        i < capacity_snapshot_.size() ? capacity_snapshot_[i] : 0;
    if (bytes > before) ++grown;
    ++i;
  });
  stats.arena_allocations = grown;
  stats.peak_arena_bytes = total;
}

std::size_t ChainBuildArena::capacity_bytes() const {
  std::size_t total = 0;
  for_each_capacity([&total](std::size_t bytes) { total += bytes; });
  return total;
}

WorkspacePool<ChainBuildArena>& ChainBuildArena::pool() {
  static WorkspacePool<ChainBuildArena>* pool =
      new WorkspacePool<ChainBuildArena>;
  return *pool;
}

}  // namespace parlap
