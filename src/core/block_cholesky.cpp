#include "core/block_cholesky.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include <omp.h>

#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace parlap {

namespace {

/// Independent per-level seed stream.
std::uint64_t level_seed(std::uint64_t seed, int level) {
  return splitmix64(seed ^ splitmix64(0x4C45564Cull + static_cast<std::uint64_t>(level)));
}

/// Builds one level's staging storage from the F-row adjacency. The walk
/// graph rows list every edge incident to F, so Y (= F-F), L_FC and L_CF
/// all derive from it without touching C-C edges. `lvl` is arena-owned
/// staging (f_list/c_list/n/nf/nc already set by the caller); its buffers
/// are recycled across levels and builds, and transient counting-sort
/// scratch comes from the arena.
void extract_level(const WalkGraph& wg, std::span<const double> wdeg,
                   std::span<const Vertex> f_index,
                   std::span<const Vertex> c_index, ChainBuildArena& arena,
                   EliminationLevel& lvl) {
  lvl.inv_x.resize(static_cast<std::size_t>(lvl.nf));
  lvl.y_diag.resize(static_cast<std::size_t>(lvl.nf));

  // Split each F row of the walk graph into F-F and F-C parts; counts are
  // written straight into the level's offset arrays and scanned in place.
  lvl.ff.off.assign(static_cast<std::size_t>(lvl.nf) + 1, 0);
  lvl.fc.off.assign(static_cast<std::size_t>(lvl.nf) + 1, 0);
  parallel_for(Vertex{0}, lvl.nf, [&](Vertex i) {
    const auto lo = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i)]);
    const auto hi = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i) + 1]);
    EdgeId nff = 0;
    for (std::size_t p = lo; p < hi; ++p) {
      if (f_index[static_cast<std::size_t>(wg.nbr[p])] != kInvalidVertex) ++nff;
    }
    lvl.ff.off[static_cast<std::size_t>(i)] = nff;
    lvl.fc.off[static_cast<std::size_t>(i)] = static_cast<EdgeId>(hi - lo) - nff;
  });
  const EdgeId ff_total = exclusive_scan(std::span<EdgeId>(lvl.ff.off));
  const EdgeId fc_total = exclusive_scan(std::span<EdgeId>(lvl.fc.off));
  lvl.ff.nbr.resize(static_cast<std::size_t>(ff_total));
  lvl.ff.w.resize(static_cast<std::size_t>(ff_total));
  lvl.fc.nbr.resize(static_cast<std::size_t>(fc_total));
  lvl.fc.w.resize(static_cast<std::size_t>(fc_total));

  parallel_for(Vertex{0}, lvl.nf, [&](Vertex i) {
    const auto lo = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i)]);
    const auto hi = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i) + 1]);
    EdgeId pf = lvl.ff.off[static_cast<std::size_t>(i)];
    EdgeId pc = lvl.fc.off[static_cast<std::size_t>(i)];
    double induced = 0.0;
    for (std::size_t p = lo; p < hi; ++p) {
      const Vertex t = wg.nbr[p];
      const Weight w = wg.w[p];
      const Vertex ft = f_index[static_cast<std::size_t>(t)];
      if (ft != kInvalidVertex) {
        lvl.ff.nbr[static_cast<std::size_t>(pf)] = ft;
        lvl.ff.w[static_cast<std::size_t>(pf)] = w;
        ++pf;
        induced += w;
      } else {
        lvl.fc.nbr[static_cast<std::size_t>(pc)] =
            c_index[static_cast<std::size_t>(t)];
        lvl.fc.w[static_cast<std::size_t>(pc)] = w;
        ++pc;
      }
    }
    const Vertex v = lvl.f_list[static_cast<std::size_t>(i)];
    const double x = wdeg[static_cast<std::size_t>(v)] - induced;
    lvl.y_diag[static_cast<std::size_t>(i)] = induced;
    // X_ff >= (4/5) deg(f) > 0 for non-isolated f by 5-DD; isolated
    // vertices get the pseudo-inverse convention 1/0 -> 0.
    lvl.inv_x[static_cast<std::size_t>(i)] = x > 0.0 ? 1.0 / x : 0.0;
  });

  // L_CF = transpose of fc: stable chunked counting sort by C column.
  const auto ncz = static_cast<std::size_t>(lvl.nc);
  {
    const auto entries = static_cast<EdgeId>(lvl.fc.nbr.size());
    const int chunks = std::max(
        1, std::min<int>(thread_count(),
                         static_cast<int>((std::int64_t{1} << 24) /
                                          std::max<std::int64_t>(
                                              static_cast<std::int64_t>(ncz), 1))));
    const EdgeId chunk_len = (entries + chunks - 1) / std::max(chunks, 1);
    arena.extract_hist.assign(static_cast<std::size_t>(chunks) * ncz, 0);
    EdgeId* hist = arena.extract_hist.data();
#pragma omp parallel for schedule(static) num_threads(chunks)
    for (int c = 0; c < chunks; ++c) {
      EdgeId* local = hist + static_cast<std::size_t>(c) * ncz;
      const EdgeId lo = c * chunk_len;
      const EdgeId hi = std::min(entries, lo + chunk_len);
      for (EdgeId p = lo; p < hi; ++p) {
        ++local[static_cast<std::size_t>(lvl.fc.nbr[static_cast<std::size_t>(p)])];
      }
    }
    lvl.cf.off.assign(ncz + 1, 0);
    parallel_for(std::size_t{0}, ncz, [&](std::size_t j) {
      EdgeId total = 0;
      for (int c = 0; c < chunks; ++c)
        total += hist[static_cast<std::size_t>(c) * ncz + j];
      lvl.cf.off[j] = total;
    });
    exclusive_scan(std::span<EdgeId>(lvl.cf.off));
    lvl.cf.nbr.resize(static_cast<std::size_t>(lvl.cf.off[ncz]));
    lvl.cf.w.resize(static_cast<std::size_t>(lvl.cf.off[ncz]));

    arena.extract_base.resize(static_cast<std::size_t>(chunks) * ncz);
    EdgeId* base = arena.extract_base.data();
    parallel_for(std::size_t{0}, ncz, [&](std::size_t j) {
      EdgeId run = lvl.cf.off[j];
      for (int c = 0; c < chunks; ++c) {
        base[static_cast<std::size_t>(c) * ncz + j] = run;
        run += hist[static_cast<std::size_t>(c) * ncz + j];
      }
    });
    // Row index of each fc entry: recover via upper_bound on fc.off; to
    // stay O(1) per entry we walk rows per chunk instead.
#pragma omp parallel for schedule(static) num_threads(chunks)
    for (int c = 0; c < chunks; ++c) {
      EdgeId* local = base + static_cast<std::size_t>(c) * ncz;
      const EdgeId lo = c * chunk_len;
      const EdgeId hi = std::min(entries, lo + chunk_len);
      if (lo >= hi) continue;
      // First row whose range intersects [lo, hi).
      auto it = std::upper_bound(lvl.fc.off.begin(), lvl.fc.off.end(), lo);
      auto row = static_cast<std::size_t>(it - lvl.fc.off.begin()) - 1;
      for (EdgeId p = lo; p < hi; ++p) {
        while (lvl.fc.off[row + 1] <= p) ++row;
        const auto j = static_cast<std::size_t>(
            lvl.fc.nbr[static_cast<std::size_t>(p)]);
        const auto slot = static_cast<std::size_t>(local[j]++);
        lvl.cf.nbr[slot] = static_cast<Vertex>(row);
        lvl.cf.w[slot] = lvl.fc.w[static_cast<std::size_t>(p)];
      }
    }
  }
}

}  // namespace

BlockCholeskyChain BlockCholeskyChain::build(MultigraphView g,
                                             std::uint64_t seed,
                                             const BlockCholeskyOptions& opts) {
  const auto arena = ChainBuildArena::pool().acquire();
  return build_impl(g, seed, opts, *arena, nullptr);
}

BlockCholeskyChain BlockCholeskyChain::build(Multigraph&& g,
                                             std::uint64_t seed,
                                             const BlockCholeskyOptions& opts) {
  Multigraph owned = std::move(g);
  const auto arena = ChainBuildArena::pool().acquire();
  return build_impl(owned, seed, opts, *arena, &owned);
}

BlockCholeskyChain BlockCholeskyChain::build(MultigraphView g,
                                             std::uint64_t seed,
                                             const BlockCholeskyOptions& opts,
                                             ChainBuildArena& arena) {
  return build_impl(g, seed, opts, arena, nullptr);
}

BlockCholeskyChain BlockCholeskyChain::build_impl(
    MultigraphView g, std::uint64_t seed, const BlockCholeskyOptions& opts,
    ChainBuildArena& arena, Multigraph* consumed) {
  PARLAP_CHECK(g.num_vertices() >= 1);
  PARLAP_TRACE_SPAN_N(build_span, "build.chain", "build");
  build_span.arg("n", static_cast<double>(g.num_vertices()));
  build_span.arg("m", static_cast<double>(g.num_edges()));
  const WallTimer build_timer;
  {
    PARLAP_TRACE_SPAN("build.arena_recycle", "build");
    arena.begin_build();
  }
  BlockCholeskyChain chain;
  std::uint64_t build_id = 0;
  {
    static std::atomic<std::uint64_t> next_build_id{0};
    build_id = ++next_build_id;
  }
  const Vertex n0 = g.num_vertices();

  // G^(0) is read straight out of the caller's arrays; every later G^(k)
  // lives in the arena's double-buffered edge storage. Nothing is copied.
  // Per-level outputs are staged in the arena's recycled EliminationLevel
  // buffers and packed into the immutable ApplyChain after the loop.
  MultigraphView cur = g;
  int level = 0;
  while (cur.num_vertices() > opts.base_size) {
    PARLAP_CHECK_MSG(level < opts.max_levels,
                     "BlockCholesky exceeded max_levels = " << opts.max_levels);
    const std::uint64_t lseed = level_seed(seed, level);
    const Vertex n = cur.num_vertices();
    const auto nz = static_cast<std::size_t>(n);
    BuildLevelTiming lt;
    lt.n = n;
    lt.edges = cur.num_edges();
    PARLAP_TRACE_SPAN_N(level_span, "build.level", "build");
    level_span.arg("level", static_cast<double>(level));
    level_span.arg("n", static_cast<double>(n));
    level_span.arg("m", static_cast<double>(cur.num_edges()));
    WallTimer phase;

    PARLAP_TRACE_SPAN_N(sp_degrees, "build.degrees", "build");
    arena.wdeg.resize(nz);
    const std::span<const double> wdeg(arena.wdeg.data(), nz);
    weighted_degrees_into(cur, std::span<double>(arena.wdeg.data(), nz),
                          arena.degree_partial);
    sp_degrees.end();
    lt.phases.degrees = phase.seconds();

    // F_k <- 5DDSubset(G^(k-1))        (Algorithm 1, line 5)
    phase.reset();
    PARLAP_TRACE_SPAN_N(sp_five_dd, "build.five_dd", "build");
    FiveDdResult fdd =
        five_dd_subset(cur, wdeg, lseed, opts.five_dd, arena.five_dd);
    sp_five_dd.arg("f_size", static_cast<double>(fdd.f.size()));
    sp_five_dd.end();
    lt.phases.five_dd = phase.seconds();
    lt.f_size = static_cast<Vertex>(fdd.f.size());

    phase.reset();
    PARLAP_TRACE_SPAN_N(sp_partition, "build.partition", "build");
    if (arena.level_staging.size() <= static_cast<std::size_t>(level)) {
      arena.level_staging.emplace_back();
    }
    EliminationLevel& stage =
        arena.level_staging[static_cast<std::size_t>(level)];
    arena.f_index.assign(nz, kInvalidVertex);
    for (std::size_t i = 0; i < fdd.f.size(); ++i) {
      arena.f_index[static_cast<std::size_t>(fdd.f[i])] =
          static_cast<Vertex>(i);
    }
    stage.f_list.assign(fdd.f.begin(), fdd.f.end());
    stage.c_list.clear();
    stage.c_list.reserve(nz - fdd.f.size());
    arena.c_index.assign(nz, kInvalidVertex);
    for (Vertex v = 0; v < n; ++v) {
      if (arena.f_index[static_cast<std::size_t>(v)] == kInvalidVertex) {
        arena.c_index[static_cast<std::size_t>(v)] =
            static_cast<Vertex>(stage.c_list.size());
        stage.c_list.push_back(v);
      }
    }
    PARLAP_CHECK_MSG(!stage.c_list.empty(), "5-DD subset consumed every vertex");
    stage.n = n;
    stage.nf = static_cast<Vertex>(stage.f_list.size());
    stage.nc = static_cast<Vertex>(stage.c_list.size());
    const std::span<const Vertex> f_index(arena.f_index.data(), nz);
    const std::span<const Vertex> c_index(arena.c_index.data(), nz);
    sp_partition.end();
    lt.phases.partition = phase.seconds();

    LevelStats ls;
    ls.n = n;
    ls.multi_edges = cur.num_edges();
    ls.f_size = stage.nf;
    ls.five_dd_rounds = fdd.rounds;

    phase.reset();
    {
      PARLAP_TRACE_SPAN("build.walk_graph", "build");
      build_walk_graph_into(cur, f_index, stage.nf, arena.walk_graph,
                            arena.walk_build);
    }
    lt.phases.walk_graph = phase.seconds();

    // G^(k) <- TerminalWalks(G^(k-1), C_k)  (Algorithm 1, line 6)
    phase.reset();
    ChainBuildArena::EdgeBuffer& out = arena.out_buffer();
    out.n = stage.nc;
    {
      PARLAP_TRACE_SPAN("build.schur", "build");
      sample_schur_complement(cur, arena.walk_graph, f_index, c_index,
                              stage.nc, seed,
                              static_cast<std::uint64_t>(level), &ls.walks,
                              opts.walks, arena.walk_sample, out.u, out.v,
                              out.w);
    }
    lt.phases.schur = phase.seconds();

    phase.reset();
    {
      PARLAP_TRACE_SPAN("build.extract", "build");
      extract_level(arena.walk_graph, wdeg, f_index, c_index, arena, stage);
    }
    lt.phases.extract = phase.seconds();

    chain.stats_.push_back(std::move(ls));
    chain.build_stats_.phases.accumulate(lt.phases);
    chain.build_stats_.level_timings.push_back(lt);

    cur = out.view();
    arena.swap_buffers();
    if (level == 0 && consumed != nullptr) {
      // The (largest) input graph has been fully absorbed; release it so
      // its edge arrays never coexist with the rest of the build.
      *consumed = Multigraph();
    }
    ++level;
  }
  chain.build_stats_.levels = level;

  // Dense base-case pseudo-inverse (Thm 3.9-(3): O(1)-size system).
  DenseMatrix base_pinv;
  const Vertex base_n = cur.num_vertices();
  {
    const WallTimer base_timer;
    PARLAP_TRACE_SPAN("build.base", "build");
    base_pinv = pseudo_inverse(laplacian_dense(cur));
    chain.build_stats_.base_seconds = base_timer.seconds();
  }

  // l for eps = 1/2d (Algorithm 2 line 4 + Lemma 3.5).
  int jacobi_terms = 1;
  if (opts.jacobi_terms > 0) {
    jacobi_terms = opts.jacobi_terms | 1;  // force odd
  } else {
    const double d = std::max(1, level);
    int l = static_cast<int>(std::ceil(std::log2(6.0 * d)));
    if (l % 2 == 0) ++l;
    jacobi_terms = std::max(1, l);
  }

  // Pack the staged levels into the immutable, CSR-packed apply form.
  {
    const WallTimer pack_timer;
    PARLAP_TRACE_SPAN("build.pack", "build");
    chain.chain_.finalize(
        std::span<const EliminationLevel>(arena.level_staging.data(),
                                          static_cast<std::size_t>(level)),
        n0, std::move(base_pinv), base_n, jacobi_terms, build_id,
        opts.precision);
    chain.build_stats_.pack_seconds = pack_timer.seconds();
  }

  arena.end_build(chain.build_stats_);
  chain.build_stats_.total_seconds = build_timer.seconds();
  build_span.arg("levels", static_cast<double>(level));
  {
    static obs::LatencyHistogram& build_hist =
        obs::MetricsRegistry::global().histogram("parlap.build.seconds");
    static obs::Counter& builds =
        obs::MetricsRegistry::global().counter("parlap.build.chains");
    build_hist.record_seconds(chain.build_stats_.total_seconds);
    builds.add();
  }
  return chain;
}

void BlockCholeskyChain::apply(std::span<const double> b,
                               std::span<double> y) const {
  ApplyWorkspace ws;
  chain_.apply(b, y, ws);
}

}  // namespace parlap
