#include "core/block_cholesky.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include <omp.h>

#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace parlap {

namespace {

/// Independent per-level seed stream.
std::uint64_t level_seed(std::uint64_t seed, int level) {
  return splitmix64(seed ^ splitmix64(0x4C45564Cull + static_cast<std::uint64_t>(level)));
}

/// Builds one level's compact storage from the F-row adjacency. The walk
/// graph rows list every edge incident to F, so Y (= F-F), L_FC and L_CF
/// all derive from it without touching C-C edges. The level's own arrays
/// (the persistent output) are allocated here; transient counting-sort
/// scratch comes from the arena.
void extract_level(const WalkGraph& wg, std::span<const double> wdeg,
                   std::span<const Vertex> f_index,
                   std::span<const Vertex> c_index,
                   std::vector<Vertex>&& f_list, std::vector<Vertex>&& c_list,
                   ChainBuildArena& arena, EliminationLevel& lvl) {
  lvl.n = static_cast<Vertex>(wdeg.size());
  lvl.nf = static_cast<Vertex>(f_list.size());
  lvl.nc = static_cast<Vertex>(c_list.size());
  lvl.f_list = std::move(f_list);
  lvl.c_list = std::move(c_list);
  lvl.inv_x.resize(static_cast<std::size_t>(lvl.nf));
  lvl.y_diag.resize(static_cast<std::size_t>(lvl.nf));

  // Split each F row of the walk graph into F-F and F-C parts; counts are
  // written straight into the level's offset arrays and scanned in place.
  lvl.ff.off.assign(static_cast<std::size_t>(lvl.nf) + 1, 0);
  lvl.fc.off.assign(static_cast<std::size_t>(lvl.nf) + 1, 0);
  parallel_for(Vertex{0}, lvl.nf, [&](Vertex i) {
    const auto lo = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i)]);
    const auto hi = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i) + 1]);
    EdgeId nff = 0;
    for (std::size_t p = lo; p < hi; ++p) {
      if (f_index[static_cast<std::size_t>(wg.nbr[p])] != kInvalidVertex) ++nff;
    }
    lvl.ff.off[static_cast<std::size_t>(i)] = nff;
    lvl.fc.off[static_cast<std::size_t>(i)] = static_cast<EdgeId>(hi - lo) - nff;
  });
  const EdgeId ff_total = exclusive_scan(std::span<EdgeId>(lvl.ff.off));
  const EdgeId fc_total = exclusive_scan(std::span<EdgeId>(lvl.fc.off));
  lvl.ff.nbr.resize(static_cast<std::size_t>(ff_total));
  lvl.ff.w.resize(static_cast<std::size_t>(ff_total));
  lvl.fc.nbr.resize(static_cast<std::size_t>(fc_total));
  lvl.fc.w.resize(static_cast<std::size_t>(fc_total));

  parallel_for(Vertex{0}, lvl.nf, [&](Vertex i) {
    const auto lo = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i)]);
    const auto hi = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i) + 1]);
    EdgeId pf = lvl.ff.off[static_cast<std::size_t>(i)];
    EdgeId pc = lvl.fc.off[static_cast<std::size_t>(i)];
    double induced = 0.0;
    for (std::size_t p = lo; p < hi; ++p) {
      const Vertex t = wg.nbr[p];
      const Weight w = wg.w[p];
      const Vertex ft = f_index[static_cast<std::size_t>(t)];
      if (ft != kInvalidVertex) {
        lvl.ff.nbr[static_cast<std::size_t>(pf)] = ft;
        lvl.ff.w[static_cast<std::size_t>(pf)] = w;
        ++pf;
        induced += w;
      } else {
        lvl.fc.nbr[static_cast<std::size_t>(pc)] =
            c_index[static_cast<std::size_t>(t)];
        lvl.fc.w[static_cast<std::size_t>(pc)] = w;
        ++pc;
      }
    }
    const Vertex v = lvl.f_list[static_cast<std::size_t>(i)];
    const double x = wdeg[static_cast<std::size_t>(v)] - induced;
    lvl.y_diag[static_cast<std::size_t>(i)] = induced;
    // X_ff >= (4/5) deg(f) > 0 for non-isolated f by 5-DD; isolated
    // vertices get the pseudo-inverse convention 1/0 -> 0.
    lvl.inv_x[static_cast<std::size_t>(i)] = x > 0.0 ? 1.0 / x : 0.0;
  });

  // L_CF = transpose of fc: stable chunked counting sort by C column.
  const auto ncz = static_cast<std::size_t>(lvl.nc);
  {
    const auto entries = static_cast<EdgeId>(lvl.fc.nbr.size());
    const int chunks = std::max(
        1, std::min<int>(thread_count(),
                         static_cast<int>((std::int64_t{1} << 24) /
                                          std::max<std::int64_t>(
                                              static_cast<std::int64_t>(ncz), 1))));
    const EdgeId chunk_len = (entries + chunks - 1) / std::max(chunks, 1);
    arena.extract_hist.assign(static_cast<std::size_t>(chunks) * ncz, 0);
    EdgeId* hist = arena.extract_hist.data();
#pragma omp parallel for schedule(static) num_threads(chunks)
    for (int c = 0; c < chunks; ++c) {
      EdgeId* local = hist + static_cast<std::size_t>(c) * ncz;
      const EdgeId lo = c * chunk_len;
      const EdgeId hi = std::min(entries, lo + chunk_len);
      for (EdgeId p = lo; p < hi; ++p) {
        ++local[static_cast<std::size_t>(lvl.fc.nbr[static_cast<std::size_t>(p)])];
      }
    }
    lvl.cf.off.assign(ncz + 1, 0);
    parallel_for(std::size_t{0}, ncz, [&](std::size_t j) {
      EdgeId total = 0;
      for (int c = 0; c < chunks; ++c)
        total += hist[static_cast<std::size_t>(c) * ncz + j];
      lvl.cf.off[j] = total;
    });
    exclusive_scan(std::span<EdgeId>(lvl.cf.off));
    lvl.cf.nbr.resize(static_cast<std::size_t>(lvl.cf.off[ncz]));
    lvl.cf.w.resize(static_cast<std::size_t>(lvl.cf.off[ncz]));

    arena.extract_base.resize(static_cast<std::size_t>(chunks) * ncz);
    EdgeId* base = arena.extract_base.data();
    parallel_for(std::size_t{0}, ncz, [&](std::size_t j) {
      EdgeId run = lvl.cf.off[j];
      for (int c = 0; c < chunks; ++c) {
        base[static_cast<std::size_t>(c) * ncz + j] = run;
        run += hist[static_cast<std::size_t>(c) * ncz + j];
      }
    });
    // Row index of each fc entry: recover via upper_bound on fc.off; to
    // stay O(1) per entry we walk rows per chunk instead.
#pragma omp parallel for schedule(static) num_threads(chunks)
    for (int c = 0; c < chunks; ++c) {
      EdgeId* local = base + static_cast<std::size_t>(c) * ncz;
      const EdgeId lo = c * chunk_len;
      const EdgeId hi = std::min(entries, lo + chunk_len);
      if (lo >= hi) continue;
      // First row whose range intersects [lo, hi).
      auto it = std::upper_bound(lvl.fc.off.begin(), lvl.fc.off.end(), lo);
      auto row = static_cast<std::size_t>(it - lvl.fc.off.begin()) - 1;
      for (EdgeId p = lo; p < hi; ++p) {
        while (lvl.fc.off[row + 1] <= p) ++row;
        const auto j = static_cast<std::size_t>(
            lvl.fc.nbr[static_cast<std::size_t>(p)]);
        const auto slot = static_cast<std::size_t>(local[j]++);
        lvl.cf.nbr[slot] = static_cast<Vertex>(row);
        lvl.cf.w[slot] = lvl.fc.w[static_cast<std::size_t>(p)];
      }
    }
  }
}

}  // namespace

BlockCholeskyChain BlockCholeskyChain::build(MultigraphView g,
                                             std::uint64_t seed,
                                             const BlockCholeskyOptions& opts) {
  const auto arena = ChainBuildArena::pool().acquire();
  return build_impl(g, seed, opts, *arena, nullptr);
}

BlockCholeskyChain BlockCholeskyChain::build(Multigraph&& g,
                                             std::uint64_t seed,
                                             const BlockCholeskyOptions& opts) {
  Multigraph owned = std::move(g);
  const auto arena = ChainBuildArena::pool().acquire();
  return build_impl(owned, seed, opts, *arena, &owned);
}

BlockCholeskyChain BlockCholeskyChain::build(MultigraphView g,
                                             std::uint64_t seed,
                                             const BlockCholeskyOptions& opts,
                                             ChainBuildArena& arena) {
  return build_impl(g, seed, opts, arena, nullptr);
}

BlockCholeskyChain BlockCholeskyChain::build_impl(
    MultigraphView g, std::uint64_t seed, const BlockCholeskyOptions& opts,
    ChainBuildArena& arena, Multigraph* consumed) {
  PARLAP_CHECK(g.num_vertices() >= 1);
  const WallTimer build_timer;
  arena.begin_build();
  BlockCholeskyChain chain;
  {
    static std::atomic<std::uint64_t> next_build_id{0};
    chain.build_id_ = ++next_build_id;
  }
  chain.n0_ = g.num_vertices();

  // G^(0) is read straight out of the caller's arrays; every later G^(k)
  // lives in the arena's double-buffered edge storage. Nothing is copied.
  MultigraphView cur = g;
  int level = 0;
  while (cur.num_vertices() > opts.base_size) {
    PARLAP_CHECK_MSG(level < opts.max_levels,
                     "BlockCholesky exceeded max_levels = " << opts.max_levels);
    const std::uint64_t lseed = level_seed(seed, level);
    const Vertex n = cur.num_vertices();
    const auto nz = static_cast<std::size_t>(n);
    BuildLevelTiming lt;
    lt.n = n;
    lt.edges = cur.num_edges();
    WallTimer phase;

    arena.wdeg.resize(nz);
    const std::span<const double> wdeg(arena.wdeg.data(), nz);
    weighted_degrees_into(cur, std::span<double>(arena.wdeg.data(), nz),
                          arena.degree_partial);
    lt.phases.degrees = phase.seconds();

    // F_k <- 5DDSubset(G^(k-1))        (Algorithm 1, line 5)
    phase.reset();
    FiveDdResult fdd =
        five_dd_subset(cur, wdeg, lseed, opts.five_dd, arena.five_dd);
    lt.phases.five_dd = phase.seconds();
    lt.f_size = static_cast<Vertex>(fdd.f.size());

    phase.reset();
    arena.f_index.assign(nz, kInvalidVertex);
    for (std::size_t i = 0; i < fdd.f.size(); ++i) {
      arena.f_index[static_cast<std::size_t>(fdd.f[i])] =
          static_cast<Vertex>(i);
    }
    std::vector<Vertex> c_list;
    c_list.reserve(nz - fdd.f.size());
    arena.c_index.assign(nz, kInvalidVertex);
    for (Vertex v = 0; v < n; ++v) {
      if (arena.f_index[static_cast<std::size_t>(v)] == kInvalidVertex) {
        arena.c_index[static_cast<std::size_t>(v)] =
            static_cast<Vertex>(c_list.size());
        c_list.push_back(v);
      }
    }
    PARLAP_CHECK_MSG(!c_list.empty(), "5-DD subset consumed every vertex");
    const std::span<const Vertex> f_index(arena.f_index.data(), nz);
    const std::span<const Vertex> c_index(arena.c_index.data(), nz);
    lt.phases.partition = phase.seconds();

    LevelStats ls;
    ls.n = n;
    ls.multi_edges = cur.num_edges();
    ls.f_size = static_cast<Vertex>(fdd.f.size());
    ls.five_dd_rounds = fdd.rounds;

    phase.reset();
    const Vertex nf = static_cast<Vertex>(fdd.f.size());
    build_walk_graph_into(cur, f_index, nf, arena.walk_graph,
                          arena.walk_build);
    lt.phases.walk_graph = phase.seconds();

    // G^(k) <- TerminalWalks(G^(k-1), C_k)  (Algorithm 1, line 6)
    phase.reset();
    const Vertex nc = static_cast<Vertex>(c_list.size());
    ChainBuildArena::EdgeBuffer& out = arena.out_buffer();
    out.n = nc;
    sample_schur_complement(cur, arena.walk_graph, f_index, c_index, nc,
                            seed, static_cast<std::uint64_t>(level),
                            &ls.walks, opts.walks, arena.walk_sample, out.u,
                            out.v, out.w);
    lt.phases.schur = phase.seconds();

    phase.reset();
    chain.levels_.emplace_back();
    extract_level(arena.walk_graph, wdeg, f_index, c_index, std::move(fdd.f),
                  std::move(c_list), arena, chain.levels_.back());
    lt.phases.extract = phase.seconds();

    chain.stats_.push_back(std::move(ls));
    chain.build_stats_.phases.accumulate(lt.phases);
    chain.build_stats_.level_timings.push_back(lt);

    cur = out.view();
    arena.swap_buffers();
    if (level == 0 && consumed != nullptr) {
      // The (largest) input graph has been fully absorbed; release it so
      // its edge arrays never coexist with the rest of the build.
      *consumed = Multigraph();
    }
    ++level;
  }
  chain.build_stats_.levels = level;

  // Dense base-case pseudo-inverse (Thm 3.9-(3): O(1)-size system).
  {
    const WallTimer base_timer;
    chain.base_n_ = cur.num_vertices();
    chain.base_pinv_ = pseudo_inverse(laplacian_dense(cur));
    chain.build_stats_.base_seconds = base_timer.seconds();
  }

  // l for eps = 1/2d (Algorithm 2 line 4 + Lemma 3.5).
  if (opts.jacobi_terms > 0) {
    chain.jacobi_terms_ = opts.jacobi_terms | 1;  // force odd
  } else {
    const double d = std::max(1, chain.depth());
    int l = static_cast<int>(std::ceil(std::log2(6.0 * d)));
    if (l % 2 == 0) ++l;
    chain.jacobi_terms_ = std::max(1, l);
  }

  arena.end_build(chain.build_stats_);
  chain.build_stats_.total_seconds = build_timer.seconds();
  return chain;
}

EdgeId BlockCholeskyChain::stored_entries() const noexcept {
  EdgeId total = 0;
  for (const EliminationLevel& lvl : levels_) {
    total += static_cast<EdgeId>(lvl.ff.nbr.size() + lvl.fc.nbr.size() +
                                 lvl.cf.nbr.size());
  }
  return total;
}

void BlockCholeskyChain::prepare_workspace(ApplyWorkspace& ws) const {
  // Identity check, not a shape check: two chains can agree on depth and
  // n0 yet differ at inner levels (e.g. escalation rounds of the same
  // component), so sizes alone cannot prove the workspace fits. The id
  // is process-unique per build, so a new chain at a recycled address
  // cannot inherit a dead chain's scratch.
  if (ws.prepared_for == build_id_) return;
  const std::size_t d = levels_.size();
  ws.level_vec.assign(d + 1, {});
  ws.level_yf.assign(d, {});
  std::size_t max_nf = 1;
  for (std::size_t k = 0; k < d; ++k) {
    ws.level_vec[k].resize(static_cast<std::size_t>(levels_[k].n));
    ws.level_yf[k].resize(static_cast<std::size_t>(levels_[k].nf));
    max_nf = std::max(max_nf, static_cast<std::size_t>(levels_[k].nf));
  }
  ws.level_vec[d].resize(static_cast<std::size_t>(base_n_));
  ws.jac_b.resize(max_nf);
  ws.jac_cur.resize(max_nf);
  ws.jac_tmp.resize(max_nf);
  ws.scratch_f.resize(max_nf);
  ws.scratch_f2.resize(max_nf);
  ws.prepared_for = build_id_;
}

void BlockCholeskyChain::jacobi_solve(const EliminationLevel& lvl,
                                      std::span<const double> b_f,
                                      std::span<double> out,
                                      ApplyWorkspace& ws) const {
  // Z b = sum_{i=0}^{l} X^-1 (-Y X^-1)^i b via the recurrence
  // x^(i) = X^-1 b - X^-1 Y x^(i-1)   (Algorithm 2, Jacobi procedure).
  const auto nf = static_cast<std::size_t>(lvl.nf);
  std::span<double> xb(ws.jac_b.data(), nf);
  std::span<double> cur(ws.jac_cur.data(), nf);
  std::span<double> tmp(ws.jac_tmp.data(), nf);

  parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
    xb[i] = lvl.inv_x[i] * b_f[i];
    cur[i] = xb[i];
  });
  for (int it = 1; it <= jacobi_terms_; ++it) {
    // tmp = xb - X^-1 (Y cur)
    parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
      const EdgeId lo = lvl.ff.off[i];
      const EdgeId hi = lvl.ff.off[i + 1];
      double acc = lvl.y_diag[i] * cur[i];
      for (EdgeId p = lo; p < hi; ++p) {
        acc -= lvl.ff.w[static_cast<std::size_t>(p)] *
               cur[static_cast<std::size_t>(lvl.ff.nbr[static_cast<std::size_t>(p)])];
      }
      tmp[i] = xb[i] - lvl.inv_x[i] * acc;
    });
    std::swap_ranges(tmp.begin(), tmp.end(), cur.begin());
  }
  parallel_for(std::size_t{0}, nf, [&](std::size_t i) { out[i] = cur[i]; });
}

void BlockCholeskyChain::apply(std::span<const double> b,
                               std::span<double> y) const {
  ApplyWorkspace ws;
  apply(b, y, ws);
}

void BlockCholeskyChain::apply(std::span<const double> b, std::span<double> y,
                               ApplyWorkspace& ws) const {
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(n0_));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(n0_));
  prepare_workspace(ws);
  const std::size_t d = levels_.size();

  std::copy(b.begin(), b.end(), ws.level_vec[0].begin());

  // Forward substitution (Algorithm 2, lines 3-5).
  for (std::size_t k = 0; k < d; ++k) {
    const EliminationLevel& lvl = levels_[k];
    std::vector<double>& vec = ws.level_vec[k];
    std::vector<double>& yf = ws.level_yf[k];
    const auto nf = static_cast<std::size_t>(lvl.nf);

    // y_F = Z^(k) b_F
    std::span<double> bf(ws.scratch_f.data(), nf);
    parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
      bf[i] = vec[static_cast<std::size_t>(lvl.f_list[i])];
    });
    jacobi_solve(lvl, bf, yf, ws);

    // b^(k+1) = y_C = b_C - L_CF y_F = b_C + sum_{c~f} w * y_F[f]
    std::vector<double>& next = ws.level_vec[k + 1];
    parallel_for(std::size_t{0}, static_cast<std::size_t>(lvl.nc),
                 [&](std::size_t j) {
                   double acc = vec[static_cast<std::size_t>(lvl.c_list[j])];
                   const EdgeId lo = lvl.cf.off[j];
                   const EdgeId hi = lvl.cf.off[j + 1];
                   for (EdgeId p = lo; p < hi; ++p) {
                     acc += lvl.cf.w[static_cast<std::size_t>(p)] *
                            yf[static_cast<std::size_t>(
                                lvl.cf.nbr[static_cast<std::size_t>(p)])];
                   }
                   next[j] = acc;
                 });
  }

  // Base solve x^(d) = L_{G^(d)}^+ b^(d) (Algorithm 2, line 6).
  {
    std::vector<double>& base = ws.level_vec[d];
    const Vector xd = base_pinv_.apply(base);
    std::copy(xd.begin(), xd.end(), base.begin());
  }

  // Backward substitution (lines 7-8): x_F = y_F - Z^(k) (L_FC x_C).
  for (std::size_t k = d; k-- > 0;) {
    const EliminationLevel& lvl = levels_[k];
    std::vector<double>& xc = ws.level_vec[k + 1];
    std::vector<double>& out = ws.level_vec[k];
    const std::vector<double>& yf = ws.level_yf[k];
    const auto nf = static_cast<std::size_t>(lvl.nf);

    std::span<double> tf(ws.scratch_f.data(), nf);
    parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
      const EdgeId lo = lvl.fc.off[i];
      const EdgeId hi = lvl.fc.off[i + 1];
      double acc = 0.0;
      for (EdgeId p = lo; p < hi; ++p) {
        acc -= lvl.fc.w[static_cast<std::size_t>(p)] *
               xc[static_cast<std::size_t>(
                   lvl.fc.nbr[static_cast<std::size_t>(p)])];
      }
      tf[i] = acc;  // (L_FC x_C)_f
    });
    std::span<double> zf(ws.scratch_f2.data(), nf);
    jacobi_solve(lvl, tf, zf, ws);

    parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
      out[static_cast<std::size_t>(lvl.f_list[i])] = yf[i] - zf[i];
    });
    parallel_for(std::size_t{0}, static_cast<std::size_t>(lvl.nc),
                 [&](std::size_t j) {
                   out[static_cast<std::size_t>(lvl.c_list[j])] = xc[j];
                 });
  }

  std::copy(ws.level_vec[0].begin(), ws.level_vec[0].end(), y.begin());
}

}  // namespace parlap
