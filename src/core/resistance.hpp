// Effective-resistance oracle via Johnson-Lindenstrauss sketching
// [SS11; KLP15], powered by this library's own solver (Theorem 1.1).
//
// Build: q = O(log n / eps^2) random +-1 edge signings y_i = B' W^{1/2} q_i
// are each solved against L, storing the n-vector z_i = L^+ y_i. Query:
// R(u, v) ~ sum_i (z_i[u] - z_i[v])^2, a (1 +- eps) approximation w.h.p.,
// in O(q) time per pair.
//
// This is the estimation engine behind leverage-score splitting (Lemma
// 3.3, §6) and a useful public primitive in its own right (spanning-tree
// sampling, graph sparsification, network robustness all consume it).
#pragma once

#include <cstdint>

#include "graph/multigraph.hpp"
#include "linalg/vector_ops.hpp"

namespace parlap {

struct SolverOptions;  // core/solver.hpp

struct ResistanceOptions {
  /// Sketch dimensions; 0 = auto ceil(6 ln n) (~±40% per-pair error,
  /// plenty for overestimation with a safety factor; raise for tighter
  /// point estimates).
  int jl_dimensions = 0;
  /// Accuracy of the underlying Laplacian solves.
  double solve_eps = 0.1;
  /// Split scale for the underlying solver.
  double split_scale = 0.1;
};

class ResistanceEstimator {
 public:
  /// Factors `g` and performs q solves. Requires a connected graph.
  ResistanceEstimator(const Multigraph& g, std::uint64_t seed,
                      const ResistanceOptions& opts = {});

  /// Approximate effective resistance between two vertices, O(q).
  [[nodiscard]] double resistance(Vertex u, Vertex v) const;

  /// Approximate leverage scores tau(e) = w(e) R(u_e, v_e) for every edge
  /// of `edges` (typically the graph itself or a supergraph sharing ids).
  [[nodiscard]] Vector leverage_scores(const Multigraph& edges) const;

  [[nodiscard]] int dimensions() const noexcept {
    return static_cast<int>(sketch_.size());
  }

 private:
  std::vector<Vector> sketch_;  ///< q vectors of length n
};

}  // namespace parlap
