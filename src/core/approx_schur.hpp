// Standalone sparse Schur complement approximation
// (Algorithm 6, §7, Theorem 7.1).
//
// ApproxSchur eliminates the non-terminal set U = V\C in O(log |U|) rounds:
// each round removes a 5-DD subset of the *induced* subgraph G[U] (a 5-DD
// subset of an induced subgraph is 5-DD in the whole graph) and resamples
// via TerminalWalks with terminal set "everything not yet eliminated".
// With alpha^-1 = Theta(eps^-2 log^2 n) the result satisfies
// L_GS ~eps SC(L_G, C) w.h.p. with at most m multi-edges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/five_dd.hpp"
#include "core/terminal_walks.hpp"
#include "graph/multigraph.hpp"

namespace parlap {

struct ApproxSchurOptions {
  FiveDdOptions five_dd;
  WalkOptions walks;
  int max_levels = 100000;
};

struct ApproxSchurResult {
  /// Vertex i of `schur` corresponds to c_set[i] of the input graph.
  Multigraph schur;
  int levels = 0;
  std::vector<WalkStats> walk_stats;  ///< one entry per level
};

/// Runs Algorithm 6 on an already alpha-bounded multigraph. `c_set` must
/// list distinct vertices, non-empty, and a proper subset of V.
[[nodiscard]] ApproxSchurResult approx_schur(const Multigraph& g,
                                             std::span<const Vertex> c_set,
                                             std::uint64_t seed,
                                             const ApproxSchurOptions& opts = {});

/// Convenience for simple graphs: splits edges uniformly into
/// ceil(scale * eps^-2 * ceil(log2 n)^2) copies (Theorem 7.1's alpha),
/// then runs approx_schur.
[[nodiscard]] ApproxSchurResult approx_schur_simple(
    const Multigraph& g, std::span<const Vertex> c_set, double eps,
    std::uint64_t seed, double scale = 0.05,
    const ApproxSchurOptions& opts = {});

}  // namespace parlap
