#include "core/spanning_tree.hpp"

#include <numeric>
#include <vector>

#include "core/terminal_walks.hpp"  // WalkGraph: per-vertex alias sampling
#include "parallel/alias_table.hpp"
#include "graph/connectivity.hpp"
#include "linalg/dense.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

Multigraph sample_spanning_tree(const Multigraph& g, std::uint64_t seed,
                                SpanningTreeStats* stats) {
  const Vertex n = g.num_vertices();
  PARLAP_CHECK(n >= 1);
  PARLAP_CHECK_MSG(is_connected(g), "spanning tree of a disconnected graph");

  // Full-adjacency alias tables: a WalkGraph with every vertex in "F".
  std::vector<Vertex> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), Vertex{0});
  const WalkGraph wg = build_walk_graph(g, all, n);

  // Wilson's algorithm, rooted at vertex 0.
  std::vector<std::uint8_t> in_tree(static_cast<std::size_t>(n), 0);
  std::vector<Vertex> next_v(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<Weight> next_w(static_cast<std::size_t>(n), 0.0);
  in_tree[0] = 1;

  Multigraph tree(n);
  tree.reserve_edges(n - 1);
  SpanningTreeStats local;

  for (Vertex start = 1; start < n; ++start) {
    if (in_tree[static_cast<std::size_t>(start)] != 0) continue;
    Rng rng(seed, RngTag::kTerminalWalk,
            0x57494C53ull ^ static_cast<std::uint64_t>(start));
    // Random walk until the tree is hit; next_v implements loop erasure
    // (revisiting a vertex overwrites its exit, erasing the loop).
    Vertex u = start;
    while (in_tree[static_cast<std::size_t>(u)] == 0) {
      const auto lo = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(u)]);
      const auto deg = static_cast<std::size_t>(
                           wg.off[static_cast<std::size_t>(u) + 1]) -
                       lo;
      PARLAP_DCHECK(deg > 0);
      const std::int32_t k = sample_alias(
          std::span<const double>(wg.prob.data() + lo, deg),
          std::span<const std::int32_t>(wg.alias.data() + lo, deg), rng);
      next_v[static_cast<std::size_t>(u)] = wg.nbr[lo + static_cast<std::size_t>(k)];
      next_w[static_cast<std::size_t>(u)] = wg.w[lo + static_cast<std::size_t>(k)];
      u = next_v[static_cast<std::size_t>(u)];
      ++local.walk_steps;
    }
    // Commit the loop-erased path.
    u = start;
    while (in_tree[static_cast<std::size_t>(u)] == 0) {
      in_tree[static_cast<std::size_t>(u)] = 1;
      tree.add_edge(u, next_v[static_cast<std::size_t>(u)],
                    next_w[static_cast<std::size_t>(u)]);
      u = next_v[static_cast<std::size_t>(u)];
      ++local.erased_steps;  // provisional: corrected below
    }
  }
  // erased = total steps - committed path steps.
  local.erased_steps = local.walk_steps - (n - 1);
  if (stats != nullptr) *stats = local;
  PARLAP_CHECK(tree.num_edges() == n - 1);
  return tree;
}

double spanning_tree_weight_dense(const Multigraph& g) {
  const int n = g.num_vertices();
  PARLAP_CHECK(n >= 2);
  // Matrix-tree theorem: the number (weight) of spanning trees equals any
  // cofactor of L; delete row/col 0 and take the determinant via
  // Cholesky (the reduced Laplacian of a connected graph is PD).
  const DenseMatrix l = laplacian_dense(g);
  DenseMatrix reduced(n - 1, n - 1);
  for (int i = 1; i < n; ++i)
    for (int j = 1; j < n; ++j) reduced(i - 1, j - 1) = l(i, j);
  const DenseMatrix chol = cholesky_factor(reduced);
  double det = 1.0;
  for (int i = 0; i + 1 < n; ++i) det *= chol(i, i) * chol(i, i);
  return det;
}

}  // namespace parlap
