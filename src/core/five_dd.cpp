#include "core/five_dd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <omp.h>

#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

void FiveDdScratch::prepare(Vertex n) {
  const auto nz = static_cast<std::size_t>(n);
  if (pos.size() < nz) pos.resize(nz, kInvalidVertex);
}

namespace {

/// Draws `count` distinct elements of `pool` by partial Fisher-Yates on a
/// scratch copy; result is sorted for determinism downstream.
std::vector<Vertex> sample_without_replacement(std::span<const Vertex> pool,
                                               std::size_t count, Rng& rng,
                                               std::vector<Vertex>& staging) {
  staging.assign(pool.begin(), pool.end());
  const std::size_t n = staging.size();
  PARLAP_CHECK(count <= n);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(n - i)));
    std::swap(staging[i], staging[j]);
  }
  std::vector<Vertex> out(staging.begin(),
                          staging.begin() + static_cast<std::ptrdiff_t>(count));
  std::sort(out.begin(), out.end());
  return out;
}

/// Weighted degree within G[s] for every member of `s`, via one edge scan
/// into chunk-local partials folded in fixed chunk order (deterministic
/// under any thread count). `pos[v]` maps members of s to [0, |s|) and is
/// expected to be kInvalidVertex elsewhere. The result lives in
/// `scratch.induced` (first s_size entries).
std::span<const double> induced_degrees(MultigraphView g,
                                        std::span<const Vertex> pos,
                                        std::size_t s_size,
                                        FiveDdScratch& scratch) {
  const EdgeId m = g.num_edges();
  // Fixed chunk layout (independent of the thread count!): these are
  // float accumulations that feed the 5-DD comparison, so their rounding
  // must not vary with the machine.
  const int chunks = std::max(
      1, std::min<int>(32, static_cast<int>(
                               (std::int64_t{1} << 23) /
                               std::max<std::int64_t>(
                                   static_cast<std::int64_t>(s_size), 1))));
  const EdgeId chunk_len = (m + chunks - 1) / std::max(chunks, 1);
  scratch.partial.assign(static_cast<std::size_t>(chunks) * s_size, 0.0);
  double* partial = scratch.partial.data();
#pragma omp parallel for schedule(static)
  for (int c = 0; c < chunks; ++c) {
    double* local = partial + static_cast<std::size_t>(c) * s_size;
    const EdgeId lo = c * chunk_len;
    const EdgeId hi = std::min(m, lo + chunk_len);
    for (EdgeId e = lo; e < hi; ++e) {
      const Vertex pu = pos[static_cast<std::size_t>(g.edge_u(e))];
      const Vertex pv = pos[static_cast<std::size_t>(g.edge_v(e))];
      if (pu == kInvalidVertex || pv == kInvalidVertex) continue;
      const Weight w = g.edge_weight(e);
      local[static_cast<std::size_t>(pu)] += w;
      local[static_cast<std::size_t>(pv)] += w;
    }
  }
  scratch.induced.assign(s_size, 0.0);
  double* induced = scratch.induced.data();
  parallel_for(std::size_t{0}, s_size, [&](std::size_t i) {
    double acc = 0.0;
    for (int c = 0; c < chunks; ++c)
      acc += partial[static_cast<std::size_t>(c) * s_size + i];
    induced[i] = acc;
  });
  return std::span<const double>(scratch.induced.data(), s_size);
}

/// filter(S) = { i in S : deg_{G[S]}(i) <= cand_deg(i) / 5 }. Any subset
/// of a filtered set only loses induced degree, so the result is 5-DD.
std::vector<Vertex> filter_five_dd(MultigraphView g,
                                   std::span<const Vertex> s,
                                   std::span<const double> cand_deg,
                                   FiveDdScratch& scratch) {
  std::vector<Vertex>& pos = scratch.pos;
  for (std::size_t i = 0; i < s.size(); ++i) {
    pos[static_cast<std::size_t>(s[i])] = static_cast<Vertex>(i);
  }
  const std::span<const double> induced =
      induced_degrees(g, pos, s.size(), scratch);
  std::vector<Vertex> f;
  f.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (induced[i] <= cand_deg[static_cast<std::size_t>(s[i])] / 5.0) {
      f.push_back(s[i]);
    }
  }
  for (const Vertex v : s) pos[static_cast<std::size_t>(v)] = kInvalidVertex;
  return f;
}

FiveDdResult five_dd_impl(MultigraphView g,
                          std::span<const Vertex> candidates,
                          std::span<const double> cand_deg,
                          std::uint64_t seed, const FiveDdOptions& opts,
                          FiveDdScratch& scratch) {
  const Vertex n = g.num_vertices();
  const std::size_t nc = candidates.size();
  PARLAP_CHECK_MSG(nc >= 1, "5DDSubset needs a non-empty candidate set");

  const auto target = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(opts.accept_fraction *
                                             static_cast<double>(nc))));
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(opts.sample_fraction *
                                             static_cast<double>(nc))));

  scratch.prepare(n);
  FiveDdResult result;
  for (int round = 0; round < opts.max_rounds; ++round) {
    result.rounds = round + 1;
    Rng rng(seed, RngTag::kFiveDd, static_cast<std::uint64_t>(round));
    const std::vector<Vertex> fprime = sample_without_replacement(
        candidates, sample_size, rng, scratch.sample);
    result.f = filter_five_dd(g, fprime, cand_deg, scratch);
    if (result.f.size() >= target) break;
    PARLAP_CHECK_MSG(round + 1 < opts.max_rounds,
                     "5DDSubset failed to reach target size "
                         << target << " in " << opts.max_rounds << " rounds");
  }

  // Optional growth: refilter (F union fresh sample) as a whole; keep the
  // larger of the two (filter output is always 5-DD).
  for (int b = 0; b < opts.boost_rounds; ++b) {
    Rng rng(seed, RngTag::kFiveDd, 0xB0057000u + static_cast<std::uint64_t>(b));
    std::vector<Vertex> pool;
    pool.reserve(nc - result.f.size());
    {
      std::vector<std::uint8_t> in_f(static_cast<std::size_t>(n), 0);
      for (const Vertex v : result.f) in_f[static_cast<std::size_t>(v)] = 1;
      for (const Vertex v : candidates) {
        if (in_f[static_cast<std::size_t>(v)] == 0) pool.push_back(v);
      }
    }
    if (pool.empty()) break;
    const std::size_t extra = std::min(pool.size(), sample_size);
    std::vector<Vertex> s =
        sample_without_replacement(pool, extra, rng, scratch.sample);
    s.insert(s.end(), result.f.begin(), result.f.end());
    std::sort(s.begin(), s.end());
    std::vector<Vertex> grown = filter_five_dd(g, s, cand_deg, scratch);
    if (grown.size() > result.f.size()) result.f = std::move(grown);
  }
  return result;
}

}  // namespace

FiveDdResult five_dd_subset(MultigraphView g,
                            std::span<const double> weighted_degree,
                            std::uint64_t seed, const FiveDdOptions& opts) {
  FiveDdScratch scratch;
  return five_dd_subset(g, weighted_degree, seed, opts, scratch);
}

FiveDdResult five_dd_subset(MultigraphView g,
                            std::span<const double> weighted_degree,
                            std::uint64_t seed, const FiveDdOptions& opts,
                            FiveDdScratch& scratch) {
  PARLAP_CHECK(weighted_degree.size() ==
               static_cast<std::size_t>(g.num_vertices()));
  std::vector<Vertex> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), Vertex{0});
  return five_dd_impl(g, all, weighted_degree, seed, opts, scratch);
}

FiveDdResult five_dd_subset(MultigraphView g,
                            std::span<const Vertex> candidates,
                            std::uint64_t seed, const FiveDdOptions& opts) {
  const Vertex n = g.num_vertices();
  FiveDdScratch scratch;
  scratch.prepare(n);
  // Degrees within G[candidates].
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    PARLAP_DCHECK(candidates[i] >= 0 && candidates[i] < n);
    scratch.pos[static_cast<std::size_t>(candidates[i])] =
        static_cast<Vertex>(i);
  }
  const std::span<const double> within =
      induced_degrees(g, scratch.pos, candidates.size(), scratch);
  std::vector<double> cand_deg(static_cast<std::size_t>(n), 0.0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    cand_deg[static_cast<std::size_t>(candidates[i])] = within[i];
  }
  for (const Vertex v : candidates) {
    scratch.pos[static_cast<std::size_t>(v)] = kInvalidVertex;
  }
  return five_dd_impl(g, candidates, cand_deg, seed, opts, scratch);
}

bool is_five_dd(MultigraphView g, std::span<const Vertex> f,
                std::span<const Vertex> candidates) {
  const Vertex n = g.num_vertices();
  std::vector<std::uint8_t> in_cand(static_cast<std::size_t>(n),
                                    candidates.empty() ? 1 : 0);
  for (const Vertex v : candidates) in_cand[static_cast<std::size_t>(v)] = 1;
  std::vector<std::uint8_t> in_f(static_cast<std::size_t>(n), 0);
  for (const Vertex v : f) in_f[static_cast<std::size_t>(v)] = 1;

  std::vector<double> induced(static_cast<std::size_t>(n), 0.0);
  std::vector<double> cand_deg(static_cast<std::size_t>(n), 0.0);
  const EdgeId m = g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    const Vertex u = g.edge_u(e);
    const Vertex v = g.edge_v(e);
    const Weight w = g.edge_weight(e);
    if (in_cand[static_cast<std::size_t>(u)] != 0 &&
        in_cand[static_cast<std::size_t>(v)] != 0) {
      cand_deg[static_cast<std::size_t>(u)] += w;
      cand_deg[static_cast<std::size_t>(v)] += w;
    }
    if (in_f[static_cast<std::size_t>(u)] != 0 &&
        in_f[static_cast<std::size_t>(v)] != 0) {
      induced[static_cast<std::size_t>(u)] += w;
      induced[static_cast<std::size_t>(v)] += w;
    }
  }
  for (const Vertex v : f) {
    const double cd = cand_deg[static_cast<std::size_t>(v)];
    if (induced[static_cast<std::size_t>(v)] > cd / 5.0 + 1e-12 * cd) {
      return false;
    }
  }
  return true;
}

}  // namespace parlap
