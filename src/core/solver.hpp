// Top-level parallel Laplacian solver (Theorems 1.1 and 1.2).
//
// LaplacianSolver ties the pipeline together:
//   input graph -> connected components -> per component:
//     alpha-bounding edge split (uniform, Lemma 3.2, = Thm 1.1; or by
//     leverage-score overestimates, Lemma 3.3, = Thm 1.2)
//     -> BlockCholesky chain (Algorithm 1) -> solve() drives
//     PreconRichardson (Algorithm 5) with ApplyCholesky (Algorithm 2) as
//     the constant-quality preconditioner.
//
// solve() accepts any right-hand side; the component of b in the kernel of
// L (per-component constants) is projected out, which is the standard
// least-squares convention for Laplacian systems. Residuals are reported
// relative to the projected b.
//
// If a solve stalls — possible when `split_scale` is tuned too low for the
// concentration bound of Thm 3.9 — and `adaptive` is set, the affected
// component is refactored with twice the split copies and the solve
// retried (at most `max_rebuilds` times).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/block_cholesky.hpp"
#include "core/leverage.hpp"
#include "core/richardson.hpp"
#include "graph/connectivity.hpp"
#include "graph/multigraph.hpp"
#include "linalg/laplacian_op.hpp"

namespace parlap {

/// How edges are multiplied into low-leverage parallel copies before
/// factorization.
enum class SplitStrategy {
  kUniform,   ///< Lemma 3.2 / Theorem 1.1
  kLeverage,  ///< Lemma 3.3 / Theorem 1.2
};

/// Tuning knobs for LaplacianSolver; the defaults reproduce the paper's
/// configuration at practical constants.
struct SolverOptions {
  std::uint64_t seed = 42;
  /// alpha^-1 = max(1, ceil(split_scale * ceil(log2 n)^2)) edge copies.
  /// Theory wants a large hidden constant; 0.1 is a practical default
  /// (Richardson absorbs the weaker concentration; `adaptive` rebuilds
  /// guard the tail). Ablated in bench E9.
  double split_scale = 0.1;
  SplitStrategy split = SplitStrategy::kUniform;
  LeverageOptions leverage;  ///< used when split == kLeverage
  BlockCholeskyOptions chain;
  RichardsonOptions richardson;
  /// Rebuild with doubled split copies when Richardson stalls.
  bool adaptive = true;
  int max_rebuilds = 2;
};

/// Per-solve outcome of LaplacianSolver::solve().
struct SolveStats {
  int iterations = 0;              ///< max over components
  double relative_residual = 0.0;  ///< max over components
  bool converged = false;          ///< residual target reached
  int rebuilds = 0;                ///< adaptive refactorizations triggered
};

/// Size and shape of the factorization built at construction.
struct FactorizationInfo {
  Vertex n = 0;
  EdgeId m = 0;              ///< input (unsplit) edges
  EdgeId split_edges = 0;    ///< multi-edges after splitting, all components
  std::int64_t copies = 0;   ///< uniform copies per edge (0 for leverage)
  int depth = 0;             ///< max chain depth over components
  int jacobi_terms = 0;
  Vertex components = 0;
  EdgeId stored_entries = 0;  ///< preconditioner memory proxy
};

/// The paper's parallel Laplacian solver (Theorems 1.1 / 1.2): edge
/// splitting, per-component BlockCholesky chains, and a preconditioned
/// Richardson outer loop behind a factor-once / solve-many interface.
class LaplacianSolver {
 public:
  /// Factorizes immediately. Throws on invalid input (negative weights,
  /// self-loops, out-of-range endpoints).
  explicit LaplacianSolver(const Multigraph& g, SolverOptions opts = {});

  /// Solves L x = b to relative accuracy eps. Returns per-solve stats.
  SolveStats solve(std::span<const double> b, std::span<double> x,
                   double eps);

  /// Solves one system per entry of `bs`, reusing the factorization and
  /// all workspaces (the factor-once / solve-many pattern; used by JL
  /// sketching and time-stepping). xs[i] receives the solution of bs[i].
  std::vector<SolveStats> solve_many(std::span<const Vector> bs,
                                     std::span<Vector> xs, double eps);

  /// Applies the block Cholesky preconditioner W (block-diagonal over
  /// components, kernel directions projected). Exposed for PCG-style
  /// outer iterations and diagnostics.
  void apply_preconditioner(std::span<const double> r,
                            std::span<double> y);

  /// One exact L-multiply of the *input* graph (for residual checks).
  void apply_laplacian(std::span<const double> x, std::span<double> y) const;

  [[nodiscard]] const FactorizationInfo& info() const noexcept {
    return info_;
  }
  [[nodiscard]] const SolverOptions& options() const noexcept { return opts_; }
  /// Per-level diagnostics of the (first / largest) component's chain.
  [[nodiscard]] const std::vector<LevelStats>& level_stats(
      std::size_t component = 0) const {
    return comps_.at(component).chain.level_stats();
  }
  [[nodiscard]] std::size_t num_components() const noexcept {
    return comps_.size();
  }

 private:
  struct ComponentSolver {
    std::vector<Vertex> vertices;  ///< global ids, ascending
    Multigraph graph;              ///< unsplit component graph (local ids)
    LaplacianOperator op;          ///< exact L of the component
    BlockCholeskyChain chain;
    ApplyWorkspace workspace;
    std::int64_t copies = 0;
    EdgeId split_edges = 0;
    double alpha_cache = 0.0;  ///< Richardson step from power iteration;
                               ///< reset on rebuild
    Vector b_local, x_local;  ///< gather/scatter scratch
  };

  void build_component(ComponentSolver& comp, std::int64_t copies_override);

  SolverOptions opts_;
  FactorizationInfo info_;
  std::vector<ComponentSolver> comps_;
};

}  // namespace parlap
