// Top-level parallel Laplacian solver (Theorems 1.1 and 1.2).
//
// LaplacianSolver ties the pipeline together:
//   input graph -> connected components -> per component:
//     alpha-bounding edge split (uniform, Lemma 3.2, = Thm 1.1; or by
//     leverage-score overestimates, Lemma 3.3, = Thm 1.2)
//     -> BlockCholesky chain (Algorithm 1) -> solve() drives
//     PreconRichardson (Algorithm 5) with ApplyCholesky (Algorithm 2) as
//     the constant-quality preconditioner.
//
// solve() accepts any right-hand side; the component of b in the kernel of
// L (per-component constants) is projected out, which is the standard
// least-squares convention for Laplacian systems. Residuals are reported
// relative to the projected b.
//
// If a solve stalls — possible when `split_scale` is tuned too low for the
// concentration bound of Thm 3.9 — and `adaptive` is set, the solve
// escalates to a refactorization with doubled split copies (at most
// `max_rebuilds` rounds). Escalation chains are built once, cached, and
// shared: round r's chain is a pure function of (graph, options, r), so a
// solve's outcome never depends on which caller first triggered a round.
//
// Concurrency: solve(), solve_many(), solve_panel(), and
// apply_preconditioner() are const and safe to call concurrently from
// any number of threads on one instance. Per-call scratch comes from a
// WorkspacePool; escalation chains are published under a mutex;
// Richardson step-size estimates are cached in atomics. Results are
// bit-identical regardless of interleaving and thread count.
//
// Blocked solves: every solve path runs on column-major Panels — solve()
// is a width-1 panel, solve_many() chunks its right-hand sides into
// panels of options().max_block_width — so one chain traversal per
// preconditioner application serves every column of a panel. Columns are
// arithmetically independent and ordered as the scalar kernels order
// them, so panel results are bit-identical, column for column, to
// sequential solve() calls at any block width.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/block_cholesky.hpp"
#include "core/leverage.hpp"
#include "core/richardson.hpp"
#include "graph/connectivity.hpp"
#include "graph/multigraph.hpp"
#include "linalg/laplacian_op.hpp"
#include "linalg/panel.hpp"
#include "parallel/workspace_pool.hpp"

namespace parlap {

/// How edges are multiplied into low-leverage parallel copies before
/// factorization.
enum class SplitStrategy {
  kUniform,   ///< Lemma 3.2 / Theorem 1.1
  kLeverage,  ///< Lemma 3.3 / Theorem 1.2
};

/// Tuning knobs for LaplacianSolver; the defaults reproduce the paper's
/// configuration at practical constants.
struct SolverOptions {
  std::uint64_t seed = 42;
  /// alpha^-1 = max(1, ceil(split_scale * ceil(log2 n)^2)) edge copies.
  /// Theory wants a large hidden constant; 0.1 is a practical default
  /// (Richardson absorbs the weaker concentration; `adaptive` rebuilds
  /// guard the tail). Ablated in bench E9.
  double split_scale = 0.1;
  SplitStrategy split = SplitStrategy::kUniform;
  LeverageOptions leverage;  ///< used when split == kLeverage
  BlockCholeskyOptions chain;
  RichardsonOptions richardson;
  /// Escalate to doubled split copies when Richardson stalls.
  bool adaptive = true;
  int max_rebuilds = 2;
  /// Storage precision of the factorization (support/precision.hpp).
  /// kFp64 (default): bit-identical to the pre-precision solver. kFp32:
  /// the chain's value arrays are float and the fp64 outer Richardson
  /// loop acts as iterative refinement — requested eps is met via extra
  /// outer iterations, never bitwise parity with fp64; if refinement
  /// stalls (operator too ill-conditioned for float storage), the solve
  /// escalates to an fp64 rebuild of the same factorization, then on to
  /// the usual doubled-copies rounds. kAuto resolves per graph size at
  /// construction (resolve_precision).
  Precision precision = Precision::kFp64;
  /// Panel width cap for solve_many(): right-hand sides are solved in
  /// blocks of at most this many columns, each block sharing one chain
  /// traversal per preconditioner application. 1 = sequential solves.
  int max_block_width = 8;
};

/// Per-solve outcome of LaplacianSolver::solve() (per right-hand side
/// for the panel paths).
struct SolveStats {
  int iterations = 0;              ///< max over components
  double relative_residual = 0.0;  ///< max over components
  bool converged = false;          ///< residual target reached
  int rebuilds = 0;                ///< escalation rounds used (sum)
  /// Wall seconds spent applying the chain preconditioner for this
  /// right-hand side; in a blocked solve, the panel's shared apply time
  /// divided evenly over its columns.
  double apply_seconds = 0.0;
};

/// Size and shape of the factorization built at construction.
struct FactorizationInfo {
  Vertex n = 0;
  EdgeId m = 0;              ///< input (unsplit) edges
  EdgeId split_edges = 0;    ///< multi-edges after splitting, all components
  std::int64_t copies = 0;   ///< uniform copies per edge (0 for leverage)
  int depth = 0;             ///< max chain depth over components
  int jacobi_terms = 0;
  Vertex components = 0;
  EdgeId stored_entries = 0;  ///< preconditioner memory proxy
  /// Resolved storage precision of the round-0 chains (kFp64 or kFp32;
  /// never kAuto — the constructor resolves it).
  Precision precision = Precision::kFp64;
  /// Value bytes held by the round-0 chains (fp32 counts half fp64's
  /// bytes for the same structure; the bytes-aware cache cost proxy).
  std::size_t stored_value_bytes = 0;
};

/// The paper's parallel Laplacian solver (Theorems 1.1 / 1.2): edge
/// splitting, per-component BlockCholesky chains, and a preconditioned
/// Richardson outer loop behind a factor-once / solve-many interface.
class LaplacianSolver {
 public:
  /// Factorizes immediately. Throws on invalid input (negative weights,
  /// self-loops, out-of-range endpoints).
  explicit LaplacianSolver(const Multigraph& g, SolverOptions opts = {});

  /// Solves L x = b to relative accuracy eps. Returns per-solve stats.
  /// Thread-safe; deterministic for fixed (b, eps).
  SolveStats solve(std::span<const double> b, std::span<double> x,
                   double eps) const;

  /// Solves one system per entry of `bs` as a true blocked solve: the
  /// right-hand sides are packed into column panels of at most
  /// options().max_block_width columns, and each panel shares one chain
  /// traversal per preconditioner application. xs[i] receives the
  /// solution of bs[i], bit-identical to solve(bs[i], xs[i], eps) at any
  /// block width and thread count. Thread-safe.
  std::vector<SolveStats> solve_many(std::span<const Vector> bs,
                                     std::span<Vector> xs, double eps) const;

  /// Solves all columns of `b` as one panel (x.col(c) receives the
  /// solution of b.col(c), bit-identical to a scalar solve of that
  /// column). The blocked primitive under solve_many(); exposed for
  /// callers that already hold panel data (SolveEngine). Thread-safe.
  std::vector<SolveStats> solve_panel(const Panel& b, Panel& x,
                                      double eps) const;

  /// Applies the block Cholesky preconditioner W (block-diagonal over
  /// components, kernel directions projected). Exposed for PCG-style
  /// outer iterations and diagnostics. Thread-safe.
  void apply_preconditioner(std::span<const double> r,
                            std::span<double> y) const;

  /// Blocked preconditioner apply: one chain traversal per component for
  /// the whole panel (bench E17's headline kernel). Column c equals
  /// apply_preconditioner on r.col(c). Thread-safe.
  void apply_preconditioner(const Panel& r, Panel& y) const;

  /// One exact L-multiply of the *input* graph (for residual checks).
  void apply_laplacian(std::span<const double> x, std::span<double> y) const;

  /// Describes the round-0 factorization (escalation rounds, when the
  /// adaptive path ever builds them, are not reflected here).
  [[nodiscard]] const FactorizationInfo& info() const noexcept {
    return info_;
  }
  [[nodiscard]] const SolverOptions& options() const noexcept { return opts_; }
  /// Aggregate build-phase telemetry of the round-0 factorizations
  /// (seconds and arena counters summed over components; per-level
  /// breakdown kept from the deepest chain). Escalation rounds built
  /// later by the adaptive path are not reflected, mirroring info().
  [[nodiscard]] const BuildStats& build_stats() const noexcept {
    return build_stats_;
  }
  /// Per-level diagnostics of the (first / largest) component's chain.
  [[nodiscard]] const std::vector<LevelStats>& level_stats(
      std::size_t component = 0) const {
    return comps_.at(component).rounds.front()->chain.level_stats();
  }
  [[nodiscard]] std::size_t num_components() const noexcept {
    return comps_.size();
  }

 private:
  /// One factorization of one component at one escalation round. The
  /// chain is immutable after construction; only the cached Richardson
  /// step size is written afterwards (atomically — the power iteration is
  /// deterministic, so racing writers store the same value).
  struct ChainRound {
    BlockCholeskyChain chain;
    std::int64_t copies = 0;
    EdgeId split_edges = 0;
    std::atomic<double> alpha_cache{0.0};
  };

  struct ComponentSolver {
    std::vector<Vertex> vertices;  ///< global ids, ascending
    Multigraph graph;              ///< unsplit component graph (local ids)
    LaplacianOperator op;          ///< exact L of the component
    /// rounds[0] is built at construction and read lock-free; slots
    /// 1..max_rebuilds are published on demand under rounds_mutex_
    /// (mutable: lazy escalation happens inside const solve()).
    mutable std::vector<std::shared_ptr<ChainRound>> rounds;
  };

  /// Per-call scratch, pooled so sequential solves reuse allocations
  /// while concurrent solves each hold their own. One ApplyWorkspace
  /// per component (a shared one would be re-prepared on every
  /// component switch — the identity check in prepare_workspace) plus
  /// the gather/scatter vectors.
  struct SolveScratch {
    std::vector<ApplyWorkspace> per_component;
    Vector b_local, x_local;
    /// Panel-path scratch: component-local panels, escalation sub-panels,
    /// and the global panels the span-based solve() wraps its input in.
    Panel pb_local, px_local, pb_sub, px_sub, pb_global, px_global;

    ApplyWorkspace& component_ws(std::size_t c, std::size_t total) {
      if (per_component.size() < total) per_component.resize(total);
      return per_component[c];
    }
  };

  /// Builds the chain for `round` (0 = the configured split; each later
  /// round doubles the copies of the previous one under a shifted seed).
  [[nodiscard]] std::shared_ptr<ChainRound> build_round(
      const ComponentSolver& comp, int round) const;

  /// Returns (building and publishing if necessary) `comp`'s chain for
  /// `round`. Deterministic: the result is independent of which thread
  /// gets there first.
  [[nodiscard]] std::shared_ptr<ChainRound> round_for(
      const ComponentSolver& comp, int round) const;

  /// Highest escalation round index a solve may reach. fp64 mode: the
  /// adaptive doubled-copies rounds (0 when !adaptive). fp32 mode: one
  /// extra rung — round 1 is the fp64 rebuild of round 0's parameters
  /// (always available, even with adaptive off: it rescues the precision
  /// contract, not the concentration bound), and the doubled-copies
  /// rounds follow.
  [[nodiscard]] int max_escalation_round() const noexcept {
    const int adaptive_rounds = opts_.adaptive ? opts_.max_rebuilds : 0;
    return adaptive_rounds +
           (opts_.precision == Precision::kFp32 ? 1 : 0);
  }

  /// The cached (or freshly estimated) Richardson step for `cr`,
  /// computed with the caller's workspace.
  [[nodiscard]] double step_size_for(const ComponentSolver& comp,
                                     ChainRound& cr,
                                     ApplyWorkspace& ws) const;

  /// The panel solve shared by solve(), solve_many(), and solve_panel().
  std::vector<SolveStats> solve_panel_impl(const Panel& b, Panel& x,
                                           double eps,
                                           SolveScratch& scratch) const;

  SolverOptions opts_;
  FactorizationInfo info_;
  BuildStats build_stats_;
  std::vector<ComponentSolver> comps_;
  mutable std::mutex rounds_mutex_;  ///< guards rounds[1..] publication
  mutable WorkspacePool<SolveScratch> scratch_pool_;
};

}  // namespace parlap
