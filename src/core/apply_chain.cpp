#include "core/apply_chain.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace parlap {

namespace {

/// Column-chunk width of the row kernels: per row, up to kColChunk
/// columns accumulate in a stack buffer while the row's CSR entries are
/// streamed once. Each column's arithmetic order is exactly the scalar
/// kernel's, whatever the chunking.
constexpr std::size_t kColChunk = 8;

}  // namespace

void ApplyChain::finalize(std::span<const EliminationLevel> staging,
                          Vertex n0, DenseMatrix base_pinv, Vertex base_n,
                          int jacobi_terms, std::uint64_t build_id) {
  PARLAP_CHECK(levels_.empty());  // finalize() runs once per chain
  n0_ = n0;
  base_pinv_ = std::move(base_pinv);
  base_n_ = base_n;
  jacobi_terms_ = jacobi_terms;
  build_id_ = build_id;

  std::size_t nf_total = 0;
  std::size_t nc_total = 0;
  std::size_t off_total = 0;
  std::size_t data_total = 0;
  for (const EliminationLevel& lvl : staging) {
    nf_total += static_cast<std::size_t>(lvl.nf);
    nc_total += static_cast<std::size_t>(lvl.nc);
    off_total += 2 * (static_cast<std::size_t>(lvl.nf) + 1) +
                 static_cast<std::size_t>(lvl.nc) + 1;
    data_total += lvl.ff.nbr.size() + lvl.fc.nbr.size() + lvl.cf.nbr.size();
  }
  levels_.reserve(staging.size());
  f_lists_.resize(nf_total);
  c_lists_.resize(nc_total);
  inv_x_.resize(nf_total);
  y_diag_.resize(nf_total);
  off_.resize(off_total);
  nbr_.resize(data_total);
  w_.resize(data_total);

  std::size_t f_pos = 0;
  std::size_t c_pos = 0;
  std::size_t off_pos = 0;
  std::size_t data_pos = 0;
  const auto pack_block = [&](const EliminationLevel::SubCsr& blk,
                              std::size_t rows) {
    const std::size_t base = off_pos;
    for (std::size_t i = 0; i <= rows; ++i) {
      off_[off_pos + i] = blk.off[i] + static_cast<EdgeId>(data_pos);
    }
    off_pos += rows + 1;
    std::copy(blk.nbr.begin(), blk.nbr.end(), nbr_.begin() + data_pos);
    std::copy(blk.w.begin(), blk.w.end(), w_.begin() + data_pos);
    data_pos += blk.nbr.size();
    return base;
  };

  for (const EliminationLevel& lvl : staging) {
    Level meta;
    meta.n = lvl.n;
    meta.nf = lvl.nf;
    meta.nc = lvl.nc;
    meta.f_base = f_pos;
    meta.c_base = c_pos;
    std::copy(lvl.f_list.begin(), lvl.f_list.end(), f_lists_.begin() + f_pos);
    std::copy(lvl.inv_x.begin(), lvl.inv_x.end(), inv_x_.begin() + f_pos);
    std::copy(lvl.y_diag.begin(), lvl.y_diag.end(), y_diag_.begin() + f_pos);
    f_pos += static_cast<std::size_t>(lvl.nf);
    std::copy(lvl.c_list.begin(), lvl.c_list.end(), c_lists_.begin() + c_pos);
    c_pos += static_cast<std::size_t>(lvl.nc);
    meta.ff_off = pack_block(lvl.ff, static_cast<std::size_t>(lvl.nf));
    meta.fc_off = pack_block(lvl.fc, static_cast<std::size_t>(lvl.nf));
    meta.cf_off = pack_block(lvl.cf, static_cast<std::size_t>(lvl.nc));
    levels_.push_back(meta);
  }
}

void ApplyChain::prepare_workspace(ApplyWorkspace& ws,
                                   std::size_t cols) const {
  // Identity check, not a shape check: two chains can agree on depth and
  // n0 yet differ at inner levels (e.g. escalation rounds of the same
  // component), so sizes alone cannot prove the workspace fits — and the
  // block width is part of the identity, so k=1 scratch is never reused
  // unsized for a wider panel.
  if (ws.prepared_for == build_id_ && ws.prepared_cols == cols) return;
  const std::size_t d = levels_.size();
  ws.level_vec.assign(d + 1, {});
  ws.level_yf.assign(d, {});
  std::size_t max_nf = 1;
  for (std::size_t k = 0; k < d; ++k) {
    ws.level_vec[k].resize(static_cast<std::size_t>(levels_[k].n) * cols);
    ws.level_yf[k].resize(static_cast<std::size_t>(levels_[k].nf) * cols);
    max_nf = std::max(max_nf, static_cast<std::size_t>(levels_[k].nf));
  }
  ws.level_vec[d].resize(static_cast<std::size_t>(base_n_) * cols);
  ws.jac_b.resize(max_nf * cols);
  ws.jac_cur.resize(max_nf * cols);
  ws.jac_tmp.resize(max_nf * cols);
  ws.scratch_f.resize(max_nf * cols);
  ws.scratch_f2.resize(max_nf * cols);
  ws.base_out.resize(static_cast<std::size_t>(base_n_) * cols);
  ws.prepared_for = build_id_;
  ws.prepared_cols = cols;
}

void ApplyChain::jacobi_solve(const Level& lvl, const double* b_f,
                              double* out, std::size_t cols,
                              ApplyWorkspace& ws) const {
  // Z b = sum_{i=0}^{l} X^-1 (-Y X^-1)^i b via the recurrence
  // x^(i) = X^-1 b - X^-1 Y x^(i-1)   (Algorithm 2, Jacobi procedure),
  // run on all `cols` columns per CSR sweep.
  const auto nf = static_cast<std::size_t>(lvl.nf);
  const double* inv_x = inv_x_.data() + lvl.f_base;
  const double* y_diag = y_diag_.data() + lvl.f_base;
  const EdgeId* off = off_.data() + lvl.ff_off;
  double* xb = ws.jac_b.data();
  double* cur = ws.jac_cur.data();
  double* tmp = ws.jac_tmp.data();

  parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
    for (std::size_t c = 0; c < cols; ++c) {
      xb[c * nf + i] = inv_x[i] * b_f[c * nf + i];
      cur[c * nf + i] = xb[c * nf + i];
    }
  });
  for (int it = 1; it <= jacobi_terms_; ++it) {
    // tmp = xb - X^-1 (Y cur), one CSR sweep for every column. cols == 1
    // keeps a scalar accumulator in a register (the hot path of every
    // single-RHS solve); wider panels chunk columns through a small
    // stack buffer — both orders are the scalar order per column.
    if (cols == 1) {
      parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
        const EdgeId lo = off[i];
        const EdgeId hi = off[i + 1];
        double acc = y_diag[i] * cur[i];
        for (EdgeId p = lo; p < hi; ++p) {
          acc -= w_[static_cast<std::size_t>(p)] *
                 cur[static_cast<std::size_t>(nbr_[static_cast<std::size_t>(p)])];
        }
        tmp[i] = xb[i] - inv_x[i] * acc;
      });
    } else {
      parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
        const EdgeId lo = off[i];
        const EdgeId hi = off[i + 1];
        for (std::size_t c0 = 0; c0 < cols; c0 += kColChunk) {
          const std::size_t cw = std::min(kColChunk, cols - c0);
          double acc[kColChunk];
          for (std::size_t cc = 0; cc < cw; ++cc) {
            acc[cc] = y_diag[i] * cur[(c0 + cc) * nf + i];
          }
          for (EdgeId p = lo; p < hi; ++p) {
            const auto t = static_cast<std::size_t>(nbr_[static_cast<std::size_t>(p)]);
            const Weight wp = w_[static_cast<std::size_t>(p)];
            for (std::size_t cc = 0; cc < cw; ++cc) {
              acc[cc] -= wp * cur[(c0 + cc) * nf + t];
            }
          }
          for (std::size_t cc = 0; cc < cw; ++cc) {
            tmp[(c0 + cc) * nf + i] = xb[(c0 + cc) * nf + i] - inv_x[i] * acc[cc];
          }
        }
      });
    }
    std::swap(cur, tmp);
  }
  parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
    for (std::size_t c = 0; c < cols; ++c) out[c * nf + i] = cur[c * nf + i];
  });
}

void ApplyChain::apply(std::span<const double> b, std::span<double> y,
                       ApplyWorkspace& ws) const {
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(n0_));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(n0_));
  apply_cols(b.data(), y.data(), 1, static_cast<std::size_t>(n0_), ws);
}

void ApplyChain::apply(const Panel& b, Panel& y, ApplyWorkspace& ws) const {
  PARLAP_CHECK(b.rows() == static_cast<std::size_t>(n0_));
  PARLAP_CHECK(b.cols() >= 1);
  y.resize(b.rows(), b.cols());
  apply_cols(b.data(), y.data(), b.cols(), b.rows(), ws);
}

void ApplyChain::apply_cols(const double* b, double* y, std::size_t cols,
                            std::size_t ld, ApplyWorkspace& ws) const {
  PARLAP_TRACE_SPAN_N(apply_span, "chain.apply", "apply");
  apply_span.arg("cols", static_cast<double>(cols));
  apply_span.arg("levels", static_cast<double>(levels_.size()));
  const WallTimer apply_timer;
  prepare_workspace(ws, cols);
  const std::size_t d = levels_.size();
  const auto n0 = static_cast<std::size_t>(n0_);

  for (std::size_t c = 0; c < cols; ++c) {
    std::copy(b + c * ld, b + c * ld + n0, ws.level_vec[0].data() + c * n0);
  }

  // Forward substitution (Algorithm 2, lines 3-5).
  for (std::size_t k = 0; k < d; ++k) {
    PARLAP_TRACE_SPAN_N(level_span, "chain.level", "apply");
    level_span.arg("level", static_cast<double>(k));
    level_span.arg("dir", 0.0);  // forward substitution
    const Level& lvl = levels_[k];
    const auto n = static_cast<std::size_t>(lvl.n);
    const auto nf = static_cast<std::size_t>(lvl.nf);
    const auto nc = static_cast<std::size_t>(lvl.nc);
    const double* vec = ws.level_vec[k].data();
    double* yf = ws.level_yf[k].data();
    const Vertex* f_list = f_lists_.data() + lvl.f_base;
    const Vertex* c_list = c_lists_.data() + lvl.c_base;

    // y_F = Z^(k) b_F
    double* bf = ws.scratch_f.data();
    parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
      const auto fi = static_cast<std::size_t>(f_list[i]);
      for (std::size_t c = 0; c < cols; ++c) {
        bf[c * nf + i] = vec[c * n + fi];
      }
    });
    jacobi_solve(lvl, bf, yf, cols, ws);

    // b^(k+1) = y_C = b_C - L_CF y_F = b_C + sum_{c~f} w * y_F[f]
    double* next = ws.level_vec[k + 1].data();
    const EdgeId* cf_off = off_.data() + lvl.cf_off;
    if (cols == 1) {
      parallel_for(std::size_t{0}, nc, [&](std::size_t j) {
        double acc = vec[static_cast<std::size_t>(c_list[j])];
        const EdgeId lo = cf_off[j];
        const EdgeId hi = cf_off[j + 1];
        for (EdgeId p = lo; p < hi; ++p) {
          acc += w_[static_cast<std::size_t>(p)] *
                 yf[static_cast<std::size_t>(nbr_[static_cast<std::size_t>(p)])];
        }
        next[j] = acc;
      });
    } else {
      parallel_for(std::size_t{0}, nc, [&](std::size_t j) {
        const auto cj = static_cast<std::size_t>(c_list[j]);
        const EdgeId lo = cf_off[j];
        const EdgeId hi = cf_off[j + 1];
        for (std::size_t c0 = 0; c0 < cols; c0 += kColChunk) {
          const std::size_t cw = std::min(kColChunk, cols - c0);
          double acc[kColChunk];
          for (std::size_t cc = 0; cc < cw; ++cc) {
            acc[cc] = vec[(c0 + cc) * n + cj];
          }
          for (EdgeId p = lo; p < hi; ++p) {
            const auto t = static_cast<std::size_t>(nbr_[static_cast<std::size_t>(p)]);
            const Weight wp = w_[static_cast<std::size_t>(p)];
            for (std::size_t cc = 0; cc < cw; ++cc) {
              acc[cc] += wp * yf[(c0 + cc) * nf + t];
            }
          }
          for (std::size_t cc = 0; cc < cw; ++cc) {
            next[(c0 + cc) * nc + j] = acc[cc];
          }
        }
      });
    }
  }

  // Base solve x^(d) = L_{G^(d)}^+ b^(d) (Algorithm 2, line 6): row-dot
  // products per column, identical order to DenseMatrix::apply.
  {
    const auto bn = static_cast<std::size_t>(base_n_);
    const double* in = ws.level_vec[d].data();
    double* out = ws.base_out.data();
    if (cols == 1) {
      parallel_for(std::size_t{0}, bn, [&](std::size_t i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < bn; ++j) {
          acc += base_pinv_(static_cast<int>(i), static_cast<int>(j)) * in[j];
        }
        out[i] = acc;
      });
    } else {
      parallel_for(std::size_t{0}, bn, [&](std::size_t i) {
        for (std::size_t c0 = 0; c0 < cols; c0 += kColChunk) {
          const std::size_t cw = std::min(kColChunk, cols - c0);
          double acc[kColChunk] = {};
          for (std::size_t j = 0; j < bn; ++j) {
            const double a =
                base_pinv_(static_cast<int>(i), static_cast<int>(j));
            for (std::size_t cc = 0; cc < cw; ++cc) {
              acc[cc] += a * in[(c0 + cc) * bn + j];
            }
          }
          for (std::size_t cc = 0; cc < cw; ++cc) {
            out[(c0 + cc) * bn + i] = acc[cc];
          }
        }
      });
    }
    std::copy(out, out + bn * cols, ws.level_vec[d].data());
  }

  // Backward substitution (lines 7-8): x_F = y_F - Z^(k) (L_FC x_C).
  for (std::size_t k = d; k-- > 0;) {
    PARLAP_TRACE_SPAN_N(level_span, "chain.level", "apply");
    level_span.arg("level", static_cast<double>(k));
    level_span.arg("dir", 1.0);  // backward substitution
    const Level& lvl = levels_[k];
    const auto n = static_cast<std::size_t>(lvl.n);
    const auto nf = static_cast<std::size_t>(lvl.nf);
    const auto nc = static_cast<std::size_t>(lvl.nc);
    const double* xc = ws.level_vec[k + 1].data();
    double* out = ws.level_vec[k].data();
    const double* yf = ws.level_yf[k].data();
    const Vertex* f_list = f_lists_.data() + lvl.f_base;
    const Vertex* c_list = c_lists_.data() + lvl.c_base;

    double* tf = ws.scratch_f.data();
    const EdgeId* fc_off = off_.data() + lvl.fc_off;
    if (cols == 1) {
      parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
        const EdgeId lo = fc_off[i];
        const EdgeId hi = fc_off[i + 1];
        double acc = 0.0;
        for (EdgeId p = lo; p < hi; ++p) {
          acc -= w_[static_cast<std::size_t>(p)] *
                 xc[static_cast<std::size_t>(nbr_[static_cast<std::size_t>(p)])];
        }
        tf[i] = acc;  // (L_FC x_C)_f
      });
    } else {
      parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
        const EdgeId lo = fc_off[i];
        const EdgeId hi = fc_off[i + 1];
        for (std::size_t c0 = 0; c0 < cols; c0 += kColChunk) {
          const std::size_t cw = std::min(kColChunk, cols - c0);
          double acc[kColChunk] = {};
          for (EdgeId p = lo; p < hi; ++p) {
            const auto t = static_cast<std::size_t>(nbr_[static_cast<std::size_t>(p)]);
            const Weight wp = w_[static_cast<std::size_t>(p)];
            for (std::size_t cc = 0; cc < cw; ++cc) {
              acc[cc] -= wp * xc[(c0 + cc) * nc + t];
            }
          }
          for (std::size_t cc = 0; cc < cw; ++cc) {
            tf[(c0 + cc) * nf + i] = acc[cc];  // (L_FC x_C)_f
          }
        }
      });
    }
    double* zf = ws.scratch_f2.data();
    jacobi_solve(lvl, tf, zf, cols, ws);

    parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
      const auto fi = static_cast<std::size_t>(f_list[i]);
      for (std::size_t c = 0; c < cols; ++c) {
        out[c * n + fi] = yf[c * nf + i] - zf[c * nf + i];
      }
    });
    parallel_for(std::size_t{0}, nc, [&](std::size_t j) {
      const auto cj = static_cast<std::size_t>(c_list[j]);
      for (std::size_t c = 0; c < cols; ++c) {
        out[c * n + cj] = xc[c * nc + j];
      }
    });
  }

  for (std::size_t c = 0; c < cols; ++c) {
    std::copy(ws.level_vec[0].data() + c * n0,
              ws.level_vec[0].data() + (c + 1) * n0, y + c * ld);
  }

  // Cumulative process-wide apply telemetry (references cached; the
  // per-apply cost is a few relaxed atomics against a >= microsecond
  // traversal).
  static obs::LatencyHistogram& apply_hist =
      obs::MetricsRegistry::global().histogram("parlap.chain.apply_seconds");
  static obs::Counter& applies =
      obs::MetricsRegistry::global().counter("parlap.chain.applies");
  apply_hist.record_seconds(apply_timer.seconds());
  applies.add();
}

}  // namespace parlap
