#include "core/apply_chain.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "linalg/kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace parlap {

namespace {

/// Cap on the bytes prefetched per packed array per level: enough for
/// every real level's index slice, bounded so a pathological level can't
/// flood the prefetch queue.
constexpr std::size_t kMaxPrefetchBytes = std::size_t{64} * 1024;

}  // namespace

void ApplyChain::finalize(std::span<const EliminationLevel> staging,
                          Vertex n0, DenseMatrix base_pinv, Vertex base_n,
                          int jacobi_terms, std::uint64_t build_id,
                          Precision storage) {
  PARLAP_CHECK(levels_.empty());  // finalize() runs once per chain
  PARLAP_CHECK(storage != Precision::kAuto);  // resolved before building
  n0_ = n0;
  storage_ = storage;
  const bool fp32 = storage == Precision::kFp32;
  // The dense base solve is the last persistent apply-path array: copy it
  // out of the (unaligned) DenseMatrix so it shares the packed arrays'
  // alignment and first-touch placement (narrowing to float here when the
  // chain stores fp32).
  const std::size_t base_elems =
      static_cast<std::size_t>(base_n) * static_cast<std::size_t>(base_n);
  if (fp32) {
    base_pinv_f_.resize(base_elems);
    std::transform(base_pinv.data(), base_pinv.data() + base_elems,
                   base_pinv_f_.data(),
                   [](double v) { return static_cast<float>(v); });
  } else {
    base_pinv_.resize(base_elems);
    std::copy(base_pinv.data(), base_pinv.data() + base_elems,
              base_pinv_.data());
  }
  base_n_ = base_n;
  jacobi_terms_ = jacobi_terms;
  build_id_ = build_id;

  std::size_t nf_total = 0;
  std::size_t nc_total = 0;
  std::size_t off_total = 0;
  std::size_t data_total = 0;
  for (const EliminationLevel& lvl : staging) {
    nf_total += static_cast<std::size_t>(lvl.nf);
    nc_total += static_cast<std::size_t>(lvl.nc);
    off_total += 2 * (static_cast<std::size_t>(lvl.nf) + 1) +
                 static_cast<std::size_t>(lvl.nc) + 1;
    data_total += lvl.ff.nbr.size() + lvl.fc.nbr.size() + lvl.cf.nbr.size();
  }
  levels_.reserve(staging.size());
  // AlignedBuffer growth first-touches the pages under the active
  // NumaPolicy: finalize runs on the engine worker that will traverse
  // the chain, so "local" placement lands the arrays on its node.
  f_lists_.resize(nf_total);
  c_lists_.resize(nc_total);
  off_.resize(off_total);
  nbr_.resize(data_total);
  if (fp32) {
    inv_x_f_.resize(nf_total);
    y_diag_f_.resize(nf_total);
    w_f_.resize(data_total);
  } else {
    inv_x_.resize(nf_total);
    y_diag_.resize(nf_total);
    w_.resize(data_total);
  }

  const auto narrow = [](double v) { return static_cast<float>(v); };
  std::size_t f_pos = 0;
  std::size_t c_pos = 0;
  std::size_t off_pos = 0;
  std::size_t data_pos = 0;
  const auto pack_block = [&](const EliminationLevel::SubCsr& blk,
                              std::size_t rows) {
    const std::size_t base = off_pos;
    for (std::size_t i = 0; i <= rows; ++i) {
      off_[off_pos + i] = blk.off[i] + static_cast<EdgeId>(data_pos);
    }
    off_pos += rows + 1;
    std::copy(blk.nbr.begin(), blk.nbr.end(), nbr_.begin() + data_pos);
    if (fp32) {
      std::transform(blk.w.begin(), blk.w.end(), w_f_.begin() + data_pos,
                     narrow);
    } else {
      std::copy(blk.w.begin(), blk.w.end(), w_.begin() + data_pos);
    }
    data_pos += blk.nbr.size();
    return base;
  };

  for (const EliminationLevel& lvl : staging) {
    Level meta;
    meta.n = lvl.n;
    meta.nf = lvl.nf;
    meta.nc = lvl.nc;
    meta.f_base = f_pos;
    meta.c_base = c_pos;
    std::copy(lvl.f_list.begin(), lvl.f_list.end(), f_lists_.begin() + f_pos);
    if (fp32) {
      std::transform(lvl.inv_x.begin(), lvl.inv_x.end(),
                     inv_x_f_.begin() + f_pos, narrow);
      std::transform(lvl.y_diag.begin(), lvl.y_diag.end(),
                     y_diag_f_.begin() + f_pos, narrow);
    } else {
      std::copy(lvl.inv_x.begin(), lvl.inv_x.end(), inv_x_.begin() + f_pos);
      std::copy(lvl.y_diag.begin(), lvl.y_diag.end(), y_diag_.begin() + f_pos);
    }
    f_pos += static_cast<std::size_t>(lvl.nf);
    std::copy(lvl.c_list.begin(), lvl.c_list.end(), c_lists_.begin() + c_pos);
    c_pos += static_cast<std::size_t>(lvl.nc);
    meta.ff_off = pack_block(lvl.ff, static_cast<std::size_t>(lvl.nf));
    meta.fc_off = pack_block(lvl.fc, static_cast<std::size_t>(lvl.nf));
    meta.cf_off = pack_block(lvl.cf, static_cast<std::size_t>(lvl.nc));
    levels_.push_back(meta);
  }
}

template <typename T>
void ApplyChain::prepare_workspace(ApplyWorkspace& ws,
                                   std::size_t cols) const {
  // Identity check, not a shape check: two chains can agree on depth and
  // n0 yet differ at inner levels (e.g. escalation rounds of the same
  // component), so sizes alone cannot prove the workspace fits — and the
  // block width is part of the identity, so k=1 scratch is never reused
  // unsized for a wider panel. A chain's storage precision is fixed, so
  // the id also pins which of the two buffer sets was sized.
  if (ws.prepared_for == build_id_ && ws.prepared_cols == cols) return;
  ApplyBuffers<T>& buf = ws.buffers<T>();
  const std::size_t d = levels_.size();
  buf.level_vec.resize(d + 1);
  buf.level_yf.resize(d);
  std::size_t max_nf = 1;
  for (std::size_t k = 0; k < d; ++k) {
    buf.level_vec[k].resize(static_cast<std::size_t>(levels_[k].n) * cols);
    buf.level_yf[k].resize(static_cast<std::size_t>(levels_[k].nf) * cols);
    max_nf = std::max(max_nf, static_cast<std::size_t>(levels_[k].nf));
  }
  buf.level_vec[d].resize(static_cast<std::size_t>(base_n_) * cols);
  buf.jac_b.resize(max_nf * cols);
  buf.jac_cur.resize(max_nf * cols);
  buf.jac_tmp.resize(max_nf * cols);
  buf.scratch_f.resize(max_nf * cols);
  buf.scratch_f2.resize(max_nf * cols);
  buf.base_out.resize(static_cast<std::size_t>(base_n_) * cols);
  ws.prepared_for = build_id_;
  ws.prepared_cols = cols;
}

template <typename T>
void ApplyChain::jacobi_solve(const Level& lvl, const T* b_f,
                              T* out, std::size_t cols,
                              ApplyWorkspace& ws) const {
  // Z b = sum_{i=0}^{l} X^-1 (-Y X^-1)^i b via the recurrence
  // x^(i) = X^-1 b - X^-1 Y x^(i-1)   (Algorithm 2, Jacobi procedure),
  // run on all `cols` columns per CSR sweep. Buffers are interleaved
  // (row i's columns contiguous); the sweep itself is the dispatched
  // csr_jacobi kernel.
  const auto nf = static_cast<std::size_t>(lvl.nf);
  const T* inv_x = inv_x_data<T>() + lvl.f_base;
  const T* y_diag = y_diag_data<T>() + lvl.f_base;
  const EdgeId* off = off_.data() + lvl.ff_off;
  ApplyBuffers<T>& buf = ws.buffers<T>();
  T* xb = buf.jac_b.data();
  T* cur = buf.jac_cur.data();
  T* tmp = buf.jac_tmp.data();
  const kernels::KernelTableT<T>& kt = kernels::active_for<T>();

  parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
    // Native-T product: for float this equals the widen-multiply-narrow
    // sequence bit for bit (a float product rounds once either way).
    for (std::size_t c = 0; c < cols; ++c) {
      xb[i * cols + c] = static_cast<T>(inv_x[i] * b_f[i * cols + c]);
      cur[i * cols + c] = xb[i * cols + c];
    }
  });
  for (int it = 1; it <= jacobi_terms_; ++it) {
    // tmp = xb - X^-1 (Y cur), one CSR sweep for every column; each
    // column's arithmetic order is the scalar kernel's at every dispatch
    // level (lane = column, no FMA).
    kernels::for_row_blocks(nf, [&](std::size_t lo, std::size_t hi) {
      kt.csr_jacobi(lo, hi, cols, off, nbr_.data(), w_data<T>(), inv_x,
                    y_diag, xb, cur, tmp);
    });
    std::swap(cur, tmp);
  }
  std::memcpy(out, cur, nf * cols * sizeof(T));
}

void ApplyChain::apply(std::span<const double> b, std::span<double> y,
                       ApplyWorkspace& ws) const {
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(n0_));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(n0_));
  apply_cols(b.data(), y.data(), 1, static_cast<std::size_t>(n0_), ws);
}

void ApplyChain::apply(const Panel& b, Panel& y, ApplyWorkspace& ws) const {
  PARLAP_CHECK(b.rows() == static_cast<std::size_t>(n0_));
  PARLAP_CHECK(b.cols() >= 1);
  y.resize(b.rows(), b.cols());
  apply_cols(b.data(), y.data(), b.cols(), b.rows(), ws);
}

template <typename T>
void ApplyChain::prefetch_level(std::size_t k) const {
  const Level& lvl = levels_[k];
  const auto nf = static_cast<std::size_t>(lvl.nf);
  const auto nc = static_cast<std::size_t>(lvl.nc);
  const auto cap = [](std::size_t bytes) {
    return std::min(bytes, kMaxPrefetchBytes);
  };
  kernels::prefetch_bytes(f_lists_.data() + lvl.f_base, cap(nf * sizeof(Vertex)));
  kernels::prefetch_bytes(c_lists_.data() + lvl.c_base, cap(nc * sizeof(Vertex)));
  kernels::prefetch_bytes(inv_x_data<T>() + lvl.f_base, cap(nf * sizeof(T)));
  kernels::prefetch_bytes(y_diag_data<T>() + lvl.f_base, cap(nf * sizeof(T)));
  // The three offset rows are packed consecutively (ff, fc, cf), as is
  // the level's nbr_/w_ data range they delimit.
  const std::size_t off_len = 2 * (nf + 1) + nc + 1;
  kernels::prefetch_bytes(off_.data() + lvl.ff_off, cap(off_len * sizeof(EdgeId)));
  const auto data_lo = static_cast<std::size_t>(off_[lvl.ff_off]);
  const auto data_hi = static_cast<std::size_t>(off_[lvl.cf_off + nc]);
  const std::size_t data_len = data_hi - data_lo;
  kernels::prefetch_bytes(nbr_.data() + data_lo, cap(data_len * sizeof(Vertex)));
  kernels::prefetch_bytes(w_data<T>() + data_lo, cap(data_len * sizeof(T)));
}

void ApplyChain::apply_cols(const double* b, double* y, std::size_t cols,
                            std::size_t ld, ApplyWorkspace& ws) const {
  if (storage_ == Precision::kFp32) {
    apply_cols_t<float>(b, y, cols, ld, ws);
  } else {
    apply_cols_t<double>(b, y, cols, ld, ws);
  }
}

template <typename T>
void ApplyChain::apply_cols_t(const double* b, double* y, std::size_t cols,
                              std::size_t ld, ApplyWorkspace& ws) const {
  PARLAP_TRACE_SPAN_N(apply_span, "chain.apply", "apply");
  apply_span.arg("cols", static_cast<double>(cols));
  apply_span.arg("levels", static_cast<double>(levels_.size()));
  const WallTimer apply_timer;
  prepare_workspace<T>(ws, cols);
  ApplyBuffers<T>& buf = ws.buffers<T>();
  const std::size_t d = levels_.size();
  const auto n0 = static_cast<std::size_t>(n0_);
  const kernels::KernelTableT<T>& kt = kernels::active_for<T>();

  // Panel (column-major, leading dimension ld) -> interleaved workspace.
  // cols == 1 degenerates to a straight copy (fp32 chains narrow here:
  // the panel stays double at the API surface).
  {
    T* v0 = buf.level_vec[0].data();
    parallel_for(std::size_t{0}, n0, [&](std::size_t i) {
      for (std::size_t c = 0; c < cols; ++c) {
        v0[i * cols + c] = static_cast<T>(b[c * ld + i]);
      }
    });
  }

  // Forward substitution (Algorithm 2, lines 3-5).
  for (std::size_t k = 0; k < d; ++k) {
    PARLAP_TRACE_SPAN_N(level_span, "chain.level", "apply");
    level_span.arg("level", static_cast<double>(k));
    level_span.arg("dir", 0.0);  // forward substitution
    const Level& lvl = levels_[k];
    const auto nf = static_cast<std::size_t>(lvl.nf);
    const auto nc = static_cast<std::size_t>(lvl.nc);
    const T* vec = buf.level_vec[k].data();
    T* yf = buf.level_yf[k].data();
    const Vertex* f_list = f_lists_.data() + lvl.f_base;
    const Vertex* c_list = c_lists_.data() + lvl.c_base;

    // Pull the NEXT level's packed slices toward the cache while this
    // level's sweeps run out of the current one.
    if (k + 1 < d) prefetch_level<T>(k + 1);

    // y_F = Z^(k) b_F — gather the F rows (contiguous per row in the
    // interleaved layout), then the Jacobi series.
    T* bf = buf.scratch_f.data();
    parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
      const auto fi = static_cast<std::size_t>(f_list[i]);
      std::memcpy(bf + i * cols, vec + fi * cols, cols * sizeof(T));
    });
    jacobi_solve<T>(lvl, bf, yf, cols, ws);

    // b^(k+1) = y_C = b_C - L_CF y_F = b_C + sum_{c~f} w * y_F[f]
    T* next = buf.level_vec[k + 1].data();
    const EdgeId* cf_off = off_.data() + lvl.cf_off;
    kernels::for_row_blocks(nc, [&](std::size_t lo, std::size_t hi) {
      kt.csr_fwd(lo, hi, cols, cf_off, nbr_.data(), w_data<T>(), c_list, vec,
                 yf, next);
    });
  }

  // Base solve x^(d) = L_{G^(d)}^+ b^(d) (Algorithm 2, line 6): row-dot
  // products per column, identical order to DenseMatrix::apply.
  {
    const auto bn = static_cast<std::size_t>(base_n_);
    const T* in = buf.level_vec[d].data();
    T* out = buf.base_out.data();
    kernels::for_row_blocks(bn, [&](std::size_t lo, std::size_t hi) {
      kt.dense_rows(lo, hi, cols, bn, base_pinv_data<T>(), in, out);
    });
    std::memcpy(buf.level_vec[d].data(), out, bn * cols * sizeof(T));
  }

  // Backward substitution (lines 7-8): x_F = y_F - Z^(k) (L_FC x_C).
  for (std::size_t k = d; k-- > 0;) {
    PARLAP_TRACE_SPAN_N(level_span, "chain.level", "apply");
    level_span.arg("level", static_cast<double>(k));
    level_span.arg("dir", 1.0);  // backward substitution
    const Level& lvl = levels_[k];
    const auto nf = static_cast<std::size_t>(lvl.nf);
    const auto nc = static_cast<std::size_t>(lvl.nc);
    const T* xc = buf.level_vec[k + 1].data();
    T* out = buf.level_vec[k].data();
    const T* yf = buf.level_yf[k].data();
    const Vertex* f_list = f_lists_.data() + lvl.f_base;
    const Vertex* c_list = c_lists_.data() + lvl.c_base;

    // Walking back up the chain: the PREVIOUS level's slices are next.
    if (k > 0) prefetch_level<T>(k - 1);

    T* tf = buf.scratch_f.data();
    const EdgeId* fc_off = off_.data() + lvl.fc_off;
    kernels::for_row_blocks(nf, [&](std::size_t lo, std::size_t hi) {
      kt.csr_bwd(lo, hi, cols, fc_off, nbr_.data(), w_data<T>(), xc, tf);
    });
    T* zf = buf.scratch_f2.data();
    jacobi_solve<T>(lvl, tf, zf, cols, ws);

    parallel_for(std::size_t{0}, nf, [&](std::size_t i) {
      const auto fi = static_cast<std::size_t>(f_list[i]);
      // Native-T difference: bit-equal to widen-subtract-narrow.
      for (std::size_t c = 0; c < cols; ++c) {
        out[fi * cols + c] =
            static_cast<T>(yf[i * cols + c] - zf[i * cols + c]);
      }
    });
    parallel_for(std::size_t{0}, nc, [&](std::size_t j) {
      const auto cj = static_cast<std::size_t>(c_list[j]);
      std::memcpy(out + cj * cols, xc + j * cols, cols * sizeof(T));
    });
  }

  // Interleaved workspace -> panel (column-major, leading dimension ld;
  // float->double widening is exact, so pack-out never rounds).
  {
    const T* v0 = buf.level_vec[0].data();
    parallel_for(std::size_t{0}, n0, [&](std::size_t i) {
      for (std::size_t c = 0; c < cols; ++c) {
        y[c * ld + i] = static_cast<double>(v0[i * cols + c]);
      }
    });
  }

  // Cumulative process-wide apply telemetry (references cached; the
  // per-apply cost is a few relaxed atomics against a >= microsecond
  // traversal).
  static obs::LatencyHistogram& apply_hist =
      obs::MetricsRegistry::global().histogram("parlap.chain.apply_seconds");
  static obs::Counter& applies =
      obs::MetricsRegistry::global().counter("parlap.chain.applies");
  apply_hist.record_seconds(apply_timer.seconds());
  applies.add();
}

template void ApplyChain::apply_cols_t<double>(const double*, double*,
                                               std::size_t, std::size_t,
                                               ApplyWorkspace&) const;
template void ApplyChain::apply_cols_t<float>(const double*, double*,
                                              std::size_t, std::size_t,
                                              ApplyWorkspace&) const;

}  // namespace parlap
