// Random spanning tree sampling via Wilson's algorithm [Wil96].
//
// The paper's §1 traces a long line of work connecting random walks,
// Schur complements, and spanning-tree sampling [Bro89; Ald90; Wil96;
// KM09; MST14; DPPR17; DKPRS17; Sch18] — TerminalWalks is the same
// walk-to-terminals primitive that powers those samplers. This module
// provides the exact classic: loop-erased random walks give a tree T with
// probability proportional to prod_{e in T} w(e) (the weighted uniform
// spanning tree distribution), verifiable against the matrix-tree
// theorem.
#pragma once

#include <cstdint>

#include "graph/multigraph.hpp"

namespace parlap {

struct SpanningTreeStats {
  std::int64_t walk_steps = 0;    ///< total steps including erased loops
  std::int64_t erased_steps = 0;  ///< steps discarded by loop erasure
};

/// Samples one weighted-uniform spanning tree of connected `g`. Returns a
/// multigraph with the same vertex set and exactly n-1 edges (with the
/// sampled multi-edge weights). Deterministic per (graph, seed).
[[nodiscard]] Multigraph sample_spanning_tree(const Multigraph& g,
                                              std::uint64_t seed,
                                              SpanningTreeStats* stats = nullptr);

/// Total spanning-tree weight sum_T prod_{e in T} w(e), computed densely
/// by the matrix-tree theorem (any cofactor of L). Test/benchmark oracle;
/// O(n^3), intended for small graphs.
[[nodiscard]] double spanning_tree_weight_dense(const Multigraph& g);

}  // namespace parlap
