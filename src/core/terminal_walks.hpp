// C-terminal random walks for Schur complement approximation
// (Algorithm 4, §3.4, §5).
//
// For every multi-edge e = (u, v), two independent weighted random walks
// run from u and from v until they first hit the terminal set C. If the
// terminals differ, one multi-edge between them is emitted with weight
// 1 / sum_{f in W(e)} 1/w(f) — the harmonic composition along the spliced
// walk. The output multigraph H satisfies:
//   * E[L_H] = SC(L_G, C)                      (Lemma 5.1, unbiased)
//   * every emitted edge is alpha-bounded      (Lemma 5.2, via the
//     effective-resistance triangle inequality)
//   * |E(H)| <= |E(G)|                         (Lemma 5.4)
// and when F = V\C is 5-DD each step escapes to C with probability >= 4/5,
// so walks have O(1) expected and O(log m) maximum length w.h.p.
//
// Walks only ever step while inside F, so the adjacency structure and the
// per-vertex alias tables (Lemma 2.6 sampling) are built for F rows only —
// O(vol(F)) space instead of O(m). Each edge owns a counter-based RNG
// stream keyed by (seed, level, edge index) and the output is compacted by
// prefix scan in input-edge order, so the result is identical under any
// thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/multigraph.hpp"

namespace parlap {

struct WalkOptions {
  /// Maximum steps per walk before the walk is retried with fresh
  /// randomness. 0 = auto (32 + 16 ceil(log2 m)). With escape probability
  /// >= 4/5 a cap this size is hit with probability ~5^-cap.
  int max_walk_steps = 0;
  /// Hard failure after this many retries of one walk (indicates the
  /// F = V\C set is not almost-independent, i.e. misuse).
  int max_retries = 64;
};

struct WalkStats {
  EdgeId edges_in = 0;
  EdgeId edges_out = 0;
  EdgeId dropped_loops = 0;      ///< walks that closed on one terminal
  std::int64_t total_steps = 0;  ///< sum of |W1| + |W2| over all edges
  int max_walk_len = 0;          ///< longest single walk (steps)
  std::int64_t retries = 0;

  void accumulate(const WalkStats& other) {
    edges_in += other.edges_in;
    edges_out += other.edges_out;
    dropped_loops += other.dropped_loops;
    total_steps += other.total_steps;
    max_walk_len = max_walk_len > other.max_walk_len ? max_walk_len
                                                     : other.max_walk_len;
    retries += other.retries;
  }
};

/// Adjacency of the F = V\C rows only (complete incident edge lists),
/// with a Walker alias table per row for O(1) weighted steps.
struct WalkGraph {
  std::vector<EdgeId> off;          ///< size nf+1, rows by F-position
  std::vector<Vertex> nbr;          ///< step targets (graph-local ids)
  std::vector<Weight> w;            ///< step edge weights
  std::vector<double> prob;         ///< alias structure, aligned with nbr
  std::vector<std::int32_t> alias;

  [[nodiscard]] Vertex rows() const noexcept {
    return static_cast<Vertex>(off.empty() ? 0 : off.size() - 1);
  }
  [[nodiscard]] EdgeId volume() const noexcept {
    return off.empty() ? 0 : off.back();
  }
};

/// Builds the F-row adjacency + alias tables. `f_index[v]` gives v's
/// F-position or kInvalidVertex; `nf` counts F vertices. O(m) scan work,
/// O(vol(F)) output, deterministic.
[[nodiscard]] WalkGraph build_walk_graph(const Multigraph& g,
                                         std::span<const Vertex> f_index,
                                         Vertex nf);

/// Runs Algorithm 4. `c_index[v]` gives v's id in the output vertex space
/// for terminals and kInvalidVertex inside F; exactly one of
/// f_index/c_index must be valid per vertex. Returns the sampled
/// approximation of SC(L, C) on vertex set [0, num_c).
[[nodiscard]] Multigraph terminal_walks(const Multigraph& g,
                                        const WalkGraph& walk_graph,
                                        std::span<const Vertex> f_index,
                                        std::span<const Vertex> c_index,
                                        Vertex num_c, std::uint64_t seed,
                                        std::uint64_t level,
                                        WalkStats* stats = nullptr,
                                        const WalkOptions& opts = {});

}  // namespace parlap
