// C-terminal random walks for Schur complement approximation
// (Algorithm 4, §3.4, §5).
//
// For every multi-edge e = (u, v), two independent weighted random walks
// run from u and from v until they first hit the terminal set C. If the
// terminals differ, one multi-edge between them is emitted with weight
// 1 / sum_{f in W(e)} 1/w(f) — the harmonic composition along the spliced
// walk. The output multigraph H satisfies:
//   * E[L_H] = SC(L_G, C)                      (Lemma 5.1, unbiased)
//   * every emitted edge is alpha-bounded      (Lemma 5.2, via the
//     effective-resistance triangle inequality)
//   * |E(H)| <= |E(G)|                         (Lemma 5.4)
// and when F = V\C is 5-DD each step escapes to C with probability >= 4/5,
// so walks have O(1) expected and O(log m) maximum length w.h.p.
//
// Walks only ever step while inside F, so the adjacency structure and the
// per-vertex alias tables (Lemma 2.6 sampling) are built for F rows only —
// O(vol(F)) space instead of O(m). Each edge owns a counter-based RNG
// stream keyed by (seed, level, edge index) and the output is compacted by
// prefix scan in input-edge order, so the result is identical under any
// thread count.
//
// Allocation discipline: both stages come in two flavors. The returning
// overloads allocate fresh containers (tests, one-shot callers); the
// `*_into` overloads write into caller-provided storage — WalkGraph rows
// and Schur-sample edge arrays are resized in place, so a caller that
// keeps the buffers alive (ChainBuildArena) pays zero steady-state
// allocations across levels and across builds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/multigraph.hpp"

namespace parlap {

struct WalkOptions {
  /// Maximum steps per walk before the walk is retried with fresh
  /// randomness. 0 = auto (32 + 16 ceil(log2 m)). With escape probability
  /// >= 4/5 a cap this size is hit with probability ~5^-cap.
  int max_walk_steps = 0;
  /// Hard failure after this many retries of one walk (indicates the
  /// F = V\C set is not almost-independent, i.e. misuse).
  int max_retries = 64;
};

struct WalkStats {
  EdgeId edges_in = 0;
  EdgeId edges_out = 0;
  EdgeId dropped_loops = 0;      ///< walks that closed on one terminal
  std::int64_t total_steps = 0;  ///< sum of |W1| + |W2| over all edges
  int max_walk_len = 0;          ///< longest single walk (steps)
  std::int64_t retries = 0;

  void accumulate(const WalkStats& other) {
    edges_in += other.edges_in;
    edges_out += other.edges_out;
    dropped_loops += other.dropped_loops;
    total_steps += other.total_steps;
    max_walk_len = max_walk_len > other.max_walk_len ? max_walk_len
                                                     : other.max_walk_len;
    retries += other.retries;
  }
};

/// Adjacency of the F = V\C rows only (complete incident edge lists),
/// with a Walker alias table per row for O(1) weighted steps.
struct WalkGraph {
  std::vector<EdgeId> off;          ///< size nf+1, rows by F-position
  std::vector<Vertex> nbr;          ///< step targets (graph-local ids)
  std::vector<Weight> w;            ///< step edge weights
  std::vector<double> prob;         ///< alias structure, aligned with nbr
  std::vector<std::int32_t> alias;

  [[nodiscard]] Vertex rows() const noexcept {
    return static_cast<Vertex>(off.empty() ? 0 : off.size() - 1);
  }
  [[nodiscard]] EdgeId volume() const noexcept {
    return off.empty() ? 0 : off.back();
  }
};

/// Counting-sort scratch reused across build_walk_graph_into calls
/// (chunk-local histograms and running bases).
struct WalkBuildScratch {
  std::vector<EdgeId> hist;
  std::vector<EdgeId> base;
};

/// Per-edge staging reused across terminal_walks_into calls: walk
/// endpoints/weights per input edge plus the keep flags the compaction
/// scans.
struct TerminalWalkScratch {
  std::vector<Vertex> out_u;
  std::vector<Vertex> out_v;
  std::vector<Weight> out_w;
  std::vector<EdgeId> keep;
};

/// Builds the F-row adjacency + alias tables into `out`, reusing its
/// storage (and `scratch`) when capacities suffice. `f_index[v]` gives
/// v's F-position or kInvalidVertex; `nf` counts F vertices. O(m) scan
/// work, O(vol(F)) output, deterministic.
void build_walk_graph_into(MultigraphView g, std::span<const Vertex> f_index,
                           Vertex nf, WalkGraph& out,
                           WalkBuildScratch& scratch);

/// Allocating convenience over build_walk_graph_into.
[[nodiscard]] WalkGraph build_walk_graph(MultigraphView g,
                                         std::span<const Vertex> f_index,
                                         Vertex nf);

/// Runs Algorithm 4 (the terminal-walk Schur sample), emitting the
/// compacted output edges into `out_u`/`out_v`/`out_w` (resized to the
/// kept count, capacities reused). `c_index[v]` gives v's id in the
/// output vertex space for terminals and kInvalidVertex inside F; exactly
/// one of f_index/c_index must be valid per vertex. The sampled graph
/// approximates SC(L, C) on vertex set [0, num_c).
void sample_schur_complement(MultigraphView g, const WalkGraph& walk_graph,
                             std::span<const Vertex> f_index,
                             std::span<const Vertex> c_index, Vertex num_c,
                             std::uint64_t seed, std::uint64_t level,
                             WalkStats* stats, const WalkOptions& opts,
                             TerminalWalkScratch& scratch,
                             std::vector<Vertex>& out_u,
                             std::vector<Vertex>& out_v,
                             std::vector<Weight>& out_w);

/// Allocating convenience over sample_schur_complement: returns the
/// sampled approximation of SC(L, C) as an owning Multigraph (buffer
/// adoption, no copy).
[[nodiscard]] Multigraph terminal_walks(MultigraphView g,
                                        const WalkGraph& walk_graph,
                                        std::span<const Vertex> f_index,
                                        std::span<const Vertex> c_index,
                                        Vertex num_c, std::uint64_t seed,
                                        std::uint64_t level,
                                        WalkStats* stats = nullptr,
                                        const WalkOptions& opts = {});

}  // namespace parlap
