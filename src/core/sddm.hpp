// SDDM systems and Dirichlet (boundary-value) problems via grounding.
//
// An SDDM matrix M = L_G + diag(excess) with excess >= 0 (equivalently: a
// symmetric diagonally dominant M-matrix) reduces to a pure Laplacian by
// *grounding*: add one ground vertex g with an edge (i, g) of weight
// excess_i; then L' restricted to the original rows is exactly M, and
// M x = b is solved by one singular solve on L' (Gremban's reduction).
// This is the standard route by which Laplacian solvers (this paper
// included, via [ST04]) handle the wider SDD class.
//
// solve_dirichlet fixes prescribed values on a boundary set and solves
// the harmonic extension for the interior — the primitive behind
// semi-supervised label propagation [ZGL03] and finite-difference
// boundary-value problems [BHV08].
#pragma once

#include <span>

#include "core/solver.hpp"
#include "graph/multigraph.hpp"

namespace parlap {

/// Solver for M x = b with M = L_G + diag(excess), excess >= 0.
///
/// When excess is identically zero on some connected component, that block
/// of M is singular (a pure Laplacian); the solve then returns the
/// least-squares solution on that component, as LaplacianSolver does.
class SddmSolver {
 public:
  SddmSolver(const Multigraph& g, std::span<const double> excess,
             SolverOptions opts = {});

  /// Solves M x = b to relative residual eps.
  SolveStats solve(std::span<const double> b, std::span<double> x,
                   double eps);

  [[nodiscard]] Vertex dimension() const noexcept { return n_; }
  [[nodiscard]] const FactorizationInfo& info() const noexcept {
    return solver_.info();
  }

 private:
  Vertex n_ = 0;
  bool grounded_ = false;  ///< true iff any excess > 0
  LaplacianSolver solver_;  ///< over the grounded graph
  Vector b_ext_, x_ext_;    ///< scratch of size n+1
};

/// Solves the Dirichlet problem on `g`: find x with x = boundary_values on
/// `boundary` and (L x)_i = interior_rhs_i for interior vertices i
/// (interior_rhs = 0 gives the harmonic extension). `x` must have size n;
/// boundary entries are overwritten with the prescribed values.
///
/// `interior_rhs` has one entry per *interior* vertex, ordered by
/// ascending vertex id (pass {} for all-zero).
SolveStats solve_dirichlet(const Multigraph& g,
                           std::span<const Vertex> boundary,
                           std::span<const double> boundary_values,
                           std::span<const double> interior_rhs,
                           std::span<double> x, double eps,
                           const SolverOptions& opts = {});

}  // namespace parlap
