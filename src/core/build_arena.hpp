// ChainBuildArena — recycled scratch for chain construction (Algorithm 1).
//
// BlockCholeskyChain::build is a per-level pipeline (5-DD selection ->
// F-row adjacency + alias tables -> terminal-walk Schur sample -> level
// extraction) that historically materialized fresh heap structures at
// every level: a full copy of the input graph, a new WalkGraph, a new
// Multigraph for G^(k+1), fresh index maps. The arena owns all of that
// transient state instead, sized high-water-mark style and recycled
// across levels *and across builds*:
//
//   * two EdgeBuffers double-buffer the level graphs — G^(k) is read from
//     one while the terminal-walk sample of G^(k+1) is emitted into the
//     other, then the roles swap (level 0 reads the caller's graph
//     directly through MultigraphView, so nothing is ever copied);
//   * WalkGraph rows/alias tables, F/C index maps, weighted-degree
//     vectors, counting-sort histograms, and the 5-DD sampling buffers
//     all live here and are resized (never reallocated, once warm) per
//     level.
//
// The per-level sub-CSRs and f/c lists are staged in arena-recycled
// EliminationLevel buffers too; only the chain's own outputs — the
// packed ApplyChain arrays and the dense base pseudo-inverse — are
// allocated to persist. Those finalized arrays leave the arena through
// ApplyChain::finalize into 64-byte-aligned kernels::AlignedBuffer
// storage whose pages are first-touched under the active NUMA policy by
// the finalizing worker thread — the arena itself stays plain-vector
// scratch on whatever node grew it (see docs/PERFORMANCE.md).
//
// Telemetry: begin_build()/end_build() bracket one build and report how
// many arena buffers had to grow (`BuildStats::arena_allocations` — zero
// for a steady-state rebuild) and the arena's total capacity footprint
// (`peak_arena_bytes`). Arenas are pooled through the existing
// WorkspacePool so concurrent builders (FactorizationCache misses, the
// solve engine's single-flight factorizations) each hold private scratch
// while sequential builds reuse the warmest arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/apply_chain.hpp"
#include "core/build_stats.hpp"
#include "core/five_dd.hpp"
#include "core/terminal_walks.hpp"
#include "graph/multigraph.hpp"
#include "parallel/workspace_pool.hpp"

namespace parlap {

class ChainBuildArena {
 public:
  /// One level graph's struct-of-arrays edge storage plus its vertex
  /// count; viewable as a MultigraphView without copying.
  struct EdgeBuffer {
    std::vector<Vertex> u;
    std::vector<Vertex> v;
    std::vector<Weight> w;
    Vertex n = 0;

    [[nodiscard]] MultigraphView view() const noexcept {
      return MultigraphView(n, u, v, w);
    }
  };

  ChainBuildArena() = default;
  ChainBuildArena(const ChainBuildArena&) = delete;
  ChainBuildArena& operator=(const ChainBuildArena&) = delete;

  // --- per-level scratch (consumed by BlockCholeskyChain::build) --------
  std::vector<Weight> wdeg;          ///< weighted degrees of G^(k)
  std::vector<Weight> degree_partial; ///< chunk partials of the degree scan
  std::vector<Vertex> f_index;       ///< vertex -> F position
  std::vector<Vertex> c_index;       ///< vertex -> C position
  WalkGraph walk_graph;              ///< F-row adjacency + alias tables
  WalkBuildScratch walk_build;       ///< counting-sort scratch
  TerminalWalkScratch walk_sample;   ///< per-edge walk staging + keep flags
  FiveDdScratch five_dd;             ///< 5-DD sampling scratch
  std::vector<EdgeId> extract_hist;  ///< level-extraction transpose scratch
  std::vector<EdgeId> extract_base;
  /// Per-level staging the ApplyChain packer consumes: one recycled
  /// EliminationLevel per level built so far (grows to the deepest chain
  /// this arena has seen; inner buffers keep their high-water capacity).
  std::vector<EliminationLevel> level_staging;

  /// The buffer the next level's edges should be emitted into. After
  /// emitting, call swap_buffers() to promote it to the current graph.
  [[nodiscard]] EdgeBuffer& out_buffer() noexcept { return bufs_[1 - front_]; }
  /// The buffer holding the current level graph G^(k) (valid after the
  /// first swap; level 0 is read from the caller's graph instead).
  [[nodiscard]] EdgeBuffer& cur_buffer() noexcept { return bufs_[front_]; }
  void swap_buffers() noexcept { front_ = 1 - front_; }

  // --- build telemetry ---------------------------------------------------
  /// Snapshots every owned buffer's capacity; pair with end_build().
  void begin_build();
  /// Writes `arena_allocations` (buffers grown since begin_build()) and
  /// `peak_arena_bytes` (total capacity now) into `stats`.
  void end_build(BuildStats& stats);

  /// Total bytes of capacity currently owned by the arena.
  [[nodiscard]] std::size_t capacity_bytes() const;

  /// The process-wide arena pool chain builds draw from when the caller
  /// does not pass an arena explicitly.
  static WorkspacePool<ChainBuildArena>& pool();

 private:
  template <typename Fn>
  void for_each_capacity(Fn&& fn) const;

  EdgeBuffer bufs_[2];
  int front_ = 0;
  std::vector<std::size_t> capacity_snapshot_;
};

}  // namespace parlap
