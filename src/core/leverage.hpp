// Leverage-score overestimation for dense-graph splitting
// (Lemma 3.3, §6; following [CLMMPS15; SS11; KLP15]).
//
// Pipeline: (1) uniformly sub-sample edges at rate 1/K (weights scaled by
// K) to get a crude graph G'; (2) estimate effective resistances in G' by
// Johnson-Lindenstrauss sketching — q = O(log n) random +-1 edge signings
// solved against L_{G'} with this library's own solver (Theorem 1.1);
// (3) tau_hat(e) = min(1, safety * w(e) * R_{G'}(e)). Splitting e into
// ceil(tau_hat/alpha) copies yields O(m + nK/alpha) multi-edges versus
// O(m/alpha) for naive splitting — the Theorem 1.2 work profile.
//
// Substitution note: to keep G' connected we overlay one
// spanning tree of G at original weight; this only lowers resistances and
// is compensated by `safety`. The theory's overestimation constant is
// folded into `safety` rather than derived.
#pragma once

#include <cstdint>

#include "graph/multigraph.hpp"
#include "linalg/vector_ops.hpp"

namespace parlap {

struct LeverageOptions {
  /// K, the uniform sampling divisor; 0 = auto Theta(log^3 n) per Thm 1.2.
  EdgeId sample_divisor = 0;
  /// q, the number of JL sketch dimensions; 0 = auto ceil(6 ln n).
  int jl_dimensions = 0;
  /// Multiplier applied to the JL estimate before clamping to 1.
  double safety = 4.0;
  /// Accuracy of the inner L_{G'} solves.
  double solve_eps = 0.1;
  /// Split scale for the inner (uniform-split) solver.
  double inner_split_scale = 0.2;
};

/// Returns tau_hat per edge of `g` (values in (0, 1]).
[[nodiscard]] Vector leverage_overestimates(const Multigraph& g,
                                            std::uint64_t seed,
                                            const LeverageOptions& opts = {});

}  // namespace parlap
