// 5DDSubset (Algorithm 3, Lemma 3.4, from [LPS15; KLPSS16]).
//
// A subset F is 5-DD when L_FF is 5-diagonally dominant, equivalently when
// every i in F has induced degree within F at most deg(i)/5. The routine
// repeatedly samples a uniform candidate subset of |cands|/20 vertices and
// keeps those whose sampled induced degree stays under the threshold; each
// round succeeds (|F| >= |cands|/40) with probability >= 1/2, so the
// expected work is O(m) and the expected round count O(1).
//
// Implementation detail: induced degrees are accumulated by a single scan
// over the edge list into chunk-local partials folded in fixed order, so
// no adjacency structure is required and results are independent of the
// thread count.
//
// The `candidates` overload implements the induced-subgraph call of
// ApproxSchur (Algorithm 6): degrees are measured inside G[candidates],
// which only strengthens the 5-DD property w.r.t. the full graph.
//
// Hot-path reuse: the chain build calls 5DDSubset once per elimination
// level; the FiveDdScratch overload recycles the position map, sampling
// buffer, and induced-degree partials across those calls (ChainBuildArena
// owns one scratch per build).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/multigraph.hpp"

namespace parlap {

struct FiveDdOptions {
  /// |F'| = max(1, floor(sample_fraction * |candidates|)).
  double sample_fraction = 1.0 / 20;
  /// Round accepted when |F| >= max(1, floor(accept_fraction * |cands|)).
  double accept_fraction = 1.0 / 40;
  /// Hard cap on resampling rounds (Lemma 3.4 gives expected 2).
  int max_rounds = 256;
  /// Optional extension (0 = faithful to the paper): after acceptance, try
  /// to grow F by re-filtering (F union a fresh sample) as a whole;
  /// filter(S) is 5-DD for any S, so correctness is unconditional. Larger
  /// F means fewer elimination levels (ablated in bench E4).
  int boost_rounds = 0;
};

struct FiveDdResult {
  std::vector<Vertex> f;  ///< the 5-DD subset, ascending vertex ids
  int rounds = 0;         ///< sampling rounds used (excluding boosts)
};

/// Reusable scratch for repeated five_dd_subset calls (one elimination
/// level each). All buffers grow to their high-water mark and are never
/// shrunk; `pos` entries are kInvalidVertex between calls (the filter
/// resets exactly the entries it stamped).
struct FiveDdScratch {
  std::vector<Vertex> pos;       ///< vertex -> sample position map
  std::vector<Vertex> sample;    ///< Fisher-Yates staging copy
  std::vector<double> partial;   ///< chunk-local induced-degree partials
  std::vector<double> induced;   ///< folded induced degrees

  /// Ensures `pos` covers `n` vertices, all kInvalidVertex.
  void prepare(Vertex n);
};

/// Finds a 5-DD subset among all vertices of `g`; `weighted_degree` must
/// be g's weighted degree array (callers typically already have it).
[[nodiscard]] FiveDdResult five_dd_subset(
    MultigraphView g, std::span<const double> weighted_degree,
    std::uint64_t seed, const FiveDdOptions& opts = {});

/// Scratch-reusing variant of the above (the chain-build hot path).
[[nodiscard]] FiveDdResult five_dd_subset(
    MultigraphView g, std::span<const double> weighted_degree,
    std::uint64_t seed, const FiveDdOptions& opts, FiveDdScratch& scratch);

/// Finds a 5-DD subset of the induced subgraph G[candidates]; degrees in
/// the 1/5 test are taken within G[candidates].
[[nodiscard]] FiveDdResult five_dd_subset(MultigraphView g,
                                          std::span<const Vertex> candidates,
                                          std::uint64_t seed,
                                          const FiveDdOptions& opts = {});

/// Verification helper (serial, O(m)): true iff every i in F has weighted
/// degree within G[F] at most deg_within_candidates(i)/5 (candidates = all
/// vertices when empty).
[[nodiscard]] bool is_five_dd(MultigraphView g, std::span<const Vertex> f,
                              std::span<const Vertex> candidates = {});

}  // namespace parlap
