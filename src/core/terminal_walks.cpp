#include "core/terminal_walks.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include <omp.h>

#include "parallel/alias_table.hpp"
#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

void build_walk_graph_into(MultigraphView g, std::span<const Vertex> f_index,
                           Vertex nf, WalkGraph& wg,
                           WalkBuildScratch& scratch) {
  const EdgeId m = g.num_edges();
  wg.off.assign(static_cast<std::size_t>(nf) + 1, 0);
  if (nf == 0) {
    wg.nbr.clear();
    wg.w.clear();
    wg.prob.clear();
    wg.alias.clear();
    return;
  }

  // Stable parallel counting sort of F-incident edge endpoints, chunked so
  // placement is deterministic (same pattern as CsrGraph).
  const int chunks = std::max(
      1, std::min<int>(thread_count(),
                       static_cast<int>((std::int64_t{1} << 24) /
                                        std::max<Vertex>(nf, 1))));
  const EdgeId chunk_len = (m + chunks - 1) / chunks;
  const auto nfz = static_cast<std::size_t>(nf);
  scratch.hist.assign(static_cast<std::size_t>(chunks) * nfz, 0);
  EdgeId* hist = scratch.hist.data();

#pragma omp parallel for schedule(static) num_threads(chunks)
  for (int c = 0; c < chunks; ++c) {
    EdgeId* local = hist + static_cast<std::size_t>(c) * nfz;
    const EdgeId lo = c * chunk_len;
    const EdgeId hi = std::min(m, lo + chunk_len);
    for (EdgeId e = lo; e < hi; ++e) {
      const Vertex fu = f_index[static_cast<std::size_t>(g.edge_u(e))];
      const Vertex fv = f_index[static_cast<std::size_t>(g.edge_v(e))];
      if (fu != kInvalidVertex) ++local[static_cast<std::size_t>(fu)];
      if (fv != kInvalidVertex) ++local[static_cast<std::size_t>(fv)];
    }
  }

  parallel_for(Vertex{0}, nf, [&](Vertex i) {
    EdgeId total = 0;
    for (int c = 0; c < chunks; ++c)
      total += hist[static_cast<std::size_t>(c) * nfz + static_cast<std::size_t>(i)];
    wg.off[static_cast<std::size_t>(i)] = total;
  });
  wg.off[nfz] = 0;
  exclusive_scan(std::span<EdgeId>(wg.off));
  const EdgeId vol = wg.off[nfz];
  wg.nbr.resize(static_cast<std::size_t>(vol));
  wg.w.resize(static_cast<std::size_t>(vol));

  scratch.base.resize(static_cast<std::size_t>(chunks) * nfz);
  EdgeId* base = scratch.base.data();
  parallel_for(Vertex{0}, nf, [&](Vertex i) {
    EdgeId run = wg.off[static_cast<std::size_t>(i)];
    for (int c = 0; c < chunks; ++c) {
      base[static_cast<std::size_t>(c) * nfz + static_cast<std::size_t>(i)] = run;
      run += hist[static_cast<std::size_t>(c) * nfz + static_cast<std::size_t>(i)];
    }
  });

#pragma omp parallel for schedule(static) num_threads(chunks)
  for (int c = 0; c < chunks; ++c) {
    EdgeId* local = base + static_cast<std::size_t>(c) * nfz;
    const EdgeId lo = c * chunk_len;
    const EdgeId hi = std::min(m, lo + chunk_len);
    for (EdgeId e = lo; e < hi; ++e) {
      const Vertex u = g.edge_u(e);
      const Vertex v = g.edge_v(e);
      const Weight w = g.edge_weight(e);
      const Vertex fu = f_index[static_cast<std::size_t>(u)];
      const Vertex fv = f_index[static_cast<std::size_t>(v)];
      if (fu != kInvalidVertex) {
        const auto p = static_cast<std::size_t>(local[static_cast<std::size_t>(fu)]++);
        wg.nbr[p] = v;
        wg.w[p] = w;
      }
      if (fv != kInvalidVertex) {
        const auto p = static_cast<std::size_t>(local[static_cast<std::size_t>(fv)]++);
        wg.nbr[p] = u;
        wg.w[p] = w;
      }
    }
  }

  // Alias tables per F row (Lemma 2.6: O(deg) build, O(1) query).
  wg.prob.resize(static_cast<std::size_t>(vol));
  wg.alias.resize(static_cast<std::size_t>(vol));
  parallel_for(Vertex{0}, nf, [&](Vertex i) {
    const auto lo = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i)]);
    const auto deg = static_cast<std::size_t>(wg.off[static_cast<std::size_t>(i) + 1]) - lo;
    if (deg == 0) return;  // isolated F vertex: never visited by any walk
    build_alias(std::span<const double>(wg.w.data() + lo, deg),
                std::span<double>(wg.prob.data() + lo, deg),
                std::span<std::int32_t>(wg.alias.data() + lo, deg));
  });
}

WalkGraph build_walk_graph(MultigraphView g,
                           std::span<const Vertex> f_index, Vertex nf) {
  WalkGraph wg;
  WalkBuildScratch scratch;
  build_walk_graph_into(g, f_index, nf, wg, scratch);
  return wg;
}

void sample_schur_complement(MultigraphView g, const WalkGraph& walk_graph,
                             std::span<const Vertex> f_index,
                             std::span<const Vertex> c_index, Vertex num_c,
                             std::uint64_t seed, std::uint64_t level,
                             WalkStats* stats, const WalkOptions& opts,
                             TerminalWalkScratch& scratch,
                             std::vector<Vertex>& out_u,
                             std::vector<Vertex>& out_v,
                             std::vector<Weight>& out_w) {
  const Vertex n = g.num_vertices();
  const EdgeId m = g.num_edges();
  PARLAP_CHECK(f_index.size() == static_cast<std::size_t>(n));
  PARLAP_CHECK(c_index.size() == static_cast<std::size_t>(n));
  PARLAP_CHECK(num_c >= 1);
  PARLAP_CHECK(walk_graph.off.size() >= 1);

  const int cap = opts.max_walk_steps > 0
                      ? opts.max_walk_steps
                      : 32 + 16 * static_cast<int>(std::ceil(std::log2(
                                      static_cast<double>(m) + 2.0)));

  // Per-edge outputs, compacted afterwards in input order (deterministic).
  scratch.out_u.resize(static_cast<std::size_t>(m));
  scratch.out_v.resize(static_cast<std::size_t>(m));
  scratch.out_w.resize(static_cast<std::size_t>(m));
  scratch.keep.assign(static_cast<std::size_t>(m) + 1, 0);
  std::span<Vertex> walk_u(scratch.out_u.data(), static_cast<std::size_t>(m));
  std::span<Vertex> walk_v(scratch.out_v.data(), static_cast<std::size_t>(m));
  std::span<Weight> walk_w(scratch.out_w.data(), static_cast<std::size_t>(m));
  std::span<EdgeId> keep(scratch.keep.data(), static_cast<std::size_t>(m) + 1);

  const int num_threads = thread_count();
  std::vector<WalkStats> local_stats(static_cast<std::size_t>(num_threads));
  // Exceptions must not cross the OpenMP region boundary; failures set
  // this flag and the check fires after the region joins.
  std::atomic<bool> retries_exhausted{false};

  struct WalkOutcome {
    Vertex terminal = kInvalidVertex;
    double inv_weight_sum = 0.0;
    int length = 0;
  };

#pragma omp parallel num_threads(num_threads)
  {
    WalkStats& ls =
        local_stats[static_cast<std::size_t>(omp_get_thread_num())];

    auto run_walk = [&](Vertex start, Rng& rng) {
      for (int attempt = 0;; ++attempt) {
        if (attempt >= opts.max_retries ||
            retries_exhausted.load(std::memory_order_relaxed)) {
          retries_exhausted.store(true, std::memory_order_relaxed);
          return WalkOutcome{};
        }
        WalkOutcome out;
        Vertex x = start;
        bool capped = false;
        while (true) {
          const Vertex fx = f_index[static_cast<std::size_t>(x)];
          if (fx == kInvalidVertex) break;  // reached a terminal
          if (out.length >= cap) {
            capped = true;
            break;
          }
          const auto lo = static_cast<std::size_t>(
              walk_graph.off[static_cast<std::size_t>(fx)]);
          const auto deg = static_cast<std::size_t>(
                               walk_graph.off[static_cast<std::size_t>(fx) + 1]) -
                           lo;
          PARLAP_DCHECK(deg > 0);
          const std::int32_t k = sample_alias(
              std::span<const double>(walk_graph.prob.data() + lo, deg),
              std::span<const std::int32_t>(walk_graph.alias.data() + lo, deg),
              rng);
          out.inv_weight_sum += 1.0 / walk_graph.w[lo + static_cast<std::size_t>(k)];
          x = walk_graph.nbr[lo + static_cast<std::size_t>(k)];
          ++out.length;
        }
        if (!capped) {
          out.terminal = c_index[static_cast<std::size_t>(x)];
          return out;
        }
        ++ls.retries;
      }
    };

#pragma omp for schedule(dynamic, 512)
    for (EdgeId e = 0; e < m; ++e) {
      if (retries_exhausted.load(std::memory_order_relaxed)) continue;
      const Vertex u = g.edge_u(e);
      const Vertex v = g.edge_v(e);
      const Vertex cu = c_index[static_cast<std::size_t>(u)];
      const Vertex cv = c_index[static_cast<std::size_t>(v)];
      // Fast path: both endpoints terminal — the walk is the edge itself.
      if (cu != kInvalidVertex && cv != kInvalidVertex) {
        walk_u[static_cast<std::size_t>(e)] = cu;
        walk_v[static_cast<std::size_t>(e)] = cv;
        walk_w[static_cast<std::size_t>(e)] = g.edge_weight(e);
        keep[static_cast<std::size_t>(e)] = 1;
        continue;
      }
      Rng rng(seed, RngTag::kTerminalWalk,
              (level << 40) ^ static_cast<std::uint64_t>(e));
      const WalkOutcome w1 = run_walk(u, rng);
      const WalkOutcome w2 = run_walk(v, rng);
      if (retries_exhausted.load(std::memory_order_relaxed)) continue;
      ls.total_steps += w1.length + w2.length;
      ls.max_walk_len = std::max({ls.max_walk_len, w1.length, w2.length});
      if (w1.terminal == w2.terminal) {
        ++ls.dropped_loops;
        continue;
      }
      const double inv_sum =
          1.0 / g.edge_weight(e) + w1.inv_weight_sum + w2.inv_weight_sum;
      walk_u[static_cast<std::size_t>(e)] = w1.terminal;
      walk_v[static_cast<std::size_t>(e)] = w2.terminal;
      walk_w[static_cast<std::size_t>(e)] = 1.0 / inv_sum;
      keep[static_cast<std::size_t>(e)] = 1;
    }
  }

  PARLAP_CHECK_MSG(!retries_exhausted.load(),
                   "terminal walk failed to reach C within "
                       << cap << " steps after " << opts.max_retries
                       << " retries; is V\\C 5-DD?");

  // Compact kept edges by prefix scan over the keep flags.
  const EdgeId m_out = exclusive_scan(keep);
  out_u.resize(static_cast<std::size_t>(m_out));
  out_v.resize(static_cast<std::size_t>(m_out));
  out_w.resize(static_cast<std::size_t>(m_out));
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    const auto i = static_cast<std::size_t>(e);
    if (keep[i + 1] == keep[i]) return;
    const auto slot = static_cast<std::size_t>(keep[i]);
    out_u[slot] = walk_u[i];
    out_v[slot] = walk_v[i];
    out_w[slot] = walk_w[i];
  });

  if (stats != nullptr) {
    *stats = WalkStats{};
    for (const WalkStats& ls : local_stats) stats->accumulate(ls);
    stats->edges_in = m;
    stats->edges_out = m_out;
  }
}

Multigraph terminal_walks(MultigraphView g, const WalkGraph& walk_graph,
                          std::span<const Vertex> f_index,
                          std::span<const Vertex> c_index, Vertex num_c,
                          std::uint64_t seed, std::uint64_t level,
                          WalkStats* stats, const WalkOptions& opts) {
  TerminalWalkScratch scratch;
  std::vector<Vertex> out_u;
  std::vector<Vertex> out_v;
  std::vector<Weight> out_w;
  sample_schur_complement(g, walk_graph, f_index, c_index, num_c, seed,
                          level, stats, opts, scratch, out_u, out_v, out_w);
  return Multigraph::adopt(num_c, std::move(out_u), std::move(out_v),
                           std::move(out_w));
}

}  // namespace parlap
