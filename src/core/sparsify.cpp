#include "core/sparsify.hpp"

#include <cmath>
#include <map>

#include "parallel/alias_table.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

SparsifyResult spectral_sparsify(const Multigraph& g, double eps,
                                 std::uint64_t seed,
                                 const SparsifyOptions& opts) {
  const Vertex n = g.num_vertices();
  const EdgeId m = g.num_edges();
  PARLAP_CHECK(eps > 0.0 && eps < 1.0);
  PARLAP_CHECK(n >= 2);

  SparsifyResult result;
  result.eps_target = eps;
  const auto q = static_cast<EdgeId>(
      std::ceil(opts.oversample * static_cast<double>(n) *
                std::log(static_cast<double>(n)) / (eps * eps)));
  result.samples = q;
  if (q >= m) {
    result.graph = g;  // already sparse enough
    result.samples = m;
    return result;
  }

  // Sampling probabilities ~ leverage scores (floored slightly away from
  // zero so no edge is unreachable; the floor only raises sampling rates,
  // which never hurts the concentration bound).
  const ResistanceEstimator estimator(g, splitmix64(seed ^ 0x53504152ull),
                                      opts.resistance);
  Vector tau = estimator.leverage_scores(g);
  double total = 0.0;
  for (double& t : tau) {
    t = std::max(t, 1e-12);
    total += t;
  }
  const AliasTable table(tau);

  // q independent draws; coincident multi-edge draws merge by summing
  // weights (sampling with replacement).
  std::map<EdgeId, EdgeId> counts;
  Rng rng(seed, RngTag::kLeverage, 0x53504152ull);
  for (EdgeId s = 0; s < q; ++s) {
    counts[static_cast<EdgeId>(table.sample(rng))]++;
  }
  Multigraph h(n);
  h.reserve_edges(static_cast<EdgeId>(counts.size()));
  for (const auto& [e, c] : counts) {
    const double p = tau[static_cast<std::size_t>(e)] / total;
    const double w = g.edge_weight(e) * static_cast<double>(c) /
                     (static_cast<double>(q) * p);
    h.add_edge(g.edge_u(e), g.edge_v(e), w);
  }
  result.graph = std::move(h);
  return result;
}

}  // namespace parlap
