#include "core/alpha_bound.hpp"

#include <cmath>

#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"
#include "support/check.hpp"

namespace parlap {

std::int64_t default_split_copies(Vertex n, double scale) {
  PARLAP_CHECK(n >= 1);
  PARLAP_CHECK(scale >= 0.0);
  const double log_n = std::ceil(std::log2(static_cast<double>(std::max(n, Vertex{2}))));
  const auto copies = static_cast<std::int64_t>(std::ceil(scale * log_n * log_n));
  return std::max<std::int64_t>(1, copies);
}

double default_alpha(Vertex n, double scale) {
  return 1.0 / static_cast<double>(default_split_copies(n, scale));
}

Multigraph split_edges_uniform(const Multigraph& g, std::int64_t copies) {
  PARLAP_CHECK(copies >= 1);
  const EdgeId m = g.num_edges();
  Multigraph h(g.num_vertices());
  h.resize_edges(m * copies);
  const double inv = 1.0 / static_cast<double>(copies);
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    const Vertex u = g.edge_u(e);
    const Vertex v = g.edge_v(e);
    const Weight w = g.edge_weight(e) * inv;
    for (std::int64_t c = 0; c < copies; ++c) {
      h.set_edge(e * copies + c, u, v, w);
    }
  });
  return h;
}

Multigraph split_edges_by_scores(const Multigraph& g,
                                 std::span<const double> tau_hat,
                                 double alpha) {
  const EdgeId m = g.num_edges();
  PARLAP_CHECK(tau_hat.size() == static_cast<std::size_t>(m));
  PARLAP_CHECK(alpha > 0.0);

  std::vector<EdgeId> offset(static_cast<std::size_t>(m) + 1, 0);
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    const double tau = tau_hat[static_cast<std::size_t>(e)];
    PARLAP_DCHECK(tau >= 0.0);
    offset[static_cast<std::size_t>(e)] =
        std::max<EdgeId>(1, static_cast<EdgeId>(std::ceil(tau / alpha)));
  });
  const EdgeId total = exclusive_scan(std::span<EdgeId>(offset));

  Multigraph h(g.num_vertices());
  h.resize_edges(total);
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    const EdgeId lo = offset[static_cast<std::size_t>(e)];
    const EdgeId hi = offset[static_cast<std::size_t>(e) + 1];
    const Vertex u = g.edge_u(e);
    const Vertex v = g.edge_v(e);
    const Weight w = g.edge_weight(e) / static_cast<double>(hi - lo);
    for (EdgeId c = lo; c < hi; ++c) h.set_edge(c, u, v, w);
  });
  return h;
}

}  // namespace parlap
