// ApplyChain — the immutable, CSR-packed apply-side representation of a
// block Cholesky chain (ApplyCholesky, Algorithm 2), plus the blocked
// multi-RHS panel kernels that traverse it.
//
// Construction (BlockCholeskyChain::build) stages each elimination level
// in arena-recycled EliminationLevel scratch, then finalize() packs every
// level's F/C lists, Jacobi diagonals (1/X_ff, diag Y), and the three
// sub-CSR blocks (F-F for Y, F->C, C->F) into six contiguous arrays.
// Row offsets are rebased to absolute positions in the shared column /
// weight arrays, so applying the chain is one monotone sweep over three
// flat buffers — no per-level pointer chasing, no per-level allocations,
// and the whole operator's index data is as cache-dense as a single CSR
// matrix. After finalize() the chain never mutates.
//
// Storage precision: a chain is packed EITHER fp64 (the default — value
// arrays double, solves bit-identical to the pre-precision code) OR fp32
// (value arrays and dense base float; index arrays unchanged). The fp32
// traversal computes in NATIVE float — half the bytes per value and
// twice the SIMD lanes per register — so an fp32 chain is the same
// operator evaluated in float, a constant-quality preconditioner the
// solver's fp64 outer Richardson loop refines to any requested eps.
// Build staging is always fp64; the narrowing happens once, inside
// finalize().
//
// apply() serves one vector; apply() on a Panel serves k right-hand
// sides with ONE chain traversal: every gather list, offset row, and
// neighbor/weight entry is read once per panel instead of once per RHS.
// Columns are computed independently, in exactly the arithmetic order of
// the k=1 kernel, so panel results are bit-identical, column for column,
// to k sequential applies — at any block width and OpenMP thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/kernels/aligned_buffer.hpp"
#include "linalg/panel.hpp"
#include "support/precision.hpp"
#include "support/types.hpp"

namespace parlap {

/// Build-time staging of one elimination level (recycled per level via
/// ChainBuildArena; finalize() packs it into the ApplyChain and the
/// staging buffers are reused by the next build).
struct EliminationLevel {
  Vertex n = 0;   ///< vertices of G^(k-1) at this level
  Vertex nf = 0;  ///< |F_k|
  Vertex nc = 0;  ///< |C_k|
  std::vector<Vertex> f_list;  ///< level-local ids eliminated here
  std::vector<Vertex> c_list;  ///< level-local ids kept (next level order)
  std::vector<double> inv_x;   ///< 1/X_ff; 0 for isolated vertices
  std::vector<double> y_diag;  ///< induced-F weighted degree (Y diagonal)

  /// Row-compressed adjacency over local index spaces.
  struct SubCsr {
    std::vector<EdgeId> off;  ///< size rows+1
    std::vector<Vertex> nbr;  ///< column indices (target space)
    std::vector<Weight> w;
  };
  SubCsr ff;  ///< F-row -> F-col (Y off-diagonal entries, both directions)
  SubCsr fc;  ///< F-row -> C-col (L_FC)
  SubCsr cf;  ///< C-row -> F-col (L_CF)
};

/// One storage type's apply scratch (interleaved panels; see
/// ApplyWorkspace). fp64 chains use the double set, fp32 chains the
/// float set; a workspace bouncing between chains of both precisions
/// keeps each set's capacity warm.
template <typename T>
struct ApplyBuffers {
  /// n_k x cols per level, + base level.
  std::vector<kernels::AlignedBuffer<T>> level_vec;
  /// nf_k x cols per level.
  std::vector<kernels::AlignedBuffer<T>> level_yf;
  /// Jacobi scratch, max_nf x cols each.
  kernels::AlignedBuffer<T> jac_b, jac_cur, jac_tmp;
  /// Gather/apply scratch, max_nf x cols each.
  kernels::AlignedBuffer<T> scratch_f, scratch_f2;
  /// base_n x cols.
  kernels::AlignedBuffer<T> base_out;
};

/// Scratch reused across apply() calls; one per calling thread
/// (WorkspacePool<ApplyWorkspace> hands them out to concurrent solvers).
/// A workspace may be reused across chains AND block widths:
/// prepare_workspace re-sizes whenever (prepared_for, prepared_cols)
/// does not match the applying chain's process-unique build id and the
/// panel width, so scratch prepared for k=1 is never reused unsized for
/// a k=8 panel. (The id is an id, not an address: a chain reallocated at
/// a dead chain's address can never match stale scratch. A chain's
/// storage precision is fixed at finalize, so the build id also pins
/// which of the two buffer sets the chain sized.)
///
/// Buffers hold k-column panels INTERLEAVED — element (i, c) lives at
/// i*cols + c, so one row's column values are contiguous and the SIMD
/// kernels (linalg/kernels/) load them with one vector instruction. At
/// cols == 1 the layout degenerates to the plain vector layout, so the
/// k=1 addressing is byte-for-byte the pre-blocking layout. Storage is
/// 64-byte-aligned AlignedBuffer, first-touched under the active
/// NumaPolicy on the preparing (worker) thread.
class ApplyWorkspace {
 public:
  ApplyBuffers<double> f64;
  ApplyBuffers<float> f32;
  template <typename T>
  [[nodiscard]] ApplyBuffers<T>& buffers() noexcept;
  std::uint64_t prepared_for = 0;  ///< build id the sizes above match
  std::size_t prepared_cols = 0;   ///< block width the sizes above match
};

template <>
[[nodiscard]] inline ApplyBuffers<double>& ApplyWorkspace::buffers<double>() noexcept {
  return f64;
}
template <>
[[nodiscard]] inline ApplyBuffers<float>& ApplyWorkspace::buffers<float>() noexcept {
  return f32;
}

/// The packed chain. Default-constructed = empty (dimension 0); filled
/// exactly once by finalize().
class ApplyChain {
 public:
  /// Per-level metadata: sizes plus base indices into the packed arrays.
  /// Row-offset values stored in offsets() are absolute into columns() /
  /// weights(); per level the blocks are packed ff, fc, cf.
  struct Level {
    Vertex n = 0;
    Vertex nf = 0;
    Vertex nc = 0;
    std::size_t f_base = 0;   ///< f_lists() / inv_x() / y_diag(), nf entries
    std::size_t c_base = 0;   ///< c_lists(), nc entries
    std::size_t ff_off = 0;   ///< offsets(), nf+1 entries
    std::size_t fc_off = 0;   ///< offsets(), nf+1 entries
    std::size_t cf_off = 0;   ///< offsets(), nc+1 entries
  };

  /// Packs `staging` (consumed by copy; buffers stay with the arena for
  /// recycling) plus the dense base solve into the immutable form.
  /// `storage` selects the value-array precision (fp64 keeps the staged
  /// doubles; fp32 narrows every value once, here; kAuto is a caller
  /// bug — resolve before building).
  void finalize(std::span<const EliminationLevel> staging, Vertex n0,
                DenseMatrix base_pinv, Vertex base_n, int jacobi_terms,
                std::uint64_t build_id,
                Precision storage = Precision::kFp64);

  [[nodiscard]] Vertex dimension() const noexcept { return n0_; }
  [[nodiscard]] int depth() const noexcept {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] Vertex base_size() const noexcept { return base_n_; }
  [[nodiscard]] int jacobi_terms() const noexcept { return jacobi_terms_; }
  [[nodiscard]] std::uint64_t build_id() const noexcept { return build_id_; }
  /// Storage precision of the packed value arrays (kFp64 or kFp32).
  [[nodiscard]] Precision storage() const noexcept { return storage_; }
  /// Total packed sub-CSR entries (memory proxy for E12).
  [[nodiscard]] EdgeId stored_entries() const noexcept {
    return static_cast<EdgeId>(nbr_.size());
  }
  /// Value bytes actually held by the packed arrays (weights + Jacobi
  /// diagonals + dense base): the bytes-aware cache cost proxy — an fp32
  /// chain reports half an fp64 chain's bytes for the same structure.
  [[nodiscard]] std::size_t stored_value_bytes() const noexcept {
    const std::size_t values = (storage_ == Precision::kFp32)
                                   ? w_f_.size() + inv_x_f_.size() +
                                         y_diag_f_.size() + base_pinv_f_.size()
                                   : w_.size() + inv_x_.size() +
                                         y_diag_.size() + base_pinv_.size();
    return values * (storage_ == Precision::kFp32 ? sizeof(float)
                                                  : sizeof(double));
  }

  // Packed-array views (equivalence tests, diagnostics). The value-array
  // views are per storage type: the fp64 views are empty on an fp32
  // chain and vice versa; index views are storage-independent.
  [[nodiscard]] const std::vector<Level>& levels() const noexcept {
    return levels_;
  }
  [[nodiscard]] std::span<const Vertex> f_lists() const noexcept {
    return {f_lists_.data(), f_lists_.size()};
  }
  [[nodiscard]] std::span<const Vertex> c_lists() const noexcept {
    return {c_lists_.data(), c_lists_.size()};
  }
  [[nodiscard]] std::span<const double> inv_x() const noexcept {
    return {inv_x_.data(), inv_x_.size()};
  }
  [[nodiscard]] std::span<const double> y_diag() const noexcept {
    return {y_diag_.data(), y_diag_.size()};
  }
  [[nodiscard]] std::span<const EdgeId> offsets() const noexcept {
    return {off_.data(), off_.size()};
  }
  [[nodiscard]] std::span<const Vertex> columns() const noexcept {
    return {nbr_.data(), nbr_.size()};
  }
  [[nodiscard]] std::span<const Weight> weights() const noexcept {
    return {w_.data(), w_.size()};
  }
  /// Row-major base_size() x base_size() dense pseudo-inverse.
  [[nodiscard]] std::span<const double> base_pinv() const noexcept {
    return {base_pinv_.data(), base_pinv_.size()};
  }
  [[nodiscard]] std::span<const float> inv_x_f32() const noexcept {
    return {inv_x_f_.data(), inv_x_f_.size()};
  }
  [[nodiscard]] std::span<const float> y_diag_f32() const noexcept {
    return {y_diag_f_.data(), y_diag_f_.size()};
  }
  [[nodiscard]] std::span<const float> weights_f32() const noexcept {
    return {w_f_.data(), w_f_.size()};
  }
  [[nodiscard]] std::span<const float> base_pinv_f32() const noexcept {
    return {base_pinv_f_.data(), base_pinv_f_.size()};
  }

  /// y = W b (Algorithm 2) for one right-hand side. Inputs and outputs
  /// are double regardless of storage(): an fp32 chain narrows b into
  /// its float workspace on pack-in and widens the result on pack-out.
  void apply(std::span<const double> b, std::span<double> y,
             ApplyWorkspace& ws) const;

  /// Blocked ApplyCholesky: y.col(c) = W b.col(c) for every column, one
  /// chain traversal for the whole panel. y is resized to b's shape.
  void apply(const Panel& b, Panel& y, ApplyWorkspace& ws) const;

 private:
  /// Shared k-column core: column c of b/y starts at b + c*ld.
  /// Dispatches on storage() to the T-typed traversal.
  void apply_cols(const double* b, double* y, std::size_t cols,
                  std::size_t ld, ApplyWorkspace& ws) const;

  template <typename T>
  void apply_cols_t(const double* b, double* y, std::size_t cols,
                    std::size_t ld, ApplyWorkspace& ws) const;

  template <typename T>
  void prepare_workspace(ApplyWorkspace& ws, std::size_t cols) const;

  /// Truncated Jacobi series Z b over level `lvl` (nf x cols panels).
  template <typename T>
  void jacobi_solve(const Level& lvl, const T* b_f, T* out,
                    std::size_t cols, ApplyWorkspace& ws) const;

  /// Prefetches level `k`'s packed slices (all six arrays) so the next
  /// level's index data is in cache before its sweeps start.
  template <typename T>
  void prefetch_level(std::size_t k) const;

  // Storage-typed views of the value arrays (the fp32 set mirrors the
  // fp64 one; exactly one set is populated per chain).
  template <typename T>
  [[nodiscard]] const T* inv_x_data() const noexcept;
  template <typename T>
  [[nodiscard]] const T* y_diag_data() const noexcept;
  template <typename T>
  [[nodiscard]] const T* w_data() const noexcept;
  template <typename T>
  [[nodiscard]] const T* base_pinv_data() const noexcept;

  Vertex n0_ = 0;
  std::vector<Level> levels_;
  // Packed arrays: 64-byte-aligned, first-touched under the active
  // NumaPolicy by the finalizing (worker) thread. Index arrays are
  // shared by both storage modes; value arrays exist in exactly one of
  // the double / float variants, per storage_.
  kernels::AlignedBuffer<Vertex> f_lists_;
  kernels::AlignedBuffer<Vertex> c_lists_;
  kernels::AlignedBuffer<double> inv_x_;
  kernels::AlignedBuffer<double> y_diag_;
  kernels::AlignedBuffer<EdgeId> off_;  ///< absolute into nbr_ / w_
  kernels::AlignedBuffer<Vertex> nbr_;
  kernels::AlignedBuffer<Weight> w_;
  kernels::AlignedBuffer<double> base_pinv_;  ///< row-major base_n x base_n
  kernels::AlignedBuffer<float> inv_x_f_;
  kernels::AlignedBuffer<float> y_diag_f_;
  kernels::AlignedBuffer<float> w_f_;
  kernels::AlignedBuffer<float> base_pinv_f_;
  Vertex base_n_ = 0;
  int jacobi_terms_ = 1;
  std::uint64_t build_id_ = 0;
  Precision storage_ = Precision::kFp64;
};

template <>
[[nodiscard]] inline const double* ApplyChain::inv_x_data<double>()
    const noexcept {
  return inv_x_.data();
}
template <>
[[nodiscard]] inline const float* ApplyChain::inv_x_data<float>()
    const noexcept {
  return inv_x_f_.data();
}
template <>
[[nodiscard]] inline const double* ApplyChain::y_diag_data<double>()
    const noexcept {
  return y_diag_.data();
}
template <>
[[nodiscard]] inline const float* ApplyChain::y_diag_data<float>()
    const noexcept {
  return y_diag_f_.data();
}
template <>
[[nodiscard]] inline const double* ApplyChain::w_data<double>()
    const noexcept {
  return w_.data();
}
template <>
[[nodiscard]] inline const float* ApplyChain::w_data<float>() const noexcept {
  return w_f_.data();
}
template <>
[[nodiscard]] inline const double* ApplyChain::base_pinv_data<double>()
    const noexcept {
  return base_pinv_.data();
}
template <>
[[nodiscard]] inline const float* ApplyChain::base_pinv_data<float>()
    const noexcept {
  return base_pinv_f_.data();
}

}  // namespace parlap
