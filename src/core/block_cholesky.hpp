// Block Cholesky factorization chain (Algorithms 1 and 2, Theorems 3.9
// and 3.10).
//
// BlockCholesky::build repeatedly (a) finds a 5-DD subset F_k (Algorithm
// 3), (b) replaces the Schur complement onto C_k by the TerminalWalks
// sample (Algorithm 4), until the remaining graph has at most
// `base_size` vertices (Thm 3.9-(3)); the base system is inverted densely.
//
// apply() realizes ApplyCholesky (Algorithm 2): forward substitution down
// the chain with the F-blocks solved approximately by the truncated Jacobi
// series Z = sum_i X^-1 (-Y X^-1)^i (Lemma 3.5, l = O(log d) terms for
// eps = 1/2d), the dense base solve, and backward substitution up. The
// resulting operator W is symmetric PSD and satisfies W^+ ~1 L_G w.h.p.
// (Thm 3.10), making it a constant-quality preconditioner.
//
// Memory: only edges incident to the eliminated sets are retained (three
// sub-CSR blocks per level: F-F for Y, F->C and C->F for the off-diagonal
// blocks), totalling O(sum_k vol(F_k)) = O(m log n) in expectation. The
// blocks of every level are packed into one immutable ApplyChain
// (core/apply_chain.hpp) at the end of build: six contiguous arrays with
// absolute row offsets, so ApplyCholesky is a flat cache-dense sweep and
// one traversal can serve a whole Panel of right-hand sides.
//
// Construction runs against a ChainBuildArena (build_arena.hpp): level
// graphs live in the arena's double-buffered edge arrays (level 0 is read
// from the caller's graph through a MultigraphView — never copied), every
// per-level scratch structure is recycled, and the per-level
// EliminationLevel staging the packer consumes is itself arena-owned, so
// a build against a warmed arena performs zero scratch reallocations.
// Callers that build repeatedly (FactorizationCache misses, escalation
// rounds, benches) can pass their own arena; the default overloads draw
// one from the shared ChainBuildArena::pool(). Per-phase wall times and
// the arena counters are recorded in build_stats().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/apply_chain.hpp"
#include "core/build_arena.hpp"
#include "core/build_stats.hpp"
#include "core/five_dd.hpp"
#include "core/terminal_walks.hpp"
#include "graph/multigraph.hpp"
#include "linalg/dense.hpp"
#include "linalg/panel.hpp"
#include "support/types.hpp"

namespace parlap {

struct BlockCholeskyOptions {
  /// Recursion stops when the current graph has at most this many vertices
  /// (the paper uses 100).
  Vertex base_size = 100;
  /// Safety cap on the number of elimination levels.
  int max_levels = 10000;
  /// Jacobi series length l; 0 = auto (smallest odd l >= log2(6 d), i.e.
  /// eps = 1/2d per Lemma 3.5 / Algorithm 2 line 4).
  int jacobi_terms = 0;
  /// Storage precision the packed ApplyChain is finalized with (kFp64 or
  /// kFp32; kAuto must be resolved by the caller before building —
  /// finalize() checks). The build itself always stages in fp64.
  Precision precision = Precision::kFp64;
  FiveDdOptions five_dd;
  WalkOptions walks;
};

/// Per-level diagnostics surfaced to benches (E4-E6) and tests.
struct LevelStats {
  Vertex n = 0;
  EdgeId multi_edges = 0;
  Vertex f_size = 0;
  int five_dd_rounds = 0;
  WalkStats walks;
};

class BlockCholeskyChain {
 public:
  /// Runs Algorithm 1 on an (alpha-bounded) multigraph. The caller is
  /// responsible for splitting edges first (split_edges_uniform /
  /// split_edges_by_scores); the chain itself is oblivious to alpha.
  /// The view must stay valid for the duration of the call only. Scratch
  /// comes from the shared arena pool.
  static BlockCholeskyChain build(MultigraphView g, std::uint64_t seed,
                                  const BlockCholeskyOptions& opts = {});

  /// Consuming overload: takes ownership of `g` and releases its edge
  /// arrays as soon as the first elimination level has been absorbed into
  /// the arena, so the (largest, level-0) split graph never coexists with
  /// the later levels. Use from factor-and-discard paths such as
  /// LaplacianSolver's escalation rounds and the factorization cache's
  /// single-flight builder.
  static BlockCholeskyChain build(Multigraph&& g, std::uint64_t seed,
                                  const BlockCholeskyOptions& opts = {});

  /// Explicit-arena overload: all scratch comes from (and stays in)
  /// `arena`, so back-to-back builds reuse every buffer. The other
  /// overloads delegate here with a pooled arena.
  static BlockCholeskyChain build(MultigraphView g, std::uint64_t seed,
                                  const BlockCholeskyOptions& opts,
                                  ChainBuildArena& arena);

  [[nodiscard]] Vertex dimension() const noexcept {
    return chain_.dimension();
  }
  /// d, the number of elimination levels (Thm 3.9-(4): O(log n)).
  [[nodiscard]] int depth() const noexcept { return chain_.depth(); }
  /// l, the Jacobi series length used by apply().
  [[nodiscard]] int jacobi_terms() const noexcept {
    return chain_.jacobi_terms();
  }
  [[nodiscard]] Vertex base_size() const noexcept {
    return chain_.base_size();
  }
  [[nodiscard]] const std::vector<LevelStats>& level_stats() const noexcept {
    return stats_;
  }
  /// The immutable CSR-packed apply representation (panel kernels,
  /// equivalence tests, diagnostics).
  [[nodiscard]] const ApplyChain& apply_chain() const noexcept {
    return chain_;
  }
  /// Wall-time/arena telemetry of the build() that produced this chain.
  [[nodiscard]] const BuildStats& build_stats() const noexcept {
    return build_stats_;
  }
  /// Total stored sub-CSR entries (memory proxy for E12).
  [[nodiscard]] EdgeId stored_entries() const noexcept {
    return chain_.stored_entries();
  }
  /// Storage precision of the packed chain (kFp64 or kFp32).
  [[nodiscard]] Precision storage() const noexcept {
    return chain_.storage();
  }
  /// Value bytes held by the packed chain (fp32 = half fp64's).
  [[nodiscard]] std::size_t stored_value_bytes() const noexcept {
    return chain_.stored_value_bytes();
  }

  /// y = W b (Algorithm 2). Symmetric PSD linear operator with
  /// W^+ ~1 L w.h.p.; O(m log n loglog n) work per application.
  void apply(std::span<const double> b, std::span<double> y,
             ApplyWorkspace& ws) const {
    chain_.apply(b, y, ws);
  }

  /// Blocked apply: one chain traversal serves every column of the
  /// panel; column c equals apply() on b.col(c) bit for bit.
  void apply(const Panel& b, Panel& y, ApplyWorkspace& ws) const {
    chain_.apply(b, y, ws);
  }

  /// Convenience overload with a private workspace (allocates).
  void apply(std::span<const double> b, std::span<double> y) const;

 private:
  static BlockCholeskyChain build_impl(MultigraphView g, std::uint64_t seed,
                                       const BlockCholeskyOptions& opts,
                                       ChainBuildArena& arena,
                                       Multigraph* consumed);

  ApplyChain chain_;
  std::vector<LevelStats> stats_;
  BuildStats build_stats_;
};

}  // namespace parlap
