// Spectral graph sparsification by effective resistances [SS11].
//
// Sample q = O(n log n / eps^2) edges with replacement, edge e drawn with
// probability p_e ~ w(e) R(e) (its leverage score) and added at weight
// w(e) / (q p_e); the result H satisfies L_H ~eps L_G w.h.p. The sampling
// probabilities come from this library's ResistanceEstimator, i.e. from
// the paper's own solver (the same JL machinery as Lemma 3.3 / §6).
//
// The paper's solver deliberately *bypasses* sparsification — this module
// is the complementary application: once you have fast solves you get
// sparsifiers nearly for free.
#pragma once

#include <cstdint>

#include "core/resistance.hpp"
#include "graph/multigraph.hpp"

namespace parlap {

struct SparsifyOptions {
  /// Sample count multiplier: q = ceil(oversample * n * ln(n) / eps^2).
  double oversample = 2.0;
  /// Options for the resistance sketch used to compute probabilities.
  ResistanceOptions resistance;
};

struct SparsifyResult {
  Multigraph graph;       ///< the sparsifier H (multi-edges possible)
  EdgeId samples = 0;     ///< q
  double eps_target = 0;  ///< requested accuracy
};

/// Sparsifies connected `g` to target accuracy eps. Returns H with at most
/// q multi-edges (coincident samples merge). No-op (copy) when q >= m.
[[nodiscard]] SparsifyResult spectral_sparsify(const Multigraph& g,
                                               double eps,
                                               std::uint64_t seed,
                                               const SparsifyOptions& opts = {});

}  // namespace parlap
