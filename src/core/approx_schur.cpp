#include "core/approx_schur.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/alpha_bound.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

namespace {

std::uint64_t schur_level_seed(std::uint64_t seed, int level) {
  return splitmix64(seed ^ splitmix64(0x534348524Cull +
                                      static_cast<std::uint64_t>(level)));
}

}  // namespace

ApproxSchurResult approx_schur(const Multigraph& g,
                               std::span<const Vertex> c_set,
                               std::uint64_t seed,
                               const ApproxSchurOptions& opts) {
  const Vertex n = g.num_vertices();
  const auto num_c = static_cast<Vertex>(c_set.size());
  PARLAP_CHECK_MSG(num_c >= 1, "ApproxSchur needs a non-empty terminal set");
  PARLAP_CHECK_MSG(num_c < n, "terminal set must be a proper subset of V");

  // Relabel so terminals occupy ids [0, |C|) and non-terminals follow in
  // ascending order; ascending-rank relabelling at every level then keeps
  // terminal ids fixed, so U_k is always the suffix [|C|, n_k).
  std::vector<Vertex> new_id(static_cast<std::size_t>(n), kInvalidVertex);
  for (std::size_t i = 0; i < c_set.size(); ++i) {
    const Vertex v = c_set[i];
    PARLAP_CHECK(v >= 0 && v < n);
    PARLAP_CHECK_MSG(new_id[static_cast<std::size_t>(v)] == kInvalidVertex,
                     "duplicate terminal " << v);
    new_id[static_cast<std::size_t>(v)] = static_cast<Vertex>(i);
  }
  {
    Vertex next = num_c;
    for (Vertex v = 0; v < n; ++v) {
      if (new_id[static_cast<std::size_t>(v)] == kInvalidVertex) {
        new_id[static_cast<std::size_t>(v)] = next++;
      }
    }
  }
  Multigraph cur(n);
  cur.resize_edges(g.num_edges());
  parallel_for(EdgeId{0}, g.num_edges(), [&](EdgeId e) {
    cur.set_edge(e, new_id[static_cast<std::size_t>(g.edge_u(e))],
                 new_id[static_cast<std::size_t>(g.edge_v(e))],
                 g.edge_weight(e));
  });

  ApproxSchurResult result;
  while (cur.num_vertices() > num_c) {
    PARLAP_CHECK_MSG(result.levels < opts.max_levels,
                     "ApproxSchur exceeded max_levels");
    const std::uint64_t lseed = schur_level_seed(seed, result.levels);
    const Vertex nk = cur.num_vertices();

    // U_k = non-terminals = [num_c, nk); find a 5-DD subset of G[U_k].
    std::vector<Vertex> candidates(static_cast<std::size_t>(nk - num_c));
    std::iota(candidates.begin(), candidates.end(), num_c);
    const FiveDdResult fdd =
        five_dd_subset(cur, candidates, lseed, opts.five_dd);
    PARLAP_CHECK(!fdd.f.empty());

    // Keep set = everything except F_k; rank relabelling keeps terminals
    // at [0, num_c) because F is disjoint from that prefix.
    std::vector<Vertex> f_index(static_cast<std::size_t>(nk), kInvalidVertex);
    for (std::size_t i = 0; i < fdd.f.size(); ++i) {
      f_index[static_cast<std::size_t>(fdd.f[i])] = static_cast<Vertex>(i);
    }
    std::vector<Vertex> c_index(static_cast<std::size_t>(nk), kInvalidVertex);
    Vertex kept = 0;
    for (Vertex v = 0; v < nk; ++v) {
      if (f_index[static_cast<std::size_t>(v)] == kInvalidVertex) {
        c_index[static_cast<std::size_t>(v)] = kept++;
      }
    }

    const WalkGraph wg = build_walk_graph(
        cur, f_index, static_cast<Vertex>(fdd.f.size()));
    WalkStats ws;
    cur = terminal_walks(cur, wg, f_index, c_index, kept, seed,
                         static_cast<std::uint64_t>(result.levels), &ws,
                         opts.walks);
    result.walk_stats.push_back(ws);
    ++result.levels;
  }
  result.schur = std::move(cur);
  return result;
}

ApproxSchurResult approx_schur_simple(const Multigraph& g,
                                      std::span<const Vertex> c_set,
                                      double eps, std::uint64_t seed,
                                      double scale,
                                      const ApproxSchurOptions& opts) {
  PARLAP_CHECK(eps > 0.0 && eps < 1.0);
  const double log_n = std::ceil(
      std::log2(static_cast<double>(std::max(g.num_vertices(), Vertex{2}))));
  const auto copies = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(scale * log_n * log_n / (eps * eps))));
  const Multigraph split = split_edges_uniform(g, copies);
  return approx_schur(split, c_set, seed, opts);
}

}  // namespace parlap
