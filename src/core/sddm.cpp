#include "core/sddm.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"
#include "support/check.hpp"

namespace parlap {

namespace {

/// Grounded graph: g plus one extra vertex attached to every vertex with
/// positive excess.
Multigraph ground(const Multigraph& g, std::span<const double> excess,
                  bool* any_excess) {
  const Vertex n = g.num_vertices();
  PARLAP_CHECK(excess.size() == static_cast<std::size_t>(n));
  Multigraph out(n + 1);
  out.reserve_edges(g.num_edges() + n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out.add_edge(g.edge_u(e), g.edge_v(e), g.edge_weight(e));
  }
  *any_excess = false;
  for (Vertex v = 0; v < n; ++v) {
    const double s = excess[static_cast<std::size_t>(v)];
    PARLAP_CHECK_MSG(s >= 0.0, "negative SDDM excess at vertex " << v);
    if (s > 0.0) {
      out.add_edge(v, n, s);
      *any_excess = true;
    }
  }
  return out;
}

}  // namespace

SddmSolver::SddmSolver(const Multigraph& g, std::span<const double> excess,
                       SolverOptions opts)
    : n_(g.num_vertices()),
      solver_(ground(g, excess, &grounded_), std::move(opts)),
      b_ext_(static_cast<std::size_t>(g.num_vertices()) + 1, 0.0),
      x_ext_(static_cast<std::size_t>(g.num_vertices()) + 1, 0.0) {}

SolveStats SddmSolver::solve(std::span<const double> b, std::span<double> x,
                             double eps) {
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(n_));
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(n_));
  // Extend b with the balancing entry at the ground: L'[x; 0] = [Mx; r]
  // with r = -1' M x, so the extension keeps b' in range(L') exactly when
  // the ground carries minus the total injection.
  double total = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    b_ext_[i] = b[i];
    total += b[i];
  }
  b_ext_[static_cast<std::size_t>(n_)] = -total;
  const SolveStats stats = solver_.solve(b_ext_, x_ext_, eps);
  // x_i = y_i - y_ground picks the representative with x_ground = 0,
  // which is the exact solution of the nonsingular SDDM system.
  const double shift = x_ext_[static_cast<std::size_t>(n_)];
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = x_ext_[i] - shift;
  return stats;
}

SolveStats solve_dirichlet(const Multigraph& g,
                           std::span<const Vertex> boundary,
                           std::span<const double> boundary_values,
                           std::span<const double> interior_rhs,
                           std::span<double> x, double eps,
                           const SolverOptions& opts) {
  const Vertex n = g.num_vertices();
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(n));
  PARLAP_CHECK(boundary.size() == boundary_values.size());
  PARLAP_CHECK_MSG(!boundary.empty(), "Dirichlet problem needs a boundary");

  // Interior index map.
  std::vector<double> bvalue(static_cast<std::size_t>(n), 0.0);
  std::vector<std::uint8_t> is_boundary(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    const Vertex v = boundary[i];
    PARLAP_CHECK(v >= 0 && v < n);
    PARLAP_CHECK_MSG(is_boundary[static_cast<std::size_t>(v)] == 0,
                     "duplicate boundary vertex " << v);
    is_boundary[static_cast<std::size_t>(v)] = 1;
    bvalue[static_cast<std::size_t>(v)] = boundary_values[i];
  }
  std::vector<Vertex> interior_id(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<Vertex> interior;
  for (Vertex v = 0; v < n; ++v) {
    if (is_boundary[static_cast<std::size_t>(v)] == 0) {
      interior_id[static_cast<std::size_t>(v)] =
          static_cast<Vertex>(interior.size());
      interior.push_back(v);
    }
  }
  PARLAP_CHECK(interior_rhs.empty() ||
               interior_rhs.size() == interior.size());

  // Interior system: L_II x_I = b_I + W_IB x_B, where L_II is SDDM with
  // excess = weight to the boundary.
  const auto ni = static_cast<Vertex>(interior.size());
  Multigraph gi(ni);
  Vector excess(static_cast<std::size_t>(ni), 0.0);
  Vector rhs(static_cast<std::size_t>(ni), 0.0);
  if (!interior_rhs.empty()) {
    std::copy(interior_rhs.begin(), interior_rhs.end(), rhs.begin());
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Vertex u = g.edge_u(e);
    const Vertex v = g.edge_v(e);
    const Weight w = g.edge_weight(e);
    const Vertex iu = interior_id[static_cast<std::size_t>(u)];
    const Vertex iv = interior_id[static_cast<std::size_t>(v)];
    if (iu != kInvalidVertex && iv != kInvalidVertex) {
      gi.add_edge(iu, iv, w);
    } else if (iu != kInvalidVertex) {
      excess[static_cast<std::size_t>(iu)] += w;
      rhs[static_cast<std::size_t>(iu)] += w * bvalue[static_cast<std::size_t>(v)];
    } else if (iv != kInvalidVertex) {
      excess[static_cast<std::size_t>(iv)] += w;
      rhs[static_cast<std::size_t>(iv)] += w * bvalue[static_cast<std::size_t>(u)];
    }
  }

  SolveStats stats;
  if (ni > 0) {
    SddmSolver solver(gi, excess, opts);
    Vector xi(static_cast<std::size_t>(ni), 0.0);
    stats = solver.solve(rhs, xi, eps);
    for (Vertex i = 0; i < ni; ++i) {
      x[static_cast<std::size_t>(interior[static_cast<std::size_t>(i)])] =
          xi[static_cast<std::size_t>(i)];
    }
  } else {
    stats.converged = true;
  }
  for (Vertex v = 0; v < n; ++v) {
    if (is_boundary[static_cast<std::size_t>(v)] != 0) {
      x[static_cast<std::size_t>(v)] = bvalue[static_cast<std::size_t>(v)];
    }
  }
  return stats;
}

}  // namespace parlap
