#include "core/leverage.hpp"

#include <algorithm>
#include <cmath>

#include "core/resistance.hpp"
#include "graph/connectivity.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

namespace {

/// One spanning tree of g (edge ids), by Kruskal-style DSU scan in edge
/// order; deterministic.
std::vector<EdgeId> spanning_tree_edges(const Multigraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> parent(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) parent[static_cast<std::size_t>(v)] = v;
  auto find = [&](Vertex x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<std::size_t>(n) - 1);
  const EdgeId m = g.num_edges();
  for (EdgeId e = 0; e < m && static_cast<Vertex>(tree.size()) + 1 < n; ++e) {
    const Vertex ru = find(g.edge_u(e));
    const Vertex rv = find(g.edge_v(e));
    if (ru == rv) continue;
    parent[static_cast<std::size_t>(std::max(ru, rv))] = std::min(ru, rv);
    tree.push_back(e);
  }
  return tree;
}

}  // namespace

Vector leverage_overestimates(const Multigraph& g, std::uint64_t seed,
                              const LeverageOptions& opts) {
  const Vertex n = g.num_vertices();
  const EdgeId m = g.num_edges();
  PARLAP_CHECK(n >= 2);
  PARLAP_CHECK(m >= 1);
  PARLAP_CHECK_MSG(is_connected(g),
                   "leverage_overestimates expects a connected graph "
                   "(the solver splits components upstream)");

  const double log_n =
      std::log2(static_cast<double>(std::max(n, Vertex{2})));
  EdgeId sample_divisor =
      opts.sample_divisor > 0
          ? opts.sample_divisor
          : static_cast<EdgeId>(std::ceil(log_n * log_n * log_n));
  // K must leave a sample dense enough to carry resistance information:
  // with fewer than ~2n sampled edges G' degenerates to the spanning tree
  // and every estimate saturates at 1. (Theorem 1.2 targets m >> nK, where
  // this clamp is inactive.)
  sample_divisor = std::clamp<EdgeId>(
      sample_divisor, 1, std::max<EdgeId>(1, m / (2 * static_cast<EdgeId>(n))));
  const int q = opts.jl_dimensions > 0
                    ? opts.jl_dimensions
                    : std::max(4, static_cast<int>(std::ceil(
                                      6.0 * std::log(static_cast<double>(n)))));

  // (1) G' = uniform 1/K edge sample, weights scaled by K, plus one
  // spanning tree of G at original weight for connectivity (substitution
  // note in leverage.hpp; compensated by `safety`).
  const std::vector<EdgeId> tree = spanning_tree_edges(g);
  std::vector<std::uint8_t> keep(static_cast<std::size_t>(m), 0);
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    Rng rng(seed, RngTag::kLeverage, 0x4B656570ull ^ static_cast<std::uint64_t>(e));
    keep[static_cast<std::size_t>(e)] =
        rng.next_below(static_cast<std::uint64_t>(sample_divisor)) == 0 ? 1 : 0;
  });
  Multigraph gp(n);
  for (const EdgeId e : tree) {
    gp.add_edge(g.edge_u(e), g.edge_v(e), g.edge_weight(e));
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (keep[static_cast<std::size_t>(e)] != 0) {
      gp.add_edge(g.edge_u(e), g.edge_v(e),
                  g.edge_weight(e) * static_cast<double>(sample_divisor));
    }
  }

  // (2) JL sketch of effective resistances in G' (core/resistance).
  ResistanceOptions res_opts;
  res_opts.jl_dimensions = q;
  res_opts.solve_eps = opts.solve_eps;
  res_opts.split_scale = opts.inner_split_scale;
  const ResistanceEstimator estimator(gp, splitmix64(seed ^ 0x494E4E4552ull),
                                      res_opts);

  // (3) tau_hat(e) = min(1, safety * w(e) * R_{G'}(e)).
  Vector tau = estimator.leverage_scores(g);
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    tau[static_cast<std::size_t>(e)] =
        std::min(1.0, opts.safety * tau[static_cast<std::size_t>(e)]);
  });
  return tau;
}

}  // namespace parlap
