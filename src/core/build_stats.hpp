// Build-phase telemetry for chain construction (Algorithm 1).
//
// BuildStats answers "where did the factorization time go" at two
// granularities: per-phase wall time summed over the whole build, and the
// same breakdown per elimination level. It also carries the arena
// counters that prove the zero-realloc property of the build pipeline
// (ChainBuildArena, build_arena.hpp): `arena_allocations` counts scratch
// buffers that had to grow during the build, so a steady-state rebuild
// against a warmed arena reports 0.
//
// The struct is deliberately lightweight (no core dependencies) so the
// api layer can embed it in RunReport and the service/tools layers can
// serialize it without pulling in the solver headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace parlap {

/// Wall-clock seconds of one pass through Algorithm 1's per-level phases.
struct BuildPhaseTimes {
  double degrees = 0.0;     ///< weighted-degree recomputation of G^(k)
  double five_dd = 0.0;     ///< 5DDSubset (Algorithm 3)
  double partition = 0.0;   ///< F/C index + C-list construction
  double walk_graph = 0.0;  ///< F-row adjacency + alias tables
  double schur = 0.0;       ///< terminal-walk Schur sample (Algorithm 4)
  double extract = 0.0;     ///< level sub-CSR extraction (Y, L_FC, L_CF)

  [[nodiscard]] double total() const noexcept {
    return degrees + five_dd + partition + walk_graph + schur + extract;
  }

  void accumulate(const BuildPhaseTimes& o) noexcept {
    degrees += o.degrees;
    five_dd += o.five_dd;
    partition += o.partition;
    walk_graph += o.walk_graph;
    schur += o.schur;
    extract += o.extract;
  }
};

/// One elimination level's size and phase breakdown.
struct BuildLevelTiming {
  Vertex n = 0;        ///< vertices of G^(k-1) entering the level
  EdgeId edges = 0;    ///< multi-edges entering the level
  Vertex f_size = 0;   ///< |F_k| eliminated
  BuildPhaseTimes phases;
};

/// What one (or, after accumulate(), several) chain build(s) cost.
struct BuildStats {
  double total_seconds = 0.0;  ///< whole build() call, levels + base
  double base_seconds = 0.0;   ///< dense base-case pseudo-inverse
  /// Packing the staged levels into the immutable CSR ApplyChain.
  double pack_seconds = 0.0;
  int levels = 0;              ///< elimination levels built (max on merge)
  /// High-water total capacity of the build arena, in bytes, at build end.
  std::size_t peak_arena_bytes = 0;
  /// Arena scratch buffers that grew during this build; 0 in steady state
  /// (an arena warmed by a previous build of a same-shape problem).
  std::int64_t arena_allocations = 0;
  BuildPhaseTimes phases;  ///< summed over all levels
  /// Per-level breakdown of the largest single build seen (kept from the
  /// stats with the most levels when merging components/rounds).
  std::vector<BuildLevelTiming> level_timings;

  /// Merges another build's cost into this one (components of one solver,
  /// escalation rounds): seconds and counters add, `levels` and the arena
  /// footprint take the max — sequential builds reuse one pooled arena,
  /// so each already reports the shared high-water mark — and per-level
  /// timings keep the deeper chain's breakdown.
  void accumulate(const BuildStats& o) {
    total_seconds += o.total_seconds;
    base_seconds += o.base_seconds;
    pack_seconds += o.pack_seconds;
    if (o.peak_arena_bytes > peak_arena_bytes) {
      peak_arena_bytes = o.peak_arena_bytes;
    }
    arena_allocations += o.arena_allocations;
    phases.accumulate(o.phases);
    if (o.levels > levels) {
      levels = o.levels;
      level_timings = o.level_timings;
    }
  }
};

}  // namespace parlap
