#include "core/richardson.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"

namespace parlap {

namespace {

/// Cumulative outer-iteration count across every Richardson run in the
/// process (scalar and panel; per-run counts stay in IterationStats).
obs::Counter& iteration_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("parlap.richardson.iterations");
  return c;
}

}  // namespace

double estimate_max_eigenvalue(const LaplacianOperator& a,
                               const LinearMap& precond, int iterations) {
  // Power iteration on B A (similar to the symmetric PSD matrix
  // B^{1/2} A B^{1/2}, so the dominant eigenvalue is real positive and
  // the Rayleigh quotient converges from below).
  const auto n = static_cast<std::size_t>(a.dimension());
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic pseudo-random start, mean-free up to rounding.
    v[i] = static_cast<double>((i * 2654435761u) % 1024) - 511.5;
  }
  Vector av(n);
  Vector bav(n);
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    a.apply(v, av);
    precond(av, bav);
    const double nrm = norm2(bav);
    if (nrm <= 0.0) break;
    lambda = dot(v, bav) / std::max(dot(v, v), 1e-300);
    scale(bav, 1.0 / nrm);
    std::swap(v, bav);
  }
  return lambda;
}

IterationStats preconditioned_richardson(const LaplacianOperator& a,
                                         const LinearMap& precond,
                                         std::span<const double> b,
                                         std::span<double> x, double eps,
                                         const RichardsonOptions& opts) {
  const std::size_t n = b.size();
  PARLAP_CHECK(x.size() == n);
  PARLAP_CHECK(eps > 0.0 && eps < 1.0);

  PARLAP_TRACE_SPAN_N(span, "richardson.solve", "solve");
  IterationStats stats;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    fill(x, 0.0);
    stats.reached_target = true;
    return stats;
  }

  double alpha = 2.0 / (std::exp(-opts.delta) + std::exp(opts.delta));
  if (opts.fixed_alpha > 0.0) {
    alpha = opts.fixed_alpha;
  } else if (opts.auto_step) {
    const double lambda =
        estimate_max_eigenvalue(a, precond, opts.power_iterations);
    if (lambda > 0.0) alpha = 0.95 / lambda;
  }
  const int cap =
      opts.max_iterations > 0
          ? opts.max_iterations
          : std::max(1, static_cast<int>(std::ceil(
                            std::exp(2.0 * opts.delta) * std::log(1.0 / eps))));
  const double target =
      opts.residual_target >= 0.0 ? opts.residual_target : eps;

  // x^(0) = B b   (Algorithm 5, line 3)
  precond(b, x);

  Vector r(n);
  Vector br(n);
  double stall_ref = std::numeric_limits<double>::infinity();
  for (int k = 0; k < cap; ++k) {
    a.apply(x, r);
    parallel_for(std::size_t{0}, n,
                 [&](std::size_t i) { r[i] = b[i] - r[i]; });
    stats.relative_residual = norm2(r) / b_norm;
    stats.iterations = k;
    if (stats.relative_residual <= target) {
      stats.reached_target = true;
      iteration_counter().add(static_cast<std::uint64_t>(k));
      span.arg("iterations", static_cast<double>(k));
      return stats;
    }
    if (opts.stall_window > 0) {
      // Stalled (or numerically broken) runs stop early so the caller's
      // escalation path can take over; reached_target stays false.
      const bool checkpoint = (k + 1) % opts.stall_window == 0;
      const bool stalled =
          checkpoint &&
          stats.relative_residual > stall_ref * opts.stall_improvement;
      if (!std::isfinite(stats.relative_residual) || stalled) {
        iteration_counter().add(static_cast<std::uint64_t>(k));
        span.arg("iterations", static_cast<double>(k));
        return stats;
      }
      if (checkpoint) stall_ref = stats.relative_residual;
    }
    // x^(k) = x^(k-1) + alpha B r   (equivalent to Algorithm 5, line 5)
    precond(r, br);
    axpy(alpha, br, x);
  }

  a.apply(x, r);
  parallel_for(std::size_t{0}, n, [&](std::size_t i) { r[i] = b[i] - r[i]; });
  stats.relative_residual = norm2(r) / b_norm;
  stats.iterations = cap;
  stats.reached_target = stats.relative_residual <= target;
  iteration_counter().add(static_cast<std::uint64_t>(cap));
  span.arg("iterations", static_cast<double>(cap));
  return stats;
}

std::vector<IterationStats> preconditioned_richardson(
    const LaplacianOperator& a, const PanelMap& precond, const Panel& b,
    Panel& x, double eps, const RichardsonOptions& opts) {
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();
  PARLAP_CHECK(n == static_cast<std::size_t>(a.dimension()));
  PARLAP_CHECK(k >= 1);
  PARLAP_CHECK(eps > 0.0 && eps < 1.0);
  x.resize(n, k);

  PARLAP_TRACE_SPAN_N(span, "richardson.panel", "solve");
  span.arg("cols", static_cast<double>(k));
  std::vector<IterationStats> stats(k);
  std::vector<double> b_norms(k);
  panel_col_norms(b, b_norms);

  // active[c] != 0 while column c still iterates; a frozen column's x is
  // never written again (panel_axpy honors the mask), which is what makes
  // each column's history identical to its scalar solve.
  std::vector<unsigned char> active(k, 1);
  std::size_t n_active = k;
  for (std::size_t c = 0; c < k; ++c) {
    if (b_norms[c] == 0.0) {
      active[c] = 0;
      --n_active;
      stats[c].reached_target = true;  // x.col(c) zeroed below
    }
  }

  double alpha = 2.0 / (std::exp(-opts.delta) + std::exp(opts.delta));
  if (opts.fixed_alpha > 0.0) {
    alpha = opts.fixed_alpha;
  } else if (opts.auto_step && n_active > 0) {
    // The scalar path estimates per solve with a deterministic start
    // vector, so every column would compute the same lambda; one
    // estimate (through a 1-column panel wrapper) matches it exactly.
    Panel one_in(n, 1);
    Panel one_out;
    const LinearMap scalar_precond = [&](std::span<const double> rr,
                                         std::span<double> yy) {
      std::copy(rr.begin(), rr.end(), one_in.col(0).begin());
      precond(one_in, one_out);
      std::copy(one_out.col(0).begin(), one_out.col(0).end(), yy.begin());
    };
    const double lambda =
        estimate_max_eigenvalue(a, scalar_precond, opts.power_iterations);
    if (lambda > 0.0) alpha = 0.95 / lambda;
  }
  const int cap =
      opts.max_iterations > 0
          ? opts.max_iterations
          : std::max(1, static_cast<int>(std::ceil(
                            std::exp(2.0 * opts.delta) * std::log(1.0 / eps))));
  const double target =
      opts.residual_target >= 0.0 ? opts.residual_target : eps;

  // x^(0) = B b   (Algorithm 5, line 3); zero-rhs columns get x = 0.
  precond(b, x);
  for (std::size_t c = 0; c < k; ++c) {
    if (b_norms[c] == 0.0) fill(x.col(c), 0.0);
  }

  Panel r(n, k);
  Panel br;
  std::vector<double> stall_ref(
      k, std::numeric_limits<double>::infinity());
  const double* bd = b.data();
  for (int it = 0; it < cap && n_active > 0; ++it) {
    a.apply(x, r);
    double* rd = r.data();
    parallel_for(std::size_t{0}, n, [&](std::size_t i) {
      for (std::size_t c = 0; c < k; ++c) {
        rd[c * n + i] = bd[c * n + i] - rd[c * n + i];
      }
    });
    for (std::size_t c = 0; c < k; ++c) {
      if (!active[c]) continue;
      stats[c].relative_residual = norm2(r.col(c)) / b_norms[c];
      stats[c].iterations = it;
      if (stats[c].relative_residual <= target) {
        stats[c].reached_target = true;
        active[c] = 0;
        --n_active;
        continue;
      }
      if (opts.stall_window > 0) {
        // Same checkpoints and thresholds as the scalar path, so a
        // frozen-on-stall column's history still equals its scalar solve.
        const bool checkpoint = (it + 1) % opts.stall_window == 0;
        const bool stalled =
            checkpoint &&
            stats[c].relative_residual > stall_ref[c] * opts.stall_improvement;
        if (!std::isfinite(stats[c].relative_residual) || stalled) {
          active[c] = 0;  // reached_target stays false: caller escalates
          --n_active;
          continue;
        }
        if (checkpoint) stall_ref[c] = stats[c].relative_residual;
      }
    }
    if (n_active == 0) break;
    // x^(k) = x^(k-1) + alpha B r for the still-running columns. Frozen
    // columns ride along through the applies (their work is wasted, not
    // wrong) but are never written.
    precond(r, br);
    panel_axpy(alpha, br, x, active);
  }

  if (n_active > 0) {
    a.apply(x, r);
    double* rd = r.data();
    parallel_for(std::size_t{0}, n, [&](std::size_t i) {
      for (std::size_t c = 0; c < k; ++c) {
        rd[c * n + i] = bd[c * n + i] - rd[c * n + i];
      }
    });
    for (std::size_t c = 0; c < k; ++c) {
      if (!active[c]) continue;
      stats[c].relative_residual = norm2(r.col(c)) / b_norms[c];
      stats[c].iterations = cap;
      stats[c].reached_target = stats[c].relative_residual <= target;
    }
  }
  std::uint64_t total_iterations = 0;
  for (const IterationStats& st : stats) {
    total_iterations += static_cast<std::uint64_t>(st.iterations);
  }
  iteration_counter().add(total_iterations);
  span.arg("iterations", static_cast<double>(total_iterations));
  return stats;
}

}  // namespace parlap
