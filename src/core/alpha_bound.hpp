// alpha-boundedness via edge splitting (§3.2, Lemma 3.2).
//
// A multi-edge e is alpha-bounded w.r.t. L when its leverage score
// tau(e) = w(e) b_e' L^+ b_e is at most alpha. Any simple-graph edge has
// tau <= 1, so splitting it into ceil(1/alpha) parallel copies of 1/k-th
// the weight makes every copy alpha-bounded while leaving L unchanged.
// Theorem 3.9 needs alpha^-1 = Theta(log^2 n) for matrix-Freedman
// concentration; the constant is exposed as a knob and ablated in E9.
#pragma once

#include <cstdint>
#include <span>

#include "graph/multigraph.hpp"

namespace parlap {

/// Number of copies ceil(1/alpha) implied by `default_alpha`-style scales:
/// k = max(1, ceil(scale * ceil(log2 n)^2)).
[[nodiscard]] std::int64_t default_split_copies(Vertex n, double scale);

/// alpha = 1 / default_split_copies(n, scale).
[[nodiscard]] double default_alpha(Vertex n, double scale);

/// Lemma 3.2: splits every edge into `copies` equal parts. O(m * copies)
/// work, O(log n) depth. LH == LG exactly.
[[nodiscard]] Multigraph split_edges_uniform(const Multigraph& g,
                                             std::int64_t copies);

/// Lemma 3.3 step (3): splits edge e into max(1, ceil(tau_hat[e] / alpha))
/// parts using leverage-score overestimates; O(m + sum of copies) work.
[[nodiscard]] Multigraph split_edges_by_scores(const Multigraph& g,
                                               std::span<const double> tau_hat,
                                               double alpha);

}  // namespace parlap
