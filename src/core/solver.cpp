#include "core/solver.hpp"

#include <algorithm>
#include <cmath>

#include "core/alpha_bound.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

namespace {

/// Splits the global graph into per-component local multigraphs.
std::vector<std::pair<std::vector<Vertex>, Multigraph>> split_components(
    const Multigraph& g, const Components& comps) {
  const Vertex n = g.num_vertices();
  std::vector<std::vector<Vertex>> members(
      static_cast<std::size_t>(comps.count));
  for (Vertex v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  std::vector<Vertex> local(static_cast<std::size_t>(n));
  for (const auto& vs : members) {
    for (std::size_t i = 0; i < vs.size(); ++i) {
      local[static_cast<std::size_t>(vs[i])] = static_cast<Vertex>(i);
    }
  }
  std::vector<std::pair<std::vector<Vertex>, Multigraph>> out;
  out.reserve(members.size());
  for (auto& vs : members) {
    const auto nl = static_cast<Vertex>(vs.size());
    out.emplace_back(std::move(vs), Multigraph(nl));
  }
  const EdgeId m = g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    const Vertex u = g.edge_u(e);
    const auto c = static_cast<std::size_t>(
        comps.label[static_cast<std::size_t>(u)]);
    out[c].second.add_edge(local[static_cast<std::size_t>(u)],
                           local[static_cast<std::size_t>(g.edge_v(e))],
                           g.edge_weight(e));
  }
  return out;
}

}  // namespace

LaplacianSolver::LaplacianSolver(const Multigraph& g, SolverOptions opts)
    : opts_(opts) {
  g.validate();
  info_.n = g.num_vertices();
  info_.m = g.num_edges();

  const Components comps = connected_components(g);
  info_.components = comps.count;
  auto pieces = split_components(g, comps);

  comps_.resize(pieces.size());
  for (std::size_t c = 0; c < pieces.size(); ++c) {
    ComponentSolver& cs = comps_[c];
    cs.vertices = std::move(pieces[c].first);
    cs.graph = std::move(pieces[c].second);
    cs.op = LaplacianOperator(cs.graph);
    cs.b_local.resize(cs.vertices.size());
    cs.x_local.resize(cs.vertices.size());
    build_component(cs, /*copies_override=*/0);
  }
}

void LaplacianSolver::build_component(ComponentSolver& comp,
                                      std::int64_t copies_override) {
  const Vertex n = comp.graph.num_vertices();
  Multigraph split;
  std::int64_t copies = 0;
  if (opts_.split == SplitStrategy::kUniform ||
      comp.graph.num_edges() == 0) {
    copies = copies_override > 0 ? copies_override
                                 : default_split_copies(n, opts_.split_scale);
    split = split_edges_uniform(comp.graph, copies);
  } else {
    const Vector tau =
        leverage_overestimates(comp.graph, opts_.seed, opts_.leverage);
    double alpha = default_alpha(n, opts_.split_scale);
    if (copies_override > 0) {
      alpha = 1.0 / static_cast<double>(copies_override);
    }
    split = split_edges_by_scores(comp.graph, tau, alpha);
    copies = copies_override > 0
                 ? copies_override
                 : default_split_copies(n, opts_.split_scale);
  }
  comp.copies = copies;
  comp.split_edges = split.num_edges();
  comp.chain = BlockCholeskyChain::build(split, opts_.seed, opts_.chain);
  comp.workspace = ApplyWorkspace{};

  // Refresh aggregate info.
  info_.split_edges = 0;
  info_.depth = 0;
  info_.jacobi_terms = 0;
  info_.stored_entries = 0;
  info_.copies =
      opts_.split == SplitStrategy::kUniform ? comps_.front().copies : 0;
  for (const ComponentSolver& cs : comps_) {
    if (cs.chain.dimension() == 0) continue;
    info_.depth = std::max(info_.depth, cs.chain.depth());
    info_.jacobi_terms = std::max(info_.jacobi_terms, cs.chain.jacobi_terms());
    info_.stored_entries += cs.chain.stored_entries();
  }
  for (const ComponentSolver& cs : comps_) {
    info_.split_edges += cs.split_edges;
  }
}

void LaplacianSolver::apply_laplacian(std::span<const double> x,
                                      std::span<double> y) const {
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(info_.n));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(info_.n));
  for (const ComponentSolver& cs : comps_) {
    Vector xl(cs.vertices.size());
    Vector yl(cs.vertices.size());
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      xl[i] = x[static_cast<std::size_t>(cs.vertices[i])];
    }
    cs.op.apply(xl, yl);
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      y[static_cast<std::size_t>(cs.vertices[i])] = yl[i];
    }
  }
}

void LaplacianSolver::apply_preconditioner(std::span<const double> r,
                                           std::span<double> y) {
  PARLAP_CHECK(r.size() == static_cast<std::size_t>(info_.n));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(info_.n));
  for (ComponentSolver& cs : comps_) {
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      cs.b_local[i] = r[static_cast<std::size_t>(cs.vertices[i])];
    }
    project_out_ones(cs.b_local);
    cs.chain.apply(cs.b_local, cs.x_local, cs.workspace);
    project_out_ones(cs.x_local);
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      y[static_cast<std::size_t>(cs.vertices[i])] = cs.x_local[i];
    }
  }
}

std::vector<SolveStats> LaplacianSolver::solve_many(
    std::span<const Vector> bs, std::span<Vector> xs, double eps) {
  PARLAP_CHECK(bs.size() == xs.size());
  std::vector<SolveStats> stats;
  stats.reserve(bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    stats.push_back(solve(bs[i], xs[i], eps));
  }
  return stats;
}

SolveStats LaplacianSolver::solve(std::span<const double> b,
                                  std::span<double> x, double eps) {
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(info_.n));
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(info_.n));
  PARLAP_CHECK(eps > 0.0 && eps < 1.0);

  SolveStats total;
  total.converged = true;
  for (ComponentSolver& cs : comps_) {
    Vector bl(cs.vertices.size());
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      bl[i] = b[static_cast<std::size_t>(cs.vertices[i])];
    }
    // Least-squares convention: drop the kernel component of b.
    project_out_ones(bl);
    Vector xl(cs.vertices.size(), 0.0);

    IterationStats it;
    int rebuilds = 0;
    while (true) {
      BlockCholeskyChain& chain = cs.chain;
      ApplyWorkspace& ws = cs.workspace;
      const LinearMap precond = [&chain, &ws](std::span<const double> rr,
                                              std::span<double> yy) {
        chain.apply(rr, yy, ws);
      };
      RichardsonOptions rich = opts_.richardson;
      if (rich.auto_step && rich.fixed_alpha <= 0.0) {
        // The step estimate depends only on the factorization: compute it
        // once per chain and reuse across solves (factor-once/solve-many).
        if (cs.alpha_cache <= 0.0) {
          const double lambda = estimate_max_eigenvalue(
              cs.op, precond, rich.power_iterations);
          cs.alpha_cache = lambda > 0.0
                               ? 0.95 / lambda
                               : 2.0 / (std::exp(-rich.delta) +
                                        std::exp(rich.delta));
        }
        rich.fixed_alpha = cs.alpha_cache;
      }
      it = preconditioned_richardson(cs.op, precond, bl, xl, eps, rich);
      if (it.reached_target || !opts_.adaptive ||
          rebuilds >= opts_.max_rebuilds) {
        break;
      }
      // Stalled: refactor with doubled split copies and a shifted seed.
      ++rebuilds;
      const std::int64_t doubled = std::max<std::int64_t>(2, cs.copies * 2);
      opts_.seed = splitmix64(opts_.seed ^ 0x5245425549ull);
      build_component(cs, doubled);
      cs.alpha_cache = 0.0;  // new chain, new spectrum
      fill(std::span<double>(xl), 0.0);
    }
    project_out_ones(xl);
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      x[static_cast<std::size_t>(cs.vertices[i])] = xl[i];
    }
    total.iterations = std::max(total.iterations, it.iterations);
    total.relative_residual =
        std::max(total.relative_residual, it.relative_residual);
    total.converged = total.converged && it.reached_target;
    total.rebuilds += rebuilds;
  }
  return total;
}

}  // namespace parlap
