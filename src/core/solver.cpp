#include "core/solver.hpp"

#include <algorithm>
#include <cmath>

#include "core/alpha_bound.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace parlap {

namespace {

/// Splits the global graph into per-component local multigraphs.
std::vector<std::pair<std::vector<Vertex>, Multigraph>> split_components(
    const Multigraph& g, const Components& comps) {
  const Vertex n = g.num_vertices();
  std::vector<std::vector<Vertex>> members(
      static_cast<std::size_t>(comps.count));
  for (Vertex v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  std::vector<Vertex> local(static_cast<std::size_t>(n));
  for (const auto& vs : members) {
    for (std::size_t i = 0; i < vs.size(); ++i) {
      local[static_cast<std::size_t>(vs[i])] = static_cast<Vertex>(i);
    }
  }
  std::vector<std::pair<std::vector<Vertex>, Multigraph>> out;
  out.reserve(members.size());
  for (auto& vs : members) {
    const auto nl = static_cast<Vertex>(vs.size());
    out.emplace_back(std::move(vs), Multigraph(nl));
  }
  const EdgeId m = g.num_edges();
  // Size each component's edge arrays up front: one counting pass beats
  // growing three vectors incrementally per edge.
  std::vector<EdgeId> comp_edges(static_cast<std::size_t>(comps.count), 0);
  for (EdgeId e = 0; e < m; ++e) {
    ++comp_edges[static_cast<std::size_t>(
        comps.label[static_cast<std::size_t>(g.edge_u(e))])];
  }
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c].second.reserve_edges(comp_edges[c]);
  }
  for (EdgeId e = 0; e < m; ++e) {
    const Vertex u = g.edge_u(e);
    const auto c = static_cast<std::size_t>(
        comps.label[static_cast<std::size_t>(u)]);
    out[c].second.add_edge(local[static_cast<std::size_t>(u)],
                           local[static_cast<std::size_t>(g.edge_v(e))],
                           g.edge_weight(e));
  }
  return out;
}

}  // namespace

LaplacianSolver::LaplacianSolver(const Multigraph& g, SolverOptions opts)
    : opts_(opts) {
  g.validate();
  info_.n = g.num_vertices();
  info_.m = g.num_edges();
  // kAuto never survives construction: the resolution is a deterministic
  // function of n, so the same graph + options always factorizes at the
  // same storage precision (stable cache keys, reproducible solves).
  opts_.precision = resolve_precision(opts_.precision, info_.n);
  info_.precision = opts_.precision;

  const Components comps = connected_components(g);
  info_.components = comps.count;
  auto pieces = split_components(g, comps);

  comps_.resize(pieces.size());
  // Slots 0..max_escalation_round(); fp32 mode holds one extra rung (the
  // fp64 rebuild of round 0). Sized off max_rebuilds directly so the
  // adaptive flag can't shrink the vector below what round_for checks.
  const auto num_rounds =
      static_cast<std::size_t>(std::max(0, opts_.max_rebuilds)) + 1 +
      (opts_.precision == Precision::kFp32 ? 1 : 0);
  for (std::size_t c = 0; c < pieces.size(); ++c) {
    ComponentSolver& cs = comps_[c];
    cs.vertices = std::move(pieces[c].first);
    cs.graph = std::move(pieces[c].second);
    cs.op = LaplacianOperator(cs.graph);
    cs.rounds.resize(num_rounds);
    cs.rounds.front() = build_round(cs, /*round=*/0);
  }

  // Aggregate info over the round-0 factorizations (escalation rounds
  // built later by the adaptive path are not reflected; see header).
  info_.copies = opts_.split == SplitStrategy::kUniform && !comps_.empty()
                     ? comps_.front().rounds.front()->copies
                     : 0;
  for (const ComponentSolver& cs : comps_) {
    const ChainRound& cr = *cs.rounds.front();
    info_.split_edges += cr.split_edges;
    if (cr.chain.dimension() == 0) continue;
    info_.depth = std::max(info_.depth, cr.chain.depth());
    info_.jacobi_terms = std::max(info_.jacobi_terms, cr.chain.jacobi_terms());
    info_.stored_entries += cr.chain.stored_entries();
    info_.stored_value_bytes += cr.chain.stored_value_bytes();
    build_stats_.accumulate(cr.chain.build_stats());
  }
}

std::shared_ptr<LaplacianSolver::ChainRound> LaplacianSolver::build_round(
    const ComponentSolver& comp, int round) const {
  const Vertex n = comp.graph.num_vertices();
  // Round-r parameters are pure functions of (options, r): copies double
  // per round, the seed shifts per round. Whichever solve first escalates
  // a component to round r therefore builds the same chain any other
  // caller would have built.
  //
  // fp32 ladder: round 0 is the fp32 chain; round 1 rebuilds the SAME
  // split parameters (same seed, same copies) at fp64 storage — the
  // precision-escape rung — and rounds >= 2 are the usual doubled-copies
  // rebuilds, all fp64. In fp64 mode every round is the classic ladder.
  Precision storage = opts_.precision;
  int param_round = round;
  if (opts_.precision == Precision::kFp32 && round > 0) {
    storage = Precision::kFp64;
    param_round = round - 1;
  }
  std::int64_t copies = default_split_copies(n, opts_.split_scale);
  std::uint64_t seed = opts_.seed;
  for (int r = 0; r < param_round; ++r) {
    copies = std::max<std::int64_t>(2, copies * 2);
    seed = splitmix64(seed ^ 0x5245425549ull);
  }

  auto cr = std::make_shared<ChainRound>();
  Multigraph split;
  if (opts_.split == SplitStrategy::kUniform || comp.graph.num_edges() == 0) {
    split = split_edges_uniform(comp.graph, copies);
  } else {
    const Vector tau = leverage_overestimates(comp.graph, seed, opts_.leverage);
    const double alpha = param_round == 0
                             ? default_alpha(n, opts_.split_scale)
                             : 1.0 / static_cast<double>(copies);
    split = split_edges_by_scores(comp.graph, tau, alpha);
  }
  cr->copies = copies;
  cr->split_edges = split.num_edges();
  // Consume the split graph: build releases its (m * copies)-sized edge
  // arrays as soon as level 0 has been absorbed into the build arena.
  BlockCholeskyOptions chain_opts = opts_.chain;
  chain_opts.precision = storage;
  cr->chain = BlockCholeskyChain::build(std::move(split), seed, chain_opts);
  return cr;
}

std::shared_ptr<LaplacianSolver::ChainRound> LaplacianSolver::round_for(
    const ComponentSolver& comp, int round) const {
  // Round 0 is written once in the constructor and read lock-free.
  if (round == 0) return comp.rounds.front();
  PARLAP_CHECK(static_cast<std::size_t>(round) < comp.rounds.size());
  {
    const std::scoped_lock lock(rounds_mutex_);
    if (comp.rounds[static_cast<std::size_t>(round)]) {
      return comp.rounds[static_cast<std::size_t>(round)];
    }
  }
  // Build outside the lock (factorization is expensive); the result is
  // deterministic, so if two threads race the duplicates are identical
  // and the first publication wins.
  std::shared_ptr<ChainRound> built = build_round(comp, round);
  const std::scoped_lock lock(rounds_mutex_);
  auto& slot = comp.rounds[static_cast<std::size_t>(round)];
  if (!slot) slot = std::move(built);
  return slot;
}

double LaplacianSolver::step_size_for(const ComponentSolver& comp,
                                      ChainRound& cr,
                                      ApplyWorkspace& w) const {
  // The step estimate depends only on the factorization: computed once
  // per chain and reused across solves (factor-once / solve-many). The
  // power iteration is deterministic, so concurrent first callers store
  // the same bits and the relaxed race is benign.
  const double cached = cr.alpha_cache.load(std::memory_order_relaxed);
  if (cached > 0.0) return cached;
  const BlockCholeskyChain& chain = cr.chain;
  const LinearMap precond = [&chain, &w](std::span<const double> rr,
                                         std::span<double> yy) {
    chain.apply(rr, yy, w);
  };
  const double lambda = estimate_max_eigenvalue(
      comp.op, precond, opts_.richardson.power_iterations);
  const double alpha =
      lambda > 0.0 ? 0.95 / lambda
                   : 2.0 / (std::exp(-opts_.richardson.delta) +
                            std::exp(opts_.richardson.delta));
  cr.alpha_cache.store(alpha, std::memory_order_relaxed);
  return alpha;
}

void LaplacianSolver::apply_laplacian(std::span<const double> x,
                                      std::span<double> y) const {
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(info_.n));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(info_.n));
  for (const ComponentSolver& cs : comps_) {
    Vector xl(cs.vertices.size());
    Vector yl(cs.vertices.size());
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      xl[i] = x[static_cast<std::size_t>(cs.vertices[i])];
    }
    cs.op.apply(xl, yl);
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      y[static_cast<std::size_t>(cs.vertices[i])] = yl[i];
    }
  }
}

void LaplacianSolver::apply_preconditioner(std::span<const double> r,
                                           std::span<double> y) const {
  PARLAP_CHECK(r.size() == static_cast<std::size_t>(info_.n));
  PARLAP_CHECK(y.size() == static_cast<std::size_t>(info_.n));
  const auto scratch = scratch_pool_.acquire();
  for (std::size_t c = 0; c < comps_.size(); ++c) {
    const ComponentSolver& cs = comps_[c];
    Vector& b_local = scratch->b_local;
    Vector& x_local = scratch->x_local;
    b_local.resize(cs.vertices.size());
    x_local.resize(cs.vertices.size());
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      b_local[i] = r[static_cast<std::size_t>(cs.vertices[i])];
    }
    project_out_ones(b_local);
    cs.rounds.front()->chain.apply(b_local, x_local,
                                   scratch->component_ws(c, comps_.size()));
    project_out_ones(x_local);
    for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
      y[static_cast<std::size_t>(cs.vertices[i])] = x_local[i];
    }
  }
}

void LaplacianSolver::apply_preconditioner(const Panel& r, Panel& y) const {
  PARLAP_CHECK(r.rows() == static_cast<std::size_t>(info_.n));
  y.resize(r.rows(), r.cols());
  const auto scratch = scratch_pool_.acquire();
  for (std::size_t c = 0; c < comps_.size(); ++c) {
    const ComponentSolver& cs = comps_[c];
    Panel& bl = scratch->pb_local;
    Panel& xl = scratch->px_local;
    panel_gather_rows(r, cs.vertices, bl);
    panel_project_out_ones(bl);
    cs.rounds.front()->chain.apply(bl, xl,
                                   scratch->component_ws(c, comps_.size()));
    panel_project_out_ones(xl);
    panel_scatter_rows(xl, cs.vertices, y);
  }
}

std::vector<SolveStats> LaplacianSolver::solve_panel_impl(
    const Panel& b, Panel& x, double eps, SolveScratch& scratch) const {
  PARLAP_CHECK(b.rows() == static_cast<std::size_t>(info_.n));
  PARLAP_CHECK(b.cols() >= 1);
  PARLAP_CHECK(eps > 0.0 && eps < 1.0);
  const std::size_t k = b.cols();
  x.resize(b.rows(), k);
  PARLAP_TRACE_SPAN_N(solve_span, "solve.panel", "solve");
  solve_span.arg("cols", static_cast<double>(k));
  solve_span.arg("n", static_cast<double>(info_.n));

  std::vector<SolveStats> total(k);
  for (SolveStats& s : total) s.converged = true;
  double apply_seconds = 0.0;

  for (std::size_t c = 0; c < comps_.size(); ++c) {
    const ComponentSolver& cs = comps_[c];
    Panel& bl = scratch.pb_local;
    panel_gather_rows(b, cs.vertices, bl);
    // Least-squares convention: drop the kernel component of b.
    panel_project_out_ones(bl);
    Panel& xl = scratch.px_local;
    xl.resize(cs.vertices.size(), k);

    // Columns still escalating; everyone starts at round 0. A column's
    // round sequence (and so its bits) is exactly what a scalar solve of
    // that column would run — escalation only compacts the stalled
    // columns into a narrower panel.
    std::vector<std::size_t> active(k);
    for (std::size_t col = 0; col < k; ++col) active[col] = col;
    for (int round = 0; !active.empty(); ++round) {
      PARLAP_TRACE_SPAN_N(round_span, "solve.round", "solve");
      round_span.arg("round", static_cast<double>(round));
      round_span.arg("cols", static_cast<double>(active.size()));
      if (round > 0) {
        // Escalation: these columns missed eps at the previous round's
        // chain and are re-solving on a rebuilt (reseeded) one.
        static obs::Counter& escalations =
            obs::MetricsRegistry::global().counter(
                "parlap.solve.escalations");
        escalations.add(static_cast<std::uint64_t>(active.size()));
        if (opts_.precision == Precision::kFp32 && round == 1) {
          // These columns left the fp32 chain for its fp64 twin: the
          // refinement floor, not the concentration bound, was the wall.
          static obs::Counter& precision_escalations =
              obs::MetricsRegistry::global().counter(
                  "parlap.solve.precision_escalations");
          precision_escalations.add(static_cast<std::uint64_t>(active.size()));
        }
      }
      const std::shared_ptr<ChainRound> cr = round_for(cs, round);
      const BlockCholeskyChain& chain = cr->chain;
      ApplyWorkspace& w = scratch.component_ws(c, comps_.size());
      RichardsonOptions rich = opts_.richardson;
      if (chain.storage() == Precision::kFp32 && rich.stall_window == 0) {
        // Refinement rounds on the fp32 chain get stall detection: a
        // column pinned at its float-storage residual floor escalates to
        // the fp64 rung instead of burning the iteration cap. Healthy
        // refinement contracts far faster than 0.75x per 5 iterations,
        // so this never fires on a converging column. fp64 rounds keep
        // the exact pre-precision iteration behavior.
        rich.stall_window = 5;
        rich.stall_improvement = 0.75;
      }
      if (rich.auto_step && rich.fixed_alpha <= 0.0) {
        rich.fixed_alpha = step_size_for(cs, *cr, w);
      }
      const PanelMap precond = [&chain, &w, &apply_seconds](const Panel& rr,
                                                           Panel& yy) {
        const WallTimer t;
        chain.apply(rr, yy, w);
        apply_seconds += t.seconds();
      };

      const bool whole = active.size() == k;
      const Panel* round_b = &bl;
      Panel* round_x = &xl;
      if (!whole) {
        Panel& bsub = scratch.pb_sub;
        bsub.resize(bl.rows(), active.size());
        for (std::size_t j = 0; j < active.size(); ++j) {
          assign(bsub.col(j), bl.col(active[j]));
        }
        round_b = &bsub;
        round_x = &scratch.px_sub;
      }
      const std::vector<IterationStats> its =
          preconditioned_richardson(cs.op, precond, *round_b, *round_x, eps,
                                    rich);

      std::vector<std::size_t> still;
      for (std::size_t j = 0; j < active.size(); ++j) {
        const std::size_t col = active[j];
        const IterationStats& it = its[j];
        if (!it.reached_target && round < max_escalation_round()) {
          still.push_back(col);  // escalate: next round re-solves it
          continue;
        }
        if (!whole) assign(xl.col(col), round_x->col(j));
        SolveStats& s = total[col];
        s.iterations = std::max(s.iterations, it.iterations);
        s.relative_residual =
            std::max(s.relative_residual, it.relative_residual);
        s.converged = s.converged && it.reached_target;
        s.rebuilds += round;
      }
      active = std::move(still);
    }
    panel_project_out_ones(xl);
    panel_scatter_rows(xl, cs.vertices, x);
  }
  for (SolveStats& s : total) {
    s.apply_seconds = apply_seconds / static_cast<double>(k);
  }
  return total;
}

std::vector<SolveStats> LaplacianSolver::solve_panel(const Panel& b,
                                                     Panel& x,
                                                     double eps) const {
  const auto scratch = scratch_pool_.acquire();
  return solve_panel_impl(b, x, eps, *scratch);
}

std::vector<SolveStats> LaplacianSolver::solve_many(
    std::span<const Vector> bs, std::span<Vector> xs, double eps) const {
  PARLAP_CHECK(bs.size() == xs.size());
  std::vector<SolveStats> stats;
  stats.reserve(bs.size());
  if (bs.empty()) return stats;
  const auto width =
      static_cast<std::size_t>(std::max(1, opts_.max_block_width));
  const auto scratch = scratch_pool_.acquire();
  for (std::size_t start = 0; start < bs.size(); start += width) {
    const std::size_t cols = std::min(width, bs.size() - start);
    panel_from_vectors(bs.subspan(start, cols), scratch->pb_global);
    std::vector<SolveStats> block = solve_panel_impl(
        scratch->pb_global, scratch->px_global, eps, *scratch);
    panel_to_vectors(scratch->px_global, xs.subspan(start, cols));
    stats.insert(stats.end(), block.begin(), block.end());
  }
  return stats;
}

SolveStats LaplacianSolver::solve(std::span<const double> b,
                                  std::span<double> x, double eps) const {
  PARLAP_CHECK(b.size() == static_cast<std::size_t>(info_.n));
  PARLAP_CHECK(x.size() == static_cast<std::size_t>(info_.n));
  const auto scratch = scratch_pool_.acquire();
  Panel& bg = scratch->pb_global;
  bg.resize(b.size(), 1);
  std::copy(b.begin(), b.end(), bg.col(0).begin());
  const std::vector<SolveStats> stats =
      solve_panel_impl(bg, scratch->px_global, eps, *scratch);
  std::copy(scratch->px_global.col(0).begin(),
            scratch->px_global.col(0).end(), x.begin());
  return stats.front();
}

}  // namespace parlap
