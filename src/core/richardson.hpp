// Preconditioned Richardson iteration (Algorithm 5, Theorem 3.8).
//
// Given B ~delta A^+, the iteration x_k = (I - alpha B A) x_{k-1} +
// alpha B b with alpha = 2/(e^-delta + e^delta) converges to an
// eps-approximate solution in ceil(e^{2 delta} log(1/eps)) steps, each one
// A-apply plus one B-apply. We compute the equivalent residual form
// x += alpha B (b - A x), which exposes ||r||/||b|| for free and enables
// early exit.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "linalg/laplacian_op.hpp"
#include "linalg/panel.hpp"

namespace parlap {

/// y = M x for a fixed linear operator M.
using LinearMap =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Y = M X column-wise for a fixed linear operator M (blocked apply).
using PanelMap = std::function<void(const Panel&, Panel&)>;

struct RichardsonOptions {
  /// delta with B ~delta A^+. Thm 3.10 gives delta = 1 for the block
  /// Cholesky preconditioner. Used only when auto_step is false.
  double delta = 1.0;
  /// Iteration cap; 0 = the paper's ceil(e^{2 delta} ln(1/eps)).
  int max_iterations = 0;
  /// Early exit when ||b - Ax|| / ||b|| <= residual_target; negative =
  /// use eps (the caller's accuracy goal) as the target.
  double residual_target = -1.0;
  /// Estimate lambda_max(B A) by a short power iteration and use
  /// alpha = 0.95 / lambda_max instead of the paper's 2/(e^-d + e^d).
  /// This never diverges, whatever the actual preconditioner quality;
  /// the paper's fixed alpha assumes spec(BA) within [e^-d, e^d] and
  /// diverges beyond it. Costs `power_iterations` extra A/B applies.
  bool auto_step = true;
  int power_iterations = 8;
  /// > 0: use exactly this step size (callers that cache the power
  /// iteration across solves of one factorization, e.g. LaplacianSolver).
  double fixed_alpha = 0.0;
  /// > 0 enables stall detection: every stall_window iterations, a run
  /// (or panel column) whose residual has not shrunk to at least
  /// stall_improvement x its value at the previous checkpoint stops with
  /// reached_target = false, and a non-finite residual stops
  /// immediately. 0 (default) = disabled — iteration behavior is exactly
  /// the pre-stall-detection code. LaplacianSolver enables this on fp32
  /// refinement rounds so a stalled (storage-precision-floored) solve
  /// escalates to the fp64 chain instead of burning the iteration cap.
  int stall_window = 0;
  /// Required residual shrink factor per stall_window (see above).
  double stall_improvement = 0.75;
};

/// lambda_max of precond∘a (a symmetric-similar PSD product) by power
/// iteration from a deterministic start vector.
[[nodiscard]] double estimate_max_eigenvalue(const LaplacianOperator& a,
                                             const LinearMap& precond,
                                             int iterations = 8);

struct IterationStats {
  int iterations = 0;
  double relative_residual = 0.0;
  bool reached_target = false;
};

/// Solves A x = b to eps using preconditioner `precond` (= B above).
/// `x` is the output (overwritten).
IterationStats preconditioned_richardson(const LaplacianOperator& a,
                                         const LinearMap& precond,
                                         std::span<const double> b,
                                         std::span<double> x, double eps,
                                         const RichardsonOptions& opts = {});

/// Blocked Richardson: solves A x.col(c) = b.col(c) for every column of
/// the panel, sharing each A-apply and preconditioner apply across all
/// still-running columns. A column that reaches its target is frozen (its
/// x never changes again), so column c's iterate history — and therefore
/// its returned stats and solution bits — is identical to the scalar
/// preconditioned_richardson on b.col(c), at any block width and thread
/// count. x is resized to b's shape and overwritten.
std::vector<IterationStats> preconditioned_richardson(
    const LaplacianOperator& a, const PanelMap& precond, const Panel& b,
    Panel& x, double eps, const RichardsonOptions& opts = {});

}  // namespace parlap
