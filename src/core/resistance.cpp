#include "core/resistance.hpp"

#include <cmath>

#include "core/solver.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parlap {

ResistanceEstimator::ResistanceEstimator(const Multigraph& g,
                                         std::uint64_t seed,
                                         const ResistanceOptions& opts) {
  const Vertex n = g.num_vertices();
  PARLAP_CHECK(n >= 2);
  const int q = opts.jl_dimensions > 0
                    ? opts.jl_dimensions
                    : std::max(4, static_cast<int>(std::ceil(
                                      6.0 * std::log(static_cast<double>(n)))));

  SolverOptions solver_opts;
  solver_opts.seed = splitmix64(seed ^ 0x5245534953ull);
  solver_opts.split_scale = opts.split_scale;
  LaplacianSolver solver(g, solver_opts);
  PARLAP_CHECK_MSG(solver.info().components == 1,
                   "ResistanceEstimator requires a connected graph");

  const EdgeId m = g.num_edges();
  const double inv_sqrt_q = 1.0 / std::sqrt(static_cast<double>(q));
  sketch_.resize(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    // y_i = B' W^{1/2} q_i: each edge contributes +-sqrt(w)/sqrt(q) to its
    // endpoints with opposite signs, so y_i is automatically mean-free.
    Vector y(static_cast<std::size_t>(n), 0.0);
    Rng rng(seed, RngTag::kLeverage,
            0x4A4C0000ull + static_cast<std::uint64_t>(i));
    for (EdgeId e = 0; e < m; ++e) {
      const double s = (rng.next_u64() & 1u) != 0 ? inv_sqrt_q : -inv_sqrt_q;
      const double c = s * std::sqrt(g.edge_weight(e));
      y[static_cast<std::size_t>(g.edge_u(e))] += c;
      y[static_cast<std::size_t>(g.edge_v(e))] -= c;
    }
    Vector z(static_cast<std::size_t>(n), 0.0);
    solver.solve(y, z, opts.solve_eps);
    sketch_[static_cast<std::size_t>(i)] = std::move(z);
  }
}

double ResistanceEstimator::resistance(Vertex u, Vertex v) const {
  double r = 0.0;
  for (const Vector& z : sketch_) {
    const double d = z[static_cast<std::size_t>(u)] - z[static_cast<std::size_t>(v)];
    r += d * d;
  }
  return r;
}

Vector ResistanceEstimator::leverage_scores(const Multigraph& edges) const {
  const EdgeId m = edges.num_edges();
  Vector tau(static_cast<std::size_t>(m));
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    tau[static_cast<std::size_t>(e)] =
        edges.edge_weight(e) * resistance(edges.edge_u(e), edges.edge_v(e));
  });
  return tau;
}

}  // namespace parlap
