// Span tracer — per-thread buffers of timestamped spans, flushed to
// Chrome trace-event JSON (load the file at chrome://tracing or
// https://ui.perfetto.dev).
//
// Design constraints, in order:
//
//   1. The disabled path is free. `PARLAP_TRACE_SPAN(...)` compiles to
//      one relaxed atomic load and a branch when tracing is off — no
//      allocation, no lock, no clock read — so spans stay compiled into
//      release builds permanently (bench_e18_obs_overhead holds the
//      line; tests/obs/trace_test.cpp asserts the zero-allocation
//      contract).
//   2. The enabled hot path is lock-free. Each recording thread owns a
//      fixed-capacity event buffer; appending is two relaxed atomic ops
//      on indices the owning thread alone writes. The tracer's mutex is
//      taken only on a thread's *first* span (buffer registration) and
//      at flush time.
//   3. Overflow drops, never blocks. A full buffer counts the dropped
//      span and the solve proceeds at full speed; `dropped()` reports
//      the loss so a truncated trace is never mistaken for a complete
//      one.
//
// Span names and categories must be string literals (or otherwise
// outlive the tracer): events store the pointers, not copies. Numeric
// key/value args ride along (kMaxArgs per span); every span gets a
// process-unique id. docs/OBSERVABILITY.md lists the span taxonomy.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "support/timer.hpp"

namespace parlap::obs {

/// One finished span. Fixed-size POD so per-thread buffers are flat
/// arrays the owning thread appends to without allocation.
struct TraceEvent {
  const char* name = nullptr;  ///< literal
  const char* cat = nullptr;   ///< literal
  std::uint64_t span_id = 0;   ///< process-unique
  std::uint64_t ts_ns = 0;     ///< steady_now_ns() at span begin
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< tracer-assigned thread index
  std::uint32_t nargs = 0;
  static constexpr std::uint32_t kMaxArgs = 4;
  struct Arg {
    const char* key;  ///< literal
    double value;
  } args[kMaxArgs];
};

/// Process-wide trace collector (singleton). Threads register lazily on
/// their first recorded span; buffers are owned by the tracer and live
/// until process exit, so a thread may exit while its events await
/// flushing. enable()/clear()/write_chrome() are meant for the
/// single-threaded edges of a run (CLI startup/shutdown, test
/// setup) — flush after the recording threads are quiescent.
class Tracer {
 public:
  /// Events a single thread can hold before dropping.
  static constexpr std::size_t kBufferCapacity = std::size_t{1} << 16;

  static Tracer& instance();

  /// The disabled-path gate: one relaxed load, inlined into every span
  /// constructor.
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void enable() noexcept { enabled_.store(true, std::memory_order_release); }
  void disable() noexcept { enabled_.store(false, std::memory_order_release); }

  /// Appends one finished span for the calling thread (registers the
  /// thread's buffer on first use). Called by ScopedSpan, not directly.
  void record(const TraceEvent& ev) noexcept;

  /// Next process-unique span id.
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Recorded events across all threads (drops excluded).
  [[nodiscard]] std::size_t event_count() const;
  /// Spans lost to full buffers since the last clear().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Forgets recorded events and drop counts. Thread buffers stay
  /// registered (and allocated) for reuse.
  void clear();

  /// Writes the Chrome trace-event JSON document ({"traceEvents": [...]},
  /// "X" complete events, microsecond timestamps).
  void write_chrome(std::ostream& os) const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  struct Buffer;  ///< defined in trace.cpp (registration bookkeeping)

 private:
  Tracer() = default;
  Buffer* buffer_for_thread();

  static std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> next_span_id_{1};
};

/// The calling thread's current request id (0 when outside any
/// request). Spans opened while a RequestIdScope is live pick the id up
/// automatically as a "request_id" arg, so one grep of the trace
/// reconstructs every span a request touched across the server, engine,
/// cache, and solver layers.
[[nodiscard]] std::uint64_t current_request_id() noexcept;

/// RAII binding of a request id to the calling thread. Nests (the
/// previous id is restored on destruction) so a worker serving request
/// B inside a callback of request A re-tags correctly.
class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t request_id) noexcept;
  ~RequestIdScope();

  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  std::uint64_t saved_;
};

/// RAII span. Construction snapshots the clock when tracing is enabled;
/// destruction records the completed event (if tracing was switched off
/// mid-span, the event is dropped at record time). Numeric args can be
/// attached any time before destruction:
///
///   PARLAP_TRACE_SPAN("build.five_dd", "build");
///   PARLAP_TRACE_SPAN_N(span, "solve", "solve");
///   span.arg("iterations", iters);
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) noexcept {
    if (Tracer::enabled()) [[unlikely]] {
      active_ = true;
      name_ = name;
      cat_ = cat;
      if (const std::uint64_t rid = current_request_id(); rid != 0) {
        args_[0].key = "request_id";
        args_[0].value = static_cast<double>(rid);
        nargs_ = 1;
      }
      start_ns_ = steady_now_ns();
    }
  }

  ~ScopedSpan() {
    if (active_) [[unlikely]] { finish(); }
  }

  /// Attaches a numeric key/value (literal key). No-op when inactive;
  /// args beyond TraceEvent::kMaxArgs are ignored.
  void arg(const char* key, double value) noexcept {
    if (active_ && nargs_ < TraceEvent::kMaxArgs) {
      args_[nargs_].key = key;
      args_[nargs_].value = value;
      ++nargs_;
    }
  }

  /// Closes the span before scope exit (for sequential phases sharing
  /// one scope). Idempotent; the destructor becomes a no-op.
  void end() noexcept {
    if (active_) [[unlikely]] {
      finish();
      active_ = false;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void finish() noexcept;

  bool active_ = false;
  std::uint32_t nargs_ = 0;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
  TraceEvent::Arg args_[TraceEvent::kMaxArgs];
};

}  // namespace parlap::obs

#define PARLAP_OBS_CONCAT2(a, b) a##b
#define PARLAP_OBS_CONCAT(a, b) PARLAP_OBS_CONCAT2(a, b)

/// Anonymous span covering the enclosing scope.
#define PARLAP_TRACE_SPAN(name, cat)                                     \
  const ::parlap::obs::ScopedSpan PARLAP_OBS_CONCAT(parlap_trace_span_,  \
                                                    __LINE__)((name), (cat))

/// Named span, for attaching args before it closes.
#define PARLAP_TRACE_SPAN_N(var, name, cat) \
  ::parlap::obs::ScopedSpan var((name), (cat))
