#include "obs/window.hpp"

namespace parlap::obs {

namespace {

// Number of whole epochs a window of `window_ns` spans, clamped so the
// current partial epoch plus the full ones never exceed the ring.
std::uint64_t window_epochs(std::uint64_t window_ns, std::uint64_t epoch_ns,
                            std::size_t slots) noexcept {
  std::uint64_t epochs = window_ns / epoch_ns;
  if (epochs == 0) epochs = 1;
  const std::uint64_t cap = static_cast<std::uint64_t>(slots) - 1;
  return epochs < cap ? epochs : cap;
}

}  // namespace

bool WindowedHistogram::claim_slot(Slot& slot, std::uint64_t epoch) noexcept {
  const std::uint64_t want = stable_tag(epoch);
  for (;;) {
    std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == want) return true;
    if (tag > want) return false;  // slot already hosts a newer epoch
    if (tag == want - 1) continue;  // another writer is resetting; spin
    // Slot holds an older epoch (or was never used): race to reset it.
    if (slot.tag.compare_exchange_weak(tag, want - 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      slot.hist.reset();
      slot.tag.store(want, std::memory_order_release);
      return true;
    }
  }
}

void WindowedHistogram::record_ns_at(std::uint64_t ns,
                                     std::uint64_t now_ns) noexcept {
  const std::uint64_t epoch = now_ns / epoch_ns_;
  Slot& slot = slots_[epoch % kSlots];
  if (claim_slot(slot, epoch)) slot.hist.record_ns(ns);
}

WindowDigest WindowedHistogram::digest_at(std::uint64_t window_ns,
                                          std::uint64_t now_ns) const noexcept {
  LatencyHistogram merged;
  merge_window_into(merged, window_ns, now_ns);
  WindowDigest d;
  d.count = merged.count();
  d.sum_seconds = merged.sum_seconds();
  d.mean = merged.mean_seconds();
  d.p50 = merged.percentile_seconds(0.50);
  d.p95 = merged.percentile_seconds(0.95);
  d.p99 = merged.percentile_seconds(0.99);
  d.window_seconds = static_cast<double>(window_ns) * 1e-9;
  return d;
}

void WindowedHistogram::merge_window_into(LatencyHistogram& out,
                                          std::uint64_t window_ns,
                                          std::uint64_t now_ns) const noexcept {
  const std::uint64_t cur_epoch = now_ns / epoch_ns_;
  const std::uint64_t epochs = window_epochs(window_ns, epoch_ns_, kSlots);
  for (const Slot& slot : slots_) {
    const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag < 2 || (tag & 1) != 0) continue;  // never used or mid-reset
    const std::uint64_t epoch = (tag - 2) / 2;
    if (epoch > cur_epoch || cur_epoch - epoch > epochs) continue;
    out.merge_from(slot.hist);
  }
}

void WindowedCounter::add_at(std::uint64_t d, std::uint64_t now_ns) noexcept {
  const std::uint64_t epoch = now_ns / epoch_ns_;
  Slot& slot = slots_[epoch % kSlots];
  const std::uint64_t want = 2 * epoch + 2;
  for (;;) {
    std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == want) break;
    if (tag > want) return;  // ancient record; drop with its epoch
    if (tag == want - 1) continue;
    if (slot.tag.compare_exchange_weak(tag, want - 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      slot.value.store(0, std::memory_order_relaxed);
      slot.tag.store(want, std::memory_order_release);
      break;
    }
  }
  slot.value.fetch_add(d, std::memory_order_relaxed);
}

std::uint64_t WindowedCounter::sum_at(std::uint64_t window_ns,
                                      std::uint64_t now_ns) const noexcept {
  const std::uint64_t cur_epoch = now_ns / epoch_ns_;
  std::uint64_t epochs = window_ns / epoch_ns_;
  if (epochs == 0) epochs = 1;
  const std::uint64_t cap = static_cast<std::uint64_t>(kSlots) - 1;
  if (epochs > cap) epochs = cap;
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag < 2 || (tag & 1) != 0) continue;
    const std::uint64_t epoch = (tag - 2) / 2;
    if (epoch > cur_epoch || cur_epoch - epoch > epochs) continue;
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace parlap::obs
