#include "obs/exposition.hpp"

#include <cinttypes>
#include <cstdio>

namespace parlap::obs {

namespace {

// Ladder of histogram upper edges in seconds, chosen to straddle the
// serving regimes (sub-ms cache hits through multi-second cold builds).
constexpr double kLadder[] = {1e-6, 1e-5,   1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
                              1e-2, 2.5e-2, 5e-2, 0.1,  0.25, 0.5,    1.0,
                              2.5,  5.0,    10.0, 30.0, 60.0};

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (and anything
// else outside that set) become underscores.
std::string prometheus_name(const std::string& dotted) {
  std::string out = dotted;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_header(std::string& out, const std::string& name,
                   const std::string& source, const char* type) {
  out += "# HELP ";
  out += name;
  out += " parlap metric ";
  out += source;
  out += "\n# TYPE ";
  out += name;
  out += " ";
  out += type;
  out += "\n";
}

void append_histogram(std::string& out, const std::string& name,
                      const MetricSample& s) {
  append_header(out, name, s.name, "histogram");
  // Cumulative count of fine buckets whose upper edge fits under each
  // ladder edge. Fine buckets are ns-indexed; ladder edges are seconds.
  std::size_t fine = 0;
  std::uint64_t cumulative = 0;
  for (const double le : kLadder) {
    const auto le_ns = static_cast<std::uint64_t>(le * 1e9);
    while (fine < s.buckets.size() &&
           LatencyHistogram::bucket_upper_ns(fine) <= le_ns) {
      cumulative += s.buckets[fine];
      ++fine;
    }
    out += name;
    out += "_bucket{le=\"";
    append_double(out, le);
    out += "\"} ";
    append_u64(out, cumulative);
    out += "\n";
  }
  out += name;
  out += "_bucket{le=\"+Inf\"} ";
  append_u64(out, s.count);
  out += "\n";
  out += name;
  out += "_sum ";
  append_double(out, s.value);
  out += "\n";
  out += name;
  out += "_count ";
  append_u64(out, s.count);
  out += "\n";
}

const char* kind_string(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kRealCounter:
      return "real_counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string render_prometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(samples.size() * 128);
  for (const MetricSample& s : samples) {
    const std::string name = prometheus_name(s.name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kRealCounter: {
        const std::string total = name + "_total";
        append_header(out, total, s.name, "counter");
        out += total;
        out += " ";
        append_double(out, s.value);
        out += "\n";
        break;
      }
      case MetricSample::Kind::kGauge: {
        append_header(out, name, s.name, "gauge");
        out += name;
        out += " ";
        append_double(out, s.value);
        out += "\n";
        break;
      }
      case MetricSample::Kind::kHistogram:
        append_histogram(out, name, s);
        break;
    }
  }
  return out;
}

std::string render_metrics_json(const std::vector<MetricSample>& samples) {
  std::string out = "{\"schema\":\"parlap-metrics-v1\",\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += s.name;  // registry names are dotted identifiers, no escapes
    out += "\",\"kind\":\"";
    out += kind_string(s.kind);
    out += "\",\"value\":";
    append_double(out, s.value);
    if (s.kind == MetricSample::Kind::kHistogram) {
      out += ",\"count\":";
      append_u64(out, s.count);
      out += ",\"mean\":";
      append_double(out, s.mean);
      out += ",\"p50\":";
      append_double(out, s.p50);
      out += ",\"p95\":";
      append_double(out, s.p95);
      out += ",\"p99\":";
      append_double(out, s.p99);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace parlap::obs
