// Sliding-window instruments — rolling views over the lifetime
// counters and log-bucketed histograms of metrics.hpp.
//
// A serving daemon's lifetime aggregates answer "how has this process
// done since it started", but an operator watching a dashboard needs
// "how is it doing NOW": last-minute throughput and percentiles that
// recover after a traffic burst instead of being diluted forever by
// history. WindowedHistogram and WindowedCounter provide that view as
// a ring of per-epoch sub-instruments:
//
//   - record() buckets the sample into the slot owned by the current
//     epoch (now / epoch_ns). Slot reuse is coordinated by a per-slot
//     epoch tag: the first writer to reach a stale slot CASes the tag
//     to a "resetting" sentinel, zeroes the slot, publishes the new
//     tag (release), and every other writer of that epoch records
//     lock-free. Steady state is exactly the LatencyHistogram /
//     Counter hot path plus one acquire load.
//   - digest()/sum() merge the slots whose tag falls inside the
//     requested window — reads are lock-free and never write, so a
//     reader cannot stall a recording thread ("lock-free advance from
//     the reader": a reader simply skips slots that have gone stale;
//     clearing is the next writer's job).
//
// Approximation contract: within an epoch, counts are exact (relaxed
// fetch_adds, bit-identical across thread counts — tests/obs/
// window_test.cpp holds this). At an epoch turnover, records racing
// the slot reset for the *outgoing* epoch are dropped with the rest of
// that slot's history; the loss window is one reset (~microseconds)
// once per epoch. The reported window spans complete epochs plus the
// current partial one, so a "60s" digest covers between
// window - epoch and window seconds of history.
//
// Timestamps are injectable (record_ns_at / digest_at) so tests drive
// epoch advance deterministically; the default entry points read
// steady_now_ns().
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"
#include "support/timer.hpp"

namespace parlap::obs {

/// Merged view of one window: the same digest shape the registry
/// exports for lifetime histograms, plus the span it covers.
struct WindowDigest {
  std::uint64_t count = 0;
  double sum_seconds = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Nominal window length the digest was asked for, in seconds.
  double window_seconds = 0.0;
};

/// Sliding-window wrapper over LatencyHistogram: a ring of per-epoch
/// sub-histograms (see file comment for the reuse protocol).
class WindowedHistogram {
 public:
  /// Ring slots. A window may span at most kSlots - 1 full epochs (the
  /// remaining slot is the current, partially-filled epoch).
  static constexpr std::size_t kSlots = 16;
  /// Default epoch length: 5s slots make a 60s window 12 epochs.
  static constexpr std::uint64_t kDefaultEpochNs = 5'000'000'000ull;

  explicit WindowedHistogram(std::uint64_t epoch_ns = kDefaultEpochNs) noexcept
      : epoch_ns_(epoch_ns == 0 ? 1 : epoch_ns) {}

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void record_ns(std::uint64_t ns) noexcept {
    record_ns_at(ns, steady_now_ns());
  }
  void record_seconds(double seconds) noexcept {
    record_ns(seconds <= 0.0 ? 0
                             : static_cast<std::uint64_t>(seconds * 1e9));
  }
  /// Records with an explicit clock reading (tests drive epoch advance
  /// through this; production uses record_ns/record_seconds).
  void record_ns_at(std::uint64_t ns, std::uint64_t now_ns) noexcept;

  /// Digest of the last `window_ns` (clamped to (kSlots - 1) epochs).
  [[nodiscard]] WindowDigest digest(std::uint64_t window_ns) const noexcept {
    return digest_at(window_ns, steady_now_ns());
  }
  [[nodiscard]] WindowDigest digest_at(std::uint64_t window_ns,
                                       std::uint64_t now_ns) const noexcept;

  /// Adds the window's bucket counts into `out` (tests compare merged
  /// buckets against a lifetime histogram for bit-identity).
  void merge_window_into(LatencyHistogram& out, std::uint64_t window_ns,
                         std::uint64_t now_ns) const noexcept;

  [[nodiscard]] std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

 private:
  /// Slot-tag encoding: 0 = never used; stable(e) = 2e + 2 (even);
  /// resetting(e) = 2e + 1. Strictly increasing across an epoch's
  /// lifecycle, so a reader can tell exactly which epoch a slot holds.
  [[nodiscard]] static constexpr std::uint64_t stable_tag(
      std::uint64_t epoch) noexcept {
    return 2 * epoch + 2;
  }

  struct Slot {
    std::atomic<std::uint64_t> tag{0};
    LatencyHistogram hist;
  };

  /// Spins until `slot` owns `epoch` (resetting it if this caller gets
  /// there first). Returns false when the slot has already advanced to
  /// a NEWER epoch — the caller's record is ancient and is dropped.
  [[nodiscard]] bool claim_slot(Slot& slot, std::uint64_t epoch) noexcept;

  const std::uint64_t epoch_ns_;
  Slot slots_[kSlots];
};

/// Sliding-window event counter: same ring/tag protocol with a plain
/// uint64 per slot. sum() is the event count inside the window — the
/// "requests in the last 60s" half of a throughput gauge.
class WindowedCounter {
 public:
  static constexpr std::size_t kSlots = WindowedHistogram::kSlots;

  explicit WindowedCounter(
      std::uint64_t epoch_ns = WindowedHistogram::kDefaultEpochNs) noexcept
      : epoch_ns_(epoch_ns == 0 ? 1 : epoch_ns) {}

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void add(std::uint64_t d = 1) noexcept { add_at(d, steady_now_ns()); }
  void add_at(std::uint64_t d, std::uint64_t now_ns) noexcept;

  [[nodiscard]] std::uint64_t sum(std::uint64_t window_ns) const noexcept {
    return sum_at(window_ns, steady_now_ns());
  }
  [[nodiscard]] std::uint64_t sum_at(std::uint64_t window_ns,
                                     std::uint64_t now_ns) const noexcept;

  [[nodiscard]] std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> tag{0};
    std::atomic<std::uint64_t> value{0};
  };

  const std::uint64_t epoch_ns_;
  Slot slots_[kSlots];
};

}  // namespace parlap::obs
