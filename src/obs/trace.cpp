#include "obs/trace.hpp"

#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace parlap::obs {

std::atomic<bool> Tracer::enabled_{false};

/// One thread's event store. `size` is written by the owning thread
/// only (release) and read at flush time (acquire); events below the
/// published size are immutable. The tracer owns the buffer, so a
/// thread may exit before its events are flushed.
struct Tracer::Buffer {
  std::uint32_t tid = 0;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::vector<TraceEvent> events;
};

namespace {

/// Registered buffers, append-only for the process lifetime: clear()
/// resets contents but never deallocates, so the thread-local pointers
/// below can never dangle.
struct Registry {
  mutable std::mutex mutex;
  std::vector<std::unique_ptr<Tracer::Buffer>> buffers;
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry;  // immortal: worker threads may
  return *r;                          // record during static teardown
}

thread_local Tracer::Buffer* tls_buffer = nullptr;

thread_local std::uint64_t tls_request_id = 0;

void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';  // span names are literals; control chars are a bug
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

std::uint64_t current_request_id() noexcept { return tls_request_id; }

RequestIdScope::RequestIdScope(std::uint64_t request_id) noexcept
    : saved_(tls_request_id) {
  tls_request_id = request_id;
}

RequestIdScope::~RequestIdScope() { tls_request_id = saved_; }

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer;  // immortal, same reason as above
  return *tracer;
}

Tracer::Buffer* Tracer::buffer_for_thread() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mutex);
  auto buffer = std::make_unique<Buffer>();
  buffer->tid = reg.next_tid++;
  buffer->events.resize(kBufferCapacity);
  Buffer* raw = buffer.get();
  reg.buffers.push_back(std::move(buffer));
  tls_buffer = raw;
  return raw;
}

void Tracer::record(const TraceEvent& ev) noexcept {
  Buffer* buffer = tls_buffer;
  if (buffer == nullptr) buffer = buffer_for_thread();
  const std::size_t i = buffer->size.load(std::memory_order_relaxed);
  if (i >= kBufferCapacity) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events[i] = ev;
  buffer->events[i].tid = buffer->tid;
  buffer->size.store(i + 1, std::memory_order_release);
}

std::size_t Tracer::event_count() const {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& b : reg.buffers) {
    total += b->size.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& b : reg.buffers) {
    total += b->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void Tracer::clear() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mutex);
  for (const auto& b : reg.buffers) {
    b->size.store(0, std::memory_order_release);
    b->dropped.store(0, std::memory_order_relaxed);
  }
}

void Tracer::write_chrome(std::ostream& os) const {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mutex);
  // Timestamps are microseconds on the steady clock — values around
  // 1e12; default stream precision (6 significant digits) would
  // collapse them onto each other.
  const std::streamsize old_precision = os.precision(17);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& b : reg.buffers) {
    const std::size_t n = b->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& ev = b->events[i];
      if (!first) os << ',';
      first = false;
      os << "\n{\"name\":";
      write_escaped(os, ev.name);
      os << ",\"cat\":";
      write_escaped(os, ev.cat);
      // Microsecond timestamps are the trace-event contract; fractional
      // keeps the ns resolution.
      os << ",\"ph\":\"X\",\"ts\":" << static_cast<double>(ev.ts_ns) / 1e3
         << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1e3
         << ",\"pid\":1,\"tid\":" << ev.tid << ",\"args\":{\"span_id\":"
         << ev.span_id;
      for (std::uint32_t a = 0; a < ev.nargs; ++a) {
        os << ',';
        write_escaped(os, ev.args[a].key);
        os << ':' << ev.args[a].value;
      }
      os << "}}";
    }
  }
  os << "\n]}\n";
  os.precision(old_precision);
}

void ScopedSpan::finish() noexcept {
  Tracer& tracer = Tracer::instance();
  // Tracing switched off mid-span: drop rather than record a span that
  // a concurrent flush may be reading past.
  if (!Tracer::enabled()) return;
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.span_id = tracer.next_span_id();
  ev.ts_ns = start_ns_;
  ev.dur_ns = steady_now_ns() - start_ns_;
  ev.nargs = nargs_;
  for (std::uint32_t a = 0; a < nargs_; ++a) ev.args[a] = args_[a];
  tracer.record(ev);
}

}  // namespace parlap::obs
