#include "obs/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>

namespace parlap::obs {

void EventLog::append(std::string_view json_line) const noexcept {
  if (path_.empty()) return;
  const int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
  if (fd < 0) return;
  std::string line(json_line);
  line.push_back('\n');
  // Single write so concurrent appenders (worker threads) interleave at
  // line granularity under O_APPEND. Short writes on a regular file are
  // effectively ENOSPC; nothing useful to do but drop.
  (void)::write(fd, line.data(), line.size());
  ::close(fd);
}

double unix_now_seconds() noexcept {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace parlap::obs
