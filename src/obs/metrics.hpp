// Metrics registry — named counters, gauges, and log-bucketed latency
// histograms with atomic hot-path updates.
//
// The registry is the aggregation substrate the service layer's
// telemetry structs (EngineStats, FactorizationCache::Stats,
// PanelStats) read from: hot paths bump a Counter / record into a
// LatencyHistogram with a couple of relaxed atomic ops, and reporting
// code takes a snapshot() when a human or JSON consumer asks. It is
// also the future /metrics endpoint of the ROADMAP's serve daemon.
//
// Instruments are created on first use by name (find-or-create under
// the registry mutex) and live as long as the registry, so callers
// cache the returned reference and never pay the map lookup on the hot
// path. Metric names are dotted paths ("parlap.cache.hits");
// docs/OBSERVABILITY.md is the name reference.
//
// LatencyHistogram buckets durations at 3 significant bits per
// power-of-two octave, so any percentile it reports is the upper edge
// of the sample's bucket: monotone in q, and within 12.5% relative
// error of the exact order statistic for durations >= 8ns
// (tests/obs/metrics_test.cpp holds the bound against exact sorted
// quantiles).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace parlap::obs {

/// Monotone event counter. Totals across threads are exact: every
/// add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulating double (summed seconds, summed bytes…). CAS-loop add so
/// no C++20 atomic<double>::fetch_add support is required of the
/// toolchain.
class RealCounter {
 public:
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value (queue depth, resident entries).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed duration histogram. record() is bucket-index arithmetic
/// plus three relaxed fetch_adds — safe and exact-in-count from any
/// number of threads. Percentiles come from a bucket walk, not a sort.
class LatencyHistogram {
 public:
  /// 8 exact sub-ns buckets + 61 octaves x 8 sub-buckets covers every
  /// uint64 nanosecond duration.
  static constexpr std::size_t kBuckets = 8 + 61 * 8;

  void record_ns(std::uint64_t ns) noexcept {
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void record_seconds(double seconds) noexcept {
    record_ns(seconds <= 0.0 ? 0
                             : static_cast<std::uint64_t>(seconds * 1e9));
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum_seconds() const noexcept {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  [[nodiscard]] double mean_seconds() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum_seconds() / static_cast<double>(n);
  }

  /// Nearest-rank percentile (q in [0, 1]) in seconds: the upper edge
  /// of the bucket holding the rank-th sample. Monotone in q; at most
  /// 12.5% above the exact order statistic for durations >= 8ns.
  [[nodiscard]] double percentile_seconds(double q) const noexcept;

  /// Raw bucket count (tests compare across thread counts).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Adds another histogram's buckets/count/sum into this one (relaxed
  /// reads of `other`, relaxed adds here). Exact once `other`'s writers
  /// are quiescent — the windowed-view merge path.
  void merge_from(const LatencyHistogram& other) noexcept;

  void reset() noexcept;

  /// [0, kBuckets): ns < 8 maps exactly; otherwise the octave
  /// (bit_width) picks the row and the top 3 bits below the leading bit
  /// pick the sub-bucket.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t ns) noexcept {
    if (ns < 8) return static_cast<std::size_t>(ns);
    const int o = std::bit_width(ns);  // >= 4
    const std::uint64_t sub = (ns >> (o - 4)) & 7;
    return 8 + static_cast<std::size_t>(o - 4) * 8 +
           static_cast<std::size_t>(sub);
  }

  /// Largest duration (ns) that lands in bucket `b` — the value
  /// percentile_seconds() reports for samples in that bucket.
  [[nodiscard]] static std::uint64_t bucket_upper_ns(std::size_t b) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// One instrument's exported state (see MetricsRegistry::snapshot()).
struct MetricSample {
  enum class Kind { kCounter, kRealCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  ///< counter/gauge value; histogram sum of seconds
  std::uint64_t count = 0;  ///< histogram sample count
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  /// Histograms only: all kBuckets fine bucket counts, so exporters
  /// (Prometheus exposition) can re-bucket onto their own ladder.
  std::vector<std::uint64_t> buckets;
};

/// Name -> instrument map. instance-per-scope is possible, but the
/// process-wide global() is what the instrumentation in core/service
/// feeds and the CLI exports.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime — cache them off the hot path.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] RealCounter& real_counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name);

  /// All instruments, name-sorted. Values are read relaxed: exact once
  /// writers are quiescent, momentarily approximate under load.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Zeroes every instrument (instruments stay registered). The CLI
  /// resets before a run so the export covers that run alone.
  void reset();

 private:
  mutable std::mutex mutex_;
  // node-based maps: find-or-create never invalidates references.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<RealCounter>> real_counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace parlap::obs
