// Structured JSONL event log — the serve daemon's slow-request /
// lifecycle journal (`--event-log`, docs/SERVING.md "Event log").
//
// Each append opens the path O_APPEND, writes the full line in a
// single write(2), and closes: atomic-per-line for lines under
// PIPE_BUF-ish sizes and rotation-safe (an external `mv` + truncate or
// logrotate(8) copytruncate cycle never strands a stale descriptor —
// the next append reopens the live path). Appends are rare by design
// (slow requests + lifecycle events, not every request), so the
// open/close cost is irrelevant next to the solve it annotates.
#pragma once

#include <string>
#include <string_view>

namespace parlap::obs {

class EventLog {
 public:
  EventLog() = default;
  explicit EventLog(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

  /// Appends `json_line` (a complete JSON object, no trailing newline)
  /// plus '\n'. Write failures are swallowed: telemetry must never take
  /// down the serving path.
  void append(std::string_view json_line) const noexcept;

 private:
  std::string path_;
};

/// Wall-clock seconds since the Unix epoch (system_clock — event logs
/// are correlated with external logs, unlike steady_now_ns() spans).
[[nodiscard]] double unix_now_seconds() noexcept;

}  // namespace parlap::obs
