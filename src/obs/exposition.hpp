// Metric exporters: Prometheus text exposition (v0.0.4) and a JSON
// snapshot, both rendered from MetricsRegistry::snapshot() samples.
//
// The Prometheus names derived here are a compatibility surface —
// dashboards and alerts key on them. docs/OBSERVABILITY.md carries the
// stability table; change a mapping there first. The mapping is
// mechanical so it stays predictable:
//
//   dotted name "parlap.serve.solve_seconds" -> "parlap_serve_solve_seconds"
//   Counter / RealCounter                    -> counter,   name + "_total"
//   Gauge                                    -> gauge,     name as-is
//   LatencyHistogram -> histogram: name_bucket{le="..."} over a fixed
//     seconds ladder re-bucketed from the fine log buckets (cumulative,
//     monotone, +Inf == _count), plus name_sum / name_count.
//
// Fine-to-ladder re-bucketing is conservative: a fine bucket counts
// toward ladder edge `le` iff its upper edge <= le, so every reported
// cumulative count is a lower bound within one fine bucket (<= 12.5%)
// of the exact value — the same contract the percentile walk gives.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace parlap::obs {

/// Prometheus text format v0.0.4 (the content type to serve it under is
/// kPrometheusContentType). Families are emitted in sample order with
/// `# HELP` / `# TYPE` headers.
[[nodiscard]] std::string render_prometheus(
    const std::vector<MetricSample>& samples);

inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// {"schema":"parlap-metrics-v1","metrics":[...]} — the `--metrics-out`
/// final snapshot shape, mirroring batch JSON v3's metrics object.
[[nodiscard]] std::string render_metrics_json(
    const std::vector<MetricSample>& samples);

}  // namespace parlap::obs
