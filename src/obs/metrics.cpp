#include "obs/metrics.hpp"

#include <algorithm>

namespace parlap::obs {

double LatencyHistogram::percentile_seconds(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank, 1-based; q == 0 degenerates to the first sample.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total) + 0.9999999999);
  rank = std::clamp<std::uint64_t>(rank, 1, total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return static_cast<double>(bucket_upper_ns(b)) * 1e-9;
    }
  }
  // Concurrent recording can leave count() ahead of the bucket sums;
  // report the largest occupied bucket.
  for (std::size_t b = kBuckets; b-- > 0;) {
    if (buckets_[b].load(std::memory_order_relaxed) > 0) {
      return static_cast<double>(bucket_upper_ns(b)) * 1e-9;
    }
  }
  return 0.0;
}

std::uint64_t LatencyHistogram::bucket_upper_ns(std::size_t b) noexcept {
  if (b < 8) return b;
  const std::size_t row = (b - 8) / 8;
  const std::uint64_t sub = (b - 8) % 8;
  const int o = static_cast<int>(row) + 4;  // bit_width of this octave
  const std::uint64_t lower =
      (std::uint64_t{1} << (o - 1)) + (sub << (o - 4));
  return lower + ((std::uint64_t{1} << (o - 4)) - 1);
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry =  // immortal: instrumented code may
      new MetricsRegistry;            // run during static teardown
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

RealCounter& MetricsRegistry::real_counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = real_counters_[name];
  if (!slot) slot = std::make_unique<RealCounter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + real_counters_.size() + gauges_.size() +
              histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, c] : real_counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kRealCounter;
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = static_cast<double>(g->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.value = h->sum_seconds();
    s.count = h->count();
    s.p50 = h->percentile_seconds(0.50);
    s.p95 = h->percentile_seconds(0.95);
    s.p99 = h->percentile_seconds(0.99);
    s.mean = h->mean_seconds();
    s.buckets.resize(LatencyHistogram::kBuckets);
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      s.buckets[b] = h->bucket_count(b);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, c] : real_counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace parlap::obs
