#include "service/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace parlap::service {

namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::invalid_argument(std::string("json: expected ") + wanted +
                              ", got " + kNames[static_cast<int>(got)]);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    const std::size_t lo = pos_ < 20 ? 0 : pos_ - 20;
    const std::string excerpt(text_.substr(lo, 40));
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_) + " near '" + excerpt +
                                "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  // Containers recurse; a malicious line of 200k open brackets must be
  // an error, not a stack overflow.
  static constexpr int kMaxDepth = 64;

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 64 levels");
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        --depth_;
        return JsonValue(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 64 levels");
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        --depth_;
        return JsonValue(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    // BMP code points only (no surrogate-pair recombination): job files
    // are ASCII in practice; anything else still round-trips as UTF-8.
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("invalid number");
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool", kind());
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  if (!is_number()) kind_error("number", kind());
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string", kind());
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) kind_error("array", kind());
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) kind_error("object", kind());
  return std::get<Object>(v_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace parlap::service
