#include "service/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <omp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/numa.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "parallel/for_each.hpp"
#include "service/json.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace parlap::service {

namespace {

// ---------------------------------------------------------------------------
// Wire-format helpers: tiny append-style JSON writing. The server emits
// flat one-line objects, so a full writer (bench/harness JsonWriter) is
// more machinery than the job needs — and src/service deliberately does
// not depend on the bench tree.
// ---------------------------------------------------------------------------

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Control chars must be escaped; high bytes are escaped too so
        // an error message echoing hostile input stays valid UTF-8.
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

std::string hex_hash(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

/// {"count":N,"mean":x,"p50":x,"p95":x,"p99":x} from a registry histogram.
void append_histogram_digest(std::string& out, const char* key,
                             const obs::LatencyHistogram& h) {
  out += '"';
  out += key;
  out += "\":{\"count\":";
  out += std::to_string(h.count());
  out += ",\"mean\":";
  append_json_number(out, h.mean_seconds());
  out += ",\"p50\":";
  append_json_number(out, h.percentile_seconds(0.50));
  out += ",\"p95\":";
  append_json_number(out, h.percentile_seconds(0.95));
  out += ",\"p99\":";
  append_json_number(out, h.percentile_seconds(0.99));
  out += '}';
}

/// The stats "window" block and the windowed instruments report this
/// span (docs/SERVING.md documents the 60s contract).
constexpr std::uint64_t kStatsWindowNs = 60'000'000'000ull;

/// Same shape as append_histogram_digest, from a window digest.
void append_window_digest(std::string& out, const char* key,
                          const obs::WindowDigest& d) {
  out += '"';
  out += key;
  out += "\":{\"count\":";
  out += std::to_string(d.count);
  out += ",\"mean\":";
  append_json_number(out, d.mean);
  out += ",\"p50\":";
  append_json_number(out, d.p50);
  out += ",\"p95\":";
  append_json_number(out, d.p95);
  out += ",\"p99\":";
  append_json_number(out, d.p99);
  out += '}';
}

void set_nonblocking_cloexec(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structs
// ---------------------------------------------------------------------------

/// Per-connection state. Owned and touched by the I/O thread only;
/// workers refer to sessions by id.
struct SolveServer::Session {
  int fd = -1;
  std::uint64_t id = 0;
  std::string rbuf;  ///< bytes up to the last incomplete line
  std::string wbuf;  ///< responses awaiting socket space
  bool discarding = false;  ///< inside an oversized line, skip to '\n'
  bool broken = false;      ///< close at the next sweep
  /// HTTP scrape state: a line starting "GET " / "HEAD " flips the
  /// session into header mode; the blank header terminator triggers the
  /// response and close_after_flush retires the connection once the
  /// bytes are out (HTTP clients expect Connection: close semantics,
  /// unlike the long-lived JSON sessions).
  bool http = false;
  bool http_head = false;
  bool close_after_flush = false;
  std::string http_target;
  std::uint64_t last_activity_ns = 0;
  std::uint64_t requests = 0;  ///< request lines parsed (default ids)
  std::size_t pending = 0;     ///< jobs admitted, result not yet queued to wbuf
};

struct SolveServer::PendingJob {
  std::uint64_t session_id = 0;
  std::uint64_t request_id = 0;
  SolveJob job;
  std::size_t bytes = 0;  ///< request line size, held until completion
  std::uint64_t enqueue_ns = 0;
};

struct SolveServer::CompletedJob {
  std::uint64_t session_id = 0;
  std::string line;
};

/// Registry-owned instruments (docs/OBSERVABILITY.md, parlap.serve.*).
/// Resolved once; the stats endpoint reads its percentiles from these
/// same histograms, so live stats and --metrics output agree by
/// construction.
struct SolveServer::ServeMetrics {
  obs::Counter& sessions;
  obs::Counter& requests;
  obs::Counter& admitted;
  obs::Counter& shed;
  obs::Counter& rejected;
  obs::Counter& errors;
  obs::Counter& completed;
  obs::Counter& idle_reaped;
  obs::Counter& scrapes;
  obs::Gauge& queue_depth;
  obs::Gauge& queued_bytes;
  obs::LatencyHistogram& solve_seconds;
  obs::LatencyHistogram& queue_wait_seconds;
  /// Rolling last-60s views the stats window block reads; fed next to
  /// the lifetime instruments above on the same record points.
  obs::WindowedHistogram solve_window{};
  obs::WindowedHistogram queue_wait_window{};
  obs::WindowedCounter completed_window{};
  obs::WindowedCounter shed_window{};

  static ServeMetrics& get() {
    static ServeMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new ServeMetrics{reg.counter("parlap.serve.sessions"),
                              reg.counter("parlap.serve.requests"),
                              reg.counter("parlap.serve.admitted"),
                              reg.counter("parlap.serve.shed"),
                              reg.counter("parlap.serve.rejected"),
                              reg.counter("parlap.serve.errors"),
                              reg.counter("parlap.serve.completed"),
                              reg.counter("parlap.serve.idle_reaped"),
                              reg.counter("parlap.serve.scrapes"),
                              reg.gauge("parlap.serve.queue_depth"),
                              reg.gauge("parlap.serve.queued_bytes"),
                              reg.histogram("parlap.serve.solve_seconds"),
                              reg.histogram("parlap.serve.queue_wait_seconds")};
    }();
    return *m;
  }
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

SolveServer::SolveServer(ServerOptions options)
    : options_(std::move(options)),
      metrics_(&ServeMetrics::get()),
      event_log_(options_.event_log_path) {
  PARLAP_CHECK_MSG(options_.workers >= 1,
                   "SolveServer needs at least one worker, got "
                       << options_.workers);
  PARLAP_CHECK_MSG(!options_.socket_path.empty() || options_.tcp_port >= 0,
                   "SolveServer needs a unix socket path or a TCP port");
  EngineOptions eo;
  eo.workers = 1;  // the server owns the worker pool; run_one is per-thread
  eo.cache_budget_entries = options_.cache_budget_entries;
  eo.graph_cache_limit = options_.graph_cache_limit;
  eo.simd = options_.simd;
  eo.numa = options_.numa;
  eo.precision = options_.precision;
  engine_ = std::make_unique<SolveEngine>(eo);
  // The wake pipe exists for the object's whole life so request_drain()
  // is safe to call from a signal handler at any time.
  int fds[2];
  PARLAP_CHECK(::pipe2(fds, O_NONBLOCK | O_CLOEXEC) == 0);
  wake_r_ = fds[0];
  wake_w_ = fds[1];
}

SolveServer::~SolveServer() {
  // Abort path (serve() never ran or threw): stop workers, drop state.
  {
    const std::scoped_lock lock(queue_mutex_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  for (auto& [id, s] : sessions_) {
    if (s->fd >= 0) ::close(s->fd);
  }
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (!options_.socket_path.empty() && started_) {
    ::unlink(options_.socket_path.c_str());
  }
  ::close(wake_r_);
  ::close(wake_w_);
}

void SolveServer::start() {
  PARLAP_CHECK_MSG(!started_, "SolveServer::start called twice");
  if (!options_.socket_path.empty()) {
    const std::string& path = options_.socket_path;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long (" +
                               std::to_string(path.size()) + " bytes): " +
                               path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
    if (unix_fd_ < 0) throw std::runtime_error("socket(AF_UNIX) failed");
    // A stale socket file from a dead daemon would fail the bind; probe
    // it with a connect — refused means stale, so unlink and claim it.
    if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int probe =
          ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      const bool live =
          probe >= 0 &&
          ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (live) {
        throw std::runtime_error("socket " + path +
                                 " is in use by a live server");
      }
      ::unlink(path.c_str());
      if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw std::runtime_error("cannot bind unix socket " + path + ": " +
                                 std::strerror(errno));
      }
    }
    if (::listen(unix_fd_, 128) != 0) {
      throw std::runtime_error("listen on " + path + " failed: " +
                               std::strerror(errno));
    }
  }
  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                       0);
    if (tcp_fd_ < 0) throw std::runtime_error("socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(tcp_fd_, 128) != 0) {
      throw std::runtime_error(
          "cannot bind loopback TCP port " +
          std::to_string(options_.tcp_port) + ": " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  start_ns_ = steady_now_ns();
  started_ = true;
  if (event_log_.enabled()) {
    std::string ev = "{\"event\":\"server_start\",\"ts\":";
    append_json_number(ev, obs::unix_now_seconds());
    ev += ",\"workers\":";
    ev += std::to_string(options_.workers);
    ev += ",\"socket\":";
    append_json_string(ev, options_.socket_path);
    ev += ",\"tcp_port\":";
    ev += std::to_string(tcp_port_);
    ev += '}';
    event_log_.append(ev);
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void SolveServer::request_drain() noexcept {
  drain_requested_.store(true, std::memory_order_relaxed);
  wake();
}

void SolveServer::wake() noexcept {
  const char byte = 'w';
  // A full pipe already guarantees a pending wakeup; ignore the result.
  [[maybe_unused]] const ssize_t n = ::write(wake_w_, &byte, 1);
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

void SolveServer::worker_main() {
  // Throughput mode, mirroring SolveEngine's batch pool: with several
  // workers each solve runs single-threaded so N workers use N threads.
  std::optional<SerialScope> serial;
  if (options_.workers > 1) {
    omp_set_num_threads(1);
    serial.emplace();
  }
  while (true) {
    PendingJob pj;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [&] { return stop_workers_ || !rr_order_.empty(); });
      if (stop_workers_) return;
      // Round-robin fairness: take ONE job from the head session, then
      // rotate it to the back if it still has work.
      const std::uint64_t sid = rr_order_.front();
      rr_order_.pop_front();
      std::deque<PendingJob>& dq = session_queues_[sid];
      pj = std::move(dq.front());
      dq.pop_front();
      if (dq.empty()) {
        session_queues_.erase(sid);
      } else {
        rr_order_.push_back(sid);
      }
      --queued_jobs_;
      ++in_flight_;
      metrics_->queue_depth.set(static_cast<std::int64_t>(queued_jobs_));
    }

    const double queue_seconds =
        static_cast<double>(steady_now_ns() - pj.enqueue_ns) * 1e-9;
    metrics_->queue_wait_seconds.record_seconds(queue_seconds);
    metrics_->queue_wait_window.record_seconds(queue_seconds);
    JobResult result;
    {
      // Every span this request touches — serve.solve here plus the
      // engine/cache/solver spans under run_one — picks the request id
      // up from the scope as a "request_id" arg.
      const obs::RequestIdScope rid_scope(pj.request_id);
      PARLAP_TRACE_SPAN_N(span, "serve.solve", "serve");
      span.arg("queue_ms", queue_seconds * 1e3);
      result = engine_->run_one(pj.job);
      span.arg("ok", result.ok ? 1.0 : 0.0);
    }
    metrics_->solve_seconds.record_seconds(result.wall_seconds);
    metrics_->solve_window.record_seconds(result.wall_seconds);
    metrics_->completed.add();
    metrics_->completed_window.add();

    std::string line = "{\"type\":\"result\",\"id\":";
    append_json_string(line, result.id);
    line += ",\"request_id\":";
    line += std::to_string(pj.request_id);
    if (result.ok) {
      line += ",\"status\":\"ok\",\"cache_hit\":";
      line += result.cache_hit ? "true" : "false";
      line += ",\"converged\":";
      line += result.report.converged ? "true" : "false";
      line += ",\"iterations\":";
      line += std::to_string(result.report.iterations);
      line += ",\"precision\":\"";
      line += precision_name(result.report.precision);
      line += "\",\"relative_residual\":";
      append_json_number(line, result.report.relative_residual);
      line += ",\"solve_seconds\":";
      append_json_number(line, result.report.solve_seconds);
      line += ",\"wall_seconds\":";
      append_json_number(line, result.wall_seconds);
      line += ",\"queue_seconds\":";
      append_json_number(line, queue_seconds);
      line += ",\"timings\":{\"queue_wait_ms\":";
      append_json_number(line, queue_seconds * 1e3);
      line += ",\"cache\":\"";
      line += result.cache_hit ? "hit" : "miss";
      line += "\",\"build_ms\":";
      append_json_number(line, result.build_seconds * 1e3);
      line += ",\"solve_ms\":";
      append_json_number(line, result.report.solve_seconds * 1e3);
      // Refinement breakdown: outer fp64 refinement iterations and the
      // escalation rounds (fp32 -> fp64 rebuilds) this solve needed.
      line += ",\"refinement_iterations\":";
      line += std::to_string(result.report.iterations);
      line += ",\"escalations\":";
      line += std::to_string(result.report.escalations);
      line += "},\"solution_hash\":\"";
      line += hex_hash(result.solution_hash);
      line += "\"}";
    } else {
      line += ",\"status\":\"error\",\"error\":";
      append_json_string(line, result.error);
      line += '}';
    }

    // Slow-request journal: every completed solve at or past the
    // --slow-ms wall threshold (0 = all) gets one JSONL event.
    if (event_log_.enabled() && result.wall_seconds * 1e3 >= options_.slow_ms) {
      std::string ev = "{\"event\":\"request\",\"ts\":";
      append_json_number(ev, obs::unix_now_seconds());
      ev += ",\"request_id\":";
      ev += std::to_string(pj.request_id);
      ev += ",\"id\":";
      append_json_string(ev, result.id);
      ev += ",\"session\":";
      ev += std::to_string(pj.session_id);
      ev += ",\"status\":\"";
      ev += result.ok ? "ok" : "error";
      ev += "\",\"cache\":\"";
      ev += result.cache_hit ? "hit" : "miss";
      ev += "\",\"queue_wait_ms\":";
      append_json_number(ev, queue_seconds * 1e3);
      ev += ",\"build_ms\":";
      append_json_number(ev, result.build_seconds * 1e3);
      ev += ",\"solve_ms\":";
      append_json_number(ev, result.report.solve_seconds * 1e3);
      ev += ",\"wall_ms\":";
      append_json_number(ev, result.wall_seconds * 1e3);
      if (!result.ok) {
        ev += ",\"error\":";
        append_json_string(ev, result.error);
      }
      ev += '}';
      event_log_.append(ev);
    }

    // Publish the result BEFORE releasing the in-flight slot: once
    // in_flight_ reads zero, every response is already visible to the
    // delivery pass, so a drain can never race past the last line.
    {
      const std::scoped_lock lock(results_mutex_);
      completed_.push_back(CompletedJob{pj.session_id, std::move(line)});
    }
    {
      const std::scoped_lock lock(queue_mutex_);
      --in_flight_;
      queued_bytes_ -= pj.bytes;
      metrics_->queued_bytes.set(static_cast<std::int64_t>(queued_bytes_));
    }
    completed_count_.fetch_add(1, std::memory_order_relaxed);
    wake();
  }
}

// ---------------------------------------------------------------------------
// I/O loop
// ---------------------------------------------------------------------------

void SolveServer::serve() {
  PARLAP_CHECK_MSG(started_, "SolveServer::serve before start");
  std::vector<pollfd> fds;
  while (true) {
    if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
      begin_drain();
    }
    deliver_completed();

    // Sweep sessions that broke (EOF, write error), finished flushing
    // after a protocol violation, or completed an HTTP exchange.
    std::vector<std::uint64_t> dead;
    for (const auto& [id, s] : sessions_) {
      if (s->broken && s->pending == 0) dead.push_back(id);
      // A broken session with jobs still in flight keeps its slot until
      // the results come back (and are dropped), so accounting stays
      // exact — but its queued jobs are purged right away below.
      else if (s->close_after_flush && s->wbuf.empty() && s->pending == 0) {
        dead.push_back(id);
      }
    }
    for (const std::uint64_t id : dead) close_session(id, "closed");
    reap_idle_sessions();

    if (draining_ && drain_complete()) break;

    fds.clear();
    fds.push_back(pollfd{wake_r_, POLLIN, 0});
    if (!draining_ && unix_fd_ >= 0) {
      fds.push_back(pollfd{unix_fd_, POLLIN, 0});
    }
    if (!draining_ && tcp_fd_ >= 0) {
      fds.push_back(pollfd{tcp_fd_, POLLIN, 0});
    }
    const std::size_t first_session = fds.size();
    std::vector<std::uint64_t> order;
    for (const auto& [id, s] : sessions_) {
      if (s->broken) continue;
      short events = POLLIN;
      if (!s->wbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{s->fd, events, 0});
      order.push_back(id);
    }

    const int timeout_ms = options_.idle_timeout_ms > 0
                               ? std::min(options_.idle_timeout_ms, 250)
                               : 500;
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("poll failed: ") +
                               std::strerror(errno));
    }
    if (rc <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof buf) > 0) {
      }
    }
    for (std::size_t i = 1; i < first_session; ++i) {
      if ((fds[i].revents & POLLIN) != 0) accept_ready(fds[i].fd);
    }
    for (std::size_t i = first_session; i < fds.size(); ++i) {
      const auto it = sessions_.find(order[i - first_session]);
      if (it == sessions_.end()) continue;
      Session& s = *it->second;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        s.broken = true;
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) flush_session(s);
      if ((fds[i].revents & POLLIN) != 0) read_ready(s);
    }
  }

  // Drained: everything answered and flushed. Tear down.
  {
    PARLAP_TRACE_SPAN("serve.drain", "serve");
    for (auto& [id, s] : sessions_) {
      if (s->fd >= 0) ::close(s->fd);
    }
    sessions_.clear();
    {
      const std::scoped_lock lock(queue_mutex_);
      stop_workers_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  if (event_log_.enabled()) {
    std::string ev = "{\"event\":\"drain_complete\",\"ts\":";
    append_json_number(ev, obs::unix_now_seconds());
    ev += ",\"completed\":";
    ev += std::to_string(completed_count_.load(std::memory_order_relaxed));
    ev += '}';
    event_log_.append(ev);
  }
}

void SolveServer::begin_drain() {
  draining_ = true;
  if (event_log_.enabled()) {
    std::size_t depth = 0;
    std::size_t inflight = 0;
    {
      const std::scoped_lock lock(queue_mutex_);
      depth = queued_jobs_;
      inflight = in_flight_;
    }
    std::string ev = "{\"event\":\"drain_begin\",\"ts\":";
    append_json_number(ev, obs::unix_now_seconds());
    ev += ",\"queued\":";
    ev += std::to_string(depth);
    ev += ",\"in_flight\":";
    ev += std::to_string(inflight);
    ev += '}';
    event_log_.append(ev);
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

bool SolveServer::drain_complete() {
  {
    const std::scoped_lock lock(queue_mutex_);
    if (queued_jobs_ != 0 || in_flight_ != 0) return false;
  }
  {
    const std::scoped_lock lock(results_mutex_);
    if (!completed_.empty()) return false;
  }
  for (const auto& [id, s] : sessions_) {
    if (!s->wbuf.empty() && !s->broken) return false;
  }
  return true;
}

void SolveServer::accept_ready(int listen_fd) {
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    set_nonblocking_cloexec(fd);
    auto s = std::make_unique<Session>();
    s->fd = fd;
    s->id = next_session_id_++;
    s->last_activity_ns = steady_now_ns();
    metrics_->sessions.add();
    sessions_.emplace(s->id, std::move(s));
  }
}

void SolveServer::read_ready(Session& s) {
  char buf[65536];
  bool saw_eof = false;
  while (true) {
    const ssize_t n = ::recv(s.fd, buf, sizeof buf, 0);
    if (n > 0) {
      s.last_activity_ns = steady_now_ns();
      std::size_t begin = 0;
      const auto chunk = static_cast<std::size_t>(n);
      while (begin < chunk) {
        if (s.discarding) {
          // Inside an oversized line: drop bytes through its newline.
          const char* nl = static_cast<const char*>(
              std::memchr(buf + begin, '\n', chunk - begin));
          if (nl == nullptr) {
            begin = chunk;
          } else {
            begin = static_cast<std::size_t>(nl - buf) + 1;
            s.discarding = false;
          }
          continue;
        }
        const char* nl = static_cast<const char*>(
            std::memchr(buf + begin, '\n', chunk - begin));
        if (nl == nullptr) {
          s.rbuf.append(buf + begin, chunk - begin);
          begin = chunk;
        } else {
          const auto end = static_cast<std::size_t>(nl - buf);
          s.rbuf.append(buf + begin, end - begin);
          begin = end + 1;
          std::string line = std::move(s.rbuf);
          s.rbuf.clear();
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (line.size() > options_.max_line_bytes) {
            metrics_->errors.add();
            respond(s,
                    "{\"type\":\"error\",\"status\":\"error\",\"error\":"
                    "\"request line exceeds " +
                        std::to_string(options_.max_line_bytes) +
                        " bytes\"}");
          } else {
            handle_line(s, line);
          }
          if (s.broken) return;
        }
        if (s.rbuf.size() > options_.max_line_bytes) {
          metrics_->errors.add();
          respond(s,
                  "{\"type\":\"error\",\"status\":\"error\",\"error\":"
                  "\"request line exceeds " +
                      std::to_string(options_.max_line_bytes) + " bytes\"}");
          s.rbuf.clear();
          s.rbuf.shrink_to_fit();
          s.discarding = true;
        }
      }
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    saw_eof = true;  // ECONNRESET and friends
    break;
  }
  if (saw_eof) {
    // Disconnect: free the client's queue slots immediately (an
    // in-flight job finishes and its result is dropped at delivery).
    s.broken = true;
    bool purged = false;
    {
      const std::scoped_lock lock(queue_mutex_);
      const auto it = session_queues_.find(s.id);
      if (it != session_queues_.end()) {
        for (const PendingJob& pj : it->second) {
          queued_bytes_ -= pj.bytes;
          --queued_jobs_;
          PARLAP_CHECK(s.pending > 0);
          --s.pending;
        }
        session_queues_.erase(it);
        rr_order_.erase(
            std::remove(rr_order_.begin(), rr_order_.end(), s.id),
            rr_order_.end());
        purged = true;
        metrics_->queue_depth.set(static_cast<std::int64_t>(queued_jobs_));
        metrics_->queued_bytes.set(static_cast<std::int64_t>(queued_bytes_));
      }
    }
    (void)purged;
  }
}

void SolveServer::handle_line(Session& s, const std::string& line) {
  // HTTP header mode: swallow header lines until the blank terminator,
  // then answer the scrape. Checked before the blank-line skip below —
  // the blank line IS the HTTP signal.
  if (s.http) {
    if (s.close_after_flush) return;  // response sent; ignore trailing bytes
    if (line.find_first_not_of(" \t") == std::string::npos) respond_http(s);
    return;
  }
  if (line.compare(0, 4, "GET ") == 0 || line.compare(0, 5, "HEAD ") == 0) {
    s.http = true;
    s.http_head = line[0] == 'H';
    const std::size_t start = line.find(' ') + 1;
    const std::size_t end = line.find(' ', start);
    s.http_target = line.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    return;
  }
  if (line.find_first_not_of(" \t") == std::string::npos) return;
  ++s.requests;
  metrics_->requests.add();
  const std::uint64_t rid = next_request_id_++;
  const obs::RequestIdScope rid_scope(rid);
  PARLAP_TRACE_SPAN_N(span, "serve.request", "serve");

  JsonValue doc;
  try {
    doc = parse_json(line);
    if (!doc.is_object()) {
      throw std::invalid_argument("expected a JSON object");
    }
  } catch (const std::exception& e) {
    metrics_->errors.add();
    std::string out = "{\"type\":\"error\",\"status\":\"error\",\"error\":";
    append_json_string(out, e.what());
    out += '}';
    respond(s, std::move(out));
    return;
  }

  const JsonValue* type_v = doc.find("type");
  std::string type = "solve";
  if (type_v != nullptr) {
    if (!type_v->is_string()) {
      metrics_->errors.add();
      respond(s,
              "{\"type\":\"error\",\"status\":\"error\",\"error\":"
              "\"type must be a string\"}");
      return;
    }
    type = type_v->as_string();
  }
  span.arg("solve", type == "solve" ? 1.0 : 0.0);

  if (type == "ping") {
    respond(s, "{\"type\":\"pong\",\"status\":\"ok\"}");
    return;
  }
  if (type == "stats") {
    respond(s, stats_response());
    return;
  }
  if (type == "metrics") {
    // The exposition payload inline over the JSON protocol — identical
    // bytes to a GET /metrics scrape, for clients already connected.
    PARLAP_TRACE_SPAN("serve.scrape", "serve");
    metrics_->scrapes.add();
    const std::string text =
        obs::render_prometheus(obs::MetricsRegistry::global().snapshot());
    std::string out = "{\"type\":\"metrics\",\"status\":\"ok\""
                      ",\"content_type\":";
    append_json_string(out, obs::kPrometheusContentType);
    out += ",\"text\":";
    append_json_string(out, text);
    out += '}';
    respond(s, std::move(out));
    return;
  }
  if (type == "shutdown") {
    respond(s, "{\"type\":\"shutdown\",\"status\":\"ok\"}");
    request_drain();
    return;
  }
  if (type != "solve") {
    metrics_->errors.add();
    std::string out = "{\"type\":\"error\",\"status\":\"error\",\"error\":";
    append_json_string(out, "unknown request type '" + type +
                               "' (want solve, stats, metrics, ping, "
                               "shutdown)");
    out += '}';
    respond(s, std::move(out));
    return;
  }

  SolveJob job;
  try {
    job = parse_job_object(doc, "request",
                           "req" + std::to_string(s.requests),
                           /*allow_type_field=*/true);
  } catch (const std::exception& e) {
    metrics_->errors.add();
    std::string out = "{\"type\":\"error\",\"status\":\"error\"";
    // Correlate the schema error with the request when possible.
    const JsonValue* idv = doc.find("id");
    if (idv != nullptr && idv->is_string()) {
      out += ",\"id\":";
      append_json_string(out, idv->as_string());
    }
    out += ",\"error\":";
    append_json_string(out, e.what());
    out += '}';
    respond(s, std::move(out));
    return;
  }
  handle_solve(s, std::move(job), line.size(), rid);
}

void SolveServer::handle_solve(Session& s, SolveJob job,
                               std::size_t line_bytes,
                               std::uint64_t request_id) {
  if (draining_) {
    metrics_->rejected.add();
    std::string out = "{\"type\":\"result\",\"id\":";
    append_json_string(out, job.id);
    out += ",\"request_id\":";
    out += std::to_string(request_id);
    out += ",\"status\":\"rejected\",\"error\":\"server is draining\"}";
    respond(s, std::move(out));
    return;
  }
  std::size_t depth_seen = 0;
  {
    const std::scoped_lock lock(queue_mutex_);
    const bool over_depth = queued_jobs_ >= options_.max_queue_depth;
    const bool over_bytes =
        queued_bytes_ + line_bytes > options_.max_queued_bytes;
    if (over_depth || over_bytes) {
      depth_seen = queued_jobs_;
    } else {
      PendingJob pj;
      pj.session_id = s.id;
      pj.request_id = request_id;
      pj.bytes = line_bytes;
      pj.enqueue_ns = steady_now_ns();
      const std::string id = job.id;
      pj.job = std::move(job);
      std::deque<PendingJob>& dq = session_queues_[s.id];
      if (dq.empty()) rr_order_.push_back(s.id);
      dq.push_back(std::move(pj));
      ++queued_jobs_;
      queued_bytes_ += line_bytes;
      ++s.pending;
      metrics_->admitted.add();
      metrics_->queue_depth.set(static_cast<std::int64_t>(queued_jobs_));
      metrics_->queued_bytes.set(static_cast<std::int64_t>(queued_bytes_));
      queue_cv_.notify_one();
      return;
    }
  }
  // Shed load: answer immediately with a retry hint instead of letting
  // the backlog (and the client's tail latency) grow without bound.
  metrics_->shed.add();
  metrics_->shed_window.add();
  if (event_log_.enabled()) {
    std::string ev = "{\"event\":\"shed\",\"ts\":";
    append_json_number(ev, obs::unix_now_seconds());
    ev += ",\"request_id\":";
    ev += std::to_string(request_id);
    ev += ",\"id\":";
    append_json_string(ev, job.id);
    ev += ",\"queue_depth\":";
    ev += std::to_string(depth_seen);
    ev += '}';
    event_log_.append(ev);
  }
  std::string out = "{\"type\":\"result\",\"id\":";
  append_json_string(out, job.id);
  out += ",\"request_id\":";
  out += std::to_string(request_id);
  out += ",\"status\":\"overloaded\",\"error\":\"admission queue full\""
         ",\"retry_after_ms\":";
  out += std::to_string(options_.retry_after_ms);
  out += ",\"queue_depth\":";
  out += std::to_string(depth_seen);
  out += '}';
  respond(s, std::move(out));
}

void SolveServer::respond_http(Session& s) {
  // One request per connection, Connection: close — the minimal
  // HTTP/1.1 a Prometheus scraper or curl needs, embedded in the
  // line-oriented protocol handler (the request line and headers are
  // newline-delimited too).
  const std::uint64_t rid = next_request_id_++;
  const obs::RequestIdScope rid_scope(rid);
  PARLAP_TRACE_SPAN_N(span, "serve.scrape", "serve");
  metrics_->scrapes.add();

  std::string body;
  std::string status = "200 OK";
  std::string content_type = obs::kPrometheusContentType;
  const std::string& target = s.http_target;
  const bool is_metrics =
      target == "/metrics" || target.compare(0, 9, "/metrics?") == 0;
  if (is_metrics) {
    body = obs::render_prometheus(obs::MetricsRegistry::global().snapshot());
  } else if (target == "/stats" || target.compare(0, 7, "/stats?") == 0) {
    body = stats_response();
    body += '\n';
    content_type = "application/json";
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found (try /metrics or /stats)\n";
  }
  span.arg("status", status[0] == '2' ? 200.0 : 404.0);
  span.arg("bytes", static_cast<double>(body.size()));

  std::string resp = "HTTP/1.1 ";
  resp += status;
  resp += "\r\nContent-Type: ";
  resp += content_type;
  resp += "\r\nContent-Length: ";
  resp += std::to_string(body.size());
  resp += "\r\nConnection: close\r\n\r\n";
  if (!s.http_head) resp += body;
  s.wbuf += resp;
  s.close_after_flush = true;
  flush_session(s);
}

std::string SolveServer::stats_response() {
  PARLAP_TRACE_SPAN("serve.stats", "serve");
  std::size_t depth = 0;
  std::size_t bytes = 0;
  std::size_t inflight = 0;
  {
    const std::scoped_lock lock(queue_mutex_);
    depth = queued_jobs_;
    bytes = queued_bytes_;
    inflight = in_flight_;
  }
  const FactorizationCache::Stats cache = engine_->cache_stats();
  const double hit_rate =
      cache.lookups() > 0
          ? static_cast<double>(cache.hits) /
                static_cast<double>(cache.lookups())
          : 0.0;

  std::string out = "{\"type\":\"stats\",\"status\":\"ok\"";
  out += ",\"uptime_seconds\":";
  append_json_number(
      out, static_cast<double>(steady_now_ns() - start_ns_) * 1e-9);
  out += ",\"draining\":";
  out += draining_ ? "true" : "false";
  out += ",\"workers\":";
  out += std::to_string(options_.workers);
  out += ",\"queue_limit\":";
  out += std::to_string(options_.max_queue_depth);
  out += ",\"queue_depth\":";
  out += std::to_string(depth);
  out += ",\"queued_bytes\":";
  out += std::to_string(bytes);
  out += ",\"in_flight\":";
  out += std::to_string(inflight);
  out += ",\"sessions\":";
  out += std::to_string(sessions_.size());
  // Config echo: black-box suites read the launch configuration from
  // here instead of hard-coding the daemon's flags.
  out += ",\"config\":{\"workers\":";
  out += std::to_string(options_.workers);
  out += ",\"queue_limit\":";
  out += std::to_string(options_.max_queue_depth);
  out += ",\"max_queued_bytes\":";
  out += std::to_string(options_.max_queued_bytes);
  out += ",\"max_line_bytes\":";
  out += std::to_string(options_.max_line_bytes);
  out += ",\"idle_timeout_ms\":";
  out += std::to_string(options_.idle_timeout_ms);
  out += ",\"retry_after_ms\":";
  out += std::to_string(options_.retry_after_ms);
  out += ",\"cache_budget_entries\":";
  out += std::to_string(options_.cache_budget_entries);
  out += ",\"graph_cache_limit\":";
  out += std::to_string(options_.graph_cache_limit);
  out += ",\"tcp_port\":";
  out += std::to_string(tcp_port_);
  out += ",\"socket\":";
  append_json_string(out, options_.socket_path);
  out += ",\"slow_ms\":";
  append_json_number(out, options_.slow_ms);
  out += ",\"event_log\":";
  append_json_string(out, options_.event_log_path);
  // Kernel dispatch + NUMA placement actually in effect (post-CPUID
  // clamp), so a dashboard can tell a scalar-forced daemon from an AVX2
  // host at a glance.
  out += ",\"simd_detected\":";
  append_json_string(out,
                     kernels::simd_level_name(kernels::detected_simd_level()));
  out += ",\"simd_active\":";
  append_json_string(out,
                     kernels::simd_level_name(kernels::active_simd_level()));
  out += ",\"numa\":";
  append_json_string(out,
                     kernels::numa_policy_name(kernels::active_numa_policy()));
  out += ",\"numa_nodes\":";
  out += std::to_string(kernels::numa_node_count());
  // Default precision mode for requests without their own field ("auto"
  // is echoed as spelled — it resolves per graph at solve time).
  out += ",\"precision\":";
  append_json_string(
      out, options_.precision.empty() ? "fp64" : options_.precision);
  out += '}';
  // Rolling last-60s view next to the lifetime digests below, so a
  // dashboard can tell "slow now" from "slow once, long ago".
  const obs::WindowDigest wsolve =
      metrics_->solve_window.digest(kStatsWindowNs);
  const obs::WindowDigest wqueue =
      metrics_->queue_wait_window.digest(kStatsWindowNs);
  const std::uint64_t wcompleted =
      metrics_->completed_window.sum(kStatsWindowNs);
  const std::uint64_t wshed = metrics_->shed_window.sum(kStatsWindowNs);
  // Divide (exact for powers of ten) instead of scaling by 1e-9 so the
  // 60s window serializes as "60", not "60.000000000000007".
  const double window_seconds = static_cast<double>(kStatsWindowNs) / 1e9;
  out += ",\"window\":{\"window_seconds\":";
  append_json_number(out, window_seconds);
  out += ",\"completed\":";
  out += std::to_string(wcompleted);
  out += ",\"shed\":";
  out += std::to_string(wshed);
  out += ",\"throughput_per_second\":";
  append_json_number(out, static_cast<double>(wcompleted) / window_seconds);
  out += ',';
  append_window_digest(out, "solve_seconds", wsolve);
  out += ',';
  append_window_digest(out, "queue_wait_seconds", wqueue);
  out += '}';
  out += ",\"counters\":{";
  out += "\"sessions\":" + std::to_string(metrics_->sessions.value());
  out += ",\"requests\":" + std::to_string(metrics_->requests.value());
  out += ",\"admitted\":" + std::to_string(metrics_->admitted.value());
  out += ",\"completed\":" + std::to_string(metrics_->completed.value());
  out += ",\"shed\":" + std::to_string(metrics_->shed.value());
  out += ",\"rejected\":" + std::to_string(metrics_->rejected.value());
  out += ",\"errors\":" + std::to_string(metrics_->errors.value());
  out += ",\"idle_reaped\":" + std::to_string(metrics_->idle_reaped.value());
  out += ",\"scrapes\":" + std::to_string(metrics_->scrapes.value());
  out += "},";
  append_histogram_digest(out, "solve_seconds", metrics_->solve_seconds);
  out += ',';
  append_histogram_digest(out, "queue_wait_seconds",
                          metrics_->queue_wait_seconds);
  out += ",\"cache\":{";
  out += "\"hits\":" + std::to_string(cache.hits);
  out += ",\"misses\":" + std::to_string(cache.misses);
  out += ",\"evictions\":" + std::to_string(cache.evictions);
  out += ",\"resident_count\":" + std::to_string(cache.resident_count);
  out += ",\"hit_rate\":";
  append_json_number(out, hit_rate);
  out += ",\"build_seconds\":";
  append_json_number(out, cache.build_seconds);
  out += ",\"single_flight_waits\":" +
         std::to_string(cache.single_flight_waits);
  out += "}}";
  return out;
}

void SolveServer::respond(Session& s, std::string line) {
  s.wbuf += line;
  s.wbuf += '\n';
  flush_session(s);
}

void SolveServer::flush_session(Session& s) {
  while (!s.wbuf.empty()) {
    const ssize_t n =
        ::send(s.fd, s.wbuf.data(), s.wbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      s.wbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    s.broken = true;  // EPIPE / ECONNRESET: the sweep closes it
    s.wbuf.clear();
    return;
  }
}

void SolveServer::deliver_completed() {
  std::vector<CompletedJob> batch;
  {
    const std::scoped_lock lock(results_mutex_);
    batch.swap(completed_);
  }
  for (CompletedJob& c : batch) {
    const auto it = sessions_.find(c.session_id);
    if (it == sessions_.end()) continue;  // client left; drop the line
    Session& s = *it->second;
    PARLAP_CHECK(s.pending > 0);
    --s.pending;
    if (!s.broken) respond(s, std::move(c.line));
  }
}

void SolveServer::close_session(std::uint64_t id, const char* why) {
  (void)why;
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& s = *it->second;
  // read_ready purges queued jobs on EOF; do it again here for sessions
  // closed by other paths (idle reap) so no slot can leak.
  {
    const std::scoped_lock lock(queue_mutex_);
    const auto qit = session_queues_.find(id);
    if (qit != session_queues_.end()) {
      for (const PendingJob& pj : qit->second) {
        queued_bytes_ -= pj.bytes;
        --queued_jobs_;
      }
      session_queues_.erase(qit);
      rr_order_.erase(std::remove(rr_order_.begin(), rr_order_.end(), id),
                      rr_order_.end());
      metrics_->queue_depth.set(static_cast<std::int64_t>(queued_jobs_));
      metrics_->queued_bytes.set(static_cast<std::int64_t>(queued_bytes_));
    }
  }
  if (s.fd >= 0) ::close(s.fd);
  sessions_.erase(it);
}

void SolveServer::reap_idle_sessions() {
  if (options_.idle_timeout_ms <= 0) return;
  const std::uint64_t now = steady_now_ns();
  const auto limit_ns =
      static_cast<std::uint64_t>(options_.idle_timeout_ms) * 1000000ull;
  std::vector<std::uint64_t> idle;
  for (const auto& [id, s] : sessions_) {
    if (s->pending == 0 && s->wbuf.empty() && !s->broken &&
        now - s->last_activity_ns > limit_ns) {
      idle.push_back(id);
    }
  }
  for (const std::uint64_t id : idle) {
    metrics_->idle_reaped.add();
    close_session(id, "idle");
  }
}

}  // namespace parlap::service
