// FactorizationCache — an LRU cache of constructed AnySolver instances.
//
// Factorization is the expensive half of the factor-once / solve-many
// pipeline (seconds) while a solve is the cheap half (milliseconds), so a
// service handling repeated traffic against the same graphs must reuse
// factorizations across requests. The cache keys instances by *content*:
// the graph fingerprint (graph/fingerprint.hpp) plus the method name and
// the SolverConfig knobs that feed the factory — two jobs naming the same
// generator spec, or the same file loaded twice, share one entry.
//
// The memory budget is expressed in fp64-equivalent stored entries
// (8 bytes each), charged per instance via AnySolver::stored_bytes() —
// so an fp32-storage factorization (half the value bytes of the same
// structure) counts half an fp64 one against the budget. When
// an insert pushes the resident total past the budget, least-recently-
// used entries are dropped — except the most recent one, so a single
// over-budget factorization still completes and serves its requester
// (evicted instances stay alive for callers still holding the
// shared_ptr; "resident" means reachable through the cache).
//
// Concurrency: all operations are safe from any thread. Lookups of the
// same missing key are single-flight — one caller factorizes while the
// rest wait on a condition variable, so a burst of identical jobs costs
// one factorization, not workers-many.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/any_solver.hpp"
#include "graph/fingerprint.hpp"
#include "support/precision.hpp"
#include "support/types.hpp"

namespace parlap::service {

/// Identity of one factorization: what graph, which method, and the
/// config knobs the registry factory consumes.
struct FactorizationKey {
  std::uint64_t graph_hash = 0;  ///< graph_fingerprint of the input
  std::string method;            ///< registry name ("parlap", ...)
  std::uint64_t seed = 42;
  double split_scale = 0.0;
  int max_iterations = 0;
  /// Storage precision the factory builds with. Part of the identity:
  /// an fp32 and an fp64 factorization of the same graph are different
  /// objects and must never collide. Callers resolve kAuto against the
  /// concrete graph BEFORE keying (resolve_precision), so an auto job
  /// shares the entry of the explicit mode it resolves to.
  Precision precision = Precision::kFp64;

  bool operator==(const FactorizationKey&) const = default;
};

struct FactorizationKeyHash {
  [[nodiscard]] std::size_t operator()(const FactorizationKey& k) const;
};

class FactorizationCache {
 public:
  /// Counters since construction plus the current resident footprint.
  /// Read via stats(), which snapshots every field under one atomic
  /// generation: the invariants between fields (hits + misses ==
  /// lookups, resident_count consistent with resident_entries) hold in
  /// every snapshot a concurrent reader can observe — never torn.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< factorizations performed
    std::uint64_t evictions = 0;   ///< entries dropped for budget
    /// Resident total in fp64-equivalent entries: the sum of
    /// ceil(stored_bytes() / 8) over cached instances, so fp32
    /// factorizations count half their fp64 twins.
    EdgeId resident_entries = 0;
    std::size_t resident_count = 0;
    /// Wall-clock seconds spent inside miss factories (cache-miss cost
    /// attribution: what the batch paid to build rather than to solve).
    double build_seconds = 0.0;
    /// Single-flight waits: callers that blocked on another caller's
    /// in-progress factorization of the same key, and for how long.
    std::uint64_t single_flight_waits = 0;
    double single_flight_wait_seconds = 0.0;

    [[nodiscard]] std::uint64_t lookups() const noexcept {
      return hits + misses;
    }
  };

  /// `budget_entries` caps the resident total in fp64-equivalent
  /// entries (see Stats::resident_entries); 0 means unlimited.
  explicit FactorizationCache(EdgeId budget_entries = 0);

  FactorizationCache(const FactorizationCache&) = delete;
  FactorizationCache& operator=(const FactorizationCache&) = delete;

  /// Returns the cached solver for `key`, or runs `factory` (outside the
  /// cache lock, single-flight per key) and caches the result. The bool
  /// is true on a hit. A factory exception propagates to the caller
  /// whose factory threw and leaves the cache unchanged; waiters on
  /// that key then retry, the next one becoming the builder — so a
  /// transient failure costs one attempt per caller, never a poisoned
  /// entry.
  [[nodiscard]] std::pair<std::shared_ptr<AnySolver>, bool> get_or_create(
      const FactorizationKey& key,
      const std::function<std::unique_ptr<AnySolver>()>& factory);

  /// Lock-free torn-proof snapshot (seqlock read: retries while a
  /// writer is mid-update, so all fields come from one generation).
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] EdgeId budget_entries() const noexcept { return budget_; }

 private:
  struct Entry {
    std::shared_ptr<AnySolver> solver;  ///< null while building
    EdgeId cost = 0;
    std::uint64_t last_use = 0;
    bool building = false;
  };

  /// Seqlock-published counters. Writers (always holding mutex_, so
  /// serialized) bump gen to odd, mutate, bump back to even; stats()
  /// readers retry until they observe one even generation on both
  /// sides of the field reads. Fields are relaxed atomics so the
  /// racing reads the retry loop discards are still well-defined.
  struct SharedStats {
    std::atomic<std::uint64_t> gen{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::int64_t> resident_entries{0};
    std::atomic<std::uint64_t> resident_count{0};
    std::atomic<double> build_seconds{0.0};
    std::atomic<std::uint64_t> single_flight_waits{0};
    std::atomic<double> single_flight_wait_seconds{0.0};
  };

  /// RAII odd/even generation bump around a writer's field updates.
  class StatsUpdate {
   public:
    explicit StatsUpdate(SharedStats& s) noexcept : s_(s) {
      s_.gen.store(s_.gen.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
    }
    ~StatsUpdate() {
      s_.gen.store(s_.gen.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
    }
    StatsUpdate(const StatsUpdate&) = delete;
    StatsUpdate& operator=(const StatsUpdate&) = delete;

   private:
    SharedStats& s_;
  };

  void evict_to_budget_locked();

  const EdgeId budget_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<FactorizationKey, Entry, FactorizationKeyHash> entries_;
  std::uint64_t tick_ = 0;
  SharedStats stats_;
};

}  // namespace parlap::service
