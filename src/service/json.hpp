// A minimal JSON value type and recursive-descent parser.
//
// The service layer speaks JSONL (one JSON object per line) for batch
// job files, and the repo deliberately carries no third-party JSON
// dependency — bench/harness has the *writer*; this is the matching
// reader. Scope is RFC 8259 minus the corners the job format never
// produces: numbers parse via strtod (so 1e-8 and -3.5 work), strings
// support the standard escapes plus \uXXXX for BMP code points, and
// objects keep the last value for a duplicated key.
//
// Errors throw std::invalid_argument with a byte offset and a short
// excerpt, so a bad line in a 10k-line job file is findable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace parlap::service {

/// One parsed JSON value. Cheap to move; arrays/objects own their
/// children. Accessors throw std::invalid_argument on kind mismatches so
/// schema errors in job files surface as readable messages, not UB.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// std::map keeps member iteration deterministic (sorted by key).
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() : v_(nullptr) {}
  explicit JsonValue(bool b) : v_(b) {}
  explicit JsonValue(double d) : v_(d) {}
  explicit JsonValue(std::string s) : v_(std::move(s)) {}
  explicit JsonValue(Array a) : v_(std::move(a)) {}
  explicit JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept {
    return static_cast<Kind>(v_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind() == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind() == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind() == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind() == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind() == Kind::kObject;
  }

  /// Checked accessors; throw std::invalid_argument on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses exactly one JSON value (leading/trailing whitespace allowed;
/// anything else after the value is an error). Throws
/// std::invalid_argument with offset + excerpt on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace parlap::service
