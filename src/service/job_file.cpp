#include "service/job_file.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "service/json.hpp"
#include "support/precision.hpp"

namespace parlap::service {

namespace {

[[noreturn]] void ctx_error(const std::string& where, const std::string& what) {
  throw std::invalid_argument(where + ": " + what);
}

std::string string_field(const JsonValue& obj, const char* name,
                         std::string fallback, const std::string& where) {
  const JsonValue* v = obj.find(name);
  if (v == nullptr) return fallback;
  if (!v->is_string()) ctx_error(where, std::string(name) + " must be a string");
  return v->as_string();
}

bool bool_field(const JsonValue& obj, const char* name, bool fallback,
                const std::string& where) {
  const JsonValue* v = obj.find(name);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) ctx_error(where, std::string(name) + " must be a bool");
  return v->as_bool();
}

double number_field(const JsonValue& obj, const char* name, double fallback,
                    const std::string& where) {
  const JsonValue* v = obj.find(name);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    ctx_error(where, std::string(name) + " must be a number");
  }
  return v->as_number();
}

std::int64_t int_field(const JsonValue& obj, const char* name,
                       std::int64_t fallback, const std::string& where) {
  const double d = number_field(obj, name,
                                static_cast<double>(fallback), where);
  // Range check precedes the cast: converting an out-of-range double to
  // int64 is UB, and 2^63 is the first double NOT representable.
  if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
    ctx_error(where, std::string(name) + " is out of integer range");
  }
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    ctx_error(where, std::string(name) + " must be an integer");
  }
  return i;
}

}  // namespace

SolveJob parse_job_object(const JsonValue& doc, const std::string& where,
                          const std::string& default_id,
                          bool allow_type_field) {
  if (!doc.is_object()) ctx_error(where, "expected a JSON object");

  static const std::unordered_set<std::string> kKnown = {
      "id",     "graph", "laplacian",   "weights",        "method",
      "rhs",    "eps",   "seed",        "split_scale",    "max_iterations",
      "precision",       "project_rhs"};
  for (const auto& [key, value] : doc.as_object()) {
    if (allow_type_field && key == "type") continue;
    if (kKnown.count(key) == 0) {
      ctx_error(where, "unknown field '" + key + "'");
    }
  }

  SolveJob job;
  job.id = string_field(doc, "id", default_id, where);
  // Ids become file names (`batch --solutions --out DIR` writes
  // DIR/<id>.x) and report keys; restrict to a safe charset so a job
  // file cannot traverse paths or emit unprintable ids.
  if (job.id.empty() || job.id.size() > 128) {
    ctx_error(where, "id must be 1-128 characters");
  }
  for (const char ch : job.id) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' ||
                    ch == '-';
    if (!ok) {
      ctx_error(where,
                "id may only contain letters, digits, '.', '_', '-'");
    }
  }
  job.graph = string_field(doc, "graph", "", where);
  if (job.graph.empty()) ctx_error(where, "missing required field 'graph'");
  job.laplacian = bool_field(doc, "laplacian", false, where);
  job.weights = string_field(doc, "weights", "", where);
  job.method = string_field(doc, "method", "parlap", where);
  job.rhs = string_field(doc, "rhs", "random", where);
  job.eps = number_field(doc, "eps", 1e-8, where);
  if (!(job.eps > 0.0 && job.eps < 1.0)) {
    ctx_error(where, "eps must be in (0, 1)");
  }
  const std::int64_t seed = int_field(doc, "seed", 42, where);
  if (seed < 0) ctx_error(where, "seed must be non-negative");
  job.seed = static_cast<std::uint64_t>(seed);
  job.split_scale = number_field(doc, "split_scale", 0.0, where);
  if (job.split_scale < 0.0 || !std::isfinite(job.split_scale)) {
    ctx_error(where, "split_scale must be finite and non-negative");
  }
  const std::int64_t max_it = int_field(doc, "max_iterations", 0, where);
  if (max_it < 0 || max_it > std::numeric_limits<int>::max()) {
    ctx_error(where, "max_iterations out of range");
  }
  job.max_iterations = static_cast<int>(max_it);
  job.precision = string_field(doc, "precision", "", where);
  if (!job.precision.empty() && !parse_precision(job.precision).has_value()) {
    ctx_error(where, "precision must be one of fp64, fp32, auto");
  }
  job.project_rhs = bool_field(doc, "project_rhs", false, where);
  return job;
}

std::vector<SolveJob> parse_jobs_jsonl(std::istream& in) {
  std::vector<SolveJob> jobs;
  std::unordered_set<std::string> seen_ids;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const std::string where = "job file line " + std::to_string(line_no);
    JsonValue doc = [&] {
      try {
        return parse_json(line);
      } catch (const std::invalid_argument& e) {
        ctx_error(where, e.what());
      }
    }();
    SolveJob job =
        parse_job_object(doc, where, "job" + std::to_string(line_no));
    if (!seen_ids.insert(job.id).second) {
      ctx_error(where, "duplicate job id '" + job.id + "'");
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<SolveJob> parse_jobs_jsonl(const std::string& text) {
  std::istringstream in(text);
  return parse_jobs_jsonl(in);
}

}  // namespace parlap::service
