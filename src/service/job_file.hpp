// The JSONL batch-job format (one job object per line).
//
// A job names a graph (generator spec or "file:PATH"), a solver method,
// a right-hand-side spec, and tuning knobs. Example line:
//
//   {"id": "ws-a", "graph": "ws:512,6,0.1", "method": "parlap",
//    "rhs": "random", "eps": 1e-8, "seed": 7}
//
// Fields (all but `graph` optional):
//   id              string of letters, digits, '.', '_', '-' (<= 128
//                   chars; ids become file names); defaults to
//                   "job<line-number>". Must be unique — the per-job
//                   RNG stream is derived from it.
//   graph           "file:PATH" (edge list / .mtx by extension) or a
//                   generator spec per graph_source ("grid2d:64",
//                   "ws:512,6,0.1", ...).
//   laplacian       bool; .mtx entries are Laplacian values (files only).
//   weights         weight-model spec ("uniform:0.5,2", ...).
//   method          registry name; default "parlap".
//   rhs             "random[:k]" (deterministic mean-free vector, stream
//                   keyed by (seed, id, k)) or "demand:S,T".
//   eps             relative residual target; default 1e-8.
//   seed            base seed for generator/factorization/rhs; default 42.
//   split_scale     SolverConfig knob; default 0 (method default).
//   max_iterations  SolverConfig knob; default 0 (method default).
//   precision       "fp64" | "fp32" | "auto"; "" (default) inherits the
//                   engine's configured precision mode.
//   project_rhs     bool; accept a per-component-imbalanced rhs and
//                   solve its least-squares projection (default: such a
//                   job fails, mirroring `parlap_cli solve`).
//
// Blank lines and lines starting with '#' are skipped, so job files can
// carry comments.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace parlap::service {

/// One solve request, as parsed from a JSONL line (defaults applied).
struct SolveJob {
  std::string id;
  std::string graph;          ///< "file:PATH" or generator spec
  bool laplacian = false;     ///< .mtx entries are Laplacian values
  std::string weights;        ///< optional weight-model spec
  std::string method = "parlap";
  std::string rhs = "random";  ///< "random[:k]" | "demand:S,T"
  double eps = 1e-8;
  std::uint64_t seed = 42;
  double split_scale = 0.0;
  int max_iterations = 0;
  /// "fp64" | "fp32" | "auto" | "" — empty means "use the engine's
  /// precision mode". Validated at parse time; stored as the spelled
  /// string so inherit-vs-explicit survives to the engine.
  std::string precision;
  bool project_rhs = false;
};

class JsonValue;

/// Parses one already-parsed job object — the request shape shared by
/// JSONL batch files and the parlap_serve wire protocol. `where`
/// prefixes error messages ("job file line 7", "request"); `default_id`
/// is applied when the object carries no "id". With `allow_type_field`
/// the envelope key "type" is exempt from the unknown-field check (the
/// serve protocol's request discriminator rides in the same object).
/// Throws std::invalid_argument on schema violations.
[[nodiscard]] SolveJob parse_job_object(const JsonValue& doc,
                                        const std::string& where,
                                        const std::string& default_id,
                                        bool allow_type_field = false);

/// Parses a whole JSONL stream. Throws std::invalid_argument naming the
/// offending line number for malformed JSON, unknown fields, missing
/// `graph`, or duplicate ids.
[[nodiscard]] std::vector<SolveJob> parse_jobs_jsonl(std::istream& in);

/// Convenience overload over an in-memory buffer (tests, fixtures).
[[nodiscard]] std::vector<SolveJob> parse_jobs_jsonl(const std::string& text);

}  // namespace parlap::service
