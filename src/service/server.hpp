// SolveServer — the long-running network front end of the solve service.
//
// parlap_cli batch drains a JSONL file and exits; this is the same
// request shape promoted to a daemon: clients connect over a unix
// socket (and optionally loopback TCP), write newline-delimited JSON
// requests, and read newline-delimited JSON responses. Results STREAM —
// each job's result line is written the moment the job completes, so a
// client pipelining fifty requests sees answers trickle in instead of a
// batch-end dump. docs/SERVING.md is the protocol reference.
//
// Survival properties, in order of importance:
//
//   1. Bounded admission. Accepted-but-unserved work is capped by
//      max_queue_depth (queued jobs) and max_queued_bytes (request
//      bytes queued or executing). Past either limit a solve request is
//      shed immediately with {"status":"overloaded","retry_after_ms":N}
//      — the client hears "back off" in microseconds instead of
//      watching its socket stall while the queue grows without bound.
//   2. Per-client fairness. Each session owns a FIFO of its admitted
//      jobs; workers pick sessions round-robin and take ONE job per
//      turn, so a client that pipelines 500 requests shares the workers
//      with the client that sends one.
//   3. Graceful drain. SIGTERM (via request_drain(), which is
//      async-signal-safe) or a {"type":"shutdown"} request stops the
//      listeners, rejects NEW solve requests with {"status":"rejected"},
//      finishes every queued and in-flight job, flushes every response,
//      and returns from serve() — the daemon then exits 0.
//   4. Fault isolation. A malformed line, an oversized line, a client
//      that disconnects mid-request, or one that goes silent (idle
//      timeout) costs that session a structured error or a reap — never
//      the process, and never a leaked queue slot (a dead session's
//      queued jobs are removed and their bytes refunded).
//
// Telemetry: every layer below already feeds the PR 6 obs substrate;
// the server adds the serve.* span category and the parlap.serve.*
// metrics (docs/OBSERVABILITY.md), and answers {"type":"stats"} with
// live queue depth, p50/p95/p99 solve + queue-wait latency straight
// from the MetricsRegistry histograms (lifetime AND last-60s window),
// cache hit rates from FactorizationCache::Stats, and a config echo.
// The same listeners also speak just enough HTTP/1.1 to serve
// `GET /metrics` — the full registry in Prometheus text format — and a
// JSON `{"type":"metrics"}` verb returns the identical payload inline.
// Every admitted request carries a server-minted request id: echoed in
// its response next to a timing breakdown, attached as a span arg to
// every span the request touches (server, engine, cache, solver), and
// stamped on its slow-request event-log line (`--event-log`/`--slow-ms`).
//
// Threading: one I/O thread (the serve() caller) owns all sockets and
// session state; `workers` solver threads share only the admission
// queue and the completed-results list, both mutex-protected, and wake
// the I/O thread through a self-pipe. Workers run jobs through
// SolveEngine::run_one, so factorizations share the engine's
// single-flight LRU cache across clients.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/event_log.hpp"
#include "service/solve_engine.hpp"

namespace parlap::service {

struct ServerOptions {
  /// Unix-domain listener path. Required unless tcp_port >= 0. Bound
  /// fresh at start(): a stale file from a dead daemon is unlinked; a
  /// live one fails the bind.
  std::string socket_path;
  /// Loopback TCP listener port; -1 disables, 0 picks a free port
  /// (read it back via bound_tcp_port()).
  int tcp_port = -1;
  /// Solver worker threads. With workers > 1 each worker pins OpenMP to
  /// one thread (throughput mode), mirroring SolveEngine's batch pool.
  int workers = 1;
  EdgeId cache_budget_entries = 0;   ///< FactorizationCache budget; 0 = off
  std::size_t graph_cache_limit = 32;  ///< engine graph LRU bound
  /// Admission limits: a solve request is shed when the queued-job
  /// count has reached max_queue_depth, or when admitting its line
  /// would push the bytes queued-or-executing past max_queued_bytes.
  /// (Depth 0 sheds everything — useful for backpressure tests.)
  std::size_t max_queue_depth = 256;
  std::size_t max_queued_bytes = std::size_t{8} << 20;
  /// A request line longer than this is answered with a structured
  /// error and discarded through its terminating newline.
  std::size_t max_line_bytes = std::size_t{1} << 20;
  /// Sessions silent this long with nothing queued, running, or
  /// unflushed are reaped (0 = never).
  int idle_timeout_ms = 0;
  int retry_after_ms = 100;  ///< hint in shed-load responses
  /// JSONL event-log path ("" = off): lifecycle events plus one
  /// "request" event per completed solve at least slow_ms wall
  /// milliseconds (0 logs every completed solve). docs/SERVING.md
  /// documents the schema.
  std::string event_log_path;
  double slow_ms = 0.0;
  /// SIMD dispatch level ("scalar"|"avx2"|"avx512"|"auto"; "" inherits
  /// $PARLAP_SIMD, else auto) — forwarded to the engine and echoed in
  /// stats.config as simd_active next to simd_detected.
  std::string simd{};
  /// NUMA placement ("local"|"interleave"; "" inherits $PARLAP_NUMA,
  /// else local) — forwarded to the engine and echoed in stats.config.
  std::string numa{};
  /// Default factorization storage precision ("fp64"|"fp32"|"auto";
  /// "" = fp64) for requests without their own "precision" field —
  /// forwarded to the engine and echoed in stats.config.
  std::string precision{};
};

class SolveServer {
 public:
  explicit SolveServer(ServerOptions options);
  ~SolveServer();

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Binds the listeners and starts the worker pool. Throws
  /// std::runtime_error when a socket cannot be bound.
  void start();

  /// Runs the I/O loop on the calling thread until a drain completes
  /// (SIGTERM -> request_drain(), or a shutdown request). All sessions
  /// are closed and workers joined before it returns.
  void serve();

  /// Initiates graceful drain. Async-signal-safe (atomic store plus a
  /// self-pipe write) and callable from any thread.
  void request_drain() noexcept;

  /// The TCP port actually bound (after start(); -1 when TCP is off).
  [[nodiscard]] int bound_tcp_port() const noexcept { return tcp_port_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }
  /// Jobs completed since start (tests poll this across drains).
  [[nodiscard]] std::uint64_t completed_jobs() const noexcept {
    return completed_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Session;
  struct PendingJob;
  struct CompletedJob;
  struct ServeMetrics;

  // --- I/O thread only -----------------------------------------------------
  void accept_ready(int listen_fd);
  void read_ready(Session& s);
  void handle_line(Session& s, const std::string& line);
  void handle_solve(Session& s, SolveJob job, std::size_t line_bytes,
                    std::uint64_t request_id);
  void respond_http(Session& s);
  [[nodiscard]] std::string stats_response();
  void respond(Session& s, std::string line);
  void flush_session(Session& s);
  void close_session(std::uint64_t id, const char* why);
  void deliver_completed();
  void reap_idle_sessions();
  void begin_drain();
  [[nodiscard]] bool drain_complete();

  // --- worker threads ------------------------------------------------------
  void worker_main();

  void wake() noexcept;

  ServerOptions options_;
  std::unique_ptr<SolveEngine> engine_;
  ServeMetrics* metrics_ = nullptr;  ///< registry-owned instruments

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  bool started_ = false;
  bool draining_ = false;  ///< I/O thread only
  std::uint64_t start_ns_ = 0;

  std::uint64_t next_session_id_ = 1;  ///< I/O thread only
  /// Request ids are minted at admission on the I/O thread and ride
  /// every span (obs::RequestIdScope) and response of that request.
  std::uint64_t next_request_id_ = 1;  ///< I/O thread only
  obs::EventLog event_log_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;

  /// Admission queue (queue_mutex_): per-session FIFOs plus the
  /// round-robin order workers serve them in.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::unordered_map<std::uint64_t, std::deque<PendingJob>> session_queues_;
  std::deque<std::uint64_t> rr_order_;
  std::size_t queued_jobs_ = 0;
  std::size_t queued_bytes_ = 0;  ///< bytes queued or executing
  std::size_t in_flight_ = 0;
  bool stop_workers_ = false;

  std::mutex results_mutex_;
  std::vector<CompletedJob> completed_;

  std::vector<std::thread> workers_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<std::uint64_t> completed_count_{0};
};

}  // namespace parlap::service
