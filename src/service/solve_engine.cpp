#include "service/solve_engine.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <thread>

#include "api/graph_source.hpp"
#include "api/rhs.hpp"
#include "api/solver_registry.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/numa.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/for_each.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace parlap::service {

namespace {

/// Process-wide engine metrics (cumulative across batches and engine
/// instances; per-batch EngineStats carry the per-run view). Resolved
/// once so workers never touch the registry map.
struct EngineMetrics {
  obs::Counter& jobs;
  obs::Counter& panels;
  obs::LatencyHistogram& solve_seconds;
  obs::LatencyHistogram& queue_seconds;
  obs::LatencyHistogram& task_seconds;

  static EngineMetrics& get() {
    static EngineMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new EngineMetrics{
          reg.counter("parlap.engine.jobs"),
          reg.counter("parlap.engine.panels"),
          reg.histogram("parlap.engine.solve_seconds"),
          reg.histogram("parlap.engine.queue_wait_seconds"),
          reg.histogram("parlap.engine.task_seconds")};
    }();
    return *m;
  }
};

/// Stable 64-bit hash of a string via the shared fingerprint mixer.
std::uint64_t hash_string(const std::string& s) {
  return fingerprint_mix_string(0x6A6F6269'64686173ull, s);
}

std::uint64_t hash_solution(std::span<const double> x) {
  std::uint64_t h = 0x736F6C75'74696F6Eull;
  h = fingerprint_mix(h, static_cast<std::uint64_t>(x.size()));
  for (const double v : x) {
    h = fingerprint_mix(h, std::bit_cast<std::uint64_t>(v));
  }
  return h;
}

constexpr const char* kFilePrefix = "file:";

bool is_file_source(const std::string& graph) {
  return graph.rfind(kFilePrefix, 0) == 0;
}

/// Panel group identity: everything that must agree for two jobs to
/// share one solve_panel call — the loaded graph content, the
/// factorization key fields, and eps (solve_panel takes a single eps).
/// Doubles are keyed by their bits so "same knob" means bit-equality,
/// exactly like FactorizationKey's operator==. Unlike graph_for's cache
/// key, the seed always matters here: it feeds the factorization
/// regardless of whether the graph load consumed it.
std::string panel_group_key(const SolveJob& job) {
  std::string key = job.graph;
  key += '\x1f';
  key += job.weights;
  key += '\x1f';
  key += job.laplacian ? 'L' : 'A';
  key += '\x1f';
  key += job.method;
  key += '\x1f';
  key += std::to_string(job.seed);
  key += '\x1f';
  key += std::to_string(std::bit_cast<std::uint64_t>(job.split_scale));
  key += '\x1f';
  key += std::to_string(job.max_iterations);
  key += '\x1f';
  // The spelled mode, not the resolved one (resolution needs the loaded
  // graph): jobs inheriting the engine default share "", and an "auto"
  // job conservatively never shares a panel with an explicit one even
  // when both resolve to the same storage (they still share the
  // factorization cache entry).
  key += job.precision;
  key += '\x1f';
  key += std::to_string(std::bit_cast<std::uint64_t>(job.eps));
  return key;
}

}  // namespace

Vector job_rhs(const SolveJob& job, Vertex n) {
  const std::string& spec = job.rhs;
  if (spec.rfind("random", 0) == 0) {
    std::uint64_t k = 0;
    if (spec.size() > 6) {
      if (spec[6] != ':') {
        throw std::invalid_argument("job '" + job.id + "': bad rhs spec '" +
                                    spec + "' (want random[:k])");
      }
      // All-digits check first: strtoull would silently skip whitespace
      // and wrap a minus sign to a huge index.
      const std::string tail = spec.substr(7);
      const bool digits =
          !tail.empty() &&
          tail.find_first_not_of("0123456789") == std::string::npos;
      char* end = nullptr;
      if (digits) k = std::strtoull(tail.c_str(), &end, 10);
      if (!digits || end == nullptr || *end != '\0') {
        throw std::invalid_argument("job '" + job.id + "': bad rhs index '" +
                                    tail + "'");
      }
    }
    // Stream keyed by (seed, job id, k): independent of every other job
    // and of scheduling, which is what makes batches replayable.
    const std::uint64_t stream =
        splitmix64(job.seed ^ fingerprint_mix(hash_string(job.id), k));
    return random_rhs(n, stream);
  }
  if (spec.rfind("demand:", 0) == 0) {
    const std::string tail = spec.substr(7);
    const std::size_t comma = tail.find(',');
    if (comma == std::string::npos) {
      throw std::invalid_argument("job '" + job.id +
                                  "': rhs demand wants S,T");
    }
    std::int64_t s = 0;
    std::int64_t t = 0;
    try {
      std::size_t used_s = 0;
      std::size_t used_t = 0;
      s = std::stoll(tail.substr(0, comma), &used_s);
      t = std::stoll(tail.substr(comma + 1), &used_t);
      if (used_s != comma || used_t != tail.size() - comma - 1) {
        throw std::invalid_argument(tail);
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("job '" + job.id + "': rhs '" + spec +
                                  "' is not a vertex pair demand:S,T");
    }
    if (s < 0 || s >= n || t < 0 || t >= n || s == t) {
      throw std::invalid_argument(
          "job '" + job.id + "': demand endpoints (" + std::to_string(s) +
          ", " + std::to_string(t) + ") invalid for " + std::to_string(n) +
          " vertices");
    }
    return demand_rhs(n, static_cast<Vertex>(s), static_cast<Vertex>(t));
  }
  throw std::invalid_argument("job '" + job.id + "': unknown rhs spec '" +
                              spec + "' (want random[:k] or demand:S,T)");
}

SolveEngine::SolveEngine(EngineOptions options)
    : options_(options), cache_(options.cache_budget_entries) {
  PARLAP_CHECK_MSG(options_.workers >= 1,
                   "SolveEngine needs at least one worker, got "
                       << options_.workers);
  // Kernel dispatch and NUMA placement are process-wide (the kernel
  // table is a global slot); empty strings leave the env-derived
  // defaults untouched so PARLAP_SIMD/PARLAP_NUMA still work when no
  // flag is given. Unsupported levels clamp with a stderr note.
  if (!options_.simd.empty()) {
    const auto level = kernels::parse_simd_level(options_.simd);
    PARLAP_CHECK_MSG(level.has_value(),
                     "unknown SIMD level '" << options_.simd
                                            << "' (want scalar|avx2|avx512|auto)");
    kernels::set_simd_level(*level);
  }
  if (!options_.numa.empty()) {
    const auto policy = kernels::parse_numa_policy(options_.numa);
    PARLAP_CHECK_MSG(policy.has_value(),
                     "unknown NUMA policy '" << options_.numa
                                             << "' (want local|interleave)");
    kernels::set_numa_policy(*policy);
  }
  if (!options_.precision.empty()) {
    const auto mode = parse_precision(options_.precision);
    PARLAP_CHECK_MSG(mode.has_value(),
                     "unknown precision '" << options_.precision
                                           << "' (want fp64|fp32|auto)");
    default_precision_ = *mode;
  }
}

SolveEngine::~SolveEngine() = default;

std::shared_ptr<const SolveEngine::LoadedGraph> SolveEngine::graph_for(
    const SolveJob& job) {
  // Key by everything that determines the loaded content ('\x1f', the
  // unit separator, cannot appear in the specs). The seed only matters
  // when something is generated from it — a plain file load is
  // seed-independent and shared across differently-seeded jobs.
  const bool seed_matters = !is_file_source(job.graph) || !job.weights.empty();
  const std::string key =
      job.graph + '\x1f' + job.weights + '\x1f' +
      (job.laplacian ? "L" : "A") + '\x1f' +
      (seed_matters ? std::to_string(job.seed) : std::string());
  // Loads happen under the map lock: simple, and a batch's graph set is
  // loaded once in its first wave while factorization dominates anyway.
  const std::scoped_lock lock(graphs_mutex_);
  const auto it = graphs_.find(key);
  if (it != graphs_.end()) {
    it->second->last_use = ++graphs_tick_;
    return it->second;
  }

  Multigraph g =
      is_file_source(job.graph)
          ? load_graph_file(job.graph.substr(std::string(kFilePrefix).size()),
                            GraphFileFormat::kAuto,
                            job.laplacian ? MatrixMarketKind::kLaplacian
                                          : MatrixMarketKind::kAdjacency)
          : make_generated_graph(job.graph, job.seed);
  if (!job.weights.empty()) {
    apply_weights(g, parse_weight_model(job.weights), job.seed + 1);
  }
  if (g.num_vertices() == 0) {
    throw std::runtime_error("graph '" + job.graph + "' has no vertices");
  }

  auto loaded = std::make_shared<LoadedGraph>();
  loaded->fingerprint = graph_fingerprint(g);
  loaded->components = connected_components(g);
  loaded->graph = std::make_shared<const Multigraph>(std::move(g));
  loaded->last_use = ++graphs_tick_;
  graphs_.emplace(key, loaded);
  // LRU bound: evicted graphs stay alive for jobs holding the pointer.
  while (options_.graph_cache_limit > 0 &&
         graphs_.size() > options_.graph_cache_limit) {
    auto victim = graphs_.begin();
    for (auto gi = graphs_.begin(); gi != graphs_.end(); ++gi) {
      if (gi->second->last_use < victim->second->last_use) victim = gi;
    }
    graphs_.erase(victim);
  }
  return loaded;
}

Precision SolveEngine::job_precision(const SolveJob& job) const {
  if (job.precision.empty()) return default_precision_;
  // parse_job_object validated the spelling; programmatic jobs go
  // through the same gate here.
  const auto mode = parse_precision(job.precision);
  if (!mode.has_value()) {
    throw std::invalid_argument("job '" + job.id + "': unknown precision '" +
                                job.precision + "' (want fp64|fp32|auto)");
  }
  return *mode;
}

JobResult SolveEngine::run_job(const SolveJob& job) {
  JobResult result;
  result.id = job.id;
  const WallTimer job_timer;
  try {
    const std::shared_ptr<const LoadedGraph> loaded = graph_for(job);
    const Vertex n = loaded->graph->num_vertices();

    Vector b = job_rhs(job, n);
    const RhsCompatibility compat =
        check_rhs_compatibility(b, loaded->components);
    if (!compat.compatible && !job.project_rhs) {
      throw std::runtime_error(
          "right-hand side is incompatible: component " +
          std::to_string(compat.worst_component) + " has relative net "
          "imbalance " + std::to_string(compat.worst_imbalance) +
          " (set \"project_rhs\": true to solve the least-squares "
          "projection)");
    }

    // Resolve kAuto against the loaded graph BEFORE keying, so an fp32
    // and an fp64 factorization of the same graph never collide and an
    // auto job shares the entry of the mode it resolves to.
    const Precision precision = resolve_precision(job_precision(job), n);

    FactorizationKey key;
    key.graph_hash = loaded->fingerprint;
    key.method = job.method;
    key.seed = job.seed;
    key.split_scale = job.split_scale;
    key.max_iterations = job.max_iterations;
    key.precision = precision;

    SolverConfig config;
    config.seed = job.seed;
    config.split_scale = job.split_scale;
    config.max_iterations = job.max_iterations;
    config.precision = precision;
    const Multigraph& graph = *loaded->graph;
    const WallTimer factor_timer;
    const auto [solver, hit] = cache_.get_or_create(key, [&] {
      return SolverRegistry::instance().create(job.method, graph, config);
    });
    result.build_seconds = factor_timer.seconds();
    result.cache_hit = hit;

    Vector x(static_cast<std::size_t>(n), 0.0);
    result.report = solver->solve(b, x, job.eps);
    result.solution_hash = hash_solution(x);
    if (options_.keep_solutions) result.solution = std::move(x);
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  result.wall_seconds = job_timer.seconds();
  return result;
}

JobResult SolveEngine::run_one(const SolveJob& job) { return run_job(job); }

PanelStats SolveEngine::run_panel_task(std::span<const SolveJob> jobs,
                                       std::span<const std::size_t> members,
                                       std::span<JobResult> results) {
  PanelStats panel;
  panel.width = static_cast<int>(members.size());
  for (const std::size_t i : members) panel.job_ids.push_back(jobs[i].id);
  const WallTimer panel_timer;

  // Per-job rhs construction and compatibility checks run individually
  // so one bad job fails alone; the survivors share the panel solve.
  std::vector<std::size_t> survivors;
  std::vector<Vector> bs;
  std::shared_ptr<const LoadedGraph> loaded;
  for (const std::size_t i : members) {
    const SolveJob& job = jobs[i];
    JobResult& result = results[i];
    result.id = job.id;
    try {
      if (!loaded) loaded = graph_for(job);  // one key, one graph
      const Vertex n = loaded->graph->num_vertices();
      Vector b = job_rhs(job, n);
      const RhsCompatibility compat =
          check_rhs_compatibility(b, loaded->components);
      if (!compat.compatible && !job.project_rhs) {
        throw std::runtime_error(
            "right-hand side is incompatible: component " +
            std::to_string(compat.worst_component) + " has relative net "
            "imbalance " + std::to_string(compat.worst_imbalance) +
            " (set \"project_rhs\": true to solve the least-squares "
            "projection)");
      }
      survivors.push_back(i);
      bs.push_back(std::move(b));
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
    }
  }

  if (!survivors.empty()) {
    const SolveJob& lead = jobs[survivors.front()];
    try {
      const Precision precision = resolve_precision(
          job_precision(lead), loaded->graph->num_vertices());
      FactorizationKey key;
      key.graph_hash = loaded->fingerprint;
      key.method = lead.method;
      key.seed = lead.seed;
      key.split_scale = lead.split_scale;
      key.max_iterations = lead.max_iterations;
      key.precision = precision;
      SolverConfig config;
      config.seed = lead.seed;
      config.split_scale = lead.split_scale;
      config.max_iterations = lead.max_iterations;
      config.precision = precision;
      const Multigraph& graph = *loaded->graph;
      const WallTimer factor_timer;
      const auto [solver, hit] = cache_.get_or_create(key, [&] {
        return SolverRegistry::instance().create(lead.method, graph, config);
      });
      const double factor_seconds = factor_timer.seconds();
      panel.cache_hit = hit;

      std::vector<Vector> xs(survivors.size());
      const std::vector<RunReport> reports =
          solver->solve_panel(bs, xs, lead.eps);
      for (std::size_t j = 0; j < survivors.size(); ++j) {
        JobResult& result = results[survivors[j]];
        result.cache_hit = hit;
        result.build_seconds =
            factor_seconds / static_cast<double>(survivors.size());
        result.report = reports[j];
        result.solution_hash = hash_solution(xs[j]);
        if (options_.keep_solutions) result.solution = std::move(xs[j]);
        result.ok = true;
        panel.solve_seconds += reports[j].solve_seconds;
        panel.apply_seconds += reports[j].apply_seconds;
      }
    } catch (const std::exception& e) {
      for (const std::size_t i : survivors) {
        results[i].ok = false;
        results[i].error = e.what();
      }
    }
  }

  // Shared wall time split evenly, so per-job walls still sum to real
  // batch cost.
  const double share =
      panel_timer.seconds() / static_cast<double>(members.size());
  for (const std::size_t i : members) results[i].wall_seconds = share;
  return panel;
}

BatchResult SolveEngine::run(std::span<const SolveJob> jobs) {
  BatchResult batch;
  batch.jobs.resize(jobs.size());
  const FactorizationCache::Stats cache_before = cache_.stats();
  PARLAP_TRACE_SPAN_N(batch_span, "engine.batch", "queue");
  const WallTimer batch_timer;
  const std::uint64_t batch_start_ns = steady_now_ns();

  // Task list: at block_width 1 every job is its own task (the scalar
  // path, unchanged); otherwise jobs are grouped by panel_group_key in
  // input order and chunked to the width. Built before any worker runs,
  // so the panel composition never depends on scheduling.
  const auto width =
      static_cast<std::size_t>(std::max(1, options_.block_width));
  std::vector<std::vector<std::size_t>> tasks;
  if (width <= 1) {
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) tasks.push_back({i});
  } else {
    std::unordered_map<std::string, std::vector<std::size_t>> groups;
    std::vector<std::string> group_order;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const std::string key = panel_group_key(jobs[i]);
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) group_order.push_back(key);
      it->second.push_back(i);
    }
    for (const std::string& key : group_order) {
      const std::vector<std::size_t>& g = groups[key];
      for (std::size_t start = 0; start < g.size(); start += width) {
        const std::size_t len = std::min(width, g.size() - start);
        tasks.emplace_back(g.begin() + static_cast<std::ptrdiff_t>(start),
                           g.begin() + static_cast<std::ptrdiff_t>(start + len));
      }
    }
  }
  batch.panels.resize(tasks.size());

  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(options_.workers),
      std::max<std::size_t>(1, tasks.size())));
  std::atomic<std::size_t> next{0};
  const auto worker_main = [&] {
    // Throughput mode: each worker runs its solves single-threaded so N
    // workers use N threads total (see header). SerialScope covers the
    // parallel_for wrappers; the OpenMP ICV covers raw pragmas, and both
    // die with this thread.
    std::optional<SerialScope> serial;
    if (workers > 1) {
      omp_set_num_threads(1);
      serial.emplace();
    }
    while (true) {
      const std::size_t t = next.fetch_add(1);
      if (t >= tasks.size()) break;
      const std::vector<std::size_t>& members = tasks[t];
      // Queue wait: batch submission -> this pickup. Recorded per task
      // so the percentiles below see the whole backlog distribution.
      const double queue_seconds =
          static_cast<double>(steady_now_ns() - batch_start_ns) * 1e-9;
      PARLAP_TRACE_SPAN_N(task_span, "engine.task", "queue");
      task_span.arg("task", static_cast<double>(t));
      task_span.arg("width", static_cast<double>(members.size()));
      task_span.arg("queue_ms", queue_seconds * 1e3);
      const WallTimer task_timer;
      if (members.size() == 1) {
        batch.jobs[members.front()] = run_job(jobs[members.front()]);
        PanelStats& panel = batch.panels[t];
        panel.width = 1;
        panel.job_ids.push_back(jobs[members.front()].id);
        const JobResult& r = batch.jobs[members.front()];
        panel.cache_hit = r.cache_hit;
        panel.solve_seconds = r.report.solve_seconds;
        panel.apply_seconds = r.report.apply_seconds;
      } else {
        batch.panels[t] = run_panel_task(jobs, members, batch.jobs);
      }
      batch.panels[t].queue_seconds = queue_seconds;
      batch.panels[t].exec_seconds = task_timer.seconds();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker_main);
  for (std::thread& t : pool) t.join();

  EngineStats& stats = batch.stats;
  stats.jobs = static_cast<std::int64_t>(jobs.size());
  stats.wall_seconds = batch_timer.seconds();
  // Latency digests: per-batch histograms feed EngineStats, and every
  // sample is mirrored into the process-wide registry so a long-lived
  // engine's cumulative view (the future serve daemon's /metrics)
  // accrues for free.
  EngineMetrics& metrics = EngineMetrics::get();
  obs::LatencyHistogram solve_hist;
  obs::LatencyHistogram queue_hist;
  for (const JobResult& r : batch.jobs) {
    if (!r.ok) {
      ++stats.failed;
      continue;
    }
    ++stats.succeeded;
    if (r.report.converged) ++stats.converged;
    solve_hist.record_seconds(r.report.solve_seconds);
    metrics.solve_seconds.record_seconds(r.report.solve_seconds);
  }
  for (const PanelStats& p : batch.panels) {
    queue_hist.record_seconds(p.queue_seconds);
    metrics.queue_seconds.record_seconds(p.queue_seconds);
    metrics.task_seconds.record_seconds(p.exec_seconds);
  }
  metrics.jobs.add(static_cast<std::uint64_t>(jobs.size()));
  metrics.panels.add(batch.panels.size());
  if (stats.wall_seconds > 0.0) {
    stats.solves_per_second =
        static_cast<double>(stats.succeeded) / stats.wall_seconds;
  }
  stats.p50_solve_seconds = solve_hist.percentile_seconds(0.50);
  stats.p95_solve_seconds = solve_hist.percentile_seconds(0.95);
  stats.p99_solve_seconds = solve_hist.percentile_seconds(0.99);
  stats.p50_queue_seconds = queue_hist.percentile_seconds(0.50);
  stats.p95_queue_seconds = queue_hist.percentile_seconds(0.95);
  stats.p99_queue_seconds = queue_hist.percentile_seconds(0.99);
  stats.panels = static_cast<std::int64_t>(batch.panels.size());
  if (!batch.panels.empty()) {
    stats.panel_occupancy =
        static_cast<double>(jobs.size()) /
        (static_cast<double>(batch.panels.size()) *
         static_cast<double>(std::max(1, options_.block_width)));
  }
  // Counters are reported per batch (so a warmed engine's second run
  // shows its true steady-state hit rate); resident_* stay absolute.
  stats.cache = cache_.stats();
  stats.cache.hits -= cache_before.hits;
  stats.cache.misses -= cache_before.misses;
  stats.cache.evictions -= cache_before.evictions;
  stats.cache.build_seconds -= cache_before.build_seconds;
  stats.cache.single_flight_waits -= cache_before.single_flight_waits;
  stats.cache.single_flight_wait_seconds -=
      cache_before.single_flight_wait_seconds;
  if (stats.cache.lookups() > 0) {
    stats.cache_hit_rate = static_cast<double>(stats.cache.hits) /
                           static_cast<double>(stats.cache.lookups());
  }
  batch_span.arg("jobs", static_cast<double>(stats.jobs));
  batch_span.arg("panels", static_cast<double>(stats.panels));
  batch_span.arg("workers", static_cast<double>(workers));
  return batch;
}

}  // namespace parlap::service
