// SolveEngine — concurrent multi-RHS solve throughput service.
//
// The execution layer the ROADMAP's "heavy traffic" north star asks for:
// a batch of SolveJobs (job_file.hpp) runs on a pool of worker threads
// that share one FactorizationCache, so repeated graphs factor once and
// then serve many solves concurrently through the const, thread-safe
// AnySolver::solve surface.
//
// Panel grouping (EngineOptions::block_width > 1): jobs that share a
// factorization (graph content, method, config, eps) are grouped — in
// input order, before any worker runs — into panels of up to
// block_width right-hand sides, and each panel is one
// AnySolver::solve_panel call, so the paper's solver traverses its chain
// once per preconditioner application for the whole panel. Per-job
// results are bit-identical at every block width (the solve_panel
// contract); a panel's jobs share one cache lookup, so hit/miss
// counters count panels.
//
// Determinism contract: every job's result — solution bits, residual,
// iteration count — is a pure function of the job itself (its id, seed,
// graph, method, knobs). It does not depend on the worker count, on
// which worker picks the job up, or on completion order. This holds
// because (a) factorizations are pure functions of (graph content,
// method, config), (b) AnySolver::solve is deterministic across thread
// counts, and (c) each job's right-hand side comes from a Philox stream
// keyed by (seed, job id) rather than any shared counter. Tests compare
// --workers 1 against --workers N for bit-identical results.
//
// Oversubscription: with workers > 1 each worker pins its OpenMP thread
// count to 1 and enters a SerialScope, so a machine runs `workers`
// single-threaded solves side by side instead of workers * max_threads
// oversubscribed ones. With workers == 1 the solves keep their inner
// OpenMP parallelism (latency mode vs throughput mode).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/run_report.hpp"
#include "graph/connectivity.hpp"
#include "graph/multigraph.hpp"
#include "linalg/vector_ops.hpp"
#include "service/factorization_cache.hpp"
#include "service/job_file.hpp"
#include "support/precision.hpp"

namespace parlap::service {

/// Outcome of one job. `ok` distinguishes "ran" from "failed to run"
/// (bad graph spec, unknown method, incompatible rhs, ...); a job that
/// ran but missed its eps still has ok == true with converged == false
/// in the report.
struct JobResult {
  std::string id;
  bool ok = false;
  std::string error;        ///< set when !ok
  bool cache_hit = false;   ///< factorization came from the cache
  RunReport report;         ///< zero-initialized when !ok
  double wall_seconds = 0;  ///< load + factor-or-hit + solve, this job
  /// Time spent obtaining the factorization (cold build, single-flight
  /// wait, or cache lookup) — the serve daemon's per-request "build_ms".
  double build_seconds = 0;
  /// Order-independent fingerprint of the solution bits (fingerprint_mix
  /// chain); lets callers assert bit-identical results across worker
  /// counts without shipping the vectors.
  std::uint64_t solution_hash = 0;
  Vector solution;  ///< kept only under EngineOptions::keep_solutions
};

struct EngineOptions {
  int workers = 1;                 ///< worker threads (>= 1)
  EdgeId cache_budget_entries = 0; ///< FactorizationCache budget; 0 = off
  bool keep_solutions = false;     ///< retain JobResult::solution
  /// Loaded graphs retained for reuse (LRU beyond this; 0 = unlimited).
  /// Bounds the engine's second cache so a long-lived engine seeing a
  /// rotating graph set cannot grow without limit.
  std::size_t graph_cache_limit = 32;
  /// Panel width: jobs sharing a factorization (same graph content,
  /// method, config knobs, and eps) are grouped, in input order, into
  /// panels of at most this many right-hand sides, each panel solved
  /// with one AnySolver::solve_panel call. 1 (the default) solves every
  /// job individually. Per-job solutions are bit-identical at every
  /// width; cache hit/miss counters count panels, not jobs.
  int block_width = 1;
  /// SIMD dispatch level for the apply kernels: "scalar", "avx2",
  /// "avx512", or "auto" (CPUID). Empty = inherit the process default
  /// ($PARLAP_SIMD, else auto). Applied process-wide at construction;
  /// results are bit-identical at every level (docs/PERFORMANCE.md).
  std::string simd{};
  /// NUMA placement for chain arrays and workspaces: "local" (first
  /// touch on the building worker's node) or "interleave" (page-striped
  /// across nodes). Empty = inherit the process default ($PARLAP_NUMA,
  /// else local). Applied process-wide at construction.
  std::string numa{};
  /// Default factorization storage precision for jobs that do not set
  /// their own: "fp64", "fp32", or "auto" (empty = fp64). "auto" is
  /// resolved per graph (resolve_precision) before the factorization
  /// cache key is formed, so fp32 and fp64 factorizations of the same
  /// graph never collide and an auto job shares the entry of the mode
  /// it resolves to. fp64 results are bit-identical to a build without
  /// the knob; fp32 meets each job's eps via fp64 refinement.
  std::string precision{};
};

/// Telemetry of one solved panel (every task is recorded, width-1
/// singletons included, so occupancy reads directly from the list).
struct PanelStats {
  std::vector<std::string> job_ids;  ///< input order
  int width = 0;                     ///< jobs grouped into this panel
  bool cache_hit = false;            ///< factorization came from cache
  double solve_seconds = 0.0;        ///< summed per-RHS solve seconds
  double apply_seconds = 0.0;        ///< summed per-RHS apply seconds
  /// Queue wait: batch start -> a worker picking this task up. With
  /// more tasks than workers this is the backlog signal the ROADMAP's
  /// serve daemon will export as queue depth/latency.
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;  ///< wall time inside the task
};

/// Aggregate batch telemetry.
struct EngineStats {
  std::int64_t jobs = 0;
  std::int64_t succeeded = 0;  ///< ok
  std::int64_t converged = 0;  ///< ok && report.converged
  std::int64_t failed = 0;     ///< !ok
  double wall_seconds = 0.0;       ///< whole batch
  double solves_per_second = 0.0;  ///< succeeded / wall_seconds
  /// Latency percentiles, derived from obs::LatencyHistogram buckets
  /// (log-bucketed: monotone in q, <= 12.5% above the exact order
  /// statistic) rather than a sort — the same digest the registry
  /// exports, so batch JSON and live metrics agree by construction.
  double p50_solve_seconds = 0.0;  ///< per-job solve_seconds percentiles
  double p95_solve_seconds = 0.0;
  double p99_solve_seconds = 0.0;
  double p50_queue_seconds = 0.0;  ///< per-task queue-wait percentiles
  double p95_queue_seconds = 0.0;
  double p99_queue_seconds = 0.0;
  /// Panel-level hit fraction of THIS batch: cache.hits / lookups()
  /// (0 when the batch performed no lookups).
  double cache_hit_rate = 0.0;
  std::int64_t panels = 0;         ///< solve tasks (width-1 included)
  /// Mean panel fill: jobs / (panels * block_width). 1.0 when every
  /// panel is full (always, at block_width 1).
  double panel_occupancy = 0.0;
  /// Cache activity of THIS batch (hit/miss/eviction counters and the
  /// miss-attributed build_seconds are per-run deltas; resident_* are
  /// absolute at batch end), so a warmed engine's steady-state hit rate
  /// and factorization cost read directly from one run.
  FactorizationCache::Stats cache;
};

struct BatchResult {
  std::vector<JobResult> jobs;  ///< same order as the input batch
  std::vector<PanelStats> panels;  ///< per solved panel, task order
  EngineStats stats;
};

class SolveEngine {
 public:
  explicit SolveEngine(EngineOptions options = {});
  ~SolveEngine();

  SolveEngine(const SolveEngine&) = delete;
  SolveEngine& operator=(const SolveEngine&) = delete;

  /// Runs the batch to completion (blocking). May be called repeatedly;
  /// the factorization cache persists across batches.
  [[nodiscard]] BatchResult run(std::span<const SolveJob> jobs);

  /// Runs ONE job synchronously on the calling thread — the per-request
  /// path of the parlap_serve daemon, whose own worker pool replaces the
  /// batch pool above. Safe from any number of threads concurrently:
  /// graph loads and factorizations share the engine's caches (with
  /// single-flight builds), and the result is the same pure function of
  /// the job as in a batch run, so serve and batch traffic for the same
  /// job yield bit-identical solution hashes. Never throws: failures
  /// come back as JobResult::ok == false. EngineOptions::workers does
  /// not limit run_one callers; inner OpenMP parallelism is whatever
  /// the calling thread has configured.
  [[nodiscard]] JobResult run_one(const SolveJob& job);

  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] FactorizationCache::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  struct LoadedGraph {
    std::shared_ptr<const Multigraph> graph;
    std::uint64_t fingerprint = 0;
    Components components;
    std::uint64_t last_use = 0;  ///< LRU tick, under graphs_mutex_
  };

  /// Loads/generates (and memoizes) the graph a job names.
  [[nodiscard]] std::shared_ptr<const LoadedGraph> graph_for(
      const SolveJob& job);

  /// The job's requested precision mode (its own field, else the
  /// engine default), before per-graph kAuto resolution.
  [[nodiscard]] Precision job_precision(const SolveJob& job) const;

  [[nodiscard]] JobResult run_job(const SolveJob& job);

  /// Runs one multi-job panel: shared graph + factorization lookup, one
  /// solve_panel call for the rhs-compatible jobs, per-job failure
  /// isolation for the rest. Writes results[i] for every i in `members`
  /// and returns the panel telemetry.
  [[nodiscard]] PanelStats run_panel_task(std::span<const SolveJob> jobs,
                                          std::span<const std::size_t> members,
                                          std::span<JobResult> results);

  EngineOptions options_;
  /// Parsed EngineOptions::precision (kFp64 when the string is empty).
  Precision default_precision_ = Precision::kFp64;
  FactorizationCache cache_;
  std::mutex graphs_mutex_;
  std::uint64_t graphs_tick_ = 0;
  /// Keyed by (graph spec, weights, laplacian, seed) — the inputs that
  /// determine the loaded content (seed is dropped for plain file
  /// sources, whose content it cannot affect). LRU-bounded by
  /// EngineOptions::graph_cache_limit; evicted graphs stay alive for
  /// jobs still holding the shared_ptr.
  std::unordered_map<std::string, std::shared_ptr<LoadedGraph>> graphs_;
};

/// The per-job right-hand side (exposed for tests): "random[:k]" uses a
/// Philox stream keyed by (seed, job id, k); "demand:S,T" is e_S - e_T.
[[nodiscard]] Vector job_rhs(const SolveJob& job, Vertex n);

}  // namespace parlap::service
