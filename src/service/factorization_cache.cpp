#include "service/factorization_cache.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace parlap::service {

namespace {

/// Process-wide cache metrics (summed across cache instances; the
/// per-instance Stats stay the per-batch source of truth). References
/// resolved once — the hot path never touches the registry map.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& waits;
  obs::LatencyHistogram& build_seconds;
  obs::LatencyHistogram& wait_seconds;

  static CacheMetrics& get() {
    static CacheMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new CacheMetrics{reg.counter("parlap.cache.hits"),
                              reg.counter("parlap.cache.misses"),
                              reg.counter("parlap.cache.evictions"),
                              reg.counter("parlap.cache.single_flight_waits"),
                              reg.histogram("parlap.cache.build_seconds"),
                              reg.histogram("parlap.cache.wait_seconds")};
    }();
    return *m;
  }
};

}  // namespace

std::size_t FactorizationKeyHash::operator()(
    const FactorizationKey& k) const {
  std::uint64_t h = k.graph_hash;
  h = fingerprint_mix_string(h, k.method);
  h = fingerprint_mix(h, k.seed);
  // Canonicalize -0.0 before bit-casting: operator== compares doubles
  // numerically, and equal keys must hash equally.
  const double scale = k.split_scale == 0.0 ? 0.0 : k.split_scale;
  h = fingerprint_mix(h, std::bit_cast<std::uint64_t>(scale));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(k.max_iterations)));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(k.precision));
  return static_cast<std::size_t>(h);
}

FactorizationCache::FactorizationCache(EdgeId budget_entries)
    : budget_(budget_entries) {}

std::pair<std::shared_ptr<AnySolver>, bool> FactorizationCache::get_or_create(
    const FactorizationKey& key,
    const std::function<std::unique_ptr<AnySolver>()>& factory) {
  PARLAP_TRACE_SPAN_N(lookup_span, "cache.lookup", "cache");
  CacheMetrics& metrics = CacheMetrics::get();
  std::uint64_t wait_began_ns = 0;  // 0: never blocked on a builder

  std::unique_lock lock(mutex_);
  while (true) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: become the builder
    if (!it->second.building) {
      {
        const StatsUpdate update(stats_);
        stats_.hits.fetch_add(1, std::memory_order_relaxed);
        if (wait_began_ns != 0) {
          stats_.single_flight_waits.fetch_add(1, std::memory_order_relaxed);
          const double waited =
              static_cast<double>(steady_now_ns() - wait_began_ns) * 1e-9;
          // Writers are serialized by mutex_; load+store is enough.
          stats_.single_flight_wait_seconds.store(
              stats_.single_flight_wait_seconds.load(
                  std::memory_order_relaxed) +
                  waited,
              std::memory_order_relaxed);
          metrics.waits.add();
          metrics.wait_seconds.record_seconds(waited);
        }
      }
      metrics.hits.add();
      lookup_span.arg("hit", 1.0);
      it->second.last_use = ++tick_;
      return {it->second.solver, true};
    }
    // Someone else is factorizing this key; wait for the publication
    // (or for the build to fail, which erases the entry and we retry as
    // the builder).
    if (wait_began_ns == 0) wait_began_ns = steady_now_ns();
    PARLAP_TRACE_SPAN("cache.wait", "cache");
    cv_.wait(lock);
  }

  {
    const StatsUpdate update(stats_);
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    if (wait_began_ns != 0) {
      // Waited on a builder whose build failed, then took over.
      stats_.single_flight_waits.fetch_add(1, std::memory_order_relaxed);
      const double waited =
          static_cast<double>(steady_now_ns() - wait_began_ns) * 1e-9;
      stats_.single_flight_wait_seconds.store(
          stats_.single_flight_wait_seconds.load(std::memory_order_relaxed) +
              waited,
          std::memory_order_relaxed);
      metrics.waits.add();
      metrics.wait_seconds.record_seconds(waited);
    }
  }
  metrics.misses.add();
  lookup_span.arg("hit", 0.0);
  {
    Entry placeholder;
    placeholder.building = true;
    entries_.emplace(key, std::move(placeholder));
  }
  lock.unlock();

  std::shared_ptr<AnySolver> solver;
  const WallTimer build_timer;
  try {
    PARLAP_TRACE_SPAN("cache.build", "cache");
    solver = factory();
  } catch (...) {
    lock.lock();
    entries_.erase(key);
    cv_.notify_all();
    throw;
  }
  const double build_seconds = build_timer.seconds();
  metrics.build_seconds.record_seconds(build_seconds);

  lock.lock();
  Entry& e = entries_.at(key);
  e.solver = solver;
  e.building = false;
  // Budget in fp64-equivalent entries: fp32 storage reports half the
  // bytes, so it charges half the cost of the same fp64 structure.
  e.cost = std::max<EdgeId>(
      1, static_cast<EdgeId>((solver->stored_bytes() + 7) / 8));
  e.last_use = ++tick_;
  {
    const StatsUpdate update(stats_);
    stats_.build_seconds.store(
        stats_.build_seconds.load(std::memory_order_relaxed) + build_seconds,
        std::memory_order_relaxed);
    stats_.resident_entries.fetch_add(static_cast<std::int64_t>(e.cost),
                                      std::memory_order_relaxed);
    stats_.resident_count.fetch_add(1, std::memory_order_relaxed);
    evict_to_budget_locked();
  }
  cv_.notify_all();
  return {std::move(solver), false};
}

void FactorizationCache::evict_to_budget_locked() {
  if (budget_ == 0) return;
  while (stats_.resident_entries.load(std::memory_order_relaxed) >
         static_cast<std::int64_t>(budget_)) {
    // Least-recently-used completed entry — but never the most recent
    // one, so a single over-budget factorization is still cached.
    auto victim = entries_.end();
    std::size_t completed = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.building) continue;
      ++completed;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (completed <= 1 || victim == entries_.end()) return;
    stats_.resident_entries.fetch_sub(
        static_cast<std::int64_t>(victim->second.cost),
        std::memory_order_relaxed);
    stats_.resident_count.fetch_sub(1, std::memory_order_relaxed);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().evictions.add();
    entries_.erase(victim);
  }
}

// GCC spells TSan detection __SANITIZE_THREAD__; clang __has_feature.
#if defined(__SANITIZE_THREAD__)
#define PARLAP_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARLAP_TSAN_BUILD 1
#endif
#endif

FactorizationCache::Stats FactorizationCache::stats() const {
#if defined(PARLAP_TSAN_BUILD)
  // TSan forbids the acquire fence the seqlock read relies on
  // (-Werror=tsan); under the sanitizer, take the writer mutex instead
  // — same torn-free snapshot, just serialized against updates.
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.hits = stats_.hits.load(std::memory_order_relaxed);
  out.misses = stats_.misses.load(std::memory_order_relaxed);
  out.evictions = stats_.evictions.load(std::memory_order_relaxed);
  out.resident_entries = static_cast<EdgeId>(
      stats_.resident_entries.load(std::memory_order_relaxed));
  out.resident_count = static_cast<std::size_t>(
      stats_.resident_count.load(std::memory_order_relaxed));
  out.build_seconds = stats_.build_seconds.load(std::memory_order_relaxed);
  out.single_flight_waits =
      stats_.single_flight_waits.load(std::memory_order_relaxed);
  out.single_flight_wait_seconds =
      stats_.single_flight_wait_seconds.load(std::memory_order_relaxed);
  return out;
#else
  // Seqlock read: no mutex, so a reporting thread can sample stats
  // while workers are mid-batch without serializing against builds.
  // Retry until the generation is even (no writer) and unchanged
  // across the field reads (no writer slipped in) — then every field
  // belongs to one update and cross-field invariants hold.
  while (true) {
    const std::uint64_t g1 = stats_.gen.load(std::memory_order_acquire);
    if ((g1 & 1) != 0) continue;
    Stats out;
    out.hits = stats_.hits.load(std::memory_order_relaxed);
    out.misses = stats_.misses.load(std::memory_order_relaxed);
    out.evictions = stats_.evictions.load(std::memory_order_relaxed);
    out.resident_entries = static_cast<EdgeId>(
        stats_.resident_entries.load(std::memory_order_relaxed));
    out.resident_count = static_cast<std::size_t>(
        stats_.resident_count.load(std::memory_order_relaxed));
    out.build_seconds = stats_.build_seconds.load(std::memory_order_relaxed);
    out.single_flight_waits =
        stats_.single_flight_waits.load(std::memory_order_relaxed);
    out.single_flight_wait_seconds =
        stats_.single_flight_wait_seconds.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (stats_.gen.load(std::memory_order_relaxed) == g1) return out;
  }
#endif
}

}  // namespace parlap::service
