#include "service/factorization_cache.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "support/timer.hpp"

namespace parlap::service {

std::size_t FactorizationKeyHash::operator()(
    const FactorizationKey& k) const {
  std::uint64_t h = k.graph_hash;
  h = fingerprint_mix_string(h, k.method);
  h = fingerprint_mix(h, k.seed);
  // Canonicalize -0.0 before bit-casting: operator== compares doubles
  // numerically, and equal keys must hash equally.
  const double scale = k.split_scale == 0.0 ? 0.0 : k.split_scale;
  h = fingerprint_mix(h, std::bit_cast<std::uint64_t>(scale));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(k.max_iterations)));
  return static_cast<std::size_t>(h);
}

FactorizationCache::FactorizationCache(EdgeId budget_entries)
    : budget_(budget_entries) {}

std::pair<std::shared_ptr<AnySolver>, bool> FactorizationCache::get_or_create(
    const FactorizationKey& key,
    const std::function<std::unique_ptr<AnySolver>()>& factory) {
  std::unique_lock lock(mutex_);
  while (true) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: become the builder
    if (!it->second.building) {
      ++stats_.hits;
      it->second.last_use = ++tick_;
      return {it->second.solver, true};
    }
    // Someone else is factorizing this key; wait for the publication
    // (or for the build to fail, which erases the entry and we retry as
    // the builder).
    cv_.wait(lock);
  }

  ++stats_.misses;
  {
    Entry placeholder;
    placeholder.building = true;
    entries_.emplace(key, std::move(placeholder));
  }
  lock.unlock();

  std::shared_ptr<AnySolver> solver;
  const WallTimer build_timer;
  try {
    solver = factory();
  } catch (...) {
    lock.lock();
    entries_.erase(key);
    cv_.notify_all();
    throw;
  }
  const double build_seconds = build_timer.seconds();

  lock.lock();
  stats_.build_seconds += build_seconds;
  Entry& e = entries_.at(key);
  e.solver = solver;
  e.building = false;
  e.cost = std::max<EdgeId>(1, solver->stored_entries());
  e.last_use = ++tick_;
  stats_.resident_entries += e.cost;
  ++stats_.resident_count;
  evict_to_budget_locked();
  cv_.notify_all();
  return {std::move(solver), false};
}

void FactorizationCache::evict_to_budget_locked() {
  if (budget_ == 0) return;
  while (stats_.resident_entries > budget_) {
    // Least-recently-used completed entry — but never the most recent
    // one, so a single over-budget factorization is still cached.
    auto victim = entries_.end();
    std::size_t completed = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.building) continue;
      ++completed;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (completed <= 1 || victim == entries_.end()) return;
    stats_.resident_entries -= victim->second.cost;
    --stats_.resident_count;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

FactorizationCache::Stats FactorizationCache::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace parlap::service
