// Thin, typed wrappers over OpenMP worksharing.
//
// The paper's model is CREW PRAM; every primitive it uses (independent
// per-edge walks, per-vertex filters, representation conversions) is a
// flat data-parallel loop, which these wrappers express. All call sites
// write to disjoint locations or use explicit reductions, so scheduling
// never affects results.
//
// Nested parallelism: a wrapper invoked from inside an OpenMP parallel
// region (omp_in_parallel()) or under a SerialScope runs its loop
// serially instead of forking a nested team. Service-layer worker pools
// (src/service/solve_engine.hpp) rely on this so N concurrent solves use
// N threads total instead of N * omp_get_max_threads(). Results are
// unaffected: every call site is deterministic across thread counts.
#pragma once

#include <cstdint>
#include <utility>

#include <omp.h>

namespace parlap {

namespace detail {
/// Depth of SerialScope nesting on this thread (0 = parallelism allowed).
inline thread_local int serial_scope_depth = 0;
}  // namespace detail

/// RAII guard that forces the parallel_for / parallel_for_dynamic /
/// parallel_reduce primitives on the *current thread* to run serially for
/// its lifetime. Used by worker pools whose threads each execute an
/// already-parallel workload side by side.
class SerialScope {
 public:
  SerialScope() noexcept { ++detail::serial_scope_depth; }
  ~SerialScope() { --detail::serial_scope_depth; }

  SerialScope(const SerialScope&) = delete;
  SerialScope& operator=(const SerialScope&) = delete;
};

/// Whether the primitives below may fork a parallel region on this
/// thread: false inside an OpenMP parallel region (no oversubscribing
/// nested teams) or under a SerialScope.
[[nodiscard]] inline bool parallelism_allowed() noexcept {
  return detail::serial_scope_depth == 0 && omp_in_parallel() == 0;
}

/// Number of threads OpenMP will use for the next parallel region.
[[nodiscard]] inline int thread_count() { return omp_get_max_threads(); }

/// Runs `fn(i)` for i in [begin, end). Parallel when the range is at least
/// `grain`; serial otherwise (avoids fork overhead on tiny inner loops)
/// and whenever parallelism_allowed() is false (nested regions).
template <typename Index, typename Fn>
void parallel_for(Index begin, Index end, Fn&& fn,
                  std::int64_t grain = 2048) {
  const auto lo = static_cast<std::int64_t>(begin);
  const auto hi = static_cast<std::int64_t>(end);
  if (hi - lo < grain || !parallelism_allowed()) {
    for (std::int64_t i = lo; i < hi; ++i) fn(static_cast<Index>(i));
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = lo; i < hi; ++i) fn(static_cast<Index>(i));
}

/// Like parallel_for but with dynamic scheduling, for irregular work such
/// as random walks whose length varies per iteration.
template <typename Index, typename Fn>
void parallel_for_dynamic(Index begin, Index end, Fn&& fn,
                          std::int64_t grain = 256) {
  const auto lo = static_cast<std::int64_t>(begin);
  const auto hi = static_cast<std::int64_t>(end);
  if (hi - lo < grain || !parallelism_allowed()) {
    for (std::int64_t i = lo; i < hi; ++i) fn(static_cast<Index>(i));
    return;
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = lo; i < hi; ++i) fn(static_cast<Index>(i));
}

/// Map-reduce over [begin, end): accumulates `map(i)` into per-thread
/// accumulators with `combine`, then folds them into `init`.
template <typename T, typename Index, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(Index begin, Index end, T init, Map&& map,
                                Combine&& combine) {
  const auto lo = static_cast<std::int64_t>(begin);
  const auto hi = static_cast<std::int64_t>(end);
  T result = std::move(init);
  if (hi - lo < 2048 || !parallelism_allowed()) {
    for (std::int64_t i = lo; i < hi; ++i)
      result = combine(std::move(result), map(static_cast<Index>(i)));
    return result;
  }
#pragma omp parallel
  {
    T local{};
    bool has_local = false;
#pragma omp for schedule(static) nowait
    for (std::int64_t i = lo; i < hi; ++i) {
      if (!has_local) {
        local = map(static_cast<Index>(i));
        has_local = true;
      } else {
        local = combine(std::move(local), map(static_cast<Index>(i)));
      }
    }
#pragma omp critical(parlap_reduce)
    {
      if (has_local) result = combine(std::move(result), std::move(local));
    }
  }
  return result;
}

}  // namespace parlap
