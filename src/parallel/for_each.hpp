// Thin, typed wrappers over OpenMP worksharing.
//
// The paper's model is CREW PRAM; every primitive it uses (independent
// per-edge walks, per-vertex filters, representation conversions) is a
// flat data-parallel loop, which these wrappers express. All call sites
// write to disjoint locations or use explicit reductions, so scheduling
// never affects results.
#pragma once

#include <cstdint>
#include <utility>

#include <omp.h>

namespace parlap {

/// Number of threads OpenMP will use for the next parallel region.
[[nodiscard]] inline int thread_count() { return omp_get_max_threads(); }

/// Runs `fn(i)` for i in [begin, end). Parallel when the range is at least
/// `grain`; serial otherwise (avoids fork overhead on tiny inner loops).
template <typename Index, typename Fn>
void parallel_for(Index begin, Index end, Fn&& fn,
                  std::int64_t grain = 2048) {
  const auto lo = static_cast<std::int64_t>(begin);
  const auto hi = static_cast<std::int64_t>(end);
  if (hi - lo < grain) {
    for (std::int64_t i = lo; i < hi; ++i) fn(static_cast<Index>(i));
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = lo; i < hi; ++i) fn(static_cast<Index>(i));
}

/// Like parallel_for but with dynamic scheduling, for irregular work such
/// as random walks whose length varies per iteration.
template <typename Index, typename Fn>
void parallel_for_dynamic(Index begin, Index end, Fn&& fn,
                          std::int64_t grain = 256) {
  const auto lo = static_cast<std::int64_t>(begin);
  const auto hi = static_cast<std::int64_t>(end);
  if (hi - lo < grain) {
    for (std::int64_t i = lo; i < hi; ++i) fn(static_cast<Index>(i));
    return;
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = lo; i < hi; ++i) fn(static_cast<Index>(i));
}

/// Map-reduce over [begin, end): accumulates `map(i)` into per-thread
/// accumulators with `combine`, then folds them into `init`.
template <typename T, typename Index, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(Index begin, Index end, T init, Map&& map,
                                Combine&& combine) {
  const auto lo = static_cast<std::int64_t>(begin);
  const auto hi = static_cast<std::int64_t>(end);
  T result = std::move(init);
  if (hi - lo < 2048) {
    for (std::int64_t i = lo; i < hi; ++i)
      result = combine(std::move(result), map(static_cast<Index>(i)));
    return result;
  }
#pragma omp parallel
  {
    T local{};
    bool has_local = false;
#pragma omp for schedule(static) nowait
    for (std::int64_t i = lo; i < hi; ++i) {
      if (!has_local) {
        local = map(static_cast<Index>(i));
        has_local = true;
      } else {
        local = combine(std::move(local), map(static_cast<Index>(i)));
      }
    }
#pragma omp critical(parlap_reduce)
    {
      if (has_local) result = combine(std::move(result), std::move(local));
    }
  }
  return result;
}

}  // namespace parlap
