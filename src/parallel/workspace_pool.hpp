// A checkout pool of reusable scratch objects for concurrent callers.
//
// The factor-once / solve-many classes used to keep one mutable scratch
// buffer per instance, which made two threads solving against the same
// factorization race on it. WorkspacePool replaces that pattern: each
// call checks a workspace out (reusing a previously returned one when
// available, default-constructing otherwise) and returns it on scope
// exit, so concurrent solves each hold private scratch while sequential
// solves still reuse allocations — the property the old member buffers
// were there for.
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace parlap {

/// Mutex-guarded free list of default-constructible workspace objects.
/// acquire() is the only entry point; the returned Lease hands the object
/// back when it dies. Objects are never shrunk or reset between uses —
/// holders are expected to size them to their needs (the existing
/// prepare-workspace idiom).
template <typename T>
class WorkspacePool {
 public:
  /// RAII checkout: dereference to use the workspace; returns it to the
  /// pool on destruction.
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<T> obj) noexcept
        : pool_(pool), obj_(std::move(obj)) {}
    ~Lease() {
      if (obj_) pool_->release(std::move(obj_));
    }

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), obj_(std::move(other.obj_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] T& operator*() const noexcept { return *obj_; }
    [[nodiscard]] T* operator->() const noexcept { return obj_.get(); }
    [[nodiscard]] T* get() const noexcept { return obj_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<T> obj_;
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Checks a workspace out, constructing one if the free list is empty.
  [[nodiscard]] Lease acquire() {
    {
      const std::scoped_lock lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> obj = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(obj));
      }
    }
    return Lease(this, std::make_unique<T>());
  }

  /// Workspaces currently checked in (for tests / introspection).
  [[nodiscard]] std::size_t idle_count() const {
    const std::scoped_lock lock(mutex_);
    return free_.size();
  }

 private:
  void release(std::unique_ptr<T> obj) {
    const std::scoped_lock lock(mutex_);
    free_.push_back(std::move(obj));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;
};

}  // namespace parlap
