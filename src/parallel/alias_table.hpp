// Walker/Vose alias method for weighted random sampling.
//
// This is the library's realization of the parallel weighted sampling
// primitive (Lemma 2.6, [HS19]): O(k) preprocessing per distribution and
// O(1) work per query. Distributions are built independently per vertex in
// parallel; queries draw from caller-supplied counter-based Rng streams so
// sampling is deterministic under any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace parlap {

/// Builds the alias structure for `weights` into `prob`/`alias` (all spans
/// must have equal length >= 1). Zero weights are allowed (never sampled);
/// the total must be positive. Returns the total weight.
double build_alias(std::span<const double> weights, std::span<double> prob,
                   std::span<std::int32_t> alias);

/// Draws an index in [0, prob.size()) with probability proportional to the
/// weights the structure was built from. Uses exactly one u64 and one
/// double from `rng`.
inline std::int32_t sample_alias(std::span<const double> prob,
                                 std::span<const std::int32_t> alias,
                                 Rng& rng) {
  const auto k = static_cast<std::int32_t>(
      rng.next_below(static_cast<std::uint64_t>(prob.size())));
  const double coin = rng.next_double();
  return coin < prob[static_cast<std::size_t>(k)]
             ? k
             : alias[static_cast<std::size_t>(k)];
}

/// Owning convenience wrapper around one distribution.
class AliasTable {
 public:
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::int32_t sample(Rng& rng) const {
    return sample_alias(prob_, alias_, rng);
  }
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] double total_weight() const noexcept { return total_; }

 private:
  std::vector<double> prob_;
  std::vector<std::int32_t> alias_;
  double total_ = 0.0;
};

}  // namespace parlap
