#include "parallel/alias_table.hpp"

#include "support/check.hpp"

namespace parlap {

double build_alias(std::span<const double> weights, std::span<double> prob,
                   std::span<std::int32_t> alias) {
  const auto n = static_cast<std::int32_t>(weights.size());
  PARLAP_CHECK(n >= 1);
  PARLAP_CHECK(prob.size() == weights.size());
  PARLAP_CHECK(alias.size() == weights.size());

  double total = 0.0;
  for (const double w : weights) {
    PARLAP_CHECK_MSG(w >= 0.0, "negative sampling weight " << w);
    total += w;
  }
  PARLAP_CHECK_MSG(total > 0.0, "alias table requires positive total weight");

  // Vose's method: scale to mean 1, split into under-/over-full buckets,
  // pair each under-full bucket with an over-full donor.
  std::vector<double> scaled(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i)
    scaled[static_cast<std::size_t>(i)] =
        weights[static_cast<std::size_t>(i)] * static_cast<double>(n) / total;

  std::vector<std::int32_t> small;
  std::vector<std::int32_t> large;
  small.reserve(static_cast<std::size_t>(n));
  large.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    (scaled[static_cast<std::size_t>(i)] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::int32_t s = small.back();
    small.pop_back();
    const std::int32_t l = large.back();
    prob[static_cast<std::size_t>(s)] = scaled[static_cast<std::size_t>(s)];
    alias[static_cast<std::size_t>(s)] = l;
    scaled[static_cast<std::size_t>(l)] -=
        1.0 - scaled[static_cast<std::size_t>(s)];
    if (scaled[static_cast<std::size_t>(l)] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly full up to rounding.
  for (const std::int32_t l : large) {
    prob[static_cast<std::size_t>(l)] = 1.0;
    alias[static_cast<std::size_t>(l)] = l;
  }
  for (const std::int32_t s : small) {
    prob[static_cast<std::size_t>(s)] = 1.0;
    alias[static_cast<std::size_t>(s)] = s;
  }
  return total;
}

AliasTable::AliasTable(std::span<const double> weights)
    : prob_(weights.size()), alias_(weights.size()) {
  total_ = build_alias(weights, prob_, alias_);
}

}  // namespace parlap
