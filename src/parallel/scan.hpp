// Parallel prefix sums.
//
// Used to turn per-item counts into offsets (CSR construction per
// Lemma 2.7, edge-splitting placement per Lemma 3.2) — the canonical
// O(n) work / O(log n) depth PRAM scan, realized as the standard
// two-pass blocked algorithm on OpenMP.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <omp.h>

namespace parlap {

/// In-place exclusive prefix sum; returns the grand total.
template <typename T>
T exclusive_scan(std::span<T> values, T init = T{}) {
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  if (n < (1 << 14)) {
    T running = init;
    for (std::int64_t i = 0; i < n; ++i) {
      const T v = values[static_cast<std::size_t>(i)];
      values[static_cast<std::size_t>(i)] = running;
      running += v;
    }
    return running;
  }

  const int threads = omp_get_max_threads();
  std::vector<T> block_sum(static_cast<std::size_t>(threads) + 1, T{});
#pragma omp parallel num_threads(threads)
  {
    const int t = omp_get_thread_num();
    const std::int64_t chunk = (n + threads - 1) / threads;
    const std::int64_t lo = t * chunk;
    const std::int64_t hi = lo + chunk < n ? lo + chunk : n;
    T local{};
    for (std::int64_t i = lo; i < hi; ++i) local += values[static_cast<std::size_t>(i)];
    block_sum[static_cast<std::size_t>(t) + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      block_sum[0] = init;
      for (int b = 1; b <= threads; ++b) block_sum[static_cast<std::size_t>(b)] += block_sum[static_cast<std::size_t>(b) - 1];
    }
    T running = block_sum[static_cast<std::size_t>(t)];
    for (std::int64_t i = lo; i < hi; ++i) {
      const T v = values[static_cast<std::size_t>(i)];
      values[static_cast<std::size_t>(i)] = running;
      running += v;
    }
  }
  return block_sum[static_cast<std::size_t>(threads)];
}

/// Builds CSR-style offsets (size counts.size()+1) from per-bucket counts.
template <typename T>
std::vector<T> offsets_from_counts(std::span<const T> counts) {
  std::vector<T> offsets(counts.size() + 1);
  std::copy(counts.begin(), counts.end(), offsets.begin());
  offsets.back() = T{};
  const T total = exclusive_scan(std::span<T>(offsets.data(), counts.size()), T{});
  offsets.back() = total;
  return offsets;
}

}  // namespace parlap
