// Connected-component utilities.
//
// The solver requires connected inputs per component (Fact 2.3: the kernel
// of L is span{1} iff G is connected); the top-level API uses these to
// split a system into independent per-component solves.
#pragma once

#include <vector>

#include "graph/multigraph.hpp"
#include "support/types.hpp"

namespace parlap {

struct Components {
  /// Component label per vertex in [0, count); labels are contiguous and
  /// assigned in order of the smallest vertex id in each component.
  std::vector<Vertex> label;
  Vertex count = 0;

  [[nodiscard]] bool connected() const noexcept { return count <= 1; }
};

/// Union-find with path halving; O(m alpha(n)).
[[nodiscard]] Components connected_components(const Multigraph& g);

[[nodiscard]] bool is_connected(const Multigraph& g);

}  // namespace parlap
