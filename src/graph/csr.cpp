#include "graph/csr.hpp"

#include <algorithm>

#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"

namespace parlap {

namespace {

/// Number of edge chunks used by the stable scatter; capped so the
/// (chunks x n) histogram stays within a fixed memory budget.
int scatter_chunks(Vertex n) {
  const std::int64_t budget_entries = std::int64_t{1} << 25;  // 128 MiB of i32
  const std::int64_t cap = budget_entries / std::max<std::int64_t>(n, 1);
  return static_cast<int>(
      std::clamp<std::int64_t>(cap, 1, thread_count()));
}

}  // namespace

CsrGraph::CsrGraph(const Multigraph& g)
    : n_(g.num_vertices()), m_(g.num_edges()) {
  const EdgeId m = m_;
  const auto nn = static_cast<std::size_t>(n_);
  offsets_.assign(nn + 1, 0);
  nbr_.resize(static_cast<std::size_t>(2 * m));
  wgt_.resize(static_cast<std::size_t>(2 * m));
  eid_.resize(static_cast<std::size_t>(2 * m));

  const int chunks = scatter_chunks(n_);
  const EdgeId chunk_len = (m + chunks - 1) / std::max(chunks, 1);

  // Pass 1: per-chunk histograms of endpoint counts (stable counting sort).
  std::vector<std::int32_t> hist(static_cast<std::size_t>(chunks) * nn, 0);
#pragma omp parallel for schedule(static) num_threads(chunks)
  for (int c = 0; c < chunks; ++c) {
    std::int32_t* local = hist.data() + static_cast<std::size_t>(c) * nn;
    const EdgeId lo = c * chunk_len;
    const EdgeId hi = std::min(m, lo + chunk_len);
    for (EdgeId e = lo; e < hi; ++e) {
      ++local[static_cast<std::size_t>(g.edge_u(e))];
      ++local[static_cast<std::size_t>(g.edge_v(e))];
    }
  }

  // Offsets = scan over total per-vertex counts; per-chunk bases follow by
  // scanning the chunk dimension for each vertex.
  parallel_for(Vertex{0}, n_, [&](Vertex v) {
    EdgeId total = 0;
    for (int c = 0; c < chunks; ++c)
      total += hist[static_cast<std::size_t>(c) * nn + static_cast<std::size_t>(v)];
    offsets_[static_cast<std::size_t>(v)] = total;
  });
  offsets_[nn] = 0;
  exclusive_scan(std::span<EdgeId>(offsets_.data(), nn + 1));

  // Pass 2: deterministic placement. base[c][v] = offsets[v] + counts of
  // chunks before c; each chunk then scatters its edges in order.
  std::vector<EdgeId> base(static_cast<std::size_t>(chunks) * nn);
  parallel_for(Vertex{0}, n_, [&](Vertex v) {
    EdgeId run = offsets_[static_cast<std::size_t>(v)];
    for (int c = 0; c < chunks; ++c) {
      base[static_cast<std::size_t>(c) * nn + static_cast<std::size_t>(v)] = run;
      run += hist[static_cast<std::size_t>(c) * nn + static_cast<std::size_t>(v)];
    }
  });

#pragma omp parallel for schedule(static) num_threads(chunks)
  for (int c = 0; c < chunks; ++c) {
    EdgeId* local = base.data() + static_cast<std::size_t>(c) * nn;
    const EdgeId lo = c * chunk_len;
    const EdgeId hi = std::min(m, lo + chunk_len);
    for (EdgeId e = lo; e < hi; ++e) {
      const Vertex u = g.edge_u(e);
      const Vertex v = g.edge_v(e);
      const Weight w = g.edge_weight(e);
      const auto pu = static_cast<std::size_t>(local[static_cast<std::size_t>(u)]++);
      nbr_[pu] = v;
      wgt_[pu] = w;
      eid_[pu] = e;
      const auto pv = static_cast<std::size_t>(local[static_cast<std::size_t>(v)]++);
      nbr_[pv] = u;
      wgt_[pv] = w;
      eid_[pv] = e;
    }
  }

  // Weighted degrees, summed in (deterministic) adjacency order.
  wdeg_.resize(nn);
  parallel_for(Vertex{0}, n_, [&](Vertex v) {
    Weight sum = 0.0;
    for (const Weight w : weights(v)) sum += w;
    wdeg_[static_cast<std::size_t>(v)] = sum;
  });
}

}  // namespace parlap
