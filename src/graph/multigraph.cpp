#include "graph/multigraph.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "parallel/for_each.hpp"

namespace parlap {

void weighted_degrees_into(MultigraphView g, std::span<Weight> out,
                           std::vector<Weight>& partial_scratch) {
  const Vertex n = g.num_vertices();
  PARLAP_CHECK(out.size() == static_cast<std::size_t>(n));
  const EdgeId m = g.num_edges();
  if (m < (1 << 15)) {
    std::fill(out.begin(), out.end(), 0.0);
    for (EdgeId e = 0; e < m; ++e) {
      out[static_cast<std::size_t>(g.edge_u(e))] += g.edge_weight(e);
      out[static_cast<std::size_t>(g.edge_v(e))] += g.edge_weight(e);
    }
    return;
  }
  // Chunk-major partial arrays reduced per vertex in fixed chunk order:
  // bit-exact for every thread count (the chunk count depends only on the
  // graph, never on the machine). Scratch stays under ~128 MiB.
  const int chunks = std::max(
      1, std::min<int>(32, static_cast<int>((std::int64_t{1} << 24) /
                                            std::max<Vertex>(n, 1))));
  const EdgeId chunk_len = (m + chunks - 1) / chunks;
  partial_scratch.assign(
      static_cast<std::size_t>(chunks) * static_cast<std::size_t>(n), 0.0);
  Weight* partial = partial_scratch.data();
#pragma omp parallel for schedule(static)
  for (int c = 0; c < chunks; ++c) {
    Weight* local =
        partial + static_cast<std::size_t>(c) * static_cast<std::size_t>(n);
    const EdgeId lo = c * chunk_len;
    const EdgeId hi = std::min(m, lo + chunk_len);
    for (EdgeId e = lo; e < hi; ++e) {
      local[static_cast<std::size_t>(g.edge_u(e))] += g.edge_weight(e);
      local[static_cast<std::size_t>(g.edge_v(e))] += g.edge_weight(e);
    }
  }
  parallel_for(Vertex{0}, n, [&](Vertex v) {
    Weight sum = 0.0;
    for (int c = 0; c < chunks; ++c) {
      sum += partial[static_cast<std::size_t>(c) * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(v)];
    }
    out[static_cast<std::size_t>(v)] = sum;
  });
}

void weighted_degrees_into(MultigraphView g, std::span<Weight> out) {
  std::vector<Weight> partial_scratch;
  weighted_degrees_into(g, out, partial_scratch);
}

std::vector<Weight> weighted_degrees(MultigraphView g) {
  std::vector<Weight> degree(static_cast<std::size_t>(g.num_vertices()), 0.0);
  weighted_degrees_into(g, degree);
  return degree;
}

std::vector<Weight> Multigraph::weighted_degrees() const {
  return parlap::weighted_degrees(view());
}

Weight Multigraph::total_weight() const {
  // Serial-order partial sums (see vector_ops deterministic_sum): chunked
  // for parallelism but bit-identical at any thread count.
  const EdgeId m = num_edges();
  constexpr EdgeId kChunk = 1 << 14;
  const EdgeId chunks = (m + kChunk - 1) / kChunk;
  std::vector<Weight> partial(static_cast<std::size_t>(chunks), 0.0);
  parallel_for(EdgeId{0}, chunks, [&](EdgeId c) {
    const EdgeId lo = c * kChunk;
    const EdgeId hi = std::min(m, lo + kChunk);
    Weight s = 0.0;
    for (EdgeId e = lo; e < hi; ++e) s += edge_weight(e);
    partial[static_cast<std::size_t>(c)] = s;
  });
  Weight total = 0.0;
  for (const Weight p : partial) total += p;
  return total;
}

void Multigraph::validate() const {
  const EdgeId m = num_edges();
  std::atomic<bool> ok{true};
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    const Vertex u = edge_u(e);
    const Vertex v = edge_v(e);
    const Weight w = edge_weight(e);
    if (u < 0 || u >= n_ || v < 0 || v >= n_ || u == v || !(w > 0.0) ||
        !std::isfinite(w)) {
      ok.store(false, std::memory_order_relaxed);
    }
  });
  PARLAP_CHECK_MSG(ok.load(), "multigraph failed validation (range, "
                              "self-loop, or weight positivity)");
}

}  // namespace parlap
