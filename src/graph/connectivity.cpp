#include "graph/connectivity.hpp"

#include <algorithm>
#include <numeric>

namespace parlap {

namespace {

Vertex find_root(std::vector<Vertex>& parent, Vertex x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    // Path halving keeps the tree shallow without recursion.
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

}  // namespace

Components connected_components(const Multigraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), Vertex{0});

  const EdgeId m = g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    const Vertex ru = find_root(parent, g.edge_u(e));
    const Vertex rv = find_root(parent, g.edge_v(e));
    if (ru != rv) parent[static_cast<std::size_t>(std::max(ru, rv))] = std::min(ru, rv);
  }

  Components comps;
  comps.label.assign(static_cast<std::size_t>(n), kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) {
    const Vertex root = find_root(parent, v);
    if (comps.label[static_cast<std::size_t>(root)] == kInvalidVertex) {
      comps.label[static_cast<std::size_t>(root)] = comps.count++;
    }
    comps.label[static_cast<std::size_t>(v)] =
        comps.label[static_cast<std::size_t>(root)];
  }
  return comps;
}

bool is_connected(const Multigraph& g) {
  if (g.num_vertices() <= 1) return true;
  return connected_components(g).connected();
}

}  // namespace parlap
