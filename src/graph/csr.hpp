// Compressed adjacency representation of a multi-graph.
//
// Conversion between edge-list and adjacency-list representations is the
// paper's Lemma 2.7 ([BM10]): O(m) work, O(log m) depth. We realize it as a
// stable parallel counting sort (per-thread histograms + prefix scan), so
// adjacency order — and therefore everything sampled through per-vertex
// alias tables — is independent of the thread count.
#pragma once

#include <span>
#include <vector>

#include "graph/multigraph.hpp"
#include "support/types.hpp"

namespace parlap {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds the adjacency structure of `g`. Each undirected multi-edge
  /// (u, v) appears once in u's list and once in v's list.
  explicit CsrGraph(const Multigraph& g);

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept { return m_; }

  /// Number of incident multi-edge endpoints at `v` (its multi-degree).
  [[nodiscard]] EdgeId degree(Vertex v) const {
    return offsets_[static_cast<std::size_t>(v) + 1] -
           offsets_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] EdgeId offset(Vertex v) const {
    return offsets_[static_cast<std::size_t>(v)];
  }

  /// Neighbors of v, aligned with weights(v) and edge_ids(v).
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return {nbr_.data() + offset(v), static_cast<std::size_t>(degree(v))};
  }
  [[nodiscard]] std::span<const Weight> weights(Vertex v) const {
    return {wgt_.data() + offset(v), static_cast<std::size_t>(degree(v))};
  }
  /// Multigraph edge id of each incidence (for walk bookkeeping).
  [[nodiscard]] std::span<const EdgeId> edge_ids(Vertex v) const {
    return {eid_.data() + offset(v), static_cast<std::size_t>(degree(v))};
  }

  /// Weighted degree w(v), computed once at construction (deterministic:
  /// summed in adjacency order).
  [[nodiscard]] Weight weighted_degree(Vertex v) const {
    return wdeg_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::span<const Weight> weighted_degrees() const noexcept {
    return wdeg_;
  }

  [[nodiscard]] std::span<const EdgeId> offsets() const noexcept {
    return offsets_;
  }

 private:
  Vertex n_ = 0;
  EdgeId m_ = 0;
  std::vector<EdgeId> offsets_;  // size n+1
  std::vector<Vertex> nbr_;      // size 2m
  std::vector<Weight> wgt_;      // size 2m
  std::vector<EdgeId> eid_;      // size 2m
  std::vector<Weight> wdeg_;     // size n
};

}  // namespace parlap
