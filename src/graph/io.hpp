// Plain-text edge-list serialization ("u v w" lines, '#' comments).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/multigraph.hpp"

namespace parlap {

/// Writes `g` as a header line `# parlap-graph <n> <m>` followed by one
/// `u v w` line per multi-edge.
void write_edge_list(std::ostream& os, const Multigraph& g);
void write_edge_list_file(const std::string& path, const Multigraph& g);

/// Reads the format produced by write_edge_list. Also accepts headerless
/// files (vertex count inferred as max id + 1, weights default to 1).
[[nodiscard]] Multigraph read_edge_list(std::istream& is);
[[nodiscard]] Multigraph read_edge_list_file(const std::string& path);

}  // namespace parlap
