// Weighted undirected multi-graph, the object the paper's algorithms are
// written against (§2: "we have written our algorithms completely with
// respect to the multi-graphs instead of matrices").
//
// Storage is struct-of-arrays over multi-edges; parallel producers size the
// edge arrays up front and write disjoint slots.
#pragma once

#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace parlap {

class Multigraph {
 public:
  Multigraph() = default;
  explicit Multigraph(Vertex num_vertices) : n_(num_vertices) {
    PARLAP_CHECK(num_vertices >= 0);
  }

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(u_.size());
  }

  /// Appends one multi-edge. Self-loops are rejected: they contribute
  /// nothing to a Laplacian and the walk algorithms assume their absence.
  void add_edge(Vertex u, Vertex v, Weight w) {
    PARLAP_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
    PARLAP_CHECK_MSG(u != v, "self-loop at vertex " << u);
    PARLAP_CHECK_MSG(w > 0.0, "non-positive edge weight " << w);
    u_.push_back(u);
    v_.push_back(v);
    w_.push_back(w);
  }

  void reserve_edges(EdgeId m) {
    u_.reserve(static_cast<std::size_t>(m));
    v_.reserve(static_cast<std::size_t>(m));
    w_.reserve(static_cast<std::size_t>(m));
  }

  /// Resizes the edge arrays so parallel producers can fill disjoint slots
  /// through set_edge(). Slots must all be written before use.
  void resize_edges(EdgeId m) {
    u_.resize(static_cast<std::size_t>(m));
    v_.resize(static_cast<std::size_t>(m));
    w_.resize(static_cast<std::size_t>(m));
  }

  void set_edge(EdgeId e, Vertex u, Vertex v, Weight w) {
    PARLAP_DCHECK(e >= 0 && e < num_edges());
    PARLAP_DCHECK(u != v);
    const auto i = static_cast<std::size_t>(e);
    u_[i] = u;
    v_[i] = v;
    w_[i] = w;
  }

  [[nodiscard]] Vertex edge_u(EdgeId e) const {
    return u_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Vertex edge_v(EdgeId e) const {
    return v_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Weight edge_weight(EdgeId e) const {
    return w_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] std::span<const Vertex> us() const noexcept { return u_; }
  [[nodiscard]] std::span<const Vertex> vs() const noexcept { return v_; }
  [[nodiscard]] std::span<const Weight> ws() const noexcept { return w_; }

  /// Weighted degree w(u) = sum of incident multi-edge weights (parallel).
  [[nodiscard]] std::vector<Weight> weighted_degrees() const;

  /// Sum of all multi-edge weights (parallel reduction).
  [[nodiscard]] Weight total_weight() const;

  /// Throws unless all endpoints are in range, weights positive and finite,
  /// and no self-loops are present. Intended for API boundaries.
  void validate() const;

 private:
  Vertex n_ = 0;
  std::vector<Vertex> u_;
  std::vector<Vertex> v_;
  std::vector<Weight> w_;
};

}  // namespace parlap
