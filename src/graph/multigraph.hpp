// Weighted undirected multi-graph, the object the paper's algorithms are
// written against (§2: "we have written our algorithms completely with
// respect to the multi-graphs instead of matrices").
//
// Storage is struct-of-arrays over multi-edges; parallel producers size the
// edge arrays up front and write disjoint slots.
//
// MultigraphView is the non-owning companion: the same read surface over
// edge arrays owned by someone else (a Multigraph, or a ChainBuildArena
// level buffer). The chain-construction pipeline is written against views,
// so intermediate levels never have to be materialized as fresh owning
// graphs. Multigraph::adopt() closes the loop in the other direction:
// buffers produced into caller-owned vectors become an owning graph by
// move, never by copy.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace parlap {

class Multigraph;

/// Non-owning view of a multigraph's edge arrays. Cheap to copy; valid
/// only while the owner of the underlying arrays is. Every read-only
/// algorithm in the chain-construction pipeline takes this (a Multigraph
/// converts implicitly).
class MultigraphView {
 public:
  MultigraphView() = default;
  MultigraphView(Vertex num_vertices, std::span<const Vertex> u,
                 std::span<const Vertex> v, std::span<const Weight> w)
      : n_(num_vertices), u_(u), v_(v), w_(w) {
    PARLAP_DCHECK(u_.size() == v_.size() && v_.size() == w_.size());
  }
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit view
  MultigraphView(const Multigraph& g);

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(u_.size());
  }

  [[nodiscard]] Vertex edge_u(EdgeId e) const {
    return u_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Vertex edge_v(EdgeId e) const {
    return v_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Weight edge_weight(EdgeId e) const {
    return w_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] std::span<const Vertex> us() const noexcept { return u_; }
  [[nodiscard]] std::span<const Vertex> vs() const noexcept { return v_; }
  [[nodiscard]] std::span<const Weight> ws() const noexcept { return w_; }

 private:
  Vertex n_ = 0;
  std::span<const Vertex> u_;
  std::span<const Vertex> v_;
  std::span<const Weight> w_;
};

class Multigraph {
 public:
  Multigraph() = default;
  explicit Multigraph(Vertex num_vertices) : n_(num_vertices) {
    PARLAP_CHECK(num_vertices >= 0);
  }

  /// Takes ownership of already-built edge arrays without copying (the
  /// buffer-adoption path: producers fill plain vectors — possibly
  /// recycled arena storage — and hand them over by move). The three
  /// vectors must have equal sizes; contents are validated only in debug
  /// builds (same contract as set_edge).
  [[nodiscard]] static Multigraph adopt(Vertex num_vertices,
                                        std::vector<Vertex>&& u,
                                        std::vector<Vertex>&& v,
                                        std::vector<Weight>&& w) {
    PARLAP_CHECK(num_vertices >= 0);
    PARLAP_CHECK(u.size() == v.size() && v.size() == w.size());
    Multigraph g(num_vertices);
    g.u_ = std::move(u);
    g.v_ = std::move(v);
    g.w_ = std::move(w);
    return g;
  }

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(u_.size());
  }

  /// Appends one multi-edge. Self-loops are rejected: they contribute
  /// nothing to a Laplacian and the walk algorithms assume their absence.
  void add_edge(Vertex u, Vertex v, Weight w) {
    PARLAP_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
    PARLAP_CHECK_MSG(u != v, "self-loop at vertex " << u);
    PARLAP_CHECK_MSG(w > 0.0, "non-positive edge weight " << w);
    u_.push_back(u);
    v_.push_back(v);
    w_.push_back(w);
  }

  void reserve_edges(EdgeId m) {
    u_.reserve(static_cast<std::size_t>(m));
    v_.reserve(static_cast<std::size_t>(m));
    w_.reserve(static_cast<std::size_t>(m));
  }

  /// Resizes the edge arrays so parallel producers can fill disjoint slots
  /// through set_edge(). Slots must all be written before use.
  void resize_edges(EdgeId m) {
    u_.resize(static_cast<std::size_t>(m));
    v_.resize(static_cast<std::size_t>(m));
    w_.resize(static_cast<std::size_t>(m));
  }

  void set_edge(EdgeId e, Vertex u, Vertex v, Weight w) {
    PARLAP_DCHECK(e >= 0 && e < num_edges());
    PARLAP_DCHECK(u != v);
    const auto i = static_cast<std::size_t>(e);
    u_[i] = u;
    v_[i] = v;
    w_[i] = w;
  }

  [[nodiscard]] Vertex edge_u(EdgeId e) const {
    return u_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Vertex edge_v(EdgeId e) const {
    return v_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Weight edge_weight(EdgeId e) const {
    return w_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] std::span<const Vertex> us() const noexcept { return u_; }
  [[nodiscard]] std::span<const Vertex> vs() const noexcept { return v_; }
  [[nodiscard]] std::span<const Weight> ws() const noexcept { return w_; }

  [[nodiscard]] MultigraphView view() const noexcept {
    return MultigraphView(n_, u_, v_, w_);
  }

  /// Weighted degree w(u) = sum of incident multi-edge weights (parallel).
  [[nodiscard]] std::vector<Weight> weighted_degrees() const;

  /// Sum of all multi-edge weights (parallel reduction).
  [[nodiscard]] Weight total_weight() const;

  /// Throws unless all endpoints are in range, weights positive and finite,
  /// and no self-loops are present. Intended for API boundaries.
  void validate() const;

 private:
  Vertex n_ = 0;
  std::vector<Vertex> u_;
  std::vector<Vertex> v_;
  std::vector<Weight> w_;
};

inline MultigraphView::MultigraphView(const Multigraph& g)
    : MultigraphView(g.num_vertices(), g.us(), g.vs(), g.ws()) {}

/// Weighted degrees of a view, written into caller storage (`out` must
/// have size num_vertices). Bit-identical for every thread count; the
/// zero-allocation core the arena-backed chain build runs per level.
/// `partial_scratch` holds the chunk-local accumulation array (grown to
/// its high-water mark, recycled across calls).
void weighted_degrees_into(MultigraphView g, std::span<Weight> out,
                           std::vector<Weight>& partial_scratch);

/// Convenience overload with call-local chunk scratch (allocates for
/// graphs above the serial cutoff).
void weighted_degrees_into(MultigraphView g, std::span<Weight> out);

/// Allocating convenience over weighted_degrees_into.
[[nodiscard]] std::vector<Weight> weighted_degrees(MultigraphView g);

}  // namespace parlap
