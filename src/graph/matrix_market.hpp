// Matrix Market (.mtx) interop — the exchange format of the sparse-matrix
// world (SuiteSparse collection, SDD solver benchmarks).
//
// Graphs are read from `matrix coordinate real/integer/pattern symmetric`
// files: each off-diagonal entry (i, j, w) becomes an edge; diagonal
// entries are ignored for adjacency input and checked-and-dropped for
// Laplacian input (where off-diagonals carry -w). Duplicate entries are
// kept as multi-edges; `general` symmetry is accepted when both triangles
// agree (each unordered pair read once).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/multigraph.hpp"

namespace parlap {

enum class MatrixMarketKind {
  kAdjacency,  ///< entries are edge weights (must be positive)
  kLaplacian,  ///< entries are Laplacian values (off-diagonal <= 0)
};

[[nodiscard]] Multigraph read_matrix_market(
    std::istream& is, MatrixMarketKind kind = MatrixMarketKind::kAdjacency);
[[nodiscard]] Multigraph read_matrix_market_file(
    const std::string& path,
    MatrixMarketKind kind = MatrixMarketKind::kAdjacency);

/// Writes the adjacency of `g` as `matrix coordinate real symmetric`
/// (1-based, lower triangle), one entry per multi-edge.
void write_matrix_market(std::ostream& os, const Multigraph& g);
void write_matrix_market_file(const std::string& path, const Multigraph& g);

}  // namespace parlap
