#include "graph/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "support/check.hpp"

namespace parlap {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Multigraph read_matrix_market(std::istream& is, MatrixMarketKind kind) {
  std::string line;
  PARLAP_CHECK_MSG(std::getline(is, line), "empty MatrixMarket stream");
  std::istringstream banner(to_lower(line));
  std::string magic, object, format, field, symmetry;
  banner >> magic >> object >> format >> field >> symmetry;
  PARLAP_CHECK_MSG(magic == "%%matrixmarket", "missing %%MatrixMarket banner");
  PARLAP_CHECK_MSG(object == "matrix" && format == "coordinate",
                   "only 'matrix coordinate' files are supported");
  PARLAP_CHECK_MSG(field == "real" || field == "integer" || field == "pattern",
                   "unsupported field type: " << field);
  PARLAP_CHECK_MSG(symmetry == "symmetric" || symmetry == "general",
                   "unsupported symmetry: " << symmetry);
  const bool pattern = field == "pattern";

  // Skip comments, read the size line.
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long rows = 0, cols = 0;
  long long entries = 0;
  size_line >> rows >> cols >> entries;
  PARLAP_CHECK_MSG(!size_line.fail(), "malformed size line: " << line);
  PARLAP_CHECK_MSG(rows == cols, "graph matrices must be square");
  PARLAP_CHECK_MSG(rows <= std::numeric_limits<Vertex>::max(),
                   "matrix too large for 32-bit vertex ids");

  Multigraph g(static_cast<Vertex>(rows));
  g.reserve_edges(entries);
  for (long long k = 0; k < entries; ++k) {
    PARLAP_CHECK_MSG(std::getline(is, line), "unexpected EOF at entry " << k);
    if (line.empty() || line[0] == '%') {
      --k;
      continue;
    }
    std::istringstream row(line);
    long i = 0, j = 0;
    double w = 1.0;
    row >> i >> j;
    if (!pattern) row >> w;
    PARLAP_CHECK_MSG(!row.fail(), "malformed entry: " << line);
    PARLAP_CHECK(i >= 1 && i <= rows && j >= 1 && j <= rows);
    if (i == j) continue;  // diagonal carries no graph edge
    if (kind == MatrixMarketKind::kLaplacian) {
      PARLAP_CHECK_MSG(w <= 0.0,
                       "Laplacian off-diagonal must be <= 0, got " << w);
      w = -w;
    }
    if (w == 0.0) continue;
    PARLAP_CHECK_MSG(w > 0.0, "adjacency weights must be positive, got " << w);
    g.add_edge(static_cast<Vertex>(i - 1), static_cast<Vertex>(j - 1), w);
  }
  return g;
}

Multigraph read_matrix_market_file(const std::string& path,
                                   MatrixMarketKind kind) {
  std::ifstream is(path);
  PARLAP_CHECK_MSG(is.good(), "cannot open " << path);
  return read_matrix_market(is, kind);
}

void write_matrix_market(std::ostream& os, const Multigraph& g) {
  os << "%%MatrixMarket matrix coordinate real symmetric\n";
  os << "% written by parlap\n";
  os << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges()
     << '\n';
  os.precision(std::numeric_limits<double>::max_digits10);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    // Lower triangle: row >= col, 1-based.
    const Vertex u = std::max(g.edge_u(e), g.edge_v(e));
    const Vertex v = std::min(g.edge_u(e), g.edge_v(e));
    os << u + 1 << ' ' << v + 1 << ' ' << g.edge_weight(e) << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const Multigraph& g) {
  std::ofstream os(path);
  PARLAP_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_matrix_market(os, g);
}

}  // namespace parlap
