#include "graph/fingerprint.hpp"

#include <bit>

#include "support/rng.hpp"

namespace parlap {

std::uint64_t fingerprint_mix(std::uint64_t h, std::uint64_t word) noexcept {
  // splitmix64 finalizer over an accumulate-and-rotate chain: cheap, and
  // every input bit diffuses into every output bit.
  h ^= splitmix64(word + 0x9E3779B97F4A7C15ull);
  return (h << 27 | h >> 37) * 0x2545F4914F6CDD1Dull;
}

std::uint64_t fingerprint_mix_string(std::uint64_t h,
                                     std::string_view s) noexcept {
  for (const char c : s) {
    h = fingerprint_mix(h, static_cast<std::uint64_t>(
                               static_cast<unsigned char>(c)));
  }
  // Length guards against concatenation ambiguity across several folds.
  return fingerprint_mix(h, static_cast<std::uint64_t>(s.size()));
}

std::uint64_t graph_fingerprint(const Multigraph& g) {
  std::uint64_t h = 0x70617268'67726168ull;  // arbitrary fixed basis
  h = fingerprint_mix(h, static_cast<std::uint64_t>(g.num_vertices()));
  const EdgeId m = g.num_edges();
  h = fingerprint_mix(h, static_cast<std::uint64_t>(m));
  for (EdgeId e = 0; e < m; ++e) {
    h = fingerprint_mix(h, static_cast<std::uint64_t>(g.edge_u(e)));
    h = fingerprint_mix(h, static_cast<std::uint64_t>(g.edge_v(e)));
    h = fingerprint_mix(h, std::bit_cast<std::uint64_t>(g.edge_weight(e)));
  }
  return h == 0 ? 1 : h;
}

}  // namespace parlap
