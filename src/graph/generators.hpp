// Deterministic graph generators for tests, examples, and the bench harness.
//
// Families cover the regimes the paper's analysis distinguishes: sparse
// bounded-degree (grids, regular), dense (complete, dense Gnm — where
// Theorem 1.2's leverage splitting should win), heavy-tailed (RMAT), and
// adversarial conductance (barbell — slow-mixing walks).
#pragma once

#include <cstdint>

#include "graph/multigraph.hpp"

namespace parlap {

/// Edge-weight distribution applied deterministically per edge index.
struct WeightModel {
  enum class Kind { kUnit, kUniform, kPowerLaw };

  Kind kind = Kind::kUnit;
  double lo = 1.0;
  double hi = 1.0;
  double exponent = 2.5;  // density ~ w^-exponent on [lo, hi]

  static WeightModel unit() { return {}; }
  static WeightModel uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi, 0.0};
  }
  static WeightModel power_law(double lo, double hi, double exponent) {
    return {Kind::kPowerLaw, lo, hi, exponent};
  }
};

/// Re-draws every edge weight from `model`; keyed by (seed, edge index).
void apply_weights(Multigraph& g, const WeightModel& model,
                   std::uint64_t seed);

Multigraph make_path(Vertex n);
Multigraph make_cycle(Vertex n);
Multigraph make_grid2d(Vertex nx, Vertex ny);
Multigraph make_grid3d(Vertex nx, Vertex ny, Vertex nz);
Multigraph make_complete(Vertex n);
Multigraph make_star(Vertex n);
/// Complete binary tree on n vertices (vertex 0 the root).
Multigraph make_binary_tree(Vertex n);
/// Two k-cliques joined by a path with `path_len` interior vertices.
Multigraph make_barbell(Vertex clique_size, Vertex path_len);

/// G(n, m): m edges drawn uniformly (multi-edges collapse is NOT applied;
/// duplicates are legal multi-edges). If `ensure_connected`, a random
/// Hamiltonian path is overlaid first and m-(n-1) random edges follow.
Multigraph make_erdos_renyi(Vertex n, EdgeId m, std::uint64_t seed,
                            bool ensure_connected = true);

/// Random d-regular multigraph as a superposition of random Hamiltonian
/// cycles (d even) plus one random perfect matching (d odd; n must be
/// even). Connected with overwhelming probability for d >= 3.
Multigraph make_random_regular(Vertex n, int d, std::uint64_t seed);

/// RMAT power-law generator (Chakrabarti et al.): n = 2^scale vertices,
/// m edges, quadrant probabilities (a, b, c, 1-a-b-c). Self-loops are
/// rejected and resampled. If `ensure_connected`, overlays a random path.
Multigraph make_rmat(int scale, EdgeId m, std::uint64_t seed, double a = 0.57,
                     double b = 0.19, double c = 0.19,
                     bool ensure_connected = true);

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its k nearest neighbors (k even, k < n), then the far
/// endpoint of every lattice edge is rewired with probability beta to a
/// uniform random vertex (self-loops resampled; duplicate edges are
/// legal multi-edges). beta = 0 is the pure lattice, beta = 1 is
/// near-random; small beta gives the high-clustering / low-diameter
/// regime — a workload profile (local structure plus long-range
/// shortcuts) none of the other families covers. Always m = n k / 2
/// edges; connected for beta = 0, and with overwhelming probability for
/// k >= 4 at practical beta.
Multigraph make_watts_strogatz(Vertex n, int k, double beta,
                               std::uint64_t seed);

}  // namespace parlap
