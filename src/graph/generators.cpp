#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "parallel/for_each.hpp"
#include "support/rng.hpp"

namespace parlap {

namespace {

double draw_weight(const WeightModel& model, Rng& rng) {
  switch (model.kind) {
    case WeightModel::Kind::kUnit:
      return 1.0;
    case WeightModel::Kind::kUniform:
      return rng.next_in(model.lo, model.hi);
    case WeightModel::Kind::kPowerLaw: {
      // Inverse-CDF sampling of density ~ x^-a truncated to [lo, hi].
      const double a = model.exponent;
      const double u = rng.next_double();
      if (std::abs(a - 1.0) < 1e-12) {
        return model.lo * std::pow(model.hi / model.lo, u);
      }
      const double p = 1.0 - a;
      const double lo_p = std::pow(model.lo, p);
      const double hi_p = std::pow(model.hi, p);
      return std::pow(lo_p + u * (hi_p - lo_p), 1.0 / p);
    }
  }
  return 1.0;
}

/// Fisher-Yates permutation of 0..n-1 from a dedicated stream.
std::vector<Vertex> random_permutation(Vertex n, std::uint64_t seed,
                                       std::uint64_t stream) {
  std::vector<Vertex> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), Vertex{0});
  Rng rng(seed, RngTag::kGraphGen, stream);
  for (Vertex i = n - 1; i > 0; --i) {
    const auto j = static_cast<Vertex>(
        rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

}  // namespace

void apply_weights(Multigraph& g, const WeightModel& model,
                   std::uint64_t seed) {
  const EdgeId m = g.num_edges();
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    Rng rng(seed, RngTag::kGraphGen, 0x77656967 ^ static_cast<std::uint64_t>(e));
    g.set_edge(e, g.edge_u(e), g.edge_v(e), draw_weight(model, rng));
  });
}

Multigraph make_path(Vertex n) {
  PARLAP_CHECK(n >= 1);
  Multigraph g(n);
  g.reserve_edges(n - 1);
  for (Vertex i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 1.0);
  return g;
}

Multigraph make_cycle(Vertex n) {
  PARLAP_CHECK(n >= 3);
  Multigraph g = make_path(n);
  g.add_edge(n - 1, 0, 1.0);
  return g;
}

Multigraph make_grid2d(Vertex nx, Vertex ny) {
  PARLAP_CHECK(nx >= 1 && ny >= 1);
  const Vertex n = nx * ny;
  Multigraph g(n);
  const EdgeId m = static_cast<EdgeId>(nx - 1) * ny + static_cast<EdgeId>(ny - 1) * nx;
  g.resize_edges(m);
  // Horizontal edges first, then vertical; both blocks filled in parallel.
  const EdgeId horizontal = static_cast<EdgeId>(nx - 1) * ny;
  parallel_for(EdgeId{0}, horizontal, [&](EdgeId e) {
    const Vertex row = static_cast<Vertex>(e / (nx - 1));
    const Vertex col = static_cast<Vertex>(e % (nx - 1));
    const Vertex a = row * nx + col;
    g.set_edge(e, a, a + 1, 1.0);
  });
  parallel_for(EdgeId{0}, m - horizontal, [&](EdgeId e) {
    const Vertex row = static_cast<Vertex>(e / nx);
    const Vertex col = static_cast<Vertex>(e % nx);
    const Vertex a = row * nx + col;
    g.set_edge(horizontal + e, a, a + nx, 1.0);
  });
  return g;
}

Multigraph make_grid3d(Vertex nx, Vertex ny, Vertex nz) {
  PARLAP_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  const Vertex n = nx * ny * nz;
  Multigraph g(n);
  g.reserve_edges(static_cast<EdgeId>(nx - 1) * ny * nz +
                  static_cast<EdgeId>(ny - 1) * nx * nz +
                  static_cast<EdgeId>(nz - 1) * nx * ny);
  auto id = [&](Vertex x, Vertex y, Vertex z) { return (z * ny + y) * nx + x; };
  for (Vertex z = 0; z < nz; ++z)
    for (Vertex y = 0; y < ny; ++y)
      for (Vertex x = 0; x < nx; ++x) {
        if (x + 1 < nx) g.add_edge(id(x, y, z), id(x + 1, y, z), 1.0);
        if (y + 1 < ny) g.add_edge(id(x, y, z), id(x, y + 1, z), 1.0);
        if (z + 1 < nz) g.add_edge(id(x, y, z), id(x, y, z + 1), 1.0);
      }
  return g;
}

Multigraph make_complete(Vertex n) {
  PARLAP_CHECK(n >= 2);
  Multigraph g(n);
  g.reserve_edges(static_cast<EdgeId>(n) * (n - 1) / 2);
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j) g.add_edge(i, j, 1.0);
  return g;
}

Multigraph make_star(Vertex n) {
  PARLAP_CHECK(n >= 2);
  Multigraph g(n);
  g.reserve_edges(n - 1);
  for (Vertex i = 1; i < n; ++i) g.add_edge(0, i, 1.0);
  return g;
}

Multigraph make_binary_tree(Vertex n) {
  PARLAP_CHECK(n >= 1);
  Multigraph g(n);
  g.reserve_edges(n - 1);
  for (Vertex i = 1; i < n; ++i) g.add_edge(i, (i - 1) / 2, 1.0);
  return g;
}

Multigraph make_barbell(Vertex clique_size, Vertex path_len) {
  PARLAP_CHECK(clique_size >= 2);
  PARLAP_CHECK(path_len >= 0);
  const Vertex n = 2 * clique_size + path_len;
  Multigraph g(n);
  g.reserve_edges(static_cast<EdgeId>(clique_size) * (clique_size - 1) +
                  path_len + 1);
  auto add_clique = [&](Vertex base) {
    for (Vertex i = 0; i < clique_size; ++i)
      for (Vertex j = i + 1; j < clique_size; ++j)
        g.add_edge(base + i, base + j, 1.0);
  };
  add_clique(0);
  add_clique(clique_size + path_len);
  // Path from vertex clique_size-1 through the bridge to the second clique.
  Vertex prev = clique_size - 1;
  for (Vertex i = 0; i < path_len; ++i) {
    g.add_edge(prev, clique_size + i, 1.0);
    prev = clique_size + i;
  }
  g.add_edge(prev, clique_size + path_len, 1.0);
  return g;
}

Multigraph make_erdos_renyi(Vertex n, EdgeId m, std::uint64_t seed,
                            bool ensure_connected) {
  PARLAP_CHECK(n >= 2);
  PARLAP_CHECK(m >= (ensure_connected ? n - 1 : 0));
  Multigraph g(n);
  g.resize_edges(m);
  EdgeId base = 0;
  if (ensure_connected) {
    const std::vector<Vertex> perm = random_permutation(n, seed, /*stream=*/1);
    base = n - 1;
    parallel_for(EdgeId{0}, base, [&](EdgeId e) {
      g.set_edge(e, perm[static_cast<std::size_t>(e)],
                 perm[static_cast<std::size_t>(e) + 1], 1.0);
    });
  }
  parallel_for(base, m, [&](EdgeId e) {
    Rng rng(seed, RngTag::kGraphGen, 0x676E6D00 ^ static_cast<std::uint64_t>(e));
    while (true) {
      const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      g.set_edge(e, u, v, 1.0);
      return;
    }
  });
  return g;
}

Multigraph make_random_regular(Vertex n, int d, std::uint64_t seed) {
  PARLAP_CHECK(n >= 3);
  PARLAP_CHECK(d >= 1);
  PARLAP_CHECK_MSG(d % 2 == 0 || n % 2 == 0,
                   "odd degree requires an even vertex count");
  Multigraph g(n);
  g.reserve_edges(static_cast<EdgeId>(n) * d / 2);
  // Even part: d/2 random Hamiltonian cycles (no self-loops possible).
  for (int c = 0; c < d / 2; ++c) {
    const std::vector<Vertex> perm =
        random_permutation(n, seed, 0x63796300u + static_cast<std::uint64_t>(c));
    for (Vertex i = 0; i < n; ++i) {
      g.add_edge(perm[static_cast<std::size_t>(i)],
                 perm[static_cast<std::size_t>((i + 1) % n)], 1.0);
    }
  }
  // Odd part: one random perfect matching.
  if (d % 2 == 1) {
    const std::vector<Vertex> perm = random_permutation(n, seed, 0x6D617463u);
    for (Vertex i = 0; i < n; i += 2) {
      g.add_edge(perm[static_cast<std::size_t>(i)],
                 perm[static_cast<std::size_t>(i) + 1], 1.0);
    }
  }
  return g;
}

Multigraph make_watts_strogatz(Vertex n, int k, double beta,
                               std::uint64_t seed) {
  PARLAP_CHECK(n >= 3);
  PARLAP_CHECK_MSG(k >= 2 && k % 2 == 0,
                   "Watts-Strogatz degree k must be even and >= 2, got " << k);
  PARLAP_CHECK_MSG(static_cast<Vertex>(k) < n,
                   "Watts-Strogatz needs k < n, got k = " << k << ", n = "
                                                          << n);
  PARLAP_CHECK_MSG(beta >= 0.0 && beta <= 1.0,
                   "rewiring probability beta must be in [0, 1], got "
                       << beta);
  Multigraph g(n);
  const int half = k / 2;
  const EdgeId m = static_cast<EdgeId>(n) * half;
  g.resize_edges(m);
  // Lattice edge (v, v + j) for j in 1..k/2; each decides independently
  // (keyed by its edge index) whether its far endpoint rewires, so the
  // result is identical for every thread count.
  parallel_for(EdgeId{0}, m, [&](EdgeId e) {
    const auto v = static_cast<Vertex>(e / half);
    const auto j = static_cast<Vertex>(e % half) + 1;
    Vertex u = (v + j) % n;
    Rng rng(seed, RngTag::kGraphGen,
            0x77737267u ^ static_cast<std::uint64_t>(e));
    if (beta > 0.0 && rng.next_double() < beta) {
      do {
        u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      } while (u == v);
    }
    g.set_edge(e, v, u, 1.0);
  });
  return g;
}

Multigraph make_rmat(int scale, EdgeId m, std::uint64_t seed, double a,
                     double b, double c, bool ensure_connected) {
  PARLAP_CHECK(scale >= 1 && scale < 31);
  PARLAP_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0);
  const Vertex n = Vertex{1} << scale;
  PARLAP_CHECK(m >= (ensure_connected ? n - 1 : 0));
  Multigraph g(n);
  g.resize_edges(m);
  EdgeId base = 0;
  if (ensure_connected) {
    const std::vector<Vertex> perm = random_permutation(n, seed, /*stream=*/2);
    base = n - 1;
    parallel_for(EdgeId{0}, base, [&](EdgeId e) {
      g.set_edge(e, perm[static_cast<std::size_t>(e)],
                 perm[static_cast<std::size_t>(e) + 1], 1.0);
    });
  }
  parallel_for(base, m, [&](EdgeId e) {
    Rng rng(seed, RngTag::kGraphGen, 0x726D6174u ^ static_cast<std::uint64_t>(e));
    while (true) {
      Vertex u = 0;
      Vertex v = 0;
      for (int level = 0; level < scale; ++level) {
        const double r = rng.next_double();
        u <<= 1;
        v <<= 1;
        if (r < a) {
          // top-left quadrant
        } else if (r < a + b) {
          v |= 1;
        } else if (r < a + b + c) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      if (u == v) continue;
      g.set_edge(e, u, v, 1.0);
      return;
    }
  });
  return g;
}

}  // namespace parlap
