#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <vector>

#include "support/check.hpp"

namespace parlap {

void write_edge_list(std::ostream& os, const Multigraph& g) {
  os << "# parlap-graph " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  os.precision(std::numeric_limits<double>::max_digits10);
  const EdgeId m = g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    os << g.edge_u(e) << ' ' << g.edge_v(e) << ' ' << g.edge_weight(e) << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Multigraph& g) {
  std::ofstream os(path);
  PARLAP_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_edge_list(os, g);
}

Multigraph read_edge_list(std::istream& is) {
  // Two parse modes: when the "# parlap-graph n m" header precedes every
  // edge line (the format our writer emits), edges stream straight into a
  // pre-reserved Multigraph — no staging vector, no second pass, no
  // incremental growth of the three edge arrays. Headerless files (or a
  // header arriving late) fall back to staging until n is known.
  Vertex n = -1;
  struct Edge {
    Vertex u, v;
    Weight w;
  };
  std::vector<Edge> staged;
  std::optional<Multigraph> direct;
  Vertex max_vertex = -1;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line);
      std::string hash;
      std::string tag;
      header >> hash >> tag;
      if (tag == "parlap-graph") {
        Vertex header_n = -1;
        EdgeId header_m = 0;
        header >> header_n >> header_m;
        // Tolerate malformed headers (treat as plain comments). In direct
        // mode the FIRST header is authoritative: a later header (e.g. two
        // files concatenated) must not widen n after the graph was sized,
        // or edges past the original n would dodge the range check below.
        if (!header.fail() && header_n >= 0 && !direct.has_value()) {
          n = header_n;
          if (staged.empty()) {
            direct.emplace(n);
            direct->reserve_edges(header_m);
          } else {
            staged.reserve(static_cast<std::size_t>(header_m));
          }
        }
      }
      continue;
    }
    std::istringstream row(line);
    Edge e{};
    e.w = 1.0;
    row >> e.u >> e.v;
    PARLAP_CHECK_MSG(!row.fail(), "malformed edge line: " << line);
    row >> e.w;  // optional third column
    if (direct.has_value()) {
      PARLAP_CHECK_MSG(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                       "edge endpoint exceeds declared n");
      direct->add_edge(e.u, e.v, e.w);
      continue;
    }
    max_vertex = std::max({max_vertex, e.u, e.v});
    staged.push_back(e);
  }
  if (direct.has_value()) return std::move(*direct);
  if (n < 0) n = max_vertex + 1;
  PARLAP_CHECK_MSG(max_vertex < n, "edge endpoint exceeds declared n");
  Multigraph g(n);
  g.reserve_edges(static_cast<EdgeId>(staged.size()));
  for (const Edge& e : staged) g.add_edge(e.u, e.v, e.w);
  return g;
}

Multigraph read_edge_list_file(const std::string& path) {
  std::ifstream is(path);
  PARLAP_CHECK_MSG(is.good(), "cannot open " << path << " for reading");
  return read_edge_list(is);
}

}  // namespace parlap
