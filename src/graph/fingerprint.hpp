// Content fingerprinting of multigraphs.
//
// The solve-engine's FactorizationCache keys cached factorizations by
// *what the graph is*, not where it came from: the same edge list loaded
// from two files, or regenerated from the same spec, must map to the same
// cache entry. graph_fingerprint hashes the full content — vertex count
// and the ordered (u, v, w) edge triples — with a fixed mixing function,
// so fingerprints are stable across processes and platforms (weights are
// hashed by their IEEE-754 bit patterns).
//
// Edge order is significant by design: the randomized pipeline consumes
// edges by index (Philox streams are keyed per edge id), so two orderings
// of the same edge set legitimately factor differently.
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/multigraph.hpp"

namespace parlap {

/// Order-sensitive 64-bit content hash of (n, m, edges). Never 0, so 0
/// can serve as a "no fingerprint" sentinel.
[[nodiscard]] std::uint64_t graph_fingerprint(const Multigraph& g);

/// Extends a running fingerprint with one 64-bit word (the mixer behind
/// graph_fingerprint; exposed for composite keys such as solution
/// hashes and cache keys).
[[nodiscard]] std::uint64_t fingerprint_mix(std::uint64_t h,
                                            std::uint64_t word) noexcept;

/// Folds a string into a running fingerprint byte by byte (cache keys,
/// job-id streams).
[[nodiscard]] std::uint64_t fingerprint_mix_string(std::uint64_t h,
                                                   std::string_view s) noexcept;

}  // namespace parlap
