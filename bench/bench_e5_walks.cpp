// E5 — Lemma 5.4: on 5-DD complements, walk lengths are O(1) in
// expectation and O(log m) at the maximum, and TerminalWalks never emits
// more multi-edges than it consumes. We histogram first-level walk
// lengths, track the mean across graph sizes (constancy), and check the
// edge-count invariant across every level of a full chain.
#include "common.hpp"
#include "core/block_cholesky.hpp"
#include "core/five_dd.hpp"
#include "core/terminal_walks.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

WalkStats first_level_stats(const Multigraph& g, std::uint64_t seed) {
  const auto wdeg = g.weighted_degrees();
  const FiveDdResult fdd = five_dd_subset(g, wdeg, seed);
  const Vertex n = g.num_vertices();
  std::vector<Vertex> f_index(static_cast<std::size_t>(n), kInvalidVertex);
  for (std::size_t i = 0; i < fdd.f.size(); ++i) {
    f_index[static_cast<std::size_t>(fdd.f[i])] = static_cast<Vertex>(i);
  }
  std::vector<Vertex> c_index(static_cast<std::size_t>(n), kInvalidVertex);
  Vertex nc = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (f_index[static_cast<std::size_t>(v)] == kInvalidVertex) {
      c_index[static_cast<std::size_t>(v)] = nc++;
    }
  }
  const WalkGraph wg =
      build_walk_graph(g, f_index, static_cast<Vertex>(fdd.f.size()));
  WalkStats stats;
  (void)terminal_walks(g, wg, f_index, c_index, nc, seed, 0, &stats);
  return stats;
}

}  // namespace

int main() {
  reporter().set_experiment("E5");
  {
    TextTable table("E5 walk lengths at level 0 (mean per walk, max, "
                    "retries) vs graph size");
    table.set_header({"family", "n", "m", "mean_len", "max_len",
                      "log2(m)", "retries", "drop_frac"},
                     4);
    for (const auto& [family, size] :
         sweep<std::pair<std::string, Vertex>>(
             {{"grid2d", 64}, {"grid2d", 128}, {"grid2d", 256},
              {"regular4", 10000}, {"regular4", 80000}, {"rmat", 12},
              {"rmat", 15}, {"wgrid2d", 128}},
             2)) {
      const Multigraph g = make_family(family, size, 3);
      WallTimer timer;
      const WalkStats s = first_level_stats(g, 5);
      const double seconds = timer.seconds();
      reporter().record_time(
          family + "/n=" + std::to_string(g.num_vertices()),
          {{"n", static_cast<double>(g.num_vertices())},
           {"m", static_cast<double>(s.edges_in)},
           {"mean_len", static_cast<double>(s.total_steps) /
                            (2.0 * static_cast<double>(s.edges_in))},
           {"max_len", static_cast<double>(s.max_walk_len)}},
          seconds);
      table.add_row(
          {family, static_cast<std::int64_t>(g.num_vertices()),
           static_cast<std::int64_t>(s.edges_in),
           static_cast<double>(s.total_steps) /
               (2.0 * static_cast<double>(s.edges_in)),
           static_cast<std::int64_t>(s.max_walk_len),
           std::log2(static_cast<double>(s.edges_in)),
           static_cast<std::int64_t>(s.retries),
           static_cast<double>(s.dropped_loops) /
               static_cast<double>(s.edges_in)});
    }
    print_table(table);
    std::cout << "claim check: mean_len stays O(1) as m grows; max_len "
                 "<= O(log m); retries = 0.\n\n";
  }

  {
    // Edge-count invariant over a whole chain (Thm 3.9-(1)).
    const Multigraph g =
        make_family("regular4", smoke() ? Vertex{8000} : Vertex{50000}, 7);
    WallTimer timer;
    const BlockCholeskyChain chain = BlockCholeskyChain::build(g, 9);
    const double factor_s = timer.seconds();
    EdgeId m0 = 0;
    EdgeId worst = 0;
    OnlineStats mean_len;
    int max_len = 0;
    for (const LevelStats& ls : chain.level_stats()) {
      if (m0 == 0) m0 = ls.multi_edges;
      worst = std::max(worst, ls.multi_edges);
      if (ls.walks.edges_in > 0) {
        mean_len.add(static_cast<double>(ls.walks.total_steps) /
                     (2.0 * static_cast<double>(ls.walks.edges_in)));
      }
      max_len = std::max(max_len, ls.walks.max_walk_len);
    }
    reporter().record_time(
        "chain_invariant/n=" + std::to_string(g.num_vertices()),
        {{"n", static_cast<double>(g.num_vertices())},
         {"levels", static_cast<double>(chain.depth())},
         {"max_mk_over_m0",
          static_cast<double>(worst) / static_cast<double>(m0)},
         {"max_len", static_cast<double>(max_len)}},
        factor_s);
    TextTable table("E5b chain-wide invariants — regular4 n=" +
                    std::to_string(g.num_vertices()));
    table.set_header({"levels", "m_level0", "max_m_k", "max_mk_over_m0",
                      "mean_len_all_levels", "max_len_all_levels"},
                     4);
    table.add_row({static_cast<std::int64_t>(chain.depth()),
                   static_cast<std::int64_t>(m0),
                   static_cast<std::int64_t>(worst),
                   static_cast<double>(worst) / static_cast<double>(m0),
                   mean_len.mean(), static_cast<std::int64_t>(max_len)});
    print_table(table);
    std::cout << "claim check: max_mk_over_m0 <= 1 (Lemma 5.4: the count "
                 "never grows).\n";
  }
  return 0;
}
