// E2 — depth/parallelism claim (Theorems 1.1, 3.10): the algorithm's
// polylog depth means wall-clock should shrink with added cores. We
// strong-scale factorization, one preconditioner application, and a full
// solve over thread counts on a fixed graph. (PRAM depth itself is
// architecture-free; speedup curves are the shared-memory substitution —
// see EXPERIMENTS.md.)
#include <omp.h>

#include "common.hpp"
#include "core/solver.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E2");
  const Vertex side = smoke() ? Vertex{96} : Vertex{384};
  const Multigraph g = make_family("grid2d", side, 5);
  const Vector b = random_rhs(g.num_vertices(), 9);

  TextTable table(
      "E2 strong scaling — grid2d " + std::to_string(side) + "x" +
      std::to_string(side) + " (n=" + std::to_string(g.num_vertices()) +
      "), eps=1e-8, boost_rounds=2 (shallower chain => larger per-level "
      "work)");
  table.set_header({"threads", "factor_s", "apply_ms", "solve_s", "iters",
                    "factor_speedup", "solve_speedup"},
                   4);

  const int max_threads = omp_get_max_threads();
  double factor_base = 0.0;
  double solve_base = 0.0;
  for (int threads : {1, 2, 4, 8, 16, max_threads}) {
    if (threads > max_threads) continue;
    omp_set_num_threads(threads);

    SolverOptions opts;
    opts.chain.five_dd.boost_rounds = 2;
    WallTimer timer;
    LaplacianSolver solver(g, opts);
    const double factor_s = timer.seconds();

    // One preconditioner application, averaged over 10.
    Vector y(b.size(), 0.0);
    timer.reset();
    for (int i = 0; i < 10; ++i) solver.apply_preconditioner(b, y);
    const double apply_ms = timer.millis() / 10.0;

    Vector x(b.size(), 0.0);
    timer.reset();
    const SolveStats st = solver.solve(b, x, 1e-8);
    const double solve_s = timer.seconds();

    if (threads == 1) {
      factor_base = factor_s;
      solve_base = solve_s;
    }
    table.add_row({static_cast<std::int64_t>(threads), factor_s, apply_ms,
                   solve_s, static_cast<std::int64_t>(st.iterations),
                   factor_base / factor_s, solve_base / solve_s});
    reporter().record_time("grid2d/threads=" + std::to_string(threads),
                           {{"n", static_cast<double>(g.num_vertices())},
                            {"threads", static_cast<double>(threads)},
                            {"factor_s", factor_s},
                            {"apply_ms", apply_ms},
                            {"iters", static_cast<double>(st.iterations)}},
                           solve_s);
  }
  omp_set_num_threads(max_threads);
  print_table(table);
  std::cout << "note: results are bit-identical across rows (deterministic "
               "counter-based RNG); only time changes.\n";
  return 0;
}
