// E16 — chain-construction cost: arena-backed build throughput and
// phase breakdown (src/core/build_arena.hpp).
//
// Chain construction is the tail-latency driver of every factorization-
// cache miss (E15's workload), so this experiment measures exactly that
// path: BlockCholeskyChain::build on the E15 graph families, split the
// same way LaplacianSolver's round 0 splits them. Two regimes per graph:
//
//   cold  — every build gets a fresh ChainBuildArena (first-ever build,
//           the allocation-heavy behavior the old copy-per-level pipeline
//           exhibited on every build);
//   warm  — one arena is reused across builds (the steady state of a
//           long-lived service rebuilding on cache misses).
//
// Reported per graph: median cold/warm build seconds, warm speedup,
// build throughput (split multi-edges per second, warm), the steady-state
// arena reallocation count (must be 0 — the zero-realloc property), peak
// arena bytes, and the per-phase breakdown of a warm build.
#include <string>
#include <vector>

#include "common.hpp"
#include "core/alpha_bound.hpp"
#include "core/block_cholesky.hpp"
#include "core/build_arena.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

Multigraph make_workload(const std::string& spec, Vertex scale,
                         std::uint64_t seed) {
  if (spec == "ws") return make_watts_strogatz(scale * 8, 6, 0.1, seed);
  if (spec == "grid2d") return make_grid2d(scale, scale);
  return make_erdos_renyi(scale * 4, static_cast<EdgeId>(scale) * 16, seed);
}

}  // namespace

int main() {
  reporter().set_experiment("E16");
  const int reps = smoke() ? 3 : 7;
  // Smoke scale keeps every family above the base-case cutoff (100
  // vertices) so at least one elimination level is actually built.
  const Vertex scale = smoke() ? Vertex{32} : Vertex{64};
  const std::uint64_t seed = 17;
  const std::vector<std::string> graphs = {"ws", "grid2d", "gnm"};

  bool zero_realloc_violated = false;
  TextTable table("E16 chain build — cold (fresh arena) vs warm (reused "
                  "arena), E15 workload, " +
                  std::to_string(reps) + " reps");
  table.set_header({"graph", "n", "m_split", "cold_ms", "warm_ms", "speedup",
                    "Medges_per_s", "steady_reallocs", "arena_MiB"},
                   4);

  for (const std::string& name : graphs) {
    const Multigraph g = make_workload(name, scale, seed);
    const Multigraph split = split_edges_uniform(
        g, default_split_copies(g.num_vertices(), /*scale=*/0.1));
    const BlockCholeskyOptions opts;

    // Cold: a fresh arena per build — every scratch buffer grows from
    // zero, the first-build cost a cache miss on a never-seen shape pays.
    const std::vector<double> cold = measure(reps, /*warmup=*/1, [&] {
      ChainBuildArena arena;
      (void)BlockCholeskyChain::build(split, seed, opts, arena);
    });

    // Warm: one arena reused across builds (steady-state rebuild). The
    // warmup build sizes every buffer; the measured builds must then
    // report zero arena reallocations.
    ChainBuildArena arena;
    BuildStats last;
    const std::vector<double> warm = measure(reps, /*warmup=*/1, [&] {
      const BlockCholeskyChain chain =
          BlockCholeskyChain::build(split, seed, opts, arena);
      last = chain.build_stats();
    });

    const TimingSummary cold_s = summarize(cold);
    const TimingSummary warm_s = summarize(warm);
    const double medges_per_s =
        warm_s.median > 0.0
            ? static_cast<double>(split.num_edges()) / warm_s.median / 1e6
            : 0.0;
    const double arena_mib =
        static_cast<double>(last.peak_arena_bytes) / (1 << 20);
    table.add_row({name, static_cast<std::int64_t>(g.num_vertices()),
                   static_cast<std::int64_t>(split.num_edges()),
                   cold_s.median * 1e3, warm_s.median * 1e3,
                   warm_s.median > 0.0 ? cold_s.median / warm_s.median : 0.0,
                   medges_per_s,
                   static_cast<std::int64_t>(last.arena_allocations),
                   arena_mib});

    reporter().record(
        BenchCase{"build-warm:" + name,
                  {{"n", static_cast<double>(g.num_vertices())},
                   {"m_split", static_cast<double>(split.num_edges())},
                   {"levels", static_cast<double>(last.levels)},
                   {"split_medges_per_s", medges_per_s},
                   {"steady_arena_reallocs",
                    static_cast<double>(last.arena_allocations)},
                   {"peak_arena_mib", arena_mib},
                   {"degrees_seconds", last.phases.degrees},
                   {"five_dd_seconds", last.phases.five_dd},
                   {"partition_seconds", last.phases.partition},
                   {"walk_graph_seconds", last.phases.walk_graph},
                   {"schur_seconds", last.phases.schur},
                   {"extract_seconds", last.phases.extract},
                   {"base_seconds", last.base_seconds}},
                  warm});
    reporter().record(
        BenchCase{"build-cold:" + name,
                  {{"n", static_cast<double>(g.num_vertices())},
                   {"m_split", static_cast<double>(split.num_edges())}},
                  cold});

    if (last.arena_allocations != 0) {
      std::cerr << "E16: WARNING: steady-state build of '" << name
                << "' performed " << last.arena_allocations
                << " arena reallocation(s); expected 0\n";
      zero_realloc_violated = true;
    }
  }
  // Table first, verdict second: a gate failure still shows the full
  // per-graph diagnostics (which family regressed, by how much).
  print_table(table);
  return zero_realloc_violated ? 1 : 0;
}
