// E4 — Lemma 3.4: 5DDSubset returns |F| >= n/40 in O(m) expected work and
// O(1) expected rounds. We measure accepted fraction, rounds, and
// time-per-edge across families and seeds, and ablate the boost_rounds
// extension (larger F => shallower chains) against the faithful default.
#include "common.hpp"
#include "core/block_cholesky.hpp"
#include "core/five_dd.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E4");
  {
    TextTable table("E4 5DDSubset — 20 seeds per family (paper constants)");
    table.set_header({"family", "n", "m", "mean_frac", "min_frac",
                      "mean_rounds", "max_rounds", "ns_per_edge"},
                     4);
    for (const auto& [family, size] :
         sweep<std::pair<std::string, Vertex>>({{"grid2d", 150},
                                                {"regular4", 30000},
                                                {"gnm4", 20000},
                                                {"rmat", 13},
                                                {"barbell", 500}},
                                               2)) {
      const Multigraph g = make_family(family, size, 3);
      const auto wdeg = g.weighted_degrees();
      OnlineStats frac;
      OnlineStats rounds;
      WallTimer timer;
      for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const FiveDdResult r = five_dd_subset(g, wdeg, seed);
        frac.add(static_cast<double>(r.f.size()) /
                 static_cast<double>(g.num_vertices()));
        rounds.add(r.rounds);
      }
      const double seconds = timer.seconds();
      const double ns_per_edge =
          seconds * 1e9 / (20.0 * static_cast<double>(g.num_edges()));
      table.add_row({family, static_cast<std::int64_t>(g.num_vertices()),
                     static_cast<std::int64_t>(g.num_edges()), frac.mean(),
                     frac.min(), rounds.mean(),
                     static_cast<std::int64_t>(rounds.max()), ns_per_edge});
      reporter().record_time(
          family + "/n=" + std::to_string(g.num_vertices()),
          {{"n", static_cast<double>(g.num_vertices())},
           {"m", static_cast<double>(g.num_edges())},
           {"mean_frac", frac.mean()},
           {"min_frac", frac.min()},
           {"ns_per_edge", ns_per_edge}},
          seconds);
    }
    print_table(table);
    std::cout << "claim check: min_frac >= 1/40 = 0.025 and rounds O(1).\n\n";
  }

  {
    TextTable table(
        "E4b boost ablation — grid2d 128x128: F fraction vs chain depth");
    table.set_header({"boost_rounds", "mean_F_frac", "chain_depth",
                      "factor_s"},
                     4);
    const Multigraph g = make_family("grid2d", smoke() ? 64 : 128, 3);
    for (const int boost : sweep<int>({0, 1, 2, 4}, 2)) {
      BlockCholeskyOptions opts;
      opts.five_dd.boost_rounds = boost;
      WallTimer timer;
      const BlockCholeskyChain chain = BlockCholeskyChain::build(g, 7, opts);
      const double factor_s = timer.seconds();
      OnlineStats frac;
      for (const LevelStats& ls : chain.level_stats()) {
        frac.add(static_cast<double>(ls.f_size) / static_cast<double>(ls.n));
      }
      table.add_row({static_cast<std::int64_t>(boost), frac.mean(),
                     static_cast<std::int64_t>(chain.depth()), factor_s});
      reporter().record_time(
          "boost_ablation/boost=" + std::to_string(boost),
          {{"mean_f_frac", frac.mean()},
           {"chain_depth", static_cast<double>(chain.depth())}},
          factor_s);
    }
    print_table(table);
    std::cout << "shape: boosting grows F per level and shrinks depth; the "
                 "paper's constants are boost=0.\n";
  }
  return 0;
}
