// E13 (application) — random spanning tree sampling via Wilson's
// algorithm, the workload the paper's related-work positions Schur
// complement machinery against [Wil96; DKPRS17; Sch18]. We measure
// sampling rate and the loop-erasure overhead across families, and
// validate the distribution against the matrix-tree theorem on a small
// graph.
#include <map>

#include "common.hpp"
#include "core/spanning_tree.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E13");
  {
    TextTable table("E13 Wilson's algorithm — cost per tree");
    table.set_header({"family", "n", "m", "walk_steps", "erased_frac",
                      "steps_per_vertex", "ms_per_tree"},
                     4);
    for (const auto& [family, size] :
         sweep<std::pair<std::string, Vertex>>({{"grid2d", 100},
                                                {"regular4", 20000},
                                                {"gnm4", 20000},
                                                {"rmat", 13},
                                                {"barbell", 200}},
                                               2)) {
      const Multigraph g = make_family(family, size, 3);
      WallTimer timer;
      SpanningTreeStats total;
      const int trees = 5;
      for (int t = 0; t < trees; ++t) {
        SpanningTreeStats s;
        (void)sample_spanning_tree(g, static_cast<std::uint64_t>(t), &s);
        total.walk_steps += s.walk_steps;
        total.erased_steps += s.erased_steps;
      }
      const double ms = timer.millis() / trees;
      reporter().record_time(
          family + "/n=" + std::to_string(g.num_vertices()),
          {{"n", static_cast<double>(g.num_vertices())},
           {"m", static_cast<double>(g.num_edges())},
           {"walk_steps_per_tree",
            static_cast<double>(total.walk_steps / trees)},
           {"ms_per_tree", ms}},
          ms / 1e3);
      table.add_row(
          {family, static_cast<std::int64_t>(g.num_vertices()),
           static_cast<std::int64_t>(g.num_edges()),
           static_cast<std::int64_t>(total.walk_steps / trees),
           static_cast<double>(total.erased_steps) /
               static_cast<double>(total.walk_steps),
           static_cast<double>(total.walk_steps) /
               (static_cast<double>(trees) *
                static_cast<double>(g.num_vertices())),
           ms});
    }
    print_table(table);
    std::cout << "shape: steps/vertex tracks the mean commute time scale; "
                 "low-conductance families (barbell) pay the most.\n\n";
  }

  {
    // Distribution check: C_5 has 5 equiprobable trees.
    const Multigraph g = make_cycle(5);
    std::map<double, int> by_signature;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
      const Multigraph tree =
          sample_spanning_tree(g, 1000 + static_cast<std::uint64_t>(t));
      double sig = 0.0;  // sum of endpoint products identifies the tree
      for (EdgeId e = 0; e < tree.num_edges(); ++e) {
        sig += static_cast<double>(tree.edge_u(e)) * 7.0 +
               static_cast<double>(tree.edge_v(e)) * 13.0;
      }
      ++by_signature[sig];
    }
    TextTable table("E13b UST distribution on C_5 (matrix-tree: 5 trees, "
                    "p = 0.2 each)");
    table.set_header({"tree", "frequency", "expected"}, 4);
    int idx = 0;
    for (const auto& [sig, count] : by_signature) {
      table.add_row({static_cast<std::int64_t>(idx++),
                     static_cast<double>(count) / trials, 0.2});
    }
    print_table(table);
    std::cout << "matrix-tree total weight: " << spanning_tree_weight_dense(g)
              << " (expect 5)\n";
  }
  return 0;
}
