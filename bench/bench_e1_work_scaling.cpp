// E1 — Theorem 1.1 work scaling: total solve cost should grow
// near-linearly in m (the paper's O(m log^3 n loglog n) with our practical
// split constant). We sweep sizes on two sparse families, time
// factor/solve separately, and fit the log-log slope of total time vs m;
// a slope near 1 (mildly above, for the polylog) regenerates the claim.
#include <vector>

#include "common.hpp"
#include "core/solver.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

void run_family(const std::string& family, const std::vector<Vertex>& sizes) {
  TextTable table("E1 work scaling — " + family +
                  " (eps = 1e-8, defaults)");
  table.set_header({"n", "m", "split_m", "depth", "factor_s", "solve_s",
                    "iters", "total_s", "us_per_edge"},
                   4);
  std::vector<double> ms;
  std::vector<double> totals;
  for (const Vertex size : sizes) {
    const Multigraph g = make_family(family, size, 3);
    WallTimer timer;
    LaplacianSolver solver(g);
    const double factor_s = timer.seconds();
    const Vector b = random_rhs(g.num_vertices(), 7);
    Vector x(b.size(), 0.0);
    timer.reset();
    const SolveStats st = solver.solve(b, x, 1e-8);
    const double solve_s = timer.seconds();
    const double total = factor_s + solve_s;
    ms.push_back(static_cast<double>(g.num_edges()));
    totals.push_back(total);
    reporter().record_time(
        family + "/n=" + std::to_string(g.num_vertices()),
        {{"n", static_cast<double>(g.num_vertices())},
         {"m", static_cast<double>(g.num_edges())},
         {"factor_s", factor_s},
         {"solve_s", solve_s},
         {"iters", static_cast<double>(st.iterations)}},
        total);
    table.add_row({static_cast<std::int64_t>(g.num_vertices()),
                   static_cast<std::int64_t>(g.num_edges()),
                   static_cast<std::int64_t>(solver.info().split_edges),
                   static_cast<std::int64_t>(solver.info().depth), factor_s,
                   solve_s, static_cast<std::int64_t>(st.iterations), total,
                   1e6 * total / static_cast<double>(g.num_edges())});
  }
  print_table(table);
  std::cout << "fitted log-log slope of total time vs m: "
            << log_log_slope(ms, totals)
            << "  (paper shape: ~1 + polylog drift)\n\n";
}

}  // namespace

int main() {
  reporter().set_experiment("E1");
  run_family("grid2d", sweep<Vertex>({64, 96, 128, 192, 256}, 2));
  run_family("regular4", sweep<Vertex>({4096, 9216, 16384, 36864, 65536}, 2));
  return 0;
}
