// E20 — mixed-precision apply chain: fp32 storage under fp64 iterative
// refinement vs the all-fp64 baseline (docs/PERFORMANCE.md "Precision
// modes").
//
// Two views on the E15/E17 traffic-mix graphs:
//
//   * Apply study: preconditioner-apply ns/row at panel widths
//     1/8/16/32 for both storage modes. The fp32 kernels compute in
//     native float with twice the SIMD lanes per register, so the
//     per-row cost should drop substantially once panels are wide
//     enough to fill the doubled lanes (>= 16 columns on AVX-512) —
//     this is the acceptance-gate measurement (fp32 >= 1.5x fp64 at
//     width >= 8 on at least two families).
//
//   * Solve study: end-to-end solve_many at width 8, eps 1e-8, both
//     modes. fp32 trades cheaper applies for extra fp64 refinement
//     iterations; the study records the iteration counts, escalation
//     rounds, and the residual each mode actually achieved, so the
//     table shows the net effect, not just the kernel-side win. Every
//     fp32 residual must still meet eps — accuracy is contractual, the
//     speedup is the variable.
//
// fp32 results are never bit-compared against fp64 (the contract is
// eps, not bitwise parity); compare_benches.py keys on meta.precision
// to keep cross-mode trees apart. This binary itself always measures
// BOTH modes side by side — $PARLAP_BENCH_PRECISION only tags the
// report.
#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "api/graph_source.hpp"
#include "common.hpp"
#include "core/solver.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/panel.hpp"
#include "support/precision.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E20");
  const Vertex scale = smoke() ? Vertex{24} : Vertex{64};
  const int reps = smoke() ? 3 : 15;
  const std::size_t total_rhs = 32;
  const std::vector<std::size_t> widths = {1, 8, 16, 32};
  const double eps = 1e-8;

  // The E15/E17 traffic mix, same specs and seed.
  const std::vector<std::string> graphs = {
      "ws:" + std::to_string(scale * 8) + ",6,0.1",
      "grid2d:" + std::to_string(scale),
      "gnm:" + std::to_string(scale * 4) + "," + std::to_string(scale * 16),
  };

  const char* active_name =
      kernels::simd_level_name(kernels::active_simd_level());

  TextTable apply_table("E20 apply ns/row — fp32 vs fp64 storage, dispatch " +
                        std::string(active_name));
  apply_table.set_header(
      {"graph", "width", "fp64_ns_row", "fp32_ns_row", "fp32_speedup"}, 4);

  TextTable solve_table("E20 end-to-end solve_many — width 8, eps 1e-8");
  solve_table.set_header({"graph", "precision", "solve_s_per_rhs",
                          "iters_mean", "escalations", "max_residual",
                          "fp32_speedup"},
                         4);

  for (const std::string& spec : graphs) {
    const Multigraph g = make_generated_graph(spec, 17);
    const auto n = static_cast<std::size_t>(g.num_vertices());
    SolverOptions opts;
    opts.seed = 17;
    const LaplacianSolver f64(g, opts);
    SolverOptions opts_f32 = opts;
    opts_f32.precision = Precision::kFp32;
    const LaplacianSolver f32(g, opts_f32);

    std::vector<Vector> rhs;
    for (std::size_t j = 0; j < total_rhs; ++j) {
      rhs.push_back(random_rhs(g.num_vertices(),
                               1000 + static_cast<std::uint64_t>(j)));
    }

    // -- Apply study ------------------------------------------------------
    for (const std::size_t width : widths) {
      std::vector<Panel> panels;
      for (std::size_t start = 0; start < total_rhs; start += width) {
        Panel p;
        panel_from_vectors(
            std::span<const Vector>(rhs.data() + start, width), p);
        panels.push_back(std::move(p));
      }
      Panel out;
      const double rows_total =
          static_cast<double>(n) * static_cast<double>(total_rhs);
      const auto ns_per_row = [&](const LaplacianSolver& solver,
                                  std::span<const double> samples) {
        (void)solver;
        return summarize(samples).median / rows_total * 1e9;
      };
      const std::vector<double> samples64 = measure(reps, /*warmup=*/1, [&] {
        for (const Panel& p : panels) f64.apply_preconditioner(p, out);
      });
      const std::vector<double> samples32 = measure(reps, /*warmup=*/1, [&] {
        for (const Panel& p : panels) f32.apply_preconditioner(p, out);
      });
      const double ns64 = ns_per_row(f64, samples64);
      const double ns32 = ns_per_row(f32, samples32);
      const double speedup = ns32 > 0.0 ? ns64 / ns32 : 0.0;
      apply_table.add_row({spec, static_cast<std::int64_t>(width), ns64, ns32,
                           speedup});
      reporter().record(spec + "/apply/width:" + std::to_string(width) +
                            "/fp64",
                        {{"n", static_cast<double>(n)},
                         {"width", static_cast<double>(width)},
                         {"apply_ns_per_row", ns64}},
                        samples64);
      reporter().record(spec + "/apply/width:" + std::to_string(width) +
                            "/fp32",
                        {{"n", static_cast<double>(n)},
                         {"width", static_cast<double>(width)},
                         {"apply_ns_per_row", ns32},
                         {"speedup_vs_fp64", speedup}},
                        samples32);
    }

    // -- Solve study ------------------------------------------------------
    double per_rhs_f64 = 0.0;
    for (const LaplacianSolver* solver : {&f64, &f32}) {
      const bool is_f32 = solver == &f32;
      std::vector<Vector> xs(rhs.size());
      const std::vector<double> samples = measure(reps, /*warmup=*/1, [&] {
        (void)solver->solve_many(rhs, xs, eps);
      });
      // Stats from one untimed run (deterministic, so identical to what
      // the timed runs saw).
      const std::vector<SolveStats> stats = solver->solve_many(rhs, xs, eps);
      double iters_sum = 0.0;
      double max_residual = 0.0;
      double escalations = 0.0;
      for (const SolveStats& st : stats) {
        iters_sum += st.iterations;
        max_residual = std::max(max_residual, st.relative_residual);
        escalations += st.rebuilds;
      }
      const double iters_mean = iters_sum / static_cast<double>(stats.size());
      const double per_rhs =
          summarize(samples).median / static_cast<double>(total_rhs);
      if (!is_f32) per_rhs_f64 = per_rhs;
      const double speedup =
          is_f32 && per_rhs > 0.0 ? per_rhs_f64 / per_rhs : 0.0;
      solve_table.add_row({spec, is_f32 ? "fp32" : "fp64", per_rhs,
                           iters_mean, escalations, max_residual, speedup});
      reporter().record(spec + "/solve/width:8/" +
                            std::string(is_f32 ? "fp32" : "fp64"),
                        {{"n", static_cast<double>(n)},
                         {"rhs", static_cast<double>(total_rhs)},
                         {"eps", eps},
                         {"solve_s_per_rhs", per_rhs},
                         {"refinement_iters_mean", iters_mean},
                         {"escalations", escalations},
                         {"max_relative_residual", max_residual}},
                        samples);
    }
  }

  print_table(apply_table);
  print_table(solve_table);
  return 0;
}
