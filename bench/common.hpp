// Shared helpers for the experiment harness (one binary per experiment;
// see EXPERIMENTS.md for the E1-E16 catalogue and the JSON reporting
// contract implemented by harness/json_writer.hpp).
#pragma once

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "harness/json_writer.hpp"
#include "linalg/vector_ops.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace parlap::bench {

/// Named graph families used across experiments. `size` is a family-
/// specific scale knob (side length, vertex count, or RMAT scale).
inline Multigraph make_family(const std::string& name, Vertex size,
                              std::uint64_t seed = 1) {
  if (name == "grid2d") return make_grid2d(size, size);
  if (name == "grid3d") return make_grid3d(size, size, size);
  if (name == "path") return make_path(size);
  if (name == "regular4") return make_random_regular(size, 4, seed);
  if (name == "regular8") return make_random_regular(size, 8, seed);
  if (name == "gnm4") {
    return make_erdos_renyi(size, static_cast<EdgeId>(size) * 4, seed);
  }
  if (name == "rmat") {
    Multigraph g = make_rmat(static_cast<int>(size),
                             EdgeId{8} << static_cast<int>(size), seed);
    apply_weights(g, WeightModel::power_law(0.1, 10.0, 2.2), seed + 1);
    return g;
  }
  if (name == "barbell") return make_barbell(size, size / 2);
  if (name == "wgrid2d") {
    Multigraph g = make_grid2d(size, size);
    apply_weights(g, WeightModel::power_law(0.01, 100.0, 2.5), seed + 2);
    return g;
  }
  throw std::runtime_error("unknown family: " + name);
}

/// Deterministic mean-free right-hand side.
inline Vector random_rhs(Vertex n, std::uint64_t seed) {
  Vector b(static_cast<std::size_t>(n));
  Rng rng(seed, RngTag::kTest, 0xBE7C4);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  project_out_ones(b);
  return b;
}

inline void print_table(const TextTable& t) {
  t.print(std::cout);
  std::cout << '\n';
}

/// The process-wide JSON reporter (see harness/json_writer.hpp). Each
/// experiment main() calls `reporter().set_experiment("E<k>")` once and
/// records its headline timings; the report is written on exit when
/// $PARLAP_BENCH_JSON is set (scripts/run_benches.sh does this).
inline BenchReporter& reporter() { return BenchReporter::instance(); }

/// Picks the sweep for the current mode: the first `keep` entries of
/// `full` under --smoke/$PARLAP_SMOKE, the whole list otherwise.
template <typename T>
std::vector<T> sweep(std::vector<T> full, std::size_t keep) {
  if (smoke() && full.size() > keep) full.resize(keep);
  return full;
}

}  // namespace parlap::bench
