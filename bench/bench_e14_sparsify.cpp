// E14 (application) — spectral sparsification by effective resistances
// [SS11], built on the solver's resistance sketch. Shape: sparsifier size
// ~ n log n / eps^2 independent of m; measured spectral distance tracks
// the requested eps; downstream solves on the sparsifier are faster at
// matched accuracy.
#include "common.hpp"
#include "core/solver.hpp"
#include "core/sparsify.hpp"
#include "linalg/dense.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E14");
  {
    TextTable table("E14 sparsifier size & quality vs eps — K_150 (dense "
                    "oracle)");
    table.set_header({"eps", "m_in", "m_out", "measured_eps", "ratio"}, 4);
    const Multigraph g = make_complete(150);
    for (const double eps : sweep<double>({0.8, 0.4, 0.2}, 2)) {
      SparsifyOptions opts;
      opts.oversample = 4.0;
      const SparsifyResult r = spectral_sparsify(g, eps, 3, opts);
      const SpectralBounds sb = relative_spectral_bounds(
          laplacian_dense(r.graph), laplacian_dense(g), 1e-8);
      const double measured =
          std::max(std::abs(std::log(sb.lo)), std::abs(std::log(sb.hi)));
      table.add_row({eps, static_cast<std::int64_t>(g.num_edges()),
                     static_cast<std::int64_t>(r.graph.num_edges()),
                     measured, measured / eps});
    }
    print_table(table);
    std::cout << "claim check: measured_eps <= eps (ratio < 1) while m_out "
                 "shrinks ~1/eps^2.\n\n";
  }

  {
    const Vertex n = smoke() ? Vertex{500} : Vertex{2000};
    const EdgeId m = smoke() ? EdgeId{25000} : EdgeId{400000};
    TextTable table("E14b solve-on-sparsifier — dense gnm n=" +
                    std::to_string(n) + ", m=" + std::to_string(m) +
                    ", eps_sparsify=0.5");
    table.set_header({"graph", "m", "factor_s", "solve_s", "iters",
                      "residual_vs_original"},
                     4);
    const Multigraph g = make_erdos_renyi(n, m, 5);
    const Vector b = random_rhs(n, 7);
    const LaplacianOperator original_op(g);

    auto run = [&](const std::string& name, const Multigraph& graph) {
      WallTimer t;
      LaplacianSolver solver(graph);
      const double factor_s = t.seconds();
      Vector x(b.size(), 0.0);
      t.reset();
      const SolveStats st = solver.solve(b, x, 1e-8);
      const double solve_s = t.seconds();
      // Residual measured against the ORIGINAL Laplacian: for the
      // sparsifier this is bounded by its spectral distance, not 1e-8.
      Vector lx(b.size());
      original_op.apply(x, lx);
      double num = 0.0;
      for (std::size_t i = 0; i < b.size(); ++i) {
        num += (lx[i] - b[i]) * (lx[i] - b[i]);
      }
      table.add_row({name, static_cast<std::int64_t>(graph.num_edges()),
                     factor_s, solve_s,
                     static_cast<std::int64_t>(st.iterations),
                     std::sqrt(num) / norm2(b)});
      reporter().record_time(
          "solve_on_sparsifier/" + name,
          {{"n", static_cast<double>(graph.num_vertices())},
           {"m", static_cast<double>(graph.num_edges())},
           {"factor_s", factor_s},
           {"iters", static_cast<double>(st.iterations)}},
          solve_s);
    };
    run("original", g);
    SparsifyOptions sopts;
    sopts.oversample = 1.5;
    const SparsifyResult r = spectral_sparsify(g, 0.5, 9, sopts);
    run("sparsifier", r.graph);
    print_table(table);
    std::cout << "shape: the sparsifier solves faster; its solution is an "
                 "eps-quality preconditioner-grade answer for the original "
                 "system (useful as an inner solver / warm start).\n";
  }
  return 0;
}
