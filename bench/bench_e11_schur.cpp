// E11 — Theorem 7.1: ApproxSchur returns at most m multi-edges, runs in
// O(m log s) work (s = |V \ C|), and satisfies L_GS ~eps SC(L, C). We
// measure spectral accuracy vs requested eps densely on a small graph,
// then scale s at fixed terminal count to check the level/work growth.
#include <numeric>

#include "common.hpp"
#include "core/alpha_bound.hpp"
#include "core/approx_schur.hpp"
#include "linalg/dense.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E11");
  {
    Multigraph g = make_erdos_renyi(80, 400, 3);
    apply_weights(g, WeightModel::uniform(0.5, 2.0), 4);
    std::vector<Vertex> c(16);
    std::iota(c.begin(), c.end(), Vertex{0});
    const DenseMatrix exact = schur_complement_dense(laplacian_dense(g), c);

    TextTable table("E11 ApproxSchur accuracy vs eps — gnm n=80, |C|=16 "
                    "(dense oracle)");
    table.set_header({"eps_requested", "split_m", "out_edges",
                      "measured_eps", "within"},
                     4);
    for (const double eps : sweep<double>({0.8, 0.4, 0.2, 0.1}, 2)) {
      const ApproxSchurResult r =
          approx_schur_simple(g, c, eps, 7, /*scale=*/1.0);
      const SpectralBounds sb = relative_spectral_bounds(
          laplacian_dense(r.schur), exact, 1e-8);
      const double measured =
          std::max(std::abs(std::log(sb.lo)), std::abs(std::log(sb.hi)));
      const auto copies = static_cast<EdgeId>(std::ceil(
          1.0 * 49.0 / (eps * eps)));  // ceil(log2 80)^2 = 49
      table.add_row({eps, static_cast<std::int64_t>(copies * g.num_edges()),
                     static_cast<std::int64_t>(r.schur.num_edges()),
                     measured,
                     std::string(measured <= eps ? "yes" : "NO")});
    }
    print_table(table);
    std::cout << "claim check (Thm 7.1): measured spectral distance <= "
                 "requested eps; out_edges <= split_m.\n\n";
  }

  {
    TextTable table("E11b ApproxSchur scaling — grid2d, |C| = 4 corners, "
                    "split x4");
    table.set_header({"n", "s=|V\\C|", "m_split", "levels",
                      "levels/ln(s)", "out_edges", "seconds"},
                     4);
    for (const Vertex side : sweep<Vertex>({32, 64, 128, 256}, 2)) {
      const Multigraph g = make_family("grid2d", side, 5);
      const Multigraph split = split_edges_uniform(g, 4);
      const std::vector<Vertex> c{0, side - 1, side * (side - 1),
                                  side * side - 1};
      WallTimer timer;
      const ApproxSchurResult r = approx_schur(split, c, 9);
      const double seconds = timer.seconds();
      const double s = static_cast<double>(g.num_vertices() - 4);
      table.add_row({static_cast<std::int64_t>(g.num_vertices()),
                     static_cast<std::int64_t>(g.num_vertices() - 4),
                     static_cast<std::int64_t>(split.num_edges()),
                     static_cast<std::int64_t>(r.levels),
                     r.levels / std::log(s),
                     static_cast<std::int64_t>(r.schur.num_edges()),
                     seconds});
      reporter().record_time(
          "grid2d/n=" + std::to_string(g.num_vertices()),
          {{"n", static_cast<double>(g.num_vertices())},
           {"m_split", static_cast<double>(split.num_edges())},
           {"levels", static_cast<double>(r.levels)},
           {"out_edges", static_cast<double>(r.schur.num_edges())}},
          seconds);
    }
    print_table(table);
    std::cout << "claim check: levels/ln(s) ~ constant (O(log s) rounds); "
                 "out_edges <= m_split always.\n";
  }
  return 0;
}
