// E9 — the alpha^-1 = Theta(log^2 n) concentration knob (Theorem 3.9's
// matrix-Freedman argument). More copies => tighter W ~ L^+ => fewer
// Richardson iterations, at linearly more factor work/memory. We sweep
// the split scale, measure end-to-end costs, and measure the actual
// spectral quality of W on a small instance.
#include "common.hpp"
#include "core/alpha_bound.hpp"
#include "core/block_cholesky.hpp"
#include "core/solver.hpp"
#include "linalg/dense.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

/// Spectral range of W vs L^+ on the ones-complement (dense, small n).
SpectralBounds preconditioner_quality(const Multigraph& g, double scale) {
  const Multigraph split =
      split_edges_uniform(g, default_split_copies(g.num_vertices(), scale));
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 21);
  const int n = g.num_vertices();
  DenseMatrix w(n, n);
  ApplyWorkspace ws;
  Vector e(static_cast<std::size_t>(n), 0.0);
  Vector col(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    e[static_cast<std::size_t>(j)] = 1.0;
    chain.apply(e, col, ws);
    for (int i = 0; i < n; ++i) w(i, j) = col[static_cast<std::size_t>(i)];
    e[static_cast<std::size_t>(j)] = 0.0;
  }
  w.symmetrize();
  DenseMatrix p(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      p(i, j) = (i == j ? 1.0 : 0.0) - 1.0 / static_cast<double>(n);
  const DenseMatrix w_proj = p.multiply(w).multiply(p);
  const DenseMatrix pinv =
      p.multiply(pseudo_inverse(laplacian_dense(g))).multiply(p);
  return relative_spectral_bounds(w_proj, pinv, 1e-7);
}

}  // namespace

int main() {
  reporter().set_experiment("E9");
  {
    const Vertex side = smoke() ? Vertex{48} : Vertex{128};
    const Multigraph g = make_family("grid2d", side, 3);
    const Vector b = random_rhs(g.num_vertices(), 11);
    TextTable table("E9 split-scale ablation — grid2d " +
                    std::to_string(side) + "x" + std::to_string(side) +
                    ", eps=1e-8, adaptive off");
    table.set_header({"scale", "copies", "split_m", "factor_s", "iters",
                      "solve_s", "total_s", "converged"},
                     4);
    for (const double scale :
         sweep<double>({0.01, 0.03, 0.1, 0.3, 1.0, 2.0}, 2)) {
      SolverOptions opts;
      opts.split_scale = scale;
      opts.adaptive = false;
      WallTimer timer;
      LaplacianSolver solver(g, opts);
      const double factor_s = timer.seconds();
      Vector x(b.size(), 0.0);
      timer.reset();
      const SolveStats st = solver.solve(b, x, 1e-8);
      const double solve_s = timer.seconds();
      table.add_row({scale, static_cast<std::int64_t>(solver.info().copies),
                     static_cast<std::int64_t>(solver.info().split_edges),
                     factor_s, static_cast<std::int64_t>(st.iterations),
                     solve_s, factor_s + solve_s,
                     std::string(st.converged ? "yes" : "NO")});
      reporter().record_time(
          "split_scale/scale=" + std::to_string(scale),
          {{"n", static_cast<double>(g.num_vertices())},
           {"scale", scale},
           {"copies", static_cast<double>(solver.info().copies)},
           {"split_m", static_cast<double>(solver.info().split_edges)},
           {"factor_s", factor_s},
           {"iters", static_cast<double>(st.iterations)}},
          solve_s);
    }
    print_table(table);
    std::cout << "shape: iterations fall as copies rise (concentration), "
                 "factor cost rises linearly; the sweet spot sits at small "
                 "scales — theory's constant is pessimistic.\n\n";
  }

  {
    const Multigraph g = make_family("gnm4", 120, 5);
    TextTable table("E9b measured W vs L^+ spectrum (dense, gnm4 n=120)");
    table.set_header({"scale", "copies", "lambda_min", "lambda_max",
                      "implied_delta", "within_e^1"},
                     4);
    for (const double scale : sweep<double>({0.01, 0.1, 0.5, 1.0, 3.0}, 2)) {
      const SpectralBounds sb = preconditioner_quality(g, scale);
      const double delta =
          std::max(std::abs(std::log(sb.lo)), std::abs(std::log(sb.hi)));
      table.add_row(
          {scale,
           static_cast<std::int64_t>(
               default_split_copies(g.num_vertices(), scale)),
           sb.lo, sb.hi, delta,
           std::string(sb.lo > std::exp(-1.0) && sb.hi < std::exp(1.0)
                           ? "yes"
                           : "no")});
    }
    print_table(table);
    std::cout << "claim check (Thm 3.10): with enough copies W ~1 L^+; "
                 "delta shrinks as alpha^-1 grows.\n";
  }
  return 0;
}
