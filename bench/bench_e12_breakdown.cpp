// E12 — component cost breakdown (the "simple and practical" claim):
// google-benchmark micro-measurements of every pipeline stage on a fixed
// 128x128 grid, so regressions in any stage are visible in isolation.
#include <benchmark/benchmark.h>

#include <numeric>

#include "common.hpp"
#include "core/alpha_bound.hpp"
#include "core/block_cholesky.hpp"
#include "core/five_dd.hpp"
#include "core/solver.hpp"
#include "core/terminal_walks.hpp"
#include "linalg/laplacian_op.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

// Under --smoke the fixture shrinks so google-benchmark's auto-timing
// loop finishes quickly; JSON output comes from benchmark's own
// --benchmark_out, not the parlap reporter (see scripts/run_benches.sh).
const Multigraph& fixture_graph() {
  static const Multigraph g =
      make_family("grid2d", smoke() ? Vertex{48} : Vertex{128}, 3);
  return g;
}

const Multigraph& fixture_split() {
  static const Multigraph s = split_edges_uniform(fixture_graph(), 20);
  return s;
}

void BM_EdgeSplit(benchmark::State& state) {
  const Multigraph& g = fixture_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(split_edges_uniform(g, 20));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
}
BENCHMARK(BM_EdgeSplit)->Unit(benchmark::kMillisecond);

void BM_WeightedDegrees(benchmark::State& state) {
  const Multigraph& s = fixture_split();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.weighted_degrees());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
}
BENCHMARK(BM_WeightedDegrees)->Unit(benchmark::kMillisecond);

void BM_FiveDdSubset(benchmark::State& state) {
  const Multigraph& s = fixture_split();
  const auto wdeg = s.weighted_degrees();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(five_dd_subset(s, wdeg, seed++));
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
}
BENCHMARK(BM_FiveDdSubset)->Unit(benchmark::kMillisecond);

struct Level0 {
  std::vector<Vertex> f_index, c_index;
  Vertex nf = 0, nc = 0;
};

const Level0& fixture_level0() {
  static const Level0 lvl = [] {
    const Multigraph& s = fixture_split();
    const FiveDdResult fdd = five_dd_subset(s, s.weighted_degrees(), 5);
    Level0 out;
    const Vertex n = s.num_vertices();
    out.f_index.assign(static_cast<std::size_t>(n), kInvalidVertex);
    out.c_index.assign(static_cast<std::size_t>(n), kInvalidVertex);
    for (std::size_t i = 0; i < fdd.f.size(); ++i) {
      out.f_index[static_cast<std::size_t>(fdd.f[i])] =
          static_cast<Vertex>(i);
    }
    for (Vertex v = 0; v < n; ++v) {
      if (out.f_index[static_cast<std::size_t>(v)] == kInvalidVertex) {
        out.c_index[static_cast<std::size_t>(v)] = out.nc++;
      }
    }
    out.nf = static_cast<Vertex>(fdd.f.size());
    return out;
  }();
  return lvl;
}

void BM_WalkGraphBuild(benchmark::State& state) {
  const Multigraph& s = fixture_split();
  const Level0& lvl = fixture_level0();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_walk_graph(s, lvl.f_index, lvl.nf));
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
}
BENCHMARK(BM_WalkGraphBuild)->Unit(benchmark::kMillisecond);

void BM_TerminalWalks(benchmark::State& state) {
  const Multigraph& s = fixture_split();
  const Level0& lvl = fixture_level0();
  const WalkGraph wg = build_walk_graph(s, lvl.f_index, lvl.nf);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(terminal_walks(s, wg, lvl.f_index, lvl.c_index,
                                            lvl.nc, seed++, 0));
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
}
BENCHMARK(BM_TerminalWalks)->Unit(benchmark::kMillisecond);

void BM_ChainFactor(benchmark::State& state) {
  const Multigraph& s = fixture_split();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BlockCholeskyChain::build(s, seed++));
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
}
BENCHMARK(BM_ChainFactor)->Unit(benchmark::kMillisecond);

void BM_PreconditionerApply(benchmark::State& state) {
  const Multigraph& s = fixture_split();
  static const BlockCholeskyChain chain = BlockCholeskyChain::build(s, 7);
  static ApplyWorkspace ws;
  const Vector b = random_rhs(s.num_vertices(), 9);
  Vector y(b.size());
  for (auto _ : state) {
    chain.apply(b, y, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * chain.stored_entries());
}
BENCHMARK(BM_PreconditionerApply)->Unit(benchmark::kMillisecond);

void BM_LaplacianMatvec(benchmark::State& state) {
  static const LaplacianOperator op(fixture_graph());
  const Vector x = random_rhs(op.dimension(), 11);
  Vector y(x.size());
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * op.num_multi_edges());
}
BENCHMARK(BM_LaplacianMatvec)->Unit(benchmark::kMillisecond);

void BM_FullSolve(benchmark::State& state) {
  static LaplacianSolver solver(fixture_graph());
  const Vector b = random_rhs(fixture_graph().num_vertices(), 13);
  Vector x(b.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(b, x, 1e-8));
  }
}
BENCHMARK(BM_FullSolve)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
