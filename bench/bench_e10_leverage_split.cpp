// E10 — Theorem 1.2 vs Theorem 1.1: on dense graphs, leverage-score
// splitting produces O(m + nK/alpha) multi-edges instead of O(m/alpha),
// trading an O(log n)-solve estimation pass for a much lighter chain. We
// sweep density at fixed n, compare multi-edge counts and end-to-end
// times, and locate the crossover.
#include "common.hpp"
#include "core/solver.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E10");
  const Vertex n = smoke() ? Vertex{800} : Vertex{4000};
  TextTable table("E10 naive vs leverage splitting — gnm, n=" +
                  std::to_string(n) + ", eps=1e-8");
  table.set_header({"m", "avg_deg", "uni_split_m", "lev_split_m",
                    "uni_total_s", "lev_total_s", "lev_wins"},
                   4);
  for (const EdgeId m :
       smoke() ? std::vector<EdgeId>{EdgeId{1600}, EdgeId{4000}}
               : std::vector<EdgeId>{EdgeId{8000}, EdgeId{20000},
                                     EdgeId{60000}, EdgeId{200000},
                                     EdgeId{600000}}) {
    const Multigraph g = make_erdos_renyi(n, m, 3);
    const Vector b = random_rhs(n, 11);

    double uni_total = 0.0;
    EdgeId uni_edges = 0;
    {
      WallTimer t;
      LaplacianSolver solver(g);
      Vector x(b.size(), 0.0);
      solver.solve(b, x, 1e-8);
      uni_total = t.seconds();
      uni_edges = solver.info().split_edges;
    }
    double lev_total = 0.0;
    EdgeId lev_edges = 0;
    {
      SolverOptions opts;
      opts.split = SplitStrategy::kLeverage;
      WallTimer t;
      LaplacianSolver solver(g, opts);
      Vector x(b.size(), 0.0);
      solver.solve(b, x, 1e-8);
      lev_total = t.seconds();
      lev_edges = solver.info().split_edges;
    }
    table.add_row({static_cast<std::int64_t>(m),
                   2.0 * static_cast<double>(m) / static_cast<double>(n),
                   static_cast<std::int64_t>(uni_edges),
                   static_cast<std::int64_t>(lev_edges), uni_total,
                   lev_total,
                   std::string(lev_total < uni_total ? "yes" : "no")});
    reporter().record_time("gnm/m=" + std::to_string(m) + "/uniform",
                           {{"n", static_cast<double>(n)},
                            {"m", static_cast<double>(m)},
                            {"split_m", static_cast<double>(uni_edges)}},
                           uni_total);
    reporter().record_time("gnm/m=" + std::to_string(m) + "/leverage",
                           {{"n", static_cast<double>(n)},
                            {"m", static_cast<double>(m)},
                            {"split_m", static_cast<double>(lev_edges)}},
                           lev_total);
  }
  print_table(table);
  std::cout
      << "shape (Thm 1.2): the multi-edge ratio uni/lev grows with density "
         "and leverage splitting wins past the crossover, where the JL "
         "estimation pass amortizes.\n";
  return 0;
}
