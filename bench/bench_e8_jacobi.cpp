// E8 — Lemma 3.5: the truncated Jacobi series Z on a 5-DD matrix
// satisfies M <= Z^-1 <= M + eps Y with eps = 3/2^l. We measure the
// achieved sandwich bounds densely per series length l, then ablate the
// chain's jacobi_terms knob to show the end-to-end effect on Richardson.
#include "common.hpp"
#include "core/block_cholesky.hpp"
#include "core/solver.hpp"
#include "linalg/dense.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

struct FiveDdMatrix {
  DenseMatrix m, x, y;
};

FiveDdMatrix make_matrix(int n, std::uint64_t seed) {
  Multigraph g = make_erdos_renyi(n, 2 * n, seed);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), seed + 1);
  FiveDdMatrix out;
  out.y = laplacian_dense(g);
  out.x = DenseMatrix(n, n);
  for (int i = 0; i < n; ++i) out.x(i, i) = 4.0 * out.y(i, i) + 0.1;
  out.m = out.x.add(out.y);
  return out;
}

DenseMatrix jacobi_series(const FiveDdMatrix& fd, int l) {
  const int n = fd.m.rows();
  DenseMatrix x_inv(n, n);
  for (int i = 0; i < n; ++i) x_inv(i, i) = 1.0 / fd.x(i, i);
  DenseMatrix term = x_inv;
  DenseMatrix z = term;
  for (int i = 1; i <= l; ++i) {
    term = term.multiply(fd.y).multiply(x_inv);
    z = z.add(term, i % 2 == 0 ? 1.0 : -1.0);
  }
  return z;
}

}  // namespace

int main() {
  reporter().set_experiment("E8");
  {
    const FiveDdMatrix fd = make_matrix(60, 7);
    TextTable table("E8 Jacobi sandwich M <= Z^-1 <= M + eps Y (dense, "
                    "n=60 5-DD matrix)");
    table.set_header({"l", "eps=3/2^l", "min_eig(Zinv-M)",
                      "measured_eps", "within_bound"},
                     4);
    for (const int l : sweep<int>({1, 3, 5, 7, 9, 11}, 3)) {
      const DenseMatrix z = jacobi_series(fd, l);
      const DenseMatrix z_inv = pseudo_inverse(z);
      DenseMatrix lower = z_inv.add(fd.m, -1.0);
      lower.symmetrize();
      const double min_eig = symmetric_eigen(lower).values.front();
      // Smallest t with Z^-1 <= M + t Y: max generalized eig of
      // (Z^-1 - M, Y).
      const SpectralBounds sb = relative_spectral_bounds(lower, fd.y, 1e-9);
      const double eps_bound = 3.0 / std::pow(2.0, l);
      table.add_row({static_cast<std::int64_t>(l), eps_bound, min_eig,
                     sb.hi,
                     std::string(sb.hi <= eps_bound + 1e-9 ? "yes" : "NO")});
    }
    print_table(table);
    std::cout << "claim check: min_eig >= 0 (Loewner lower bound) and "
                 "measured_eps <= 3/2^l, halving per extra term.\n\n";
  }

  {
    // End-to-end: the chain picks l = ceil(log2 6d); forcing it lower
    // degrades the preconditioner, forcing it higher buys nothing.
    const Vertex side = smoke() ? Vertex{48} : Vertex{128};
    const Multigraph g = make_family("grid2d", side, 3);
    const Vector b = random_rhs(g.num_vertices(), 11);
    TextTable table("E8b jacobi_terms ablation — grid2d " +
                    std::to_string(side) + "x" + std::to_string(side) +
                    ", eps=1e-8");
    table.set_header({"jacobi_terms", "apply_cost_rel", "iterations",
                      "solve_s", "converged"},
                     4);
    for (const int l : sweep<int>({1, 3, 5, 9, 13, 0 /*auto*/}, 2)) {
      SolverOptions opts;
      opts.chain.jacobi_terms = l;
      LaplacianSolver solver(g, opts);
      Vector x(b.size(), 0.0);
      WallTimer timer;
      const SolveStats st = solver.solve(b, x, 1e-8);
      const double seconds = timer.seconds();
      const int used = l == 0 ? solver.info().jacobi_terms : l;
      table.add_row({static_cast<std::int64_t>(used),
                     static_cast<double>(used),
                     static_cast<std::int64_t>(st.iterations), seconds,
                     std::string(st.converged ? "yes" : "NO")});
      reporter().record_time(
          "jacobi_terms_ablation/l=" + std::to_string(used),
          {{"n", static_cast<double>(g.num_vertices())},
           {"jacobi_terms", static_cast<double>(used)},
           {"iters", static_cast<double>(st.iterations)}},
          seconds);
    }
    print_table(table);
    std::cout << "shape: too few terms => more outer iterations; beyond "
                 "the auto choice the extra inner work is wasted.\n";
  }
  return 0;
}
