// E18 — observability overhead: the cost of the span tracer and metrics
// registry (src/obs/) on the paths they instrument. Two measurements:
//
//   1. Micro: ns/op of a disabled PARLAP_TRACE_SPAN against an empty
//      loop, and of an enabled span (clock reads + buffer append), plus
//      Counter::add and LatencyHistogram::record_ns. The disabled span
//      is the number that must stay at "one load + branch" — it is the
//      license for leaving instrumentation compiled into release
//      builds.
//
//   2. Macro: E15-style solve-engine throughput with tracing compiled
//      in but disabled vs enabled, reporting the relative slowdown. The
//      regression gate (compare_benches.py) holds traced_off within the
//      noise band of the E15 baseline.
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "service/solve_engine.hpp"
#include "support/timer.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

/// ns per iteration of `body` over `iters` iterations.
template <typename F>
double ns_per_op(std::size_t iters, F&& body) {
  const std::uint64_t t0 = steady_now_ns();
  for (std::size_t i = 0; i < iters; ++i) body(i);
  const std::uint64_t t1 = steady_now_ns();
  return static_cast<double>(t1 - t0) / static_cast<double>(iters);
}

std::vector<service::SolveJob> make_jobs(int repeats, Vertex scale) {
  const std::vector<std::string> graphs = {
      "ws:" + std::to_string(scale * 8) + ",6,0.1",
      "grid2d:" + std::to_string(scale),
  };
  std::vector<service::SolveJob> jobs;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      service::SolveJob job;
      job.id = "g";
      job.id += std::to_string(gi);
      job.id += "-r";
      job.id += std::to_string(r);
      job.graph = graphs[gi];
      job.rhs = "random:" + std::to_string(r);
      job.seed = 17;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

/// Throughput of one warmed engine run with the tracer in the given
/// state. The tracer is cleared afterwards so enabled runs do not leak
/// buffers' worth of events into later measurements.
double engine_solves_per_second(std::span<const service::SolveJob> jobs,
                                bool traced) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  if (traced) {
    tracer.enable();
  } else {
    tracer.disable();
  }
  service::EngineOptions options;
  options.workers = 2;
  service::SolveEngine engine(options);
  (void)engine.run(jobs);  // warm: factor the working set
  const service::BatchResult batch = engine.run(jobs);
  tracer.disable();
  tracer.clear();
  return batch.stats.solves_per_second;
}

}  // namespace

int main() {
  reporter().set_experiment("E18");
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();

  // --- micro: per-op costs -------------------------------------------
  const std::size_t iters = smoke() ? 2'000'000 : 20'000'000;

  // The empty loop calibrates loop overhead; volatile sink defeats DCE.
  volatile std::uint64_t sink = 0;
  const double empty_ns =
      ns_per_op(iters, [&](std::size_t i) { sink = sink + i; });

  const double disabled_ns = ns_per_op(iters, [&](std::size_t i) {
    sink = sink + i;
    PARLAP_TRACE_SPAN("bench.noop", "bench");
  });

  obs::Counter counter;
  const double counter_ns = ns_per_op(iters, [&](std::size_t i) {
    sink = sink + i;
    counter.add(1);
  });

  obs::LatencyHistogram hist;
  const double hist_ns = ns_per_op(iters, [&](std::size_t i) {
    sink = sink + i;
    hist.record_ns(i & 0xffff);
  });

  // Windowed record = clock read + slot tag check + plain record; the
  // steady-state path (slot already claimed for the current epoch) is
  // what the serve worker pays per solve for last-60s stats.
  obs::WindowedHistogram whist;
  const double whist_ns = ns_per_op(iters, [&](std::size_t i) {
    sink = sink + i;
    whist.record_ns(i & 0xffff);
  });

  // Enabled spans at a fraction of the iterations (each one is two
  // clock reads plus a buffer append; the buffer overflows by design —
  // drops are part of the measured path).
  tracer.clear();
  tracer.enable();
  const std::size_t span_iters = iters / 16;
  const double enabled_ns = ns_per_op(span_iters, [&](std::size_t i) {
    sink = sink + i;
    PARLAP_TRACE_SPAN("bench.span", "bench");
  });
  tracer.disable();
  tracer.clear();

  TextTable micro("E18 obs overhead — per-op cost (ns), " +
                  std::to_string(iters) + " iterations");
  micro.set_header({"op", "ns_per_op", "net_ns"}, 3);
  micro.add_row({std::string("empty_loop"), empty_ns, 0.0});
  micro.add_row({std::string("span_disabled"), disabled_ns,
                 disabled_ns - empty_ns});
  micro.add_row({std::string("counter_add"), counter_ns,
                 counter_ns - empty_ns});
  micro.add_row({std::string("hist_record"), hist_ns, hist_ns - empty_ns});
  micro.add_row({std::string("windowed_record"), whist_ns,
                 whist_ns - empty_ns});
  micro.add_row({std::string("span_enabled"), enabled_ns,
                 enabled_ns - empty_ns});
  print_table(micro);

  reporter().record("micro",
                    {{"empty_loop_ns", empty_ns},
                     {"span_disabled_ns", disabled_ns},
                     {"span_disabled_net_ns", disabled_ns - empty_ns},
                     {"counter_add_ns", counter_ns},
                     {"hist_record_ns", hist_ns},
                     {"windowed_record_ns", whist_ns},
                     {"windowed_record_net_ns", whist_ns - empty_ns},
                     {"span_enabled_ns", enabled_ns}});

  // --- macro: engine throughput traced-off vs traced-on ---------------
  const int repeats = smoke() ? 4 : 12;
  const Vertex scale = smoke() ? Vertex{24} : Vertex{48};
  const std::vector<service::SolveJob> jobs = make_jobs(repeats, scale);

  const double off_sps = engine_solves_per_second(jobs, /*traced=*/false);
  const double on_sps = engine_solves_per_second(jobs, /*traced=*/true);
  const double slowdown = off_sps > 0.0 ? off_sps / on_sps : 0.0;

  TextTable macro("E18 obs overhead — engine throughput, " +
                  std::to_string(jobs.size()) + " jobs, 2 workers");
  macro.set_header({"tracing", "solves_per_s", "slowdown_vs_off"}, 4);
  macro.add_row({std::string("off"), off_sps, 1.0});
  macro.add_row({std::string("on"), on_sps, slowdown});
  print_table(macro);

  reporter().record("engine",
                    {{"jobs", static_cast<double>(jobs.size())},
                     {"traced_off_solves_per_second", off_sps},
                     {"traced_on_solves_per_second", on_sps},
                     {"traced_on_slowdown", slowdown}});
  return 0;
}
