// E15 — solve-engine throughput: solves/sec vs worker count and cache
// hit rate on a batch of repeated graphs (src/service/solve_engine.hpp).
// The scenario the service layer exists for: a traffic mix that keeps
// re-requesting a small working set of graphs, factored once through the
// FactorizationCache and then solved concurrently. Reports, per worker
// count: throughput, p50/p95 per-solve latency, cache hits/misses, and
// the speedup over one worker.
#include <omp.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common.hpp"
#include "service/solve_engine.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

/// The traffic mix: `repeats` solve jobs against each of a few graph
/// families, ids (and so rhs streams) distinct per job.
std::vector<service::SolveJob> make_jobs(int repeats, Vertex scale) {
  const std::vector<std::string> graphs = {
      "ws:" + std::to_string(scale * 8) + ",6,0.1",
      "grid2d:" + std::to_string(scale),
      "gnm:" + std::to_string(scale * 4) + "," +
          std::to_string(scale * 16),
  };
  std::vector<service::SolveJob> jobs;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      service::SolveJob job;
      job.id = "g";
      job.id += std::to_string(gi);
      job.id += "-r";
      job.id += std::to_string(r);
      job.graph = graphs[gi];
      job.rhs = "random:" + std::to_string(r);
      job.seed = 17;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

}  // namespace

int main() {
  reporter().set_experiment("E15");
  const int repeats = smoke() ? 4 : 16;
  const Vertex scale = smoke() ? Vertex{24} : Vertex{64};
  const std::vector<service::SolveJob> jobs = make_jobs(repeats, scale);

  const int max_threads = omp_get_max_threads();
  std::vector<int> worker_counts = {1, 2, 4, 8};
  worker_counts.erase(
      std::remove_if(worker_counts.begin(), worker_counts.end(),
                     [&](int w) { return w > 2 * max_threads && w != 1; }),
      worker_counts.end());
  if (smoke()) worker_counts.resize(std::min<std::size_t>(2, worker_counts.size()));

  TextTable table("E15 solve-engine throughput — " +
                  std::to_string(jobs.size()) +
                  " jobs over 3 graph families, eps=1e-8");
  table.set_header({"workers", "solves_per_s", "p50_ms", "p95_ms",
                    "cache_hit_rate", "wall_s", "speedup"},
                   4);

  double base_throughput = 0.0;
  for (const int workers : worker_counts) {
    service::EngineOptions options;
    options.workers = workers;
    service::SolveEngine engine(options);
    // Warm run factorizes the working set; the measured run then sees
    // the steady-state hit rate a long-lived service would.
    (void)engine.run(jobs);
    const service::BatchResult batch = engine.run(jobs);
    const service::EngineStats& s = batch.stats;

    const double lookups =
        static_cast<double>(s.cache.hits + s.cache.misses);
    const double hit_rate =
        lookups > 0.0 ? static_cast<double>(s.cache.hits) / lookups : 0.0;
    if (base_throughput == 0.0) base_throughput = s.solves_per_second;
    table.add_row({static_cast<std::int64_t>(workers), s.solves_per_second,
                   s.p50_solve_seconds * 1e3, s.p95_solve_seconds * 1e3,
                   hit_rate, s.wall_seconds,
                   s.solves_per_second / base_throughput});
    reporter().record(
        "workers:" + std::to_string(workers),
        {{"workers", static_cast<double>(workers)},
         {"jobs", static_cast<double>(s.jobs)},
         {"solves_per_second", s.solves_per_second},
         {"p50_solve_seconds", s.p50_solve_seconds},
         {"p95_solve_seconds", s.p95_solve_seconds},
         {"cache_hit_rate", hit_rate},
         {"cache_misses", static_cast<double>(s.cache.misses)},
         {"wall_seconds", s.wall_seconds}});
  }
  print_table(table);
  return 0;
}
