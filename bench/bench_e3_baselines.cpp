// E3 — positioning vs baselines: the paper extends the sequential KS16
// solver and targets the classic iterative-method gap. We compare, per
// family: parlap (Richardson outer), parlap (PCG outer), KS16+PCG
// (sequential approximate Cholesky), Jacobi-PCG, and plain CG, all to the
// same relative residual. Shape to regenerate: preconditioned solvers'
// iteration counts are flat where CG's grow with condition number; parlap
// matches KS16's quality while its factorization parallelizes.
#include <functional>

#include "baselines/cg.hpp"
#include "baselines/ks16.hpp"
#include "common.hpp"
#include "core/solver.hpp"

using namespace parlap;
using namespace parlap::bench;

namespace {

constexpr double kEps = 1e-8;

struct Row {
  std::string solver;
  double setup_s = 0.0;
  double solve_s = 0.0;
  int iterations = 0;
  bool converged = false;
};

void run_family(const std::string& family, Vertex size) {
  const Multigraph g = make_family(family, size, 3);
  const Vector b = random_rhs(g.num_vertices(), 11);
  const LaplacianOperator op(g);
  std::vector<Row> rows;

  {  // parlap, Richardson outer (the paper's Algorithm 5).
    Row r{.solver = "parlap-richardson"};
    WallTimer t;
    LaplacianSolver solver(g);
    r.setup_s = t.seconds();
    Vector x(b.size(), 0.0);
    t.reset();
    const SolveStats st = solver.solve(b, x, kEps);
    r.solve_s = t.seconds();
    r.iterations = st.iterations;
    r.converged = st.converged;
    rows.push_back(r);

    // parlap, PCG outer (same preconditioner, Krylov acceleration).
    Row r2{.solver = "parlap-pcg"};
    WallTimer t2;
    LaplacianSolver solver2(g);
    r2.setup_s = t2.seconds();
    Vector x2(b.size(), 0.0);
    const LinearMap precond = [&solver2](std::span<const double> rr,
                                         std::span<double> yy) {
      solver2.apply_preconditioner(rr, yy);
    };
    t2.reset();
    const IterationStats ist = preconditioned_cg(op, precond, b, x2, kEps);
    r2.solve_s = t2.seconds();
    r2.iterations = ist.iterations;
    r2.converged = ist.reached_target;
    rows.push_back(r2);
  }
  {  // KS16 sequential approximate Cholesky + PCG.
    Row r{.solver = "ks16-pcg"};
    WallTimer t;
    Ks16Options opts;
    opts.split_scale = 0.1;
    const Ks16Solver solver(g, opts);
    r.setup_s = t.seconds();
    Vector x(b.size(), 0.0);
    t.reset();
    const IterationStats st = solver.solve(b, x, kEps);
    r.solve_s = t.seconds();
    r.iterations = st.iterations;
    r.converged = st.reached_target;
    rows.push_back(r);
  }
  {  // Jacobi-diagonal PCG.
    Row r{.solver = "jacobi-pcg"};
    Vector x(b.size(), 0.0);
    WallTimer t;
    const IterationStats st =
        preconditioned_cg(op, jacobi_diagonal_preconditioner(op), b, x, kEps);
    r.solve_s = t.seconds();
    r.iterations = st.iterations;
    r.converged = st.reached_target;
    rows.push_back(r);
  }
  {  // Plain CG.
    Row r{.solver = "cg"};
    Vector x(b.size(), 0.0);
    WallTimer t;
    const IterationStats st = conjugate_gradient(op, b, x, kEps);
    r.solve_s = t.seconds();
    r.iterations = st.iterations;
    r.converged = st.reached_target;
    rows.push_back(r);
  }

  TextTable table("E3 baselines — " + family + " (n=" +
                  std::to_string(g.num_vertices()) + ", m=" +
                  std::to_string(g.num_edges()) + ", eps=1e-8)");
  table.set_header(
      {"solver", "setup_s", "solve_s", "total_s", "iters", "converged"}, 4);
  for (const Row& r : rows) {
    table.add_row({r.solver, r.setup_s, r.solve_s, r.setup_s + r.solve_s,
                   static_cast<std::int64_t>(r.iterations),
                   std::string(r.converged ? "yes" : "NO (cap)")});
    reporter().record_time(family + "/" + r.solver,
                           {{"n", static_cast<double>(g.num_vertices())},
                            {"m", static_cast<double>(g.num_edges())},
                            {"setup_s", r.setup_s},
                            {"iters", static_cast<double>(r.iterations)},
                            {"converged", r.converged ? 1.0 : 0.0}},
                           r.solve_s);
  }
  print_table(table);
}

}  // namespace

int main() {
  reporter().set_experiment("E3");
  if (smoke()) {
    run_family("grid2d", 48);
    run_family("path", 4000);
    return 0;
  }
  run_family("grid2d", 128);     // moderate kappa
  run_family("path", 30000);     // kappa ~ n^2: CG's worst case
  run_family("barbell", 300);    // low conductance, clique-dominated m
  run_family("regular4", 30000); // expander-like: CG's best case
  run_family("rmat", 13);        // heavy-tailed degrees
  return 0;
}
