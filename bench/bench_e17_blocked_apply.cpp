// E17 — blocked apply throughput: preconditioner applications per second
// vs panel block width (1/4/8/16) on the E15 traffic-mix graphs.
//
// The headline kernel of the CSR-packed ApplyChain + Panel refactor: one
// chain traversal serves k right-hand sides, so the chain's index arrays
// (offsets, columns, weights, gather lists) and the parallel-region
// launches amortize across the panel. Width 1 is the scalar baseline;
// the per-RHS apply cost should drop as the width grows (bandwidth-bound
// regime), with bit-identical results at every width — E15's batch
// throughput is the end-to-end view of the same effect.
//
// Secondary cases measure end-to-end blocked solves (solve_many at
// width 1 vs 8) on the largest family.
//
// Since the SIMD dispatch layer (linalg/kernels), every case carries the
// dispatch level it ran at ("simd" column / simd_level metric), and each
// width is ALSO measured with dispatch forced to scalar
// ("<spec>/width:N/simd:scalar" cases) — the active-vs-scalar ratio at
// width >= 8 is the end-to-end evidence for the per-RHS apply-cost
// acceptance gate (ns/row detail lives in E19). Active-dispatch cases
// keep their PR-8 names so baselines stay comparable across the change.
//
// Since the mixed-precision chain, each width additionally runs against
// an fp32-storage factorization of the same graph
// ("<spec>/width:N/precision:fp32" cases, "fp32_speedup" column): the
// hot loop is bandwidth-bound, so halving the value bytes should
// approach 2x at the wide widths — E20 owns the full precision study
// (refinement iterations, achieved residuals); this column is the
// at-a-glance apply-side ratio next to the SIMD one.
#include <span>
#include <string>
#include <vector>

#include "api/graph_source.hpp"
#include "common.hpp"
#include "core/solver.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/panel.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E17");
  const Vertex scale = smoke() ? Vertex{24} : Vertex{64};
  const int reps = smoke() ? 3 : 7;
  const std::size_t total_rhs = 16;  // divisible by every width below
  const std::vector<std::size_t> widths = {1, 4, 8, 16};

  // The E15 traffic mix (bench_e15_throughput.cpp), same specs and seed.
  const std::vector<std::string> graphs = {
      "ws:" + std::to_string(scale * 8) + ",6,0.1",
      "grid2d:" + std::to_string(scale),
      "gnm:" + std::to_string(scale * 4) + "," + std::to_string(scale * 16),
  };

  const kernels::SimdLevel active_level = kernels::active_simd_level();
  const char* active_name = kernels::simd_level_name(active_level);

  TextTable table("E17 blocked apply — " + std::to_string(total_rhs) +
                  " rhs per graph, widths 1/4/8/16, dispatch " +
                  active_name);
  table.set_header({"graph", "width", "simd", "apply_s_per_rhs", "rhs_per_s",
                    "speedup_vs_w1", "speedup_vs_scalar", "fp32_speedup"},
                   6);

  for (const std::string& spec : graphs) {
    const Multigraph g = make_generated_graph(spec, 17);
    SolverOptions opts;
    opts.seed = 17;
    const LaplacianSolver solver(g, opts);
    SolverOptions opts_f32 = opts;
    opts_f32.precision = Precision::kFp32;
    const LaplacianSolver solver_f32(g, opts_f32);
    const auto n = static_cast<std::size_t>(g.num_vertices());

    std::vector<Vector> rhs;
    for (std::size_t j = 0; j < total_rhs; ++j) {
      rhs.push_back(random_rhs(g.num_vertices(),
                               1000 + static_cast<std::uint64_t>(j)));
    }

    double per_rhs_w1 = 0.0;
    for (const std::size_t width : widths) {
      // Pre-pack the panels so the timed region is applies only.
      std::vector<Panel> panels;
      for (std::size_t start = 0; start < total_rhs; start += width) {
        Panel p;
        panel_from_vectors(
            std::span<const Vector>(rhs.data() + start, width), p);
        panels.push_back(std::move(p));
      }
      Panel out;
      const auto run_applies = [&] {
        for (const Panel& p : panels) solver.apply_preconditioner(p, out);
      };
      const auto run_applies_f32 = [&] {
        for (const Panel& p : panels) solver_f32.apply_preconditioner(p, out);
      };
      // Same workload twice: once with dispatch forced to scalar, once
      // at the active level. The scalar run goes first so the active
      // run leaves the process in its configured state.
      double per_rhs_scalar = 0.0;
      if (active_level != kernels::SimdLevel::kScalar) {
        kernels::set_simd_level(kernels::SimdLevel::kScalar);
        const std::vector<double> samples =
            measure(reps, /*warmup=*/1, run_applies);
        kernels::set_simd_level(active_level);
        per_rhs_scalar =
            summarize(samples).median / static_cast<double>(total_rhs);
        reporter().record(
            spec + "/width:" + std::to_string(width) + "/simd:scalar",
            {{"n", static_cast<double>(n)},
             {"width", static_cast<double>(width)},
             {"rhs", static_cast<double>(total_rhs)},
             {"simd_level", 0.0},
             {"apply_s_per_rhs", per_rhs_scalar}},
            samples);
      }
      // fp32-storage chain, same panels, active dispatch.
      const std::vector<double> samples_f32 =
          measure(reps, /*warmup=*/1, run_applies_f32);
      const double per_rhs_f32 =
          summarize(samples_f32).median / static_cast<double>(total_rhs);
      reporter().record(
          spec + "/width:" + std::to_string(width) + "/precision:fp32",
          {{"n", static_cast<double>(n)},
           {"width", static_cast<double>(width)},
           {"rhs", static_cast<double>(total_rhs)},
           {"simd_level",
            static_cast<double>(static_cast<int>(active_level))},
           {"apply_s_per_rhs", per_rhs_f32}},
          samples_f32);
      const std::vector<double> samples =
          measure(reps, /*warmup=*/1, run_applies);
      const TimingSummary summary = summarize(samples);
      const double per_rhs =
          summary.median / static_cast<double>(total_rhs);
      if (width == 1) per_rhs_w1 = per_rhs;
      const double speedup = per_rhs > 0.0 ? per_rhs_w1 / per_rhs : 0.0;
      const double vs_scalar =
          per_rhs > 0.0 && per_rhs_scalar > 0.0 ? per_rhs_scalar / per_rhs
                                                : 0.0;
      const double fp32_speedup =
          per_rhs > 0.0 && per_rhs_f32 > 0.0 ? per_rhs / per_rhs_f32 : 0.0;
      table.add_row({spec, static_cast<std::int64_t>(width), active_name,
                     per_rhs, per_rhs > 0.0 ? 1.0 / per_rhs : 0.0, speedup,
                     vs_scalar, fp32_speedup});
      reporter().record(
          spec + "/width:" + std::to_string(width),
          {{"n", static_cast<double>(n)},
           {"width", static_cast<double>(width)},
           {"rhs", static_cast<double>(total_rhs)},
           {"simd_level",
            static_cast<double>(static_cast<int>(active_level))},
           {"apply_s_per_rhs", per_rhs},
           {"rhs_per_second", per_rhs > 0.0 ? 1.0 / per_rhs : 0.0},
           {"speedup_vs_w1", speedup},
           {"speedup_vs_scalar", vs_scalar},
           {"speedup_fp32", fp32_speedup}},
          samples);
    }
  }

  // End-to-end: blocked solve_many on the largest family, width 1 vs 8.
  {
    const std::string spec = graphs.front();
    const Multigraph g = make_generated_graph(spec, 17);
    std::vector<Vector> bs;
    for (std::size_t j = 0; j < total_rhs; ++j) {
      bs.push_back(random_rhs(g.num_vertices(),
                              2000 + static_cast<std::uint64_t>(j)));
    }
    for (const int width : {1, 8}) {
      SolverOptions opts;
      opts.seed = 17;
      opts.max_block_width = width;
      const LaplacianSolver solver(g, opts);
      std::vector<Vector> xs(bs.size());
      const std::vector<double> samples = measure(reps, /*warmup=*/1, [&] {
        (void)solver.solve_many(bs, xs, 1e-8);
      });
      const TimingSummary summary = summarize(samples);
      const double per_rhs =
          summary.median / static_cast<double>(total_rhs);
      table.add_row({spec + " solve", static_cast<std::int64_t>(width),
                     active_name, per_rhs,
                     per_rhs > 0.0 ? 1.0 / per_rhs : 0.0, 0.0, 0.0, 0.0});
      reporter().record(spec + "/solve_many/width:" + std::to_string(width),
                        {{"width", static_cast<double>(width)},
                         {"rhs", static_cast<double>(total_rhs)},
                         {"solve_s_per_rhs", per_rhs}},
                        samples);
    }
  }

  print_table(table);
  return 0;
}
