// E19 — SIMD kernel dispatch microbenchmark: per-row cost of every
// kernel in the dispatch table (linalg/kernels) at every ISA level the
// host can run, across panel widths 1/4/8/16.
//
// Each case times ONE serial kernel invocation over the full row range
// (callers own parallelization; this measures the per-lane arithmetic
// the dispatcher actually swaps), so the scalar-vs-vector ratio here is
// the upper bound on what E17's end-to-end blocked apply can realize.
// Because every level is bit-identical by contract (docs/PERFORMANCE.md),
// the speedup columns compare work per nanosecond for the SAME result
// bits. Levels the CPU lacks are skipped, not faked: table_for() would
// silently hand back scalar and the case would measure nothing new.
#include <cstddef>
#include <string>
#include <vector>

#include "common.hpp"
#include "linalg/kernels/kernels.hpp"

using namespace parlap;
using namespace parlap::bench;
using kernels::KernelTable;
using kernels::SimdLevel;

namespace {

/// Irregular CSR block shared by the sweep kernels: degrees cycle 0..7.
struct CsrFixture {
  std::vector<EdgeId> off;
  std::vector<Vertex> nbr;
  std::vector<Weight> w;
  std::vector<Vertex> idx;

  CsrFixture(std::size_t rows, std::size_t n_src) {
    Rng rng(29, RngTag::kTest, 31);
    off.assign(rows + 1, 0);
    idx.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const std::size_t deg = i % 8;
      off[i + 1] = off[i] + static_cast<EdgeId>(deg);
      idx[i] = static_cast<Vertex>(
          rng.next_below(static_cast<std::uint64_t>(n_src)));
      for (std::size_t d = 0; d < deg; ++d) {
        nbr.push_back(static_cast<Vertex>(
            rng.next_below(static_cast<std::uint64_t>(n_src))));
        w.push_back(rng.next_in(0.1, 3.0));
      }
    }
  }
};

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Rng rng(seed, RngTag::kTest, 37);
  for (double& x : v) x = rng.next_in(-2.0, 2.0);
  return v;
}

}  // namespace

int main() {
  reporter().set_experiment("E19");
  const std::size_t rows = smoke() ? 20000 : 200000;
  const int reps = smoke() ? 5 : 9;
  const std::vector<std::size_t> widths = {1, 4, 8, 16};

  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel lvl : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (kernels::simd_level_available(lvl)) levels.push_back(lvl);
  }

  const std::size_t kmax = widths.back();
  const CsrFixture csr(rows, rows);
  const std::vector<double> a = random_doubles(rows * kmax, 11);
  const std::vector<double> b = random_doubles(rows * kmax, 12);
  std::vector<double> out(rows * kmax, 0.0);
  std::vector<double> dots(kmax, 0.0);
  const std::vector<double> inv_x = random_doubles(rows, 13);
  const std::vector<double> y_diag = random_doubles(rows, 14);
  std::vector<Vertex> perm(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    perm[i] = static_cast<Vertex>((i * 7919) % rows);  // 7919 coprime to rows
  }
  const std::size_t dense_n = 96;  // base blocks are small; inner-loop it
  const std::size_t dense_iters = smoke() ? 200 : 2000;
  const std::vector<double> dense_a = random_doubles(dense_n * dense_n, 15);

  TextTable table("E19 kernel dispatch — ns/row, " + std::to_string(rows) +
                  " rows, serial kernels");
  table.set_header({"kernel", "level", "width", "ns_per_row",
                    "speedup_vs_scalar"},
                   3);

  // kernel name -> (width -> scalar ns/row), for the speedup column.
  const auto bench_one = [&](const char* kernel, SimdLevel lvl, std::size_t k,
                             double scalar_ns, std::size_t work_rows,
                             auto&& fn) -> double {
    const std::vector<double> samples = measure(reps, /*warmup=*/1, fn);
    const TimingSummary summary = summarize(samples);
    const double ns_per_row =
        summary.median * 1e9 / static_cast<double>(work_rows);
    const double speedup = ns_per_row > 0.0 && scalar_ns > 0.0
                               ? scalar_ns / ns_per_row
                               : 0.0;
    const char* level_name = kernels::simd_level_name(lvl);
    table.add_row({kernel, level_name, static_cast<std::int64_t>(k),
                   ns_per_row, speedup});
    reporter().record(
        std::string(kernel) + "/" + level_name + "/width:" +
            std::to_string(k),
        {{"width", static_cast<double>(k)},
         {"level", static_cast<double>(static_cast<int>(lvl))},
         {"rows", static_cast<double>(work_rows)},
         {"ns_per_row", ns_per_row},
         {"speedup_vs_scalar", speedup}},
        samples);
    return ns_per_row;
  };

  for (const std::size_t k : widths) {
    // Per-width scalar reference ns/row, filled at the kScalar iteration.
    double axpy_ns = 0, dots_ns = 0, gather_ns = 0, scatter_ns = 0;
    double jac_ns = 0, fwd_ns = 0, bwd_ns = 0, dense_ns = 0;
    for (const SimdLevel lvl : levels) {
      const KernelTable& kt = kernels::table_for(lvl);
      const double r = bench_one("axpy_cols", lvl, k, axpy_ns, rows, [&] {
        kt.axpy_cols(0.37, a.data(), out.data(), 0, rows, rows, k, nullptr);
      });
      if (lvl == SimdLevel::kScalar) axpy_ns = r;
      const double r2 = bench_one("chunk_dots", lvl, k, dots_ns, rows, [&] {
        kt.chunk_dots(a.data(), b.data(), 0, rows, rows, k, dots.data());
      });
      if (lvl == SimdLevel::kScalar) dots_ns = r2;
      const double r3 = bench_one("gather_rows", lvl, k, gather_ns, rows, [&] {
        kt.gather_rows(a.data(), rows, perm.data(), 0, rows, rows, k,
                       out.data());
      });
      if (lvl == SimdLevel::kScalar) gather_ns = r3;
      const double r4 =
          bench_one("scatter_rows", lvl, k, scatter_ns, rows, [&] {
            kt.scatter_rows(a.data(), rows, perm.data(), 0, rows, rows, k,
                            out.data());
          });
      if (lvl == SimdLevel::kScalar) scatter_ns = r4;
      const double r5 = bench_one("csr_jacobi", lvl, k, jac_ns, rows, [&] {
        kt.csr_jacobi(0, rows, k, csr.off.data(), csr.nbr.data(),
                      csr.w.data(), inv_x.data(), y_diag.data(), a.data(),
                      b.data(), out.data());
      });
      if (lvl == SimdLevel::kScalar) jac_ns = r5;
      const double r6 = bench_one("csr_fwd", lvl, k, fwd_ns, rows, [&] {
        kt.csr_fwd(0, rows, k, csr.off.data(), csr.nbr.data(), csr.w.data(),
                   csr.idx.data(), a.data(), b.data(), out.data());
      });
      if (lvl == SimdLevel::kScalar) fwd_ns = r6;
      const double r7 = bench_one("csr_bwd", lvl, k, bwd_ns, rows, [&] {
        kt.csr_bwd(0, rows, k, csr.off.data(), csr.nbr.data(), csr.w.data(),
                   b.data(), out.data());
      });
      if (lvl == SimdLevel::kScalar) bwd_ns = r7;
      const double r8 = bench_one("dense_rows", lvl, k, dense_ns,
                                  dense_n * dense_iters, [&] {
                                    for (std::size_t it = 0; it < dense_iters;
                                         ++it) {
                                      kt.dense_rows(0, dense_n, k, dense_n,
                                                    dense_a.data(), a.data(),
                                                    out.data());
                                    }
                                  });
      if (lvl == SimdLevel::kScalar) dense_ns = r8;
    }
  }

  print_table(table);
  return 0;
}
