// E7 — Theorem 3.8: with the constant-quality preconditioner, the outer
// iteration count grows as O(log 1/eps). We sweep eps over 10 decades,
// record iterations and residuals, fit iterations against ln(1/eps), and
// cross-check the L-norm guarantee against the dense oracle on a small
// instance.
#include "baselines/dense_direct.hpp"
#include "common.hpp"
#include "core/solver.hpp"
#include "linalg/laplacian_op.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E7");
  {
    const Vertex side = smoke() ? Vertex{48} : Vertex{128};
    const Multigraph g = make_family("grid2d", side, 3);
    LaplacianSolver solver(g);
    const Vector b = random_rhs(g.num_vertices(), 11);

    TextTable table("E7 Richardson iterations vs eps — grid2d " +
                    std::to_string(side) + "x" + std::to_string(side));
    table.set_header({"eps", "iterations", "relative_residual",
                      "iters/ln(1/eps)", "solve_s"},
                     4);
    std::vector<double> logs;
    std::vector<double> iters;
    for (const double eps :
         sweep<double>({1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12}, 3)) {
      Vector x(b.size(), 0.0);
      WallTimer timer;
      const SolveStats st = solver.solve(b, x, eps);
      const double seconds = timer.seconds();
      logs.push_back(std::log(1.0 / eps));
      iters.push_back(st.iterations);
      char eps_str[16];
      std::snprintf(eps_str, sizeof(eps_str), "%g", eps);
      reporter().record_time(
          std::string("grid2d/eps=") + eps_str,
          {{"n", static_cast<double>(g.num_vertices())},
           {"eps", eps},
           {"iters", static_cast<double>(st.iterations)},
           {"relative_residual", st.relative_residual}},
          seconds);
      table.add_row({eps, static_cast<std::int64_t>(st.iterations),
                     st.relative_residual,
                     st.iterations / std::log(1.0 / eps), seconds});
    }
    print_table(table);
    std::cout << "claim check: iters/ln(1/eps) ~ constant; the paper's "
                 "bound is e^{2 delta} = e^2 ~ 7.4 per ln; measured "
                 "contraction is usually much better.\n\n";
  }

  {
    // L-norm guarantee (the ||.||_L metric of Theorems 1.1/1.2) against
    // the dense oracle.
    const Multigraph g = make_family("gnm4", 300, 5);
    LaplacianSolver solver(g);
    const LaplacianOperator op(g);
    const DenseDirectSolver oracle(g);
    const Vector b = random_rhs(g.num_vertices(), 13);
    Vector x_star(b.size());
    oracle.solve(b, x_star);
    const double ref = op.laplacian_norm(x_star);

    TextTable table("E7b L-norm error vs eps — gnm4 n=300 (dense oracle)");
    table.set_header({"eps", "residual", "l_norm_error", "err<=eps?"}, 4);
    for (const double eps : {1e-2, 1e-4, 1e-6, 1e-8}) {
      Vector x(b.size(), 0.0);
      solver.solve(b, x, eps);
      Vector diff(b.size());
      for (std::size_t i = 0; i < b.size(); ++i) diff[i] = x[i] - x_star[i];
      const double err = op.laplacian_norm(diff) / ref;
      Vector lx(b.size());
      solver.apply_laplacian(x, lx);
      double rnum = 0.0;
      for (std::size_t i = 0; i < b.size(); ++i) {
        rnum += (lx[i] - b[i]) * (lx[i] - b[i]);
      }
      table.add_row({eps, std::sqrt(rnum) / norm2(b), err,
                     std::string(err <= eps ? "yes" : "no")});
    }
    print_table(table);
    std::cout << "note: the solver's stopping rule is the 2-norm residual; "
                 "the L-norm error it implies is graph-dependent (here "
                 "comfortably below eps).\n";
  }
  return 0;
}
