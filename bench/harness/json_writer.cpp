#include "harness/json_writer.hpp"

#include <omp.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <ostream>

#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/numa.hpp"

#ifndef PARLAP_GIT_COMMIT
#define PARLAP_GIT_COMMIT "unknown"
#endif
#ifndef PARLAP_BUILD_TYPE
#define PARLAP_BUILD_TYPE "unknown"
#endif

namespace parlap::bench {

namespace {

const char* getenv_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : fallback;
}

}  // namespace

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::begin_value() {
  if (!after_key_ && needs_comma_.back()) out_ << ',';
  if (!after_key_) needs_comma_.back() = true;
  after_key_ = false;
}

void JsonWriter::begin_object() {
  begin_value();
  out_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  begin_value();
  out_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view k) {
  if (needs_comma_.back()) out_ << ',';
  needs_comma_.back() = true;
  out_ << escape(k) << ':';
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  begin_value();
  out_ << escape(s);
}

void JsonWriter::value(double d) {
  begin_value();
  out_ << format_number(d);
}

void JsonWriter::value(std::int64_t i) {
  begin_value();
  out_ << i;
}

void JsonWriter::value(bool b) {
  begin_value();
  out_ << (b ? "true" : "false");
}

void JsonWriter::null() {
  begin_value();
  out_ << "null";
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonWriter::format_number(double d) {
  if (!std::isfinite(d)) return "null";
  constexpr double kExactInt = 9007199254740992.0;  // 2^53
  if (d == std::floor(d) && std::fabs(d) < kExactInt) {
    return std::to_string(static_cast<std::int64_t>(d));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

// ---------------------------------------------------------------------------
// Timing aggregation
// ---------------------------------------------------------------------------

TimingSummary summarize(std::span<const double> samples_s) {
  TimingSummary s;
  s.reps = static_cast<std::int64_t>(samples_s.size());
  if (samples_s.empty()) return s;

  std::vector<double> sorted(samples_s.begin(), samples_s.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

  double sum = 0.0;
  for (const double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(n);
  if (n >= 2) {
    double ss = 0.0;
    for (const double x : sorted) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Run metadata
// ---------------------------------------------------------------------------

bool smoke() {
  const char* v = std::getenv("PARLAP_SMOKE");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

RunMetadata collect_metadata() {
  RunMetadata md;
  md.commit = getenv_or("PARLAP_GIT_COMMIT", PARLAP_GIT_COMMIT);

  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &utc);
  md.timestamp_utc = ts;

  char host[256] = "unknown";
  if (gethostname(host, sizeof(host) - 1) != 0) {
    std::snprintf(host, sizeof(host), "unknown");
  }
  md.hostname = host;

#if defined(__clang__)
  md.compiler = "clang " __VERSION__;
#elif defined(__GNUC__)
  md.compiler = "gcc " __VERSION__;
#else
  md.compiler = "unknown";
#endif
  md.build_type = PARLAP_BUILD_TYPE;
  md.threads = omp_get_max_threads();
  md.smoke = smoke();

  md.cpu_model = getenv_or("PARLAP_BENCH_CPU_MODEL", "");
  md.cpu_flags = getenv_or("PARLAP_BENCH_CPU_FLAGS", "");
  const char* nodes_env = std::getenv("PARLAP_BENCH_NUMA_NODES");
  if (nodes_env != nullptr && *nodes_env != '\0') {
    md.numa_nodes = std::max(1, std::atoi(nodes_env));
  } else {
    md.numa_nodes = kernels::numa_node_count();
  }
  md.simd_detected = kernels::simd_level_name(kernels::detected_simd_level());
  md.simd_active = kernels::simd_level_name(kernels::active_simd_level());
  md.precision = getenv_or("PARLAP_BENCH_PRECISION", "fp64");
  return md;
}

// ---------------------------------------------------------------------------
// BenchReporter
// ---------------------------------------------------------------------------

BenchReporter& BenchReporter::instance() {
  static BenchReporter reporter;
  return reporter;
}

BenchReporter::~BenchReporter() {
  try {
    write_to_env_path();
  } catch (...) {
    // Never throw out of a destructor at process exit.
  }
}

void BenchReporter::record(
    std::string name,
    std::initializer_list<std::pair<const char*, double>> metrics,
    std::span<const double> times_s) {
  BenchCase c;
  c.name = std::move(name);
  c.metrics.reserve(metrics.size());
  for (const auto& [k, v] : metrics) c.metrics.emplace_back(k, v);
  c.times_s.assign(times_s.begin(), times_s.end());
  record(std::move(c));
}

void BenchReporter::record_time(
    std::string name,
    std::initializer_list<std::pair<const char*, double>> metrics,
    double seconds) {
  record(std::move(name), metrics, std::span<const double>(&seconds, 1));
}

void BenchReporter::write(std::ostream& out) const {
  const RunMetadata md = collect_metadata();
  JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", std::int64_t{1});
  w.member("experiment", experiment_);

  w.key("meta");
  w.begin_object();
  w.member("commit", md.commit);
  w.member("timestamp_utc", md.timestamp_utc);
  w.member("hostname", md.hostname);
  w.member("compiler", md.compiler);
  w.member("build_type", md.build_type);
  w.member("threads", md.threads);
  w.member("smoke", md.smoke);
  w.member("precision", md.precision);
  w.key("host");
  w.begin_object();
  w.member("cpu_model", md.cpu_model);
  w.member("cpu_flags", md.cpu_flags);
  w.member("numa_nodes", md.numa_nodes);
  w.member("simd_detected", md.simd_detected);
  w.member("simd_active", md.simd_active);
  w.end_object();
  w.end_object();

  w.key("cases");
  w.begin_array();
  for (const BenchCase& c : cases_) {
    w.begin_object();
    w.member("name", c.name);
    w.key("metrics");
    w.begin_object();
    for (const auto& [k, v] : c.metrics) w.member(k, v);
    w.end_object();
    if (!c.times_s.empty()) {
      const TimingSummary t = summarize(c.times_s);
      w.key("timing_s");
      w.begin_object();
      w.member("reps", t.reps);
      w.member("median", t.median);
      w.member("mean", t.mean);
      w.member("stddev", t.stddev);
      w.member("min", t.min);
      w.member("max", t.max);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out << '\n';
}

bool BenchReporter::write_to_env_path() {
  if (written_ || cases_.empty()) return false;
  const char* path = std::getenv("PARLAP_BENCH_JSON");
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "parlap bench: cannot open " << path << " for writing\n";
    return false;
  }
  write(out);
  written_ = true;
  std::cerr << "parlap bench: wrote " << cases_.size() << " case(s) to "
            << path << "\n";
  return true;
}

}  // namespace parlap::bench
