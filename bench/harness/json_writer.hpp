// Benchmark-harness reporting: a minimal JSON emitter plus the shared
// run-metadata / warmup / repetition / aggregation logic used by every
// experiment binary (see EXPERIMENTS.md).
//
// Experiments keep printing their human-readable tables to stdout; when
// the environment variable PARLAP_BENCH_JSON names a file, the process
// additionally writes one machine-readable JSON document there on exit
// (via the BenchReporter singleton). scripts/run_benches.sh drives this
// to record a per-commit performance trajectory as BENCH_E*.json files.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/timer.hpp"

namespace parlap::bench {

// ---------------------------------------------------------------------------
// JsonWriter — a tiny streaming JSON emitter.
// ---------------------------------------------------------------------------

/// Streams syntactically valid JSON to an ostream: nested objects/arrays
/// with automatic comma placement, full string escaping, and non-finite
/// doubles mapped to null (JSON has no NaN/Inf). The caller is
/// responsible for balanced begin/end calls.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next member; must be inside an object.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::int64_t i);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(bool b);
  void null();

  /// key() + value() in one call.
  template <typename T>
  void member(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  /// Escapes `s` per RFC 8259 and returns it wrapped in double quotes.
  static std::string escape(std::string_view s);

  /// Shortest round-trippable decimal form; integral values within the
  /// exactly-representable range print without a fraction.
  static std::string format_number(double d);

 private:
  void begin_value();

  std::ostream& out_;
  // One frame per open container: whether a comma is pending before the
  // next element at that depth.
  std::vector<bool> needs_comma_{false};
  bool after_key_ = false;
};

// ---------------------------------------------------------------------------
// Timing aggregation
// ---------------------------------------------------------------------------

/// Summary of repeated timing samples (seconds). `median` averages the
/// middle pair for even counts; `stddev` is the sample (n-1) deviation,
/// zero for fewer than two samples.
struct TimingSummary {
  std::int64_t reps = 0;
  double median = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] TimingSummary summarize(std::span<const double> samples_s);

/// Runs `fn` `warmup` times untimed, then `reps` times timed, returning
/// the per-repetition wall-clock seconds.
template <typename Fn>
[[nodiscard]] std::vector<double> measure(int reps, int warmup, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps > 0 ? reps : 0));
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    samples.push_back(t.seconds());
  }
  return samples;
}

// ---------------------------------------------------------------------------
// Run metadata
// ---------------------------------------------------------------------------

/// Per-process facts recorded with every report so a JSON file is
/// attributable to a commit, machine, and thread count.
struct RunMetadata {
  std::string commit;         // $PARLAP_GIT_COMMIT, else build-time value
  std::string timestamp_utc;  // ISO 8601, e.g. "2026-07-27T12:00:00Z"
  std::string hostname;
  std::string compiler;
  std::string build_type;
  int threads = 1;  // omp_get_max_threads() at collection time
  bool smoke = false;
  // Host facts for the meta.host block: CPU model/flags come from
  // $PARLAP_BENCH_CPU_MODEL / $PARLAP_BENCH_CPU_FLAGS (run_benches.sh
  // reads /proc/cpuinfo), node count from $PARLAP_BENCH_NUMA_NODES or
  // sysfs; simd_detected/simd_active come straight from the dispatcher,
  // so a report shows which ISA produced its numbers.
  std::string cpu_model;
  std::string cpu_flags;
  int numa_nodes = 1;
  std::string simd_detected;
  std::string simd_active;
  // Precision mode the run was configured for ($PARLAP_BENCH_PRECISION,
  // default "fp64"). Recorded at the top of meta so
  // scripts/compare_benches.py can refuse to cross-compare an fp32 tree
  // against an fp64 baseline — the two are different workloads, not a
  // regression signal.
  std::string precision;
};

[[nodiscard]] RunMetadata collect_metadata();

/// True when PARLAP_SMOKE is set to a non-empty, non-"0" value; benches
/// shrink their sweeps so the whole suite finishes in seconds.
[[nodiscard]] bool smoke();

// ---------------------------------------------------------------------------
// BenchReporter
// ---------------------------------------------------------------------------

/// One recorded configuration of an experiment: a name, flat numeric
/// metrics, and optional raw timing samples (summarized on write).
struct BenchCase {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<double> times_s;
};

/// Accumulates BenchCases and writes the JSON document. Experiments use
/// the process-wide instance(); on exit it auto-writes to the path in
/// $PARLAP_BENCH_JSON when that variable is set.
class BenchReporter {
 public:
  BenchReporter() = default;
  ~BenchReporter();

  static BenchReporter& instance();

  void set_experiment(std::string id) { experiment_ = std::move(id); }

  void record(BenchCase c) { cases_.push_back(std::move(c)); }

  /// Convenience: record named metrics plus timing samples in one call.
  void record(std::string name,
              std::initializer_list<std::pair<const char*, double>> metrics,
              std::span<const double> times_s = {});

  /// Convenience for single-shot timings (reps = 1).
  void record_time(
      std::string name,
      std::initializer_list<std::pair<const char*, double>> metrics,
      double seconds);

  [[nodiscard]] std::size_t case_count() const { return cases_.size(); }

  void write(std::ostream& out) const;

  /// Writes to the $PARLAP_BENCH_JSON path if set and cases were
  /// recorded; returns true when a file was written.
  bool write_to_env_path();

 private:
  std::string experiment_ = "unnamed";
  std::vector<BenchCase> cases_;
  bool written_ = false;
};

}  // namespace parlap::bench
