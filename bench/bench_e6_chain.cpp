// E6 — Theorem 3.9: the chain has d = O(log n) levels and the
// factorization costs O(m log n) work. We fit depth against ln n, track
// per-level vertex/edge profiles, and report factor time per edge-level.
#include "common.hpp"
#include "core/block_cholesky.hpp"

using namespace parlap;
using namespace parlap::bench;

int main() {
  reporter().set_experiment("E6");
  {
    TextTable table("E6 chain depth & factor cost vs n (grid2d)");
    table.set_header({"n", "m", "depth", "depth/ln(n)", "factor_s",
                      "stored_entries", "stored/m"},
                     4);
    std::vector<double> ns;
    std::vector<double> ds;
    for (const Vertex side : sweep<Vertex>({32, 64, 128, 256, 384}, 3)) {
      const Multigraph g = make_family("grid2d", side, 3);
      WallTimer timer;
      const BlockCholeskyChain chain = BlockCholeskyChain::build(g, 5);
      const double factor_s = timer.seconds();
      const double n = static_cast<double>(g.num_vertices());
      ns.push_back(n);
      ds.push_back(chain.depth());
      reporter().record_time(
          "grid2d/n=" + std::to_string(g.num_vertices()),
          {{"n", n},
           {"m", static_cast<double>(g.num_edges())},
           {"depth", static_cast<double>(chain.depth())},
           {"stored_entries", static_cast<double>(chain.stored_entries())}},
          factor_s);
      table.add_row({static_cast<std::int64_t>(g.num_vertices()),
                     static_cast<std::int64_t>(g.num_edges()),
                     static_cast<std::int64_t>(chain.depth()),
                     chain.depth() / std::log(n), factor_s,
                     static_cast<std::int64_t>(chain.stored_entries()),
                     static_cast<double>(chain.stored_entries()) /
                         static_cast<double>(g.num_edges())});
    }
    print_table(table);
    std::cout << "claim check: depth/ln(n) is ~constant (d = O(log n)); the "
                 "constant ~20 comes from the 1/20 sampling fraction.\n\n";
  }

  {
    // Per-level profile: geometric vertex decay, bounded edge count.
    const Multigraph g =
        make_family("regular4", smoke() ? Vertex{8000} : Vertex{40000}, 7);
    const BlockCholeskyChain chain = BlockCholeskyChain::build(g, 9);
    TextTable table("E6b per-level profile — regular4 n=" +
                    std::to_string(g.num_vertices()) + " (every 10th level)");
    table.set_header({"level", "n_k", "m_k", "|F_k|", "F_frac",
                      "5dd_rounds"},
                     4);
    const auto& stats = chain.level_stats();
    for (std::size_t k = 0; k < stats.size();
         k += std::max<std::size_t>(1, stats.size() / 12)) {
      const LevelStats& ls = stats[k];
      table.add_row({static_cast<std::int64_t>(k),
                     static_cast<std::int64_t>(ls.n),
                     static_cast<std::int64_t>(ls.multi_edges),
                     static_cast<std::int64_t>(ls.f_size),
                     static_cast<double>(ls.f_size) / static_cast<double>(ls.n),
                     static_cast<std::int64_t>(ls.five_dd_rounds)});
    }
    print_table(table);
  }
  return 0;
}
