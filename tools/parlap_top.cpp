// parlap_top — live monitor for a running parlap_serve daemon.
//
// Polls {"type":"stats"} over the daemon's unix socket or loopback TCP
// port and renders a refreshing one-screen table: workers, queue depth
// vs limit, in-flight, sessions, shed rate, last-60s throughput and
// percentiles next to lifetime, and cache hit rate — the operator's
// `top` for the solve tier. One fresh connection per poll, so the
// monitor never holds a session slot between refreshes and a daemon
// restart just shows up as a reconnect.
//
//   parlap_top --socket /run/parlap.sock
//   parlap_top --tcp 7070 --interval-ms 500
//   parlap_top --socket s --count 1 --plain   # one snapshot, no ANSI
//
// Exit codes: 0 clean (count reached or SIGINT), 2 usage error,
// 3 connect/protocol failure on the FIRST poll (later failures are
// shown and retried — a draining daemon should not kill the monitor).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/json.hpp"

namespace {

using namespace parlap;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitRuntime = 3;

constexpr const char* kUsage = R"(usage: parlap_top (--socket PATH | --tcp PORT) [options]

Target (one required):
  --socket PATH          daemon's unix-domain socket
  --tcp PORT             daemon's loopback TCP port

Options:
  --interval-ms T        poll interval (default 1000)
  --count N              exit after N polls (default 0 = forever)
  --plain                no screen clearing; print one block per poll

Polls {"type":"stats"} and renders queue/worker/window/cache state.
See docs/SERVING.md ("Monitoring") for the fields.
)";

struct TopOptions {
  std::string socket_path;
  int tcp_port = -1;
  int interval_ms = 1000;
  long count = 0;
  bool plain = false;
};

std::string parse_string_flag(std::vector<std::string>& args,
                              const std::string& flag) {
  const auto it = std::find(args.begin(), args.end(), flag);
  if (it == args.end()) return "";
  const auto val = std::next(it);
  if (val == args.end()) {
    throw std::invalid_argument("option " + flag + " needs a value");
  }
  std::string out = *val;
  args.erase(it, std::next(val));
  return out;
}

long parse_int_flag(std::vector<std::string>& args, const std::string& flag,
                    long fallback) {
  const std::string raw = parse_string_flag(args, flag);
  if (raw.empty()) return fallback;
  try {
    std::size_t used = 0;
    const long out = std::stol(raw, &used);
    if (used != raw.size()) throw std::invalid_argument(raw);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option " + flag + ": '" + raw +
                                "' is not an integer");
  }
}

bool parse_bool_flag(std::vector<std::string>& args, const std::string& flag) {
  const auto it = std::find(args.begin(), args.end(), flag);
  if (it == args.end()) return false;
  args.erase(it);
  return true;
}

/// Connects, sends one stats request, reads one response line. Throws
/// on any failure — the caller decides whether that is fatal.
std::string fetch_stats(const TopOptions& opt) {
  int fd = -1;
  if (!opt.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long");
    }
    std::memcpy(addr.sun_path, opt.socket_path.c_str(),
                opt.socket_path.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      if (fd >= 0) ::close(fd);
      throw std::runtime_error("cannot connect to " + opt.socket_path + ": " +
                               std::strerror(errno));
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt.tcp_port));
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      if (fd >= 0) ::close(fd);
      throw std::runtime_error("cannot connect to tcp port " +
                               std::to_string(opt.tcp_port) + ": " +
                               std::strerror(errno));
    }
  }
  const char request[] = "{\"type\":\"stats\"}\n";
  if (::send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof(request) - 1)) {
    ::close(fd);
    throw std::runtime_error("stats request write failed");
  }
  std::string line;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("daemon closed before answering stats");
    }
    const char* nl =
        static_cast<const char*>(std::memchr(buf, '\n', static_cast<std::size_t>(n)));
    if (nl != nullptr) {
      line.append(buf, static_cast<std::size_t>(nl - buf));
      break;
    }
    line.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return line;
}

double num(const service::JsonValue* v, double fallback = 0.0) {
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

const service::JsonValue* child(const service::JsonValue* obj,
                                const char* key) {
  return obj != nullptr && obj->is_object() ? obj->find(key) : nullptr;
}

void render(const std::string& line, const TopOptions& opt) {
  const service::JsonValue doc = service::parse_json(line);
  if (!doc.is_object()) throw std::runtime_error("stats is not an object");

  const service::JsonValue* config = doc.find("config");
  const service::JsonValue* window = doc.find("window");
  const service::JsonValue* counters = doc.find("counters");
  const service::JsonValue* cache = doc.find("cache");
  const service::JsonValue* life_solve = doc.find("solve_seconds");
  const service::JsonValue* win_solve = child(window, "solve_seconds");
  const service::JsonValue* win_queue = child(window, "queue_wait_seconds");

  const double uptime = num(doc.find("uptime_seconds"));
  const double wcompleted = num(child(window, "completed"));
  const double wshed = num(child(window, "shed"));
  const double wseconds = num(child(window, "window_seconds"), 60.0);
  const double shed_rate = (wcompleted + wshed) > 0
                               ? wshed / (wcompleted + wshed)
                               : 0.0;
  const double lookups = num(child(cache, "hits")) + num(child(cache, "misses"));

  if (!opt.plain) std::fputs("\x1b[H\x1b[2J", stdout);
  char when[32];
  const std::time_t now = std::time(nullptr);
  std::strftime(when, sizeof when, "%H:%M:%S", std::localtime(&now));
  const service::JsonValue* draining = doc.find("draining");
  const bool is_draining =
      draining != nullptr && draining->is_bool() && draining->as_bool();
  std::printf("parlap_top  %s  up %.0fs%s\n", when, uptime,
              is_draining ? "  DRAINING" : "");
  const service::JsonValue* simd_active = child(config, "simd_active");
  const service::JsonValue* numa_policy = child(config, "numa");
  const service::JsonValue* precision = child(config, "precision");
  std::printf(
      "workers %d   simd %s   prec %s   numa %s   queue %.0f/%.0f "
      "(%.0f bytes)   in-flight %.0f   sessions %.0f\n",
      static_cast<int>(num(child(config, "workers"), 1)),
      simd_active != nullptr && simd_active->is_string()
          ? simd_active->as_string().c_str()
          : "?",
      precision != nullptr && precision->is_string()
          ? precision->as_string().c_str()
          : "fp64",  // pre-precision daemons have no field; fp64 is what they run
      numa_policy != nullptr && numa_policy->is_string()
          ? numa_policy->as_string().c_str()
          : "?",
      num(doc.find("queue_depth")), num(doc.find("queue_limit")),
      num(doc.find("queued_bytes")), num(doc.find("in_flight")),
      num(doc.find("sessions")));
  std::printf(
      "requests %.0f   completed %.0f   shed %.0f   rejected %.0f   "
      "errors %.0f\n",
      num(child(counters, "requests")), num(child(counters, "completed")),
      num(child(counters, "shed")), num(child(counters, "rejected")),
      num(child(counters, "errors")));
  std::printf("cache hit rate %5.1f%%  (%.0f lookups, %.0f resident)\n",
              num(child(cache, "hit_rate")) * 100.0, lookups,
              num(child(cache, "resident_count")));
  std::printf("\n%-14s %9s %9s %9s %9s %9s\n", "", "count", "mean_ms",
              "p50_ms", "p95_ms", "p99_ms");
  const auto row = [](const char* label, const service::JsonValue* digest) {
    std::printf("%-14s %9.0f %9.3f %9.3f %9.3f %9.3f\n", label,
                num(child(digest, "count")),
                num(child(digest, "mean")) * 1e3,
                num(child(digest, "p50")) * 1e3,
                num(child(digest, "p95")) * 1e3,
                num(child(digest, "p99")) * 1e3);
  };
  row("solve (60s)", win_solve);
  row("solve (life)", life_solve);
  row("queue (60s)", win_queue);
  std::printf(
      "\nlast %.0fs: %.2f solves/s   shed rate %.1f%%   (%.0f done, "
      "%.0f shed)\n",
      wseconds, wcompleted / wseconds, shed_rate * 100.0, wcompleted, wshed);
  std::fflush(stdout);
}

int run(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (parse_bool_flag(args, "--help") || parse_bool_flag(args, "-h")) {
    std::cout << kUsage;
    return kExitOk;
  }
  TopOptions opt;
  opt.socket_path = parse_string_flag(args, "--socket");
  opt.tcp_port = static_cast<int>(parse_int_flag(args, "--tcp", -1));
  opt.interval_ms =
      static_cast<int>(parse_int_flag(args, "--interval-ms", 1000));
  opt.count = parse_int_flag(args, "--count", 0);
  opt.plain = parse_bool_flag(args, "--plain");
  if (!args.empty()) {
    throw std::invalid_argument("unrecognized option '" + args.front() + "'");
  }
  if (opt.socket_path.empty() && opt.tcp_port < 0) {
    throw std::invalid_argument("--socket PATH or --tcp PORT is required");
  }
  if (opt.interval_ms < 1) {
    throw std::invalid_argument("--interval-ms must be >= 1");
  }

  for (long poll = 0; opt.count == 0 || poll < opt.count; ++poll) {
    try {
      render(fetch_stats(opt), opt);
    } catch (const std::exception& e) {
      // First poll failing means the target is wrong — bail loudly.
      // Later failures are transient (daemon draining/restarting).
      if (poll == 0) throw;
      std::printf("parlap_top: %s (retrying)\n", e.what());
      std::fflush(stdout);
    }
    if (opt.count != 0 && poll + 1 >= opt.count) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "parlap_top: " << e.what() << "\n\n" << kUsage;
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "parlap_top: " << e.what() << "\n";
    return kExitRuntime;
  }
}
