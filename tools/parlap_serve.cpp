// parlap_serve — network solve daemon over SolveServer.
//
// Binds a unix-domain socket (and optionally a loopback TCP port) and
// serves newline-delimited JSON solve requests — the `parlap_cli batch`
// job shape promoted to a long-running service with a shared
// factorization cache, bounded admission, per-client fairness, and
// graceful drain on SIGTERM/SIGINT or a {"type":"shutdown"} request.
// docs/SERVING.md is the protocol reference.
//
// Exit codes: 0 clean drain, 2 usage error, 3 startup/runtime failure.
#include <csignal>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/numa.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "support/table.hpp"

namespace {

using namespace parlap;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitRuntime = 3;

constexpr const char* kUsage = R"(usage: parlap_serve --socket PATH [options]

Listeners (at least one required):
  --socket PATH          unix-domain socket path
  --tcp PORT             loopback TCP port (0 picks a free port)

Capacity:
  --workers N            solver worker threads (default 1)
  --queue-limit N        max queued jobs before shedding (default 256)
  --max-queued-bytes B   max request bytes queued or executing (default 8 MiB)
  --max-line-bytes B     max request line length (default 1 MiB)
  --idle-timeout-ms T    reap sessions silent this long (default 0 = never)
  --retry-after-ms T     hint in overloaded responses (default 100)
  --cache-budget E       factorization cache budget in edge entries (0 = off)
  --graph-cache N        loaded-graph LRU bound (default 32)

Hardware:
  --simd LEVEL           apply-kernel dispatch: scalar|avx2|avx512|auto
                         (default $PARLAP_SIMD, else auto; results are
                         bit-identical at every level)
  --numa POLICY          chain/workspace placement: local|interleave
                         (default $PARLAP_NUMA, else local)
  --precision MODE       default factorization storage: fp64|fp32|auto
                         (default fp64; requests may override per job.
                         fp32 halves chain bytes and meets each job's
                         eps via fp64 iterative refinement)

Observability:
  --trace-out FILE       write a Chrome trace on exit (serve.* spans)
  --metrics              print the metrics table on exit
  --metrics-out FILE     write a final metrics JSON snapshot after drain
  --event-log FILE       append JSONL lifecycle + slow-request events
  --slow-ms T            event-log only solves >= T wall ms (default 0 = all)

Live telemetry (no flags needed): GET /metrics on either listener
returns the registry in Prometheus text format; {"type":"metrics"} and
{"type":"stats"} return it over the JSON protocol.

The daemon prints a "listening" line to stderr once ready and serves
until SIGTERM/SIGINT or a {"type":"shutdown"} request, then drains:
in-flight and queued jobs finish, new solves are rejected, responses
flush, and the process exits 0.  See docs/SERVING.md.
)";

service::SolveServer* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

std::int64_t parse_int_flag(std::vector<std::string>& args,
                            const std::string& flag, std::int64_t fallback) {
  const auto it = std::find(args.begin(), args.end(), flag);
  if (it == args.end()) return fallback;
  const auto val = std::next(it);
  if (val == args.end()) {
    throw std::invalid_argument("option " + flag + " needs a value");
  }
  std::int64_t out = 0;
  try {
    std::size_t used = 0;
    out = std::stoll(*val, &used);
    if (used != val->size()) throw std::invalid_argument(*val);
  } catch (const std::exception&) {
    throw std::invalid_argument("option " + flag + ": '" + *val +
                                "' is not an integer");
  }
  args.erase(it, std::next(val));
  return out;
}

std::string parse_string_flag(std::vector<std::string>& args,
                              const std::string& flag) {
  const auto it = std::find(args.begin(), args.end(), flag);
  if (it == args.end()) return "";
  const auto val = std::next(it);
  if (val == args.end()) {
    throw std::invalid_argument("option " + flag + " needs a value");
  }
  std::string out = *val;
  args.erase(it, std::next(val));
  return out;
}

double parse_double_flag(std::vector<std::string>& args,
                         const std::string& flag, double fallback) {
  const auto it = std::find(args.begin(), args.end(), flag);
  if (it == args.end()) return fallback;
  const auto val = std::next(it);
  if (val == args.end()) {
    throw std::invalid_argument("option " + flag + " needs a value");
  }
  double out = 0.0;
  try {
    std::size_t used = 0;
    out = std::stod(*val, &used);
    if (used != val->size()) throw std::invalid_argument(*val);
  } catch (const std::exception&) {
    throw std::invalid_argument("option " + flag + ": '" + *val +
                                "' is not a number");
  }
  args.erase(it, std::next(val));
  return out;
}

bool parse_bool_flag(std::vector<std::string>& args, const std::string& flag) {
  const auto it = std::find(args.begin(), args.end(), flag);
  if (it == args.end()) return false;
  args.erase(it);
  return true;
}

void print_metrics_table() {
  const std::vector<obs::MetricSample> samples =
      obs::MetricsRegistry::global().snapshot();
  TextTable table("metrics: process-wide registry (this run)");
  table.set_header(
      {"metric", "kind", "value", "count", "p50_ms", "p95_ms", "p99_ms"}, 4);
  for (const obs::MetricSample& s : samples) {
    const char* kind = "counter";
    if (s.kind == obs::MetricSample::Kind::kRealCounter) kind = "sum";
    if (s.kind == obs::MetricSample::Kind::kGauge) kind = "gauge";
    if (s.kind == obs::MetricSample::Kind::kHistogram) kind = "histogram";
    if (s.kind == obs::MetricSample::Kind::kHistogram) {
      table.add_row({s.name, std::string(kind), s.value,
                     static_cast<std::int64_t>(s.count), s.p50 * 1e3,
                     s.p95 * 1e3, s.p99 * 1e3});
    } else {
      table.add_row({s.name, std::string(kind), s.value, std::string(""),
                     std::string(""), std::string(""), std::string("")});
    }
  }
  table.print(std::cout);
}

int run(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (parse_bool_flag(args, "--help") || parse_bool_flag(args, "-h")) {
    std::cout << kUsage;
    return kExitOk;
  }

  service::ServerOptions opt;
  opt.socket_path = parse_string_flag(args, "--socket");
  opt.tcp_port = static_cast<int>(parse_int_flag(args, "--tcp", -1));
  opt.workers = static_cast<int>(parse_int_flag(args, "--workers", 1));
  opt.max_queue_depth = static_cast<std::size_t>(
      parse_int_flag(args, "--queue-limit", 256));
  opt.max_queued_bytes = static_cast<std::size_t>(parse_int_flag(
      args, "--max-queued-bytes",
      static_cast<std::int64_t>(opt.max_queued_bytes)));
  opt.max_line_bytes = static_cast<std::size_t>(parse_int_flag(
      args, "--max-line-bytes",
      static_cast<std::int64_t>(opt.max_line_bytes)));
  opt.idle_timeout_ms =
      static_cast<int>(parse_int_flag(args, "--idle-timeout-ms", 0));
  opt.retry_after_ms =
      static_cast<int>(parse_int_flag(args, "--retry-after-ms", 100));
  opt.cache_budget_entries =
      static_cast<EdgeId>(parse_int_flag(args, "--cache-budget", 0));
  opt.graph_cache_limit =
      static_cast<std::size_t>(parse_int_flag(args, "--graph-cache", 32));
  opt.event_log_path = parse_string_flag(args, "--event-log");
  opt.slow_ms = parse_double_flag(args, "--slow-ms", 0.0);
  opt.simd = parse_string_flag(args, "--simd");
  opt.numa = parse_string_flag(args, "--numa");
  opt.precision = parse_string_flag(args, "--precision");
  const std::string trace_path = parse_string_flag(args, "--trace-out");
  const std::string metrics_out = parse_string_flag(args, "--metrics-out");
  const bool metrics = parse_bool_flag(args, "--metrics");
  if (!args.empty()) {
    throw std::invalid_argument("unrecognized option '" + args.front() + "'");
  }
  if (opt.socket_path.empty() && opt.tcp_port < 0) {
    throw std::invalid_argument("--socket PATH or --tcp PORT is required");
  }
  if (opt.workers < 1) {
    throw std::invalid_argument("--workers must be >= 1");
  }
  if (opt.tcp_port > 65535) {
    throw std::invalid_argument("--tcp port out of range");
  }
  if (opt.idle_timeout_ms < 0 || opt.retry_after_ms < 0) {
    throw std::invalid_argument("timeouts must be non-negative");
  }
  if (opt.slow_ms < 0) {
    throw std::invalid_argument("--slow-ms must be non-negative");
  }
  if (!opt.simd.empty() && !kernels::parse_simd_level(opt.simd)) {
    throw std::invalid_argument("--simd wants scalar|avx2|avx512|auto, got '" +
                                opt.simd + "'");
  }
  if (!opt.numa.empty() && !kernels::parse_numa_policy(opt.numa)) {
    throw std::invalid_argument("--numa wants local|interleave, got '" +
                                opt.numa + "'");
  }
  if (!opt.precision.empty() && !parse_precision(opt.precision)) {
    throw std::invalid_argument("--precision wants fp64|fp32|auto, got '" +
                                opt.precision + "'");
  }

  if (!trace_path.empty()) {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().enable();
  }
  if (metrics) obs::MetricsRegistry::global().reset();

  service::SolveServer server(opt);
  server.start();

  // Drain cleanly on SIGTERM/SIGINT; a client vanishing mid-write must
  // surface as EPIPE on that socket, not kill the process.
  g_server = &server;
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::cerr << "parlap_serve: listening";
  if (!opt.socket_path.empty()) {
    std::cerr << " on " << opt.socket_path;
  }
  if (server.bound_tcp_port() >= 0) {
    std::cerr << (opt.socket_path.empty() ? " on" : " and")
              << " tcp port " << server.bound_tcp_port();
  }
  std::cerr << ", " << opt.workers << " worker(s), queue limit "
            << opt.max_queue_depth << ", precision "
            << (opt.precision.empty() ? "fp64" : opt.precision) << "\n"
            << std::flush;

  server.serve();
  g_server = nullptr;

  std::cerr << "parlap_serve: drained after " << server.completed_jobs()
            << " job(s), exiting\n";
  if (!trace_path.empty()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.disable();
    std::ofstream os(trace_path);
    if (!os.good()) {
      throw std::runtime_error("cannot open " + trace_path + " for writing");
    }
    tracer.write_chrome(os);
    std::cerr << "parlap_serve: wrote " << tracer.event_count()
              << " trace event(s) to " << trace_path << "\n";
  }
  if (!metrics_out.empty()) {
    // Final snapshot AFTER the drain: every worker is joined, so the
    // registry is quiescent and the counts are exact.
    std::ofstream os(metrics_out);
    if (!os.good()) {
      throw std::runtime_error("cannot open " + metrics_out +
                               " for writing");
    }
    os << obs::render_metrics_json(obs::MetricsRegistry::global().snapshot())
       << "\n";
    std::cerr << "parlap_serve: wrote metrics snapshot to " << metrics_out
              << "\n";
  }
  if (metrics) print_metrics_table();
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "parlap_serve: " << e.what() << "\n\n" << kUsage;
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "parlap_serve: " << e.what() << "\n";
    return kExitRuntime;
  }
}
