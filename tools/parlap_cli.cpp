// parlap_cli — the front door to the parlap library.
//
// One binary over the api facade (SolverRegistry / AnySolver): any graph
// a user has (Matrix Market, edge lists, generator specs) flows through
// the same subcommands —
//
//   solve   factor a graph under any registered method, solve one or
//           many right-hand sides, report human table and/or JSON
//   batch   run a JSONL job file through the concurrent SolveEngine
//           (shared factorization cache, --workers N)
//   info    graph / component / degree statistics
//   gen     write generator output to Matrix Market or edge-list files
//   bench   quick E1-style scaling sweep of one method
//
// Exit codes: 0 success, 1 solve ran but missed the residual target (or
// a batch job failed/missed), 2 usage error, 3 input or runtime error.
// docs/CLI.md is the reference.
#include <omp.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/any_solver.hpp"
#include "api/graph_source.hpp"
#include "core/build_stats.hpp"
#include "api/rhs.hpp"
#include "api/solver_registry.hpp"
#include "graph/connectivity.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "harness/json_writer.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/numa.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/job_file.hpp"
#include "service/solve_engine.hpp"
#include "support/table.hpp"

namespace {

using namespace parlap;

constexpr int kExitOk = 0;
constexpr int kExitNotConverged = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;

/// Thrown for malformed command lines; main() prints usage and exits 2.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---------------------------------------------------------------------------
// Argument parsing
// ---------------------------------------------------------------------------

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// Consumes `flag` if present (no value). Returns whether it was there.
  bool take_flag(const std::string& flag) {
    const auto it = std::find(args_.begin(), args_.end(), flag);
    if (it == args_.end()) return false;
    args_.erase(it);
    return true;
  }

  /// Consumes `flag VALUE` if present; returns the value.
  std::optional<std::string> take_value(const std::string& flag) {
    const auto it = std::find(args_.begin(), args_.end(), flag);
    if (it == args_.end()) return std::nullopt;
    const auto val = std::next(it);
    if (val == args_.end() || (val->size() > 1 && (*val)[0] == '-' &&
                               !std::isdigit(static_cast<unsigned char>((*val)[1])))) {
      throw UsageError("option " + flag + " needs a value");
    }
    std::string out = *val;
    args_.erase(it, std::next(val));
    return out;
  }

  double take_double(const std::string& flag, double fallback) {
    const auto v = take_value(flag);
    if (!v) return fallback;
    try {
      std::size_t used = 0;
      const double d = std::stod(*v, &used);
      if (used != v->size()) throw std::invalid_argument(*v);
      return d;
    } catch (const std::exception&) {
      throw UsageError("option " + flag + ": '" + *v + "' is not a number");
    }
  }

  std::int64_t take_int(const std::string& flag, std::int64_t fallback) {
    const auto v = take_value(flag);
    if (!v) return fallback;
    try {
      std::size_t used = 0;
      const std::int64_t i = std::stoll(*v, &used);
      if (used != v->size()) throw std::invalid_argument(*v);
      return i;
    } catch (const std::exception&) {
      throw UsageError("option " + flag + ": '" + *v + "' is not an integer");
    }
  }

  /// All options must have been consumed by now.
  void expect_empty() const {
    if (!args_.empty()) {
      throw UsageError("unrecognized option '" + args_.front() + "'");
    }
  }

 private:
  std::vector<std::string> args_;
};

// ---------------------------------------------------------------------------
// Shared input handling (solve / info)
// ---------------------------------------------------------------------------

struct InputOptions {
  std::string input_path;  ///< --input
  std::string gen_spec;    ///< --gen
  bool laplacian = false;  ///< --laplacian (.mtx entries are L values)
  std::string weights;     ///< --weights
  std::uint64_t seed = 42;
};

InputOptions take_input_options(Args& args) {
  InputOptions in;
  in.input_path = args.take_value("--input").value_or("");
  in.gen_spec = args.take_value("--gen").value_or("");
  in.laplacian = args.take_flag("--laplacian");
  in.weights = args.take_value("--weights").value_or("");
  in.seed = static_cast<std::uint64_t>(args.take_int("--seed", 42));
  if (const auto t = args.take_int("--threads", 0); t > 0) {
    omp_set_num_threads(static_cast<int>(t));
  }
  return in;
}

Multigraph load_input(const InputOptions& in) {
  if (in.input_path.empty() == in.gen_spec.empty()) {
    throw UsageError("exactly one of --input PATH or --gen SPEC is required");
  }
  Multigraph g =
      in.input_path.empty()
          ? make_generated_graph(in.gen_spec, in.seed)
          : load_graph_file(in.input_path, GraphFileFormat::kAuto,
                            in.laplacian ? MatrixMarketKind::kLaplacian
                                         : MatrixMarketKind::kAdjacency);
  if (!in.weights.empty()) {
    apply_weights(g, parse_weight_model(in.weights), in.seed + 1);
  }
  if (g.num_vertices() == 0) {
    throw std::runtime_error("input graph has no vertices");
  }
  return g;
}

std::string describe_input(const InputOptions& in) {
  return in.input_path.empty() ? "gen:" + in.gen_spec : in.input_path;
}

void write_json_metadata(bench::JsonWriter& w) {
  const bench::RunMetadata md = bench::collect_metadata();
  w.key("metadata");
  w.begin_object();
  w.member("commit", md.commit);
  w.member("timestamp_utc", md.timestamp_utc);
  w.member("hostname", md.hostname);
  w.member("compiler", md.compiler);
  w.member("build_type", md.build_type);
  w.member("threads", md.threads);
  w.end_object();
}

std::ofstream open_output(const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  return os;
}

// ---------------------------------------------------------------------------
// Observability export (--trace-out / --metrics)
// ---------------------------------------------------------------------------

/// Shared tracing/metrics flags (solve and batch). Construction arms
/// the tracer (and zeroes the metrics registry, so the export covers
/// this run alone); finish() flushes the trace file and prints the
/// metrics table. Tracing stays disabled — a compiled-in span is one
/// predicted branch — unless --trace-out is given.
struct ObsOptions {
  std::string trace_path;  ///< --trace-out FILE (empty: tracing off)
  bool metrics = false;    ///< --metrics: human summary table

  static ObsOptions take(Args& args) {
    ObsOptions obs;
    obs.trace_path = args.take_value("--trace-out").value_or("");
    obs.metrics = args.take_flag("--metrics");
    if (!obs.trace_path.empty()) {
      obs::Tracer::instance().clear();
      obs::Tracer::instance().enable();
    }
    if (obs.metrics) obs::MetricsRegistry::global().reset();
    return obs;
  }

  void finish() const {
    if (!trace_path.empty()) {
      obs::Tracer& tracer = obs::Tracer::instance();
      tracer.disable();
      std::ofstream os = open_output(trace_path);
      tracer.write_chrome(os);
      std::cerr << "parlap_cli: wrote " << tracer.event_count()
                << " trace event(s) to " << trace_path;
      if (tracer.dropped() > 0) {
        std::cerr << " (" << tracer.dropped()
                  << " dropped: per-thread buffers filled)";
      }
      std::cerr << "\n";
    }
    if (metrics) print_metrics_table();
  }

  static void print_metrics_table() {
    const std::vector<obs::MetricSample> samples =
        obs::MetricsRegistry::global().snapshot();
    TextTable table("metrics: process-wide registry (this run)");
    table.set_header({"metric", "kind", "value", "count", "p50_ms", "p95_ms",
                      "p99_ms"},
                     4);
    for (const obs::MetricSample& s : samples) {
      const char* kind = "counter";
      if (s.kind == obs::MetricSample::Kind::kRealCounter) kind = "sum";
      if (s.kind == obs::MetricSample::Kind::kGauge) kind = "gauge";
      if (s.kind == obs::MetricSample::Kind::kHistogram) kind = "histogram";
      if (s.kind == obs::MetricSample::Kind::kHistogram) {
        table.add_row({s.name, std::string(kind), s.value,
                       static_cast<std::int64_t>(s.count), s.p50 * 1e3,
                       s.p95 * 1e3, s.p99 * 1e3});
      } else {
        table.add_row({s.name, std::string(kind), s.value, std::string(""),
                       std::string(""), std::string(""), std::string("")});
      }
    }
    table.print(std::cout);
  }
};

// ---------------------------------------------------------------------------
// Build-phase telemetry rendering (--build-stats)
// ---------------------------------------------------------------------------

void print_build_stats(const std::string& method, const BuildStats& bs) {
  TextTable table("build: method " + method + ", " +
                  std::to_string(bs.levels) + " level(s), arena " +
                  bench::JsonWriter::format_number(
                      static_cast<double>(bs.peak_arena_bytes) / (1 << 20)) +
                  " MiB, " + std::to_string(bs.arena_allocations) +
                  " arena realloc(s)");
  table.set_header({"level", "n", "m", "|F|", "degrees_ms", "five_dd_ms",
                    "partition_ms", "walk_graph_ms", "schur_ms",
                    "extract_ms"},
                   4);
  for (std::size_t k = 0; k < bs.level_timings.size(); ++k) {
    const BuildLevelTiming& lt = bs.level_timings[k];
    table.add_row({static_cast<std::int64_t>(k),
                   static_cast<std::int64_t>(lt.n),
                   static_cast<std::int64_t>(lt.edges),
                   static_cast<std::int64_t>(lt.f_size),
                   lt.phases.degrees * 1e3, lt.phases.five_dd * 1e3,
                   lt.phases.partition * 1e3, lt.phases.walk_graph * 1e3,
                   lt.phases.schur * 1e3, lt.phases.extract * 1e3});
  }
  table.add_row({std::string("total"), std::string(""), std::string(""),
                 std::string(""), bs.phases.degrees * 1e3,
                 bs.phases.five_dd * 1e3, bs.phases.partition * 1e3,
                 bs.phases.walk_graph * 1e3, bs.phases.schur * 1e3,
                 bs.phases.extract * 1e3});
  table.print(std::cout);
  std::cout << "build: levels " << bs.phases.total() << " s + base "
            << bs.base_seconds << " s = " << bs.total_seconds
            << " s total\n";
}

void write_build_stats_json(bench::JsonWriter& w, const BuildStats& bs) {
  w.key("build");
  w.begin_object();
  w.member("total_seconds", bs.total_seconds);
  w.member("base_seconds", bs.base_seconds);
  w.member("levels", bs.levels);
  w.member("peak_arena_bytes", static_cast<std::int64_t>(bs.peak_arena_bytes));
  w.member("arena_allocations",
           static_cast<std::int64_t>(bs.arena_allocations));
  w.key("phases");
  w.begin_object();
  w.member("degrees_seconds", bs.phases.degrees);
  w.member("five_dd_seconds", bs.phases.five_dd);
  w.member("partition_seconds", bs.phases.partition);
  w.member("walk_graph_seconds", bs.phases.walk_graph);
  w.member("schur_seconds", bs.phases.schur);
  w.member("extract_seconds", bs.phases.extract);
  w.end_object();
  w.key("levels_detail");
  w.begin_array();
  for (const BuildLevelTiming& lt : bs.level_timings) {
    w.begin_object();
    w.member("n", static_cast<std::int64_t>(lt.n));
    w.member("edges", static_cast<std::int64_t>(lt.edges));
    w.member("f_size", static_cast<std::int64_t>(lt.f_size));
    w.member("degrees_seconds", lt.phases.degrees);
    w.member("five_dd_seconds", lt.phases.five_dd);
    w.member("partition_seconds", lt.phases.partition);
    w.member("walk_graph_seconds", lt.phases.walk_graph);
    w.member("schur_seconds", lt.phases.schur);
    w.member("extract_seconds", lt.phases.extract);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// ---------------------------------------------------------------------------
// solve
// ---------------------------------------------------------------------------

void list_methods(std::ostream& os) {
  os << "registered solver methods:\n";
  for (const auto& m : SolverRegistry::instance().methods()) {
    os << "  " << m.name << std::string(m.name.size() < 12 ? 12 - m.name.size() : 1, ' ')
       << m.description << '\n';
  }
}

int cmd_solve(Args& args) {
  if (args.take_flag("--list-methods")) {
    list_methods(std::cout);
    return kExitOk;
  }
  const InputOptions in = take_input_options(args);
  const std::string method = args.take_value("--method").value_or("parlap");
  const double eps = args.take_double("--eps", 1e-8);
  const std::string rhs_path = args.take_value("--rhs").value_or("");
  const auto rhs_demand = args.take_value("--rhs-demand");
  const auto rhs_random = args.take_int("--rhs-random", -1);
  if (rhs_random == 0 || rhs_random < -1) {
    throw UsageError("--rhs-random wants a count >= 1, got " +
                     std::to_string(rhs_random));
  }
  const bool project_rhs = args.take_flag("--project-rhs");
  const bool build_stats = args.take_flag("--build-stats");
  const ObsOptions obs = ObsOptions::take(args);
  const std::string out_path = args.take_value("--out").value_or("");
  const std::string json_path = args.take_value("--json").value_or("");
  SolverConfig config;
  config.seed = in.seed;
  config.split_scale = args.take_double("--split-scale", 0.0);
  config.max_iterations =
      static_cast<int>(args.take_int("--max-iterations", 0));
  const std::string precision_arg =
      args.take_value("--precision").value_or("fp64");
  const auto precision_mode = parse_precision(precision_arg);
  if (!precision_mode.has_value()) {
    throw UsageError("--precision wants fp64|fp32|auto, got '" +
                     precision_arg + "'");
  }
  config.precision = *precision_mode;
  args.expect_empty();
  if ((rhs_path.empty() ? 0 : 1) + (rhs_demand ? 1 : 0) +
          (rhs_random > 0 ? 1 : 0) >
      1) {
    throw UsageError(
        "--rhs, --rhs-demand, and --rhs-random are mutually exclusive");
  }

  PARLAP_TRACE_SPAN_N(cli_span, "cli.solve", "cli");
  const Multigraph g = load_input(in);
  const Components comps = connected_components(g);

  // Assemble the right-hand sides (default: unit demand 0 -> n-1).
  std::vector<Vector> bs;
  std::vector<std::string> labels;
  const Vertex n = g.num_vertices();
  if (!rhs_path.empty()) {
    bs.push_back(read_rhs_file(rhs_path, n));
    labels.push_back("file:" + rhs_path);
  } else if (rhs_random > 0) {
    for (std::int64_t k = 0; k < rhs_random; ++k) {
      bs.push_back(random_rhs(n, in.seed + static_cast<std::uint64_t>(k)));
      labels.push_back("random:" + std::to_string(in.seed + k));
    }
  } else {
    std::int64_t s = 0;
    std::int64_t t = n - 1;
    if (rhs_demand) {
      const std::size_t comma = rhs_demand->find(',');
      if (comma == std::string::npos) {
        throw UsageError("--rhs-demand wants S,T (two vertex ids)");
      }
      try {
        std::size_t used_s = 0;
        std::size_t used_t = 0;
        s = std::stoll(rhs_demand->substr(0, comma), &used_s);
        t = std::stoll(rhs_demand->substr(comma + 1), &used_t);
        if (used_s != comma || used_t != rhs_demand->size() - comma - 1) {
          throw std::invalid_argument(*rhs_demand);
        }
      } catch (const std::exception&) {
        throw UsageError("--rhs-demand: '" + *rhs_demand +
                         "' is not a vertex pair S,T");
      }
    }
    // Validate before narrowing to the 32-bit Vertex type; demand_rhs
    // re-checks, but its contract-check message is not user-facing.
    if (s < 0 || s >= n || t < 0 || t >= n) {
      throw std::runtime_error("demand endpoints (" + std::to_string(s) +
                               ", " + std::to_string(t) +
                               ") out of range for " + std::to_string(n) +
                               " vertices");
    }
    if (s == t) {
      throw std::runtime_error(
          n == 1 ? "the graph has a single vertex; there is no demand "
                   "system to solve (give --rhs FILE instead)"
                 : "demand endpoints must differ, got " + std::to_string(s) +
                       "," + std::to_string(t));
    }
    bs.push_back(demand_rhs(n, static_cast<Vertex>(s),
                            static_cast<Vertex>(t)));
    labels.push_back("demand:" + std::to_string(s) + "," + std::to_string(t));
  }

  // The small-fix contract: a right-hand side that is not balanced per
  // component cannot be solved exactly — fail loudly instead of silently
  // returning the least-squares answer, unless the user opted in.
  for (std::size_t k = 0; k < bs.size(); ++k) {
    const RhsCompatibility compat = check_rhs_compatibility(bs[k], comps);
    if (!compat.compatible && !project_rhs) {
      throw std::runtime_error(
          "right-hand side '" + labels[k] + "' is incompatible: component " +
          std::to_string(compat.worst_component) + " of " +
          std::to_string(comps.count) + " has relative net imbalance " +
          std::to_string(compat.worst_imbalance) +
          " (L x = b needs zero sum per component; rerun with "
          "--project-rhs to solve the least-squares projection)");
    }
  }

  std::cerr << "parlap_cli: " << describe_input(in) << ": " << n
            << " vertices, " << g.num_edges() << " edges, " << comps.count
            << " component(s)\n";
  const std::unique_ptr<AnySolver> solver =
      SolverRegistry::instance().create(method, g, config);
  std::cerr << "parlap_cli: method '" << method << "' factored in "
            << solver->setup_seconds() << " s\n";
  if (build_stats) {
    if (const BuildStats* bs = solver->build_stats()) {
      print_build_stats(method, *bs);
    } else {
      std::cerr << "parlap_cli: method '" << method
                << "' does not report build-phase stats\n";
    }
  }

  std::vector<RunReport> reports;
  std::vector<Vector> xs;
  for (const Vector& b : bs) {
    Vector x(b.size(), 0.0);
    reports.push_back(solver->solve(b, x, eps));
    xs.push_back(std::move(x));
  }

  // The storage precision actually used (auto resolved at factor time).
  const Precision precision_used =
      reports.empty() ? *precision_mode : reports.front().precision;
  TextTable table("solve: method " + method + ", eps " +
                  bench::JsonWriter::format_number(eps) + ", precision " +
                  precision_name(precision_used));
  table.set_header({"rhs", "iterations", "solve_s", "residual", "converged"},
                   6);
  bool all_converged = true;
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const RunReport& r = reports[k];
    table.add_row({labels[k], static_cast<std::int64_t>(r.iterations),
                   r.solve_seconds, r.relative_residual,
                   std::string(r.converged ? "yes" : "NO")});
    all_converged = all_converged && r.converged;
  }
  table.print(std::cout);

  if (!out_path.empty()) {
    std::ofstream os = open_output(out_path);
    os.precision(std::numeric_limits<double>::max_digits10);
    for (std::size_t i = 0; i < xs.front().size(); ++i) {
      for (std::size_t k = 0; k < xs.size(); ++k) {
        os << (k > 0 ? " " : "") << xs[k][i];
      }
      os << '\n';
    }
  }

  if (!json_path.empty()) {
    std::ofstream os = open_output(json_path);
    bench::JsonWriter w(os);
    w.begin_object();
    w.member("schema", "parlap-cli-solve-v1");
    write_json_metadata(w);
    w.key("input");
    w.begin_object();
    w.member("source", describe_input(in));
    w.member("vertices", static_cast<std::int64_t>(n));
    w.member("edges", static_cast<std::int64_t>(g.num_edges()));
    w.member("components", static_cast<std::int64_t>(comps.count));
    w.end_object();
    w.member("method", method);
    w.member("eps", eps);
    w.member("precision", precision_name(precision_used));
    w.member("setup_seconds", solver->setup_seconds());
    if (const BuildStats* bs = solver->build_stats()) {
      write_build_stats_json(w, *bs);
    }
    w.key("runs");
    w.begin_array();
    for (std::size_t k = 0; k < reports.size(); ++k) {
      const RunReport& r = reports[k];
      w.begin_object();
      w.member("rhs", labels[k]);
      w.member("iterations", r.iterations);
      w.member("escalations", r.escalations);
      w.member("solve_seconds", r.solve_seconds);
      w.member("relative_residual", r.relative_residual);
      w.member("converged", r.converged);
      w.member("threads", r.threads);
      w.end_object();
    }
    w.end_array();
    w.member("all_converged", all_converged);
    w.end_object();
    os << '\n';
  }

  cli_span.end();
  obs.finish();
  return all_converged ? kExitOk : kExitNotConverged;
}

// ---------------------------------------------------------------------------
// batch
// ---------------------------------------------------------------------------

int cmd_batch(Args& args) {
  const std::string jobs_path = args.take_value("--jobs").value_or("");
  const auto workers = args.take_int("--workers", 1);
  const auto cache_budget = args.take_int("--cache-budget", 0);
  const auto block_width = args.take_int("--block-width", 1);
  const std::string precision = args.take_value("--precision").value_or("");
  if (!precision.empty() && !parse_precision(precision).has_value()) {
    throw UsageError("--precision wants fp64|fp32|auto, got '" + precision +
                     "'");
  }
  const bool keep_solutions = args.take_flag("--solutions");
  const std::string json_path = args.take_value("--json").value_or("");
  const std::string out_path = args.take_value("--out").value_or("");
  const ObsOptions obs = ObsOptions::take(args);
  args.expect_empty();
  if (jobs_path.empty()) throw UsageError("batch requires --jobs FILE");
  if (workers < 1) throw UsageError("--workers must be >= 1");
  if (cache_budget < 0) throw UsageError("--cache-budget must be >= 0");
  if (block_width < 1) throw UsageError("--block-width must be >= 1");
  if (out_path.empty() != !keep_solutions) {
    throw UsageError("--solutions and --out DIR go together");
  }

  std::ifstream jobs_in(jobs_path);
  if (!jobs_in.good()) {
    throw std::runtime_error("cannot open job file " + jobs_path);
  }
  const std::vector<service::SolveJob> jobs =
      service::parse_jobs_jsonl(jobs_in);
  if (jobs.empty()) {
    throw std::runtime_error("job file " + jobs_path + " contains no jobs");
  }

  service::EngineOptions engine_options;
  engine_options.workers = static_cast<int>(workers);
  engine_options.cache_budget_entries = static_cast<EdgeId>(cache_budget);
  engine_options.keep_solutions = keep_solutions;
  engine_options.block_width = static_cast<int>(block_width);
  engine_options.precision = precision;
  service::SolveEngine engine(engine_options);

  std::cerr << "parlap_cli: batch " << jobs_path << ": " << jobs.size()
            << " job(s), " << workers << " worker(s), block width "
            << block_width << "\n";
  PARLAP_TRACE_SPAN_N(cli_span, "cli.batch", "cli");
  const service::BatchResult batch = engine.run(jobs);
  const service::EngineStats& stats = batch.stats;

  TextTable table("batch: " + jobs_path + ", workers " +
                  std::to_string(workers));
  table.set_header({"job", "method", "cache", "iters", "solve_s", "residual",
                    "status"},
                   5);
  bool all_converged = true;
  for (const service::JobResult& r : batch.jobs) {
    const std::string status =
        !r.ok ? "ERROR" : (r.report.converged ? "ok" : "NO-CONV");
    all_converged = all_converged && r.ok && r.report.converged;
    table.add_row({r.id, r.report.method,
                   std::string(r.cache_hit ? "hit" : "miss"),
                   static_cast<std::int64_t>(r.report.iterations),
                   r.report.solve_seconds, r.report.relative_residual,
                   status});
  }
  table.print(std::cout);
  for (const service::JobResult& r : batch.jobs) {
    if (!r.ok) std::cerr << "parlap_cli: job " << r.id << ": " << r.error << '\n';
  }
  std::cout << "batch: " << stats.succeeded << "/" << stats.jobs
            << " solved in " << stats.wall_seconds << " s ("
            << stats.solves_per_second << " solves/s), cache "
            << stats.cache.hits << " hit(s) / " << stats.cache.misses
            << " miss(es) / " << stats.cache.evictions << " eviction(s), "
            << stats.cache.build_seconds << " s factorizing, "
            << stats.panels << " panel(s) at occupancy "
            << stats.panel_occupancy << "\n";
  std::cout << "batch: solve p50/p95/p99 " << stats.p50_solve_seconds << "/"
            << stats.p95_solve_seconds << "/" << stats.p99_solve_seconds
            << " s, queue wait p50/p95/p99 " << stats.p50_queue_seconds
            << "/" << stats.p95_queue_seconds << "/"
            << stats.p99_queue_seconds << " s, cache hit rate "
            << stats.cache_hit_rate << "\n";

  if (!json_path.empty()) {
    std::ofstream os = open_output(json_path);
    bench::JsonWriter w(os);
    w.begin_object();
    w.member("schema", "parlap-cli-batch-v3");
    write_json_metadata(w);
    w.member("jobs_file", jobs_path);
    w.member("workers", static_cast<std::int64_t>(workers));
    w.member("block_width", static_cast<std::int64_t>(block_width));
    // The engine-default precision mode; per-job precision (post-auto
    // resolution) rides in each job entry below.
    w.member("precision", precision.empty() ? "fp64" : precision);
    w.key("cache");
    w.begin_object();
    w.member("budget_entries", static_cast<std::int64_t>(cache_budget));
    w.member("hits", static_cast<std::int64_t>(stats.cache.hits));
    w.member("misses", static_cast<std::int64_t>(stats.cache.misses));
    w.member("evictions", static_cast<std::int64_t>(stats.cache.evictions));
    w.member("resident_entries",
             static_cast<std::int64_t>(stats.cache.resident_entries));
    w.member("resident_count",
             static_cast<std::int64_t>(stats.cache.resident_count));
    // Miss cost attribution: wall seconds this batch spent factorizing.
    w.member("build_seconds", stats.cache.build_seconds);
    w.member("single_flight_waits",
             static_cast<std::int64_t>(stats.cache.single_flight_waits));
    w.member("single_flight_wait_seconds",
             stats.cache.single_flight_wait_seconds);
    w.end_object();
    w.key("aggregate");
    w.begin_object();
    w.member("jobs", stats.jobs);
    w.member("succeeded", stats.succeeded);
    w.member("converged", stats.converged);
    w.member("failed", stats.failed);
    w.member("wall_seconds", stats.wall_seconds);
    w.member("solves_per_second", stats.solves_per_second);
    w.member("p50_solve_seconds", stats.p50_solve_seconds);
    w.member("p95_solve_seconds", stats.p95_solve_seconds);
    w.member("p99_solve_seconds", stats.p99_solve_seconds);
    w.member("panels", stats.panels);
    w.member("panel_occupancy", stats.panel_occupancy);
    w.end_object();
    // The v3 metrics block: latency digests from the obs histogram
    // registry (log-bucketed percentiles, see docs/OBSERVABILITY.md)
    // plus the batch's cache behavior as rates.
    w.key("metrics");
    w.begin_object();
    w.key("solve_seconds");
    w.begin_object();
    w.member("count", stats.succeeded);
    w.member("p50", stats.p50_solve_seconds);
    w.member("p95", stats.p95_solve_seconds);
    w.member("p99", stats.p99_solve_seconds);
    w.end_object();
    w.key("queue_wait_seconds");
    w.begin_object();
    w.member("count", stats.panels);
    w.member("p50", stats.p50_queue_seconds);
    w.member("p95", stats.p95_queue_seconds);
    w.member("p99", stats.p99_queue_seconds);
    w.end_object();
    w.member("cache_hit_rate", stats.cache_hit_rate);
    w.member("cache_single_flight_waits",
             static_cast<std::int64_t>(stats.cache.single_flight_waits));
    w.member("cache_single_flight_wait_seconds",
             stats.cache.single_flight_wait_seconds);
    w.end_object();
    // One entry per solved panel (width-1 singletons included):
    // occupancy and per-panel apply cost read directly from the list.
    w.key("panels");
    w.begin_array();
    for (const service::PanelStats& p : batch.panels) {
      w.begin_object();
      w.member("width", static_cast<std::int64_t>(p.width));
      w.member("cache_hit", p.cache_hit);
      w.member("solve_seconds", p.solve_seconds);
      w.member("apply_seconds", p.apply_seconds);
      w.member("queue_seconds", p.queue_seconds);
      w.member("exec_seconds", p.exec_seconds);
      w.key("jobs");
      w.begin_array();
      for (const std::string& id : p.job_ids) w.value(id);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("jobs");
    w.begin_array();
    for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
      const service::JobResult& r = batch.jobs[i];
      w.begin_object();
      w.member("id", r.id);
      w.member("graph", jobs[i].graph);
      w.member("method", jobs[i].method);
      w.member("rhs", jobs[i].rhs);
      w.member("ok", r.ok);
      if (!r.ok) {
        w.member("error", r.error);
      } else {
        w.member("cache_hit", r.cache_hit);
        w.member("setup_seconds", r.report.setup_seconds);
        // Chain-build seconds of the factorization this job used (paid
        // once by the miss; repeated on hits like setup_seconds).
        w.member("build_seconds",
                 r.report.has_build_stats ? r.report.build.total_seconds
                                          : 0.0);
        w.member("build_arena_allocations",
                 r.report.has_build_stats
                     ? static_cast<std::int64_t>(
                           r.report.build.arena_allocations)
                     : std::int64_t{0});
        w.member("solve_seconds", r.report.solve_seconds);
        w.member("apply_seconds", r.report.apply_seconds);
        w.member("panel_width", static_cast<std::int64_t>(r.report.panel_width));
        w.member("iterations", r.report.iterations);
        w.member("escalations", static_cast<std::int64_t>(r.report.escalations));
        w.member("precision", precision_name(r.report.precision));
        w.member("relative_residual", r.report.relative_residual);
        w.member("converged", r.report.converged);
        // Hex so the 64-bit fingerprint survives JSON double precision.
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(r.solution_hash));
        w.member("solution_hash", hex);
      }
      w.end_object();
    }
    w.end_array();
    w.member("all_converged", all_converged);
    w.end_object();
    os << '\n';
  }

  // Solutions last, after the JSON report is safely on disk: an
  // unwritable --out directory costs the solution files, not the
  // already-computed report. (Job ids are charset-restricted by
  // parse_jobs_jsonl, so the path below cannot escape --out.)
  if (!out_path.empty()) {
    // One file per job: <out>/<job-id>.x, one value per vertex.
    for (const service::JobResult& r : batch.jobs) {
      if (!r.ok) continue;
      std::ofstream os = open_output(out_path + "/" + r.id + ".x");
      os.precision(std::numeric_limits<double>::max_digits10);
      for (const double v : r.solution) os << v << '\n';
    }
  }

  cli_span.end();
  obs.finish();
  return all_converged ? kExitOk : kExitNotConverged;
}

// ---------------------------------------------------------------------------
// info
// ---------------------------------------------------------------------------

int cmd_info(Args& args) {
  const InputOptions in = take_input_options(args);
  const std::string json_path = args.take_value("--json").value_or("");
  args.expect_empty();

  const Multigraph g = load_input(in);
  const Components comps = connected_components(g);
  const CsrGraph csr(g);
  const Vertex n = g.num_vertices();

  EdgeId min_deg = std::numeric_limits<EdgeId>::max();
  EdgeId max_deg = 0;
  Weight min_w = std::numeric_limits<Weight>::infinity();
  Weight max_w = 0.0;
  for (Vertex v = 0; v < n; ++v) {
    min_deg = std::min(min_deg, csr.degree(v));
    max_deg = std::max(max_deg, csr.degree(v));
    min_w = std::min(min_w, csr.weighted_degree(v));
    max_w = std::max(max_w, csr.weighted_degree(v));
  }
  std::vector<Vertex> comp_size(static_cast<std::size_t>(comps.count), 0);
  for (const Vertex c : comps.label) ++comp_size[static_cast<std::size_t>(c)];
  const Vertex largest =
      *std::max_element(comp_size.begin(), comp_size.end());
  const double mean_deg =
      n > 0 ? 2.0 * static_cast<double>(g.num_edges()) / n : 0.0;

  TextTable table("info: " + describe_input(in));
  table.set_header({"stat", "value"}, 6);
  table.add_row({std::string("vertices"), static_cast<std::int64_t>(n)});
  table.add_row(
      {std::string("multi-edges"), static_cast<std::int64_t>(g.num_edges())});
  table.add_row(
      {std::string("components"), static_cast<std::int64_t>(comps.count)});
  table.add_row({std::string("largest_component"),
                 static_cast<std::int64_t>(largest)});
  table.add_row(
      {std::string("min_degree"), static_cast<std::int64_t>(min_deg)});
  table.add_row({std::string("mean_degree"), mean_deg});
  table.add_row(
      {std::string("max_degree"), static_cast<std::int64_t>(max_deg)});
  table.add_row({std::string("min_weighted_degree"), min_w});
  table.add_row({std::string("max_weighted_degree"), max_w});
  table.add_row({std::string("total_weight"), g.total_weight()});
  table.add_row({std::string("simd_detected"),
                 std::string(kernels::simd_level_name(
                     kernels::detected_simd_level()))});
  table.add_row({std::string("simd_active"),
                 std::string(kernels::simd_level_name(
                     kernels::active_simd_level()))});
  table.add_row({std::string("numa_policy"),
                 std::string(kernels::numa_policy_name(
                     kernels::active_numa_policy()))});
  table.add_row({std::string("numa_nodes"),
                 static_cast<std::int64_t>(kernels::numa_node_count())});
  table.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream os = open_output(json_path);
    bench::JsonWriter w(os);
    w.begin_object();
    w.member("schema", "parlap-cli-info-v1");
    write_json_metadata(w);
    w.member("source", describe_input(in));
    w.member("vertices", static_cast<std::int64_t>(n));
    w.member("edges", static_cast<std::int64_t>(g.num_edges()));
    w.member("components", static_cast<std::int64_t>(comps.count));
    w.member("largest_component", static_cast<std::int64_t>(largest));
    w.member("min_degree", static_cast<std::int64_t>(min_deg));
    w.member("mean_degree", mean_deg);
    w.member("max_degree", static_cast<std::int64_t>(max_deg));
    w.member("min_weighted_degree", min_w);
    w.member("max_weighted_degree", max_w);
    w.member("total_weight", g.total_weight());
    w.member("simd_detected",
             kernels::simd_level_name(kernels::detected_simd_level()));
    w.member("simd_active",
             kernels::simd_level_name(kernels::active_simd_level()));
    w.member("numa_policy",
             kernels::numa_policy_name(kernels::active_numa_policy()));
    w.member("numa_nodes", static_cast<std::int64_t>(kernels::numa_node_count()));
    w.end_object();
    os << '\n';
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// gen
// ---------------------------------------------------------------------------

int cmd_gen(Args& args) {
  const InputOptions in = take_input_options(args);
  const std::string out_path = args.take_value("--out").value_or("");
  const std::string format = args.take_value("--format").value_or("auto");
  args.expect_empty();
  if (in.gen_spec.empty()) throw UsageError("gen requires --gen SPEC");
  if (!in.input_path.empty()) {
    throw UsageError("gen takes --gen SPEC, not --input");
  }
  if (out_path.empty()) throw UsageError("gen requires --out FILE");

  Multigraph g = make_generated_graph(in.gen_spec, in.seed);
  if (!in.weights.empty()) {
    apply_weights(g, parse_weight_model(in.weights), in.seed + 1);
  }
  bool mtx = false;
  if (format == "mtx") {
    mtx = true;
  } else if (format == "edgelist") {
    mtx = false;
  } else if (format == "auto") {
    mtx = out_path.size() > 4 &&
          out_path.compare(out_path.size() - 4, 4, ".mtx") == 0;
  } else {
    throw UsageError("--format must be mtx, edgelist, or auto");
  }
  if (mtx) {
    write_matrix_market_file(out_path, g);
  } else {
    write_edge_list_file(out_path, g);
  }
  std::cerr << "parlap_cli: wrote " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges to " << out_path << " ("
            << (mtx ? "matrix market" : "edge list") << ")\n";
  return kExitOk;
}

// ---------------------------------------------------------------------------
// bench
// ---------------------------------------------------------------------------

int cmd_bench(Args& args) {
  const InputOptions in = take_input_options(args);
  const std::string family = args.take_value("--family").value_or("grid2d");
  const std::string sizes_arg = args.take_value("--sizes").value_or("32,64,128");
  const std::string method = args.take_value("--method").value_or("parlap");
  const double eps = args.take_double("--eps", 1e-8);
  const auto reps = static_cast<int>(args.take_int("--reps", 3));
  const std::string json_path = args.take_value("--json").value_or("");
  args.expect_empty();
  if (!in.input_path.empty() || !in.gen_spec.empty()) {
    throw UsageError("bench generates its own graphs; use --family/--sizes");
  }
  if (in.laplacian) {
    throw UsageError("--laplacian only applies to .mtx input (solve/info)");
  }
  if (reps < 1) throw UsageError("--reps must be >= 1");

  const std::vector<std::string> sizes = split_list(sizes_arg);

  TextTable table("bench: family " + family + ", method " + method);
  table.set_header(
      {"size", "n", "m", "setup_s", "solve_s_med", "iters", "residual"}, 5);
  bench::BenchReporter reporter;
  reporter.set_experiment("cli-bench");
  for (const std::string& size : sizes) {
    Multigraph g = make_generated_graph(family + ":" + size, in.seed);
    if (!in.weights.empty()) {
      apply_weights(g, parse_weight_model(in.weights), in.seed + 1);
    }
    const Vector b = random_rhs(g.num_vertices(), in.seed + 7);
    SolverConfig config;
    config.seed = in.seed;
    const std::unique_ptr<AnySolver> solver =
        SolverRegistry::instance().create(method, g, config);
    const double setup_s = solver->setup_seconds();
    Vector x(b.size(), 0.0);
    RunReport last;
    const std::vector<double> samples = bench::measure(
        reps, /*warmup=*/1, [&] { last = solver->solve(b, x, eps); });
    const bench::TimingSummary summary = bench::summarize(samples);
    table.add_row({size, static_cast<std::int64_t>(g.num_vertices()),
                   static_cast<std::int64_t>(g.num_edges()), setup_s,
                   summary.median, static_cast<std::int64_t>(last.iterations),
                   last.relative_residual});
    reporter.record(bench::BenchCase{
        family + ":" + size,
        {{"n", static_cast<double>(g.num_vertices())},
         {"m", static_cast<double>(g.num_edges())},
         {"setup_s", setup_s},
         {"iterations", static_cast<double>(last.iterations)},
         {"relative_residual", last.relative_residual}},
        samples});
  }
  table.print(std::cout);
  if (!json_path.empty()) {
    std::ofstream os = open_output(json_path);
    reporter.write(os);
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// usage / dispatch
// ---------------------------------------------------------------------------

void print_usage(std::ostream& os) {
  os << "parlap_cli — parallel Laplacian solver driver (docs/CLI.md)\n"
        "\n"
        "usage: parlap_cli <command> [options]\n"
        "\n"
        "commands:\n"
        "  solve   solve L x = b on a graph from --input or --gen\n"
        "  batch   run a JSONL job file through the concurrent solve engine\n"
        "  info    graph / component / degree statistics\n"
        "  gen     write a generated graph to a file\n"
        "  bench   quick scaling sweep of one method\n"
        "  help    this text\n"
        "\n"
        "global:                [--simd scalar|avx2|avx512|auto]\n"
        "                       [--numa local|interleave]\n"
        "input (solve, info):   --input PATH | --gen SPEC  [--laplacian]\n"
        "                       [--weights unit|uniform:lo,hi|powerlaw:lo,hi,e]\n"
        "                       [--seed S] [--threads N]\n"
        "solve:                 [--method NAME] [--eps E] [--rhs FILE |\n"
        "                       --rhs-demand S,T | --rhs-random K]\n"
        "                       [--project-rhs] [--split-scale X]\n"
        "                       [--max-iterations N] [--precision fp64|fp32|auto]\n"
        "                       [--out FILE] [--json FILE]\n"
        "                       [--build-stats] [--list-methods]\n"
        "                       [--trace-out FILE] [--metrics]\n"
        "batch:                 --jobs FILE.jsonl [--workers N]\n"
        "                       [--block-width K] [--cache-budget ENTRIES]\n"
        "                       [--precision fp64|fp32|auto]\n"
        "                       [--json FILE] [--solutions --out DIR]\n"
        "                       [--trace-out FILE] [--metrics]\n"
        "info:                  [--json FILE]\n"
        "gen:                   --gen SPEC --out FILE [--format mtx|edgelist]\n"
        "bench:                 [--family F] [--sizes a,b,c] [--method NAME]\n"
        "                       [--eps E] [--reps R] [--json FILE]\n"
        "\n"
        "generator specs (--gen / --family):\n"
     << generator_spec_help() << "\n\n";
  list_methods(os);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  try {
    // Global hardware knobs, honored by every command (kernel dispatch
    // and NUMA placement are process-wide): --simd scalar|avx2|avx512|
    // auto, --numa local|interleave. Defaults inherit $PARLAP_SIMD /
    // $PARLAP_NUMA. Results are bit-identical at every SIMD level
    // (docs/PERFORMANCE.md); unsupported requests clamp with a note.
    if (const auto simd = args.take_value("--simd")) {
      const auto level = kernels::parse_simd_level(*simd);
      if (!level) {
        throw UsageError("--simd wants scalar|avx2|avx512|auto, got '" +
                         *simd + "'");
      }
      kernels::set_simd_level(*level);
    }
    if (const auto numa = args.take_value("--numa")) {
      const auto policy = kernels::parse_numa_policy(*numa);
      if (!policy) {
        throw UsageError("--numa wants local|interleave, got '" + *numa +
                         "'");
      }
      kernels::set_numa_policy(*policy);
    }
    if (command == "solve") return cmd_solve(args);
    if (command == "batch") return cmd_batch(args);
    if (command == "info") return cmd_info(args);
    if (command == "gen") return cmd_gen(args);
    if (command == "bench") return cmd_bench(args);
    if (command == "help" || command == "--help" || command == "-h") {
      print_usage(std::cout);
      return kExitOk;
    }
    if (command == "--version" || command == "version") {
      std::cout << "parlap_cli (parlap " << PARLAP_VERSION << ")\n";
      return kExitOk;
    }
    std::cerr << "parlap_cli: unknown command '" << command << "'\n\n";
    print_usage(std::cerr);
    return kExitUsage;
  } catch (const UsageError& e) {
    std::cerr << "parlap_cli: " << e.what() << "\n"
              << "run 'parlap_cli help' for usage\n";
    return kExitUsage;
  } catch (const UnknownSolverError& e) {
    std::cerr << "parlap_cli: error: " << e.what() << '\n';
    return kExitInput;
  } catch (const std::exception& e) {
    std::cerr << "parlap_cli: error: " << e.what() << '\n';
    return kExitInput;
  }
}
