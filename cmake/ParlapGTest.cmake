# Resolve GoogleTest, in order of preference:
#   1. an installed GTest package (config or find-module),
#   2. the distribution-vendored sources (/usr/src/googletest),
#   3. FetchContent from the pinned upstream release (needs network).
# Defines the GTest::gtest and GTest::gtest_main targets.

if(TARGET GTest::gtest_main)
  return()
endif()

find_package(GTest QUIET)
if(TARGET GTest::gtest_main)
  message(STATUS "parlap: using installed GoogleTest")
  return()
endif()

# Offline fallback: Debian/Ubuntu ship the sources in /usr/src.
foreach(_gt_src /usr/src/googletest /usr/src/gtest)
  if(EXISTS "${_gt_src}/CMakeLists.txt")
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    add_subdirectory("${_gt_src}" "${CMAKE_BINARY_DIR}/_vendored_gtest"
                     EXCLUDE_FROM_ALL)
    if(NOT TARGET GTest::gtest_main)
      add_library(GTest::gtest ALIAS gtest)
      add_library(GTest::gtest_main ALIAS gtest_main)
    endif()
    message(STATUS "parlap: using vendored GoogleTest from ${_gt_src}")
    return()
  endif()
endforeach()

# Last resort: fetch the pinned release (requires network access).
include(FetchContent)
set(FETCHCONTENT_QUIET ON)
FetchContent_Declare(
  googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
  DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
if(NOT TARGET GTest::gtest_main)
  if(TARGET gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  else()
    message(FATAL_ERROR
      "parlap: GoogleTest not found (no install, no /usr/src sources, and "
      "FetchContent failed). Install libgtest-dev or configure with "
      "-DPARLAP_BUILD_TESTS=OFF.")
  endif()
endif()
message(STATUS "parlap: using FetchContent GoogleTest")
