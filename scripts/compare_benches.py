#!/usr/bin/env python3
"""Median-vs-median regression gate over two BENCH_E*.json trees.

Compares the per-case median timings of two directories produced by
scripts/run_benches.sh (schema: bench/harness/json_writer.hpp,
schema_version 1) and fails when the current tree is slower than the
baseline beyond a relative threshold plus an absolute noise floor:

    regression  iff  cur > base * (1 + threshold)
                 and  cur - base > min_seconds

Usage:
    scripts/compare_benches.py BASELINE_DIR CURRENT_DIR
        [--threshold 0.5] [--min-seconds 0.005]
        [--allow-missing] [--allow-new-cases] [--verbose]

Exit codes: 0 clean, 1 regression (or missing/new coverage without the
matching --allow flag), 2 usage / unreadable input.

Notes:
  * Cases are matched by (experiment, case name); baseline cases missing
    from CURRENT are reported but never fatal (sweeps legitimately
    change). A whole *file* missing from CURRENT_DIR is fatal by default
    — that means an experiment stopped producing JSON.
  * Cases (or whole experiments) present in CURRENT but absent from the
    baseline — e.g. a freshly added experiment whose baseline was not
    committed — are fatal by default so the committed tree stays in sync;
    --allow-new-cases downgrades them to informational. The refresh
    procedure is documented in bench-baselines/README.md.
  * Files that do not carry schema_version 1 (e.g. the google-benchmark
    E12 output) are skipped.
  * Trees whose meta.precision disagree for an experiment are never
    compared (exit 2): fp32 and fp64 runs are different workloads.
    Files without the field (pre-precision runs) count as fp64.
  * CI runs this with a deliberately loose threshold: shared runners
    have noisy clocks, so the committed baseline gates catastrophic
    slowdowns and pipeline breakage, not single-digit percent drift.
    Tight thresholds are for like-for-like machines (local before/after
    runs against the same hardware).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_tree(directory: Path) -> dict[str, dict]:
    """Maps experiment id (from the file stem, e.g. 'E5') to parsed JSON."""
    tree = {}
    for path in sorted(directory.glob("BENCH_E*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot parse {path}: {exc}", file=sys.stderr)
            sys.exit(2)
        if doc.get("schema_version") != 1:
            continue  # foreign schema (e.g. google-benchmark E12)
        tree[path.stem.removeprefix("BENCH_")] = doc
    return tree


def case_medians(doc: dict) -> dict[str, float]:
    """Maps case name -> median seconds. Repeated names (an experiment
    recording one configuration several times) get a '#k' occurrence
    suffix so every measurement is compared, none silently shadowed —
    emission order is deterministic, so the suffixes align across trees.
    """
    out = {}
    seen: dict[str, int] = {}
    for case in doc.get("cases", []):
        timing = case.get("timing_s") or {}
        median = timing.get("median")
        if not (isinstance(median, (int, float)) and median > 0):
            continue
        name = case["name"]
        occurrence = seen.get(name, 0)
        seen[name] = occurrence + 1
        out[name if occurrence == 0 else f"{name}#{occurrence}"] = float(median)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(
        description="median-vs-median bench regression gate")
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="relative slowdown that fails (0.5 = +50%%)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="absolute slowdown floor; smaller deltas are "
                             "noise regardless of ratio")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when CURRENT lacks a baseline "
                             "experiment's JSON file")
    parser.add_argument("--allow-new-cases", action="store_true",
                        help="report cases/experiments present in CURRENT "
                             "but absent from the baseline as informational "
                             "instead of failing (the default failure exists "
                             "so new experiments get their baseline "
                             "committed; see bench-baselines/README.md)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every compared case, not just changes")
    args = parser.parse_args()

    for d in (args.baseline, args.current):
        if not d.is_dir():
            print(f"error: {d} is not a directory", file=sys.stderr)
            return 2

    base_tree = load_tree(args.baseline)
    cur_tree = load_tree(args.current)
    if not base_tree:
        print(f"error: no schema-1 BENCH_E*.json in {args.baseline}",
              file=sys.stderr)
        return 2

    regressions = []
    missing_files = []
    new_files = sorted(set(cur_tree) - set(base_tree))
    new_cases = []
    precision_mismatches = []
    compared = 0
    rows = []
    for exp, base_doc in sorted(base_tree.items()):
        if exp not in cur_tree:
            missing_files.append(exp)
            continue
        # Never cross-compare precision modes: an fp32 run is a different
        # workload (half the value bytes, refinement iterations), not a
        # faster/slower version of the fp64 one. Pre-precision files have
        # no meta.precision; they were fp64 runs.
        base_prec = (base_doc.get("meta") or {}).get("precision", "fp64")
        cur_prec = (cur_tree[exp].get("meta") or {}).get("precision", "fp64")
        if base_prec != cur_prec:
            precision_mismatches.append((exp, base_prec, cur_prec))
            continue
        base_cases = case_medians(base_doc)
        cur_cases = case_medians(cur_tree[exp])
        for name in sorted(set(cur_cases) - set(base_cases)):
            new_cases.append((exp, name))
            rows.append((exp, name, None, cur_cases[name], "new-case"))
        for name, base_median in sorted(base_cases.items()):
            cur_median = cur_cases.get(name)
            if cur_median is None:
                rows.append((exp, name, base_median, None, "missing-case"))
                continue
            compared += 1
            ratio = cur_median / base_median
            slow = (cur_median > base_median * (1.0 + args.threshold)
                    and cur_median - base_median > args.min_seconds)
            status = "REGRESSION" if slow else (
                "faster" if ratio < 1.0 / (1.0 + args.threshold) else "ok")
            if slow:
                regressions.append((exp, name, base_median, cur_median))
            if slow or args.verbose or status == "faster":
                rows.append((exp, name, base_median, cur_median, status))

    if rows:
        width = max(len(f"{exp}/{name}") for exp, name, *_ in rows)
        print(f"{'case'.ljust(width)}  {'base_ms':>10}  {'cur_ms':>10}  "
              f"{'ratio':>6}  status")
        for exp, name, base_median, cur_median, status in rows:
            label = f"{exp}/{name}".ljust(width)
            if cur_median is None:
                print(f"{label}  {base_median * 1e3:10.3f}  {'-':>10}  "
                      f"{'-':>6}  {status}")
            elif base_median is None:
                print(f"{label}  {'-':>10}  {cur_median * 1e3:10.3f}  "
                      f"{'-':>6}  {status}")
            else:
                print(f"{label}  {base_median * 1e3:10.3f}  "
                      f"{cur_median * 1e3:10.3f}  "
                      f"{cur_median / base_median:6.2f}  {status}")

    print(f"compared {compared} case(s) across {len(base_tree)} "
          f"experiment(s); threshold +{args.threshold * 100:.0f}% "
          f"(abs floor {args.min_seconds * 1e3:.1f} ms)")
    if missing_files:
        level = "warning" if args.allow_missing else "error"
        print(f"{level}: experiments missing from {args.current}: "
              f"{', '.join(missing_files)}", file=sys.stderr)
    if new_files or new_cases:
        level = "info" if args.allow_new_cases else "error"
        if new_files:
            print(f"{level}: experiments in {args.current} without a "
                  f"committed baseline: {', '.join(new_files)}",
                  file=sys.stderr)
        if new_cases:
            named = ", ".join(f"{e}/{n}" for e, n in new_cases[:10])
            more = "" if len(new_cases) <= 10 else f" (+{len(new_cases) - 10})"
            print(f"{level}: cases without a baseline: {named}{more}",
                  file=sys.stderr)
        if not args.allow_new_cases:
            print("hint: refresh and commit the baseline "
                  "(bench-baselines/README.md) or pass --allow-new-cases",
                  file=sys.stderr)
    if precision_mismatches:
        named = ", ".join(f"{e} ({b} vs {c})"
                          for e, b, c in precision_mismatches)
        print(f"error: precision mismatch — refusing to compare: {named}",
              file=sys.stderr)
        print("hint: run both trees with the same --precision "
              "(scripts/run_benches.sh) and keep per-mode baselines apart",
              file=sys.stderr)
        return 2
    if regressions:
        print(f"error: {len(regressions)} regression(s) beyond threshold",
              file=sys.stderr)
        return 1
    if missing_files and not args.allow_missing:
        return 1
    if (new_files or new_cases) and not args.allow_new_cases:
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
