#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by --trace-out.

Checks the structural contract chrome://tracing and Perfetto rely on
(docs/OBSERVABILITY.md): a top-level "traceEvents" array of complete
("ph": "X") events with numeric non-negative ts/dur, string name/cat,
integer pid/tid, and a numeric "args.span_id". Optionally asserts that
specific categories appear, so CI can prove the instrumented layers
actually recorded spans.

Usage:
  scripts/check_trace.py trace.json [--require-cats build,apply,cache]
                         [--min-events N]
                         [--require-request-ids serve]
                         [--request-id-exempt serve.drain]

--require-request-ids asserts that every span in the listed categories
carries a positive numeric "args.request_id" (the admission-minted
correlation id the serve daemon threads through its workers), except
spans named in --request-id-exempt (default "serve.drain" — the drain
sequence runs outside any request).

Exits non-zero with a line per problem on failure.
"""

import argparse
import json
import sys
from numbers import Number


def check_event(ev, i, errors):
    if not isinstance(ev, dict):
        errors.append(f"event {i}: not an object")
        return None
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"event {i}: missing/empty name")
    tag = name if isinstance(name, str) else f"#{i}"
    if ev.get("ph") != "X":
        errors.append(f"event {i} ({tag}): ph is {ev.get('ph')!r}, want 'X'")
    if not isinstance(ev.get("cat"), str) or not ev.get("cat"):
        errors.append(f"event {i} ({tag}): missing/empty cat")
    for key in ("ts", "dur"):
        v = ev.get(key)
        if not isinstance(v, Number) or isinstance(v, bool) or v < 0:
            errors.append(f"event {i} ({tag}): {key} is {v!r}, "
                          "want a non-negative number")
    for key in ("pid", "tid"):
        v = ev.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            errors.append(f"event {i} ({tag}): {key} is {v!r}, "
                          "want a non-negative integer")
    args = ev.get("args")
    if not isinstance(args, dict):
        errors.append(f"event {i} ({tag}): args missing or not an object")
    else:
        span_id = args.get("span_id")
        if not isinstance(span_id, Number) or span_id <= 0:
            errors.append(f"event {i} ({tag}): args.span_id is {span_id!r}, "
                          "want a positive number")
    return ev.get("cat")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--require-cats", default="",
                    help="comma-separated categories that must appear")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of events (default 1)")
    ap.add_argument("--require-request-ids", default="",
                    help="comma-separated categories whose spans must "
                         "carry a positive args.request_id")
    ap.add_argument("--request-id-exempt", default="serve.drain",
                    help="comma-separated span names exempt from the "
                         "request-id requirement (default: serve.drain)")
    opts = ap.parse_args()

    errors = []
    try:
        with open(opts.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {opts.trace}: {e}", file=sys.stderr)
        return 1

    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        print(f"error: {opts.trace}: no traceEvents array", file=sys.stderr)
        return 1

    if len(events) < opts.min_events:
        errors.append(f"only {len(events)} event(s), "
                      f"want >= {opts.min_events}")

    rid_cats = set(c for c in opts.require_request_ids.split(",") if c)
    rid_exempt = set(n for n in opts.request_id_exempt.split(",") if n)
    rid_checked = 0

    cats = set()
    for i, ev in enumerate(events):
        cat = check_event(ev, i, errors)
        if cat:
            cats.add(cat)
        if (cat in rid_cats and isinstance(ev, dict)
                and ev.get("name") not in rid_exempt):
            rid_checked += 1
            args = ev.get("args")
            rid = args.get("request_id") if isinstance(args, dict) else None
            if not isinstance(rid, Number) or isinstance(rid, bool) or rid <= 0:
                errors.append(f"event {i} ({ev.get('name')}): "
                              f"args.request_id is {rid!r}, want a "
                              "positive number")
        if len(errors) > 20:
            errors.append("... further problems suppressed")
            break

    if rid_cats and rid_checked == 0:
        errors.append("--require-request-ids matched no spans "
                      f"(cats: {', '.join(sorted(rid_cats))})")

    required = [c for c in opts.require_cats.split(",") if c]
    for cat in required:
        if cat not in cats:
            errors.append(f"required category {cat!r} absent "
                          f"(saw: {', '.join(sorted(cats)) or 'none'})")

    if errors:
        for e in errors:
            print(f"error: {opts.trace}: {e}", file=sys.stderr)
        return 1
    print(f"{opts.trace}: {len(events)} event(s), "
          f"categories: {', '.join(sorted(cats))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
