#!/usr/bin/env bash
# Runs the E1-E20 experiment binaries and collects one machine-readable
# BENCH_E<k>.json per experiment (schema: bench/harness/json_writer.hpp),
# tagged with the current commit, so perf changes can be proven against a
# recorded trajectory.
#
# Usage:
#   scripts/run_benches.sh [--smoke] [--build-dir DIR] [--out DIR]
#                          [--only E1,E5,...] [--keep-going]
#                          [--precision fp64|fp32|auto]
#
#   --smoke       tiny sweeps (PARLAP_SMOKE=1): finishes in ~a minute,
#                 meant for CI and quick before/after comparisons
#   --build-dir   CMake build tree holding bench/ binaries (default: build)
#   --out         output directory for the JSON files
#                 (default: bench-results/<commit>[-smoke][-<precision>])
#   --only        comma-separated experiment ids, e.g. E1,E3,E12
#   --keep-going  continue past a failing experiment (default: stop)
#   --precision   solver storage mode recorded in every report's
#                 meta.precision (default fp64); non-default modes get
#                 their own default output directory so fp32 trees never
#                 mix with fp64 baselines (compare_benches.py refuses to
#                 cross-compare the two)
set -u

usage() { sed -n '2,23p' "$0"; exit "${1:-0}"; }

SMOKE=0
BUILD_DIR=build
OUT_DIR=""
ONLY=""
KEEP_GOING=0
PRECISION=fp64

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    --out) OUT_DIR="$2"; shift ;;
    --only) ONLY="$2"; shift ;;
    --keep-going) KEEP_GOING=1 ;;
    --precision) PRECISION="$2"; shift ;;
    -h|--help) usage 0 ;;
    *) echo "unknown argument: $1" >&2; usage 1 ;;
  esac
  shift
done

case "$PRECISION" in
  fp64|fp32|auto) ;;
  *) echo "error: --precision wants fp64|fp32|auto, got $PRECISION" >&2
     exit 1 ;;
esac

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BENCH_BIN_DIR="$BUILD_DIR/bench"
if [[ ! -d "$BENCH_BIN_DIR" ]]; then
  echo "error: $BENCH_BIN_DIR not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

COMMIT="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if [[ -n "$(git status --porcelain 2>/dev/null)" ]]; then
  COMMIT="${COMMIT}-dirty"
fi

if [[ -z "$OUT_DIR" ]]; then
  OUT_DIR="bench-results/${COMMIT}"
  [[ "$SMOKE" == 1 ]] && OUT_DIR="${OUT_DIR}-smoke"
  [[ "$PRECISION" != fp64 ]] && OUT_DIR="${OUT_DIR}-${PRECISION}"
fi
mkdir -p "$OUT_DIR"

export PARLAP_GIT_COMMIT="$COMMIT"
[[ "$SMOKE" == 1 ]] && export PARLAP_SMOKE=1
# Recorded into meta.precision by the harness; experiments that build
# solvers directly (E20) also read it to pick their configured mode.
export PARLAP_BENCH_PRECISION="$PRECISION"

# Host CPU metadata, recorded by the harness into every report's
# meta.host block (bench/harness/json_writer.cpp) so a JSON file says
# what silicon produced it — the SIMD dispatch numbers (E17/E19) are
# meaningless without the ISA the host actually has.
CPU_MODEL="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo \
    2>/dev/null || true)"
# Just the vector-ISA flags the dispatcher cares about, not the full set.
CPU_FLAGS="$(awk '/^flags/ {for (i = 1; i <= NF; i++)
      if ($i ~ /^(sse4_2|avx|avx2|fma|avx512[a-z0-9]*)$/) printf "%s ", $i;
    exit}' /proc/cpuinfo 2>/dev/null | sed 's/ $//' || true)"
NUMA_NODES=""
if command -v numactl > /dev/null 2>&1; then
  NUMA_NODES="$(numactl --hardware 2>/dev/null \
      | awk '/^available:/ {print $2; exit}' || true)"
fi
if [[ -z "$NUMA_NODES" ]]; then
  NUMA_NODES="$(ls -d /sys/devices/system/node/node[0-9]* 2>/dev/null \
      | wc -l)"
  [[ "$NUMA_NODES" -ge 1 ]] || NUMA_NODES=1
fi
export PARLAP_BENCH_CPU_MODEL="$CPU_MODEL"
export PARLAP_BENCH_CPU_FLAGS="$CPU_FLAGS"
export PARLAP_BENCH_NUMA_NODES="$NUMA_NODES"

# Experiment id -> binary stem.
EXPERIMENTS=(
  "E1 bench_e1_work_scaling"
  "E2 bench_e2_strong_scaling"
  "E3 bench_e3_baselines"
  "E4 bench_e4_five_dd"
  "E5 bench_e5_walks"
  "E6 bench_e6_chain"
  "E7 bench_e7_richardson"
  "E8 bench_e8_jacobi"
  "E9 bench_e9_split_ablation"
  "E10 bench_e10_leverage_split"
  "E11 bench_e11_schur"
  "E12 bench_e12_breakdown"
  "E13 bench_e13_spanning_tree"
  "E14 bench_e14_sparsify"
  "E15 bench_e15_throughput"
  "E16 bench_e16_build"
  "E17 bench_e17_blocked_apply"
  "E18 bench_e18_obs_overhead"
  "E19 bench_e19_kernel_dispatch"
  "E20 bench_e20_mixed_precision"
)

wants() {  # wants E5 -> 0 iff selected by --only (or no filter)
  [[ -z "$ONLY" ]] && return 0
  [[ ",$ONLY," == *",$1,"* ]]
}

ran=0
failed=0
for entry in "${EXPERIMENTS[@]}"; do
  id="${entry%% *}"
  stem="${entry#* }"
  wants "$id" || continue
  bin="$BENCH_BIN_DIR/$stem"
  json="$OUT_DIR/BENCH_${id}.json"
  if [[ ! -x "$bin" ]]; then
    echo "-- $id: $bin missing, skipped" >&2
    continue
  fi
  echo "== $id ($stem) -> $json"
  if [[ "$id" == "E12" ]]; then
    # google-benchmark has its own JSON reporter.
    "$bin" --benchmark_out="$json" --benchmark_out_format=json \
        > "$OUT_DIR/${id}.log" 2>&1
  else
    PARLAP_BENCH_JSON="$json" "$bin" > "$OUT_DIR/${id}.log" 2>&1
  fi
  status=$?
  if [[ $status -ne 0 ]]; then
    echo "-- $id FAILED (exit $status); log: $OUT_DIR/${id}.log" >&2
    failed=$((failed + 1))
    [[ "$KEEP_GOING" == 1 ]] || exit 1
    continue
  fi
  if [[ ! -f "$json" ]]; then
    echo "-- $id exited 0 but wrote no JSON: $json" >&2
    failed=$((failed + 1))
    [[ "$KEEP_GOING" == 1 ]] || exit 1
    continue
  fi
  if command -v python3 > /dev/null; then
    if ! python3 -m json.tool "$json" > /dev/null 2>&1; then
      echo "-- $id produced malformed JSON: $json" >&2
      failed=$((failed + 1))
      [[ "$KEEP_GOING" == 1 ]] || exit 1
      continue
    fi
  fi
  ran=$((ran + 1))
done

echo
echo "done: $ran experiment(s) OK, $failed failed; results in $OUT_DIR/"
ls -1 "$OUT_DIR"/BENCH_E*.json 2>/dev/null || true
[[ $failed -eq 0 ]] || exit 1
