#!/usr/bin/env python3
"""Fail on broken relative links in the repo's Markdown files.

Scans every tracked *.md (skipping build trees) for inline links and
checks that relative targets exist on disk. External links (http/https/
mailto) and pure anchors are ignored; `path#anchor` is checked for the
path only. Exit code 0 = all good, 1 = broken links listed on stderr.

Usage: scripts/check_markdown_links.py [repo-root]
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", ".git", "bench-results"}
# Inline markdown links [text](target); images share the syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            yield path


def check_file(md: Path, root: Path):
    broken = []
    text = md.read_text(encoding="utf-8", errors="replace")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if EXTERNAL.match(target) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (root / path_part[1:]) if path_part.startswith("/") \
                else (md.parent / path_part)
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    total_files = 0
    total_broken = 0
    for md in markdown_files(root):
        total_files += 1
        for lineno, target in check_file(md, root):
            total_broken += 1
            print(f"{md.relative_to(root)}:{lineno}: broken link -> {target}",
                  file=sys.stderr)
    print(f"checked {total_files} markdown file(s): "
          f"{'OK' if total_broken == 0 else f'{total_broken} broken link(s)'}")
    return 0 if total_broken == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
