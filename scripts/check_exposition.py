#!/usr/bin/env python3
"""Validate Prometheus text-exposition output from GET /metrics.

Stdlib-only structural checker for the scrape payload the serve daemon
renders (docs/OBSERVABILITY.md "Prometheus exposition"): every sample
line parses as `name{labels} value`, every series is preceded by
matching # HELP / # TYPE comments, histogram buckets are cumulative and
monotone in `le` with the +Inf bucket equal to `_count`, counters end
in `_total`, and the serve request-path families are present so CI
notices if the daemon stops exporting them.

Usage:
  scripts/check_exposition.py metrics.txt [--require-series a,b]
                              [--no-default-series]

Reads stdin when the file argument is "-". Exits non-zero with a line
per problem on failure.
"""

import argparse
import math
import re
import sys

# Metric families the serve daemon must always export (the names are a
# stability contract — see the table in docs/OBSERVABILITY.md).
DEFAULT_REQUIRED = [
    "parlap_serve_requests_total",
    "parlap_serve_completed_total",
    "parlap_serve_shed_total",
    "parlap_serve_queue_depth",
    "parlap_serve_solve_seconds",
    "parlap_serve_queue_wait_seconds",
]

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$")
LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_le(labels):
    """The le="..." bound from a bucket label set, as a float."""
    for part in labels.split(","):
        if part.startswith('le="') and part.endswith('"'):
            raw = part[4:-1]
            return math.inf if raw == "+Inf" else float(raw)
    return None


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(lines, errors):
    """Returns {family: type} for every series seen."""
    helped = set()
    typed = {}
    seen = {}
    # family -> list of (le, value) / sum / count for histogram checks
    buckets = {}
    counts = {}

    for i, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.fullmatch(parts[2]):
                errors.append(f"line {i}: malformed HELP: {line!r}")
                continue
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if (len(parts) != 4 or not NAME_RE.fullmatch(parts[2])
                    or parts[3] not in
                    ("counter", "gauge", "histogram", "summary", "untyped")):
                errors.append(f"line {i}: malformed TYPE: {line!r}")
                continue
            if parts[2] in typed:
                errors.append(f"line {i}: duplicate TYPE for {parts[2]}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {i}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        labels = m.group("labels")
        if labels:
            for part in labels.split(","):
                if not LABEL_RE.match(part):
                    errors.append(f"line {i}: bad label {part!r}")
        try:
            value = float(m.group("value"))
        except ValueError:
            if m.group("value") not in ("+Inf", "-Inf", "NaN"):
                errors.append(f"line {i}: bad value {m.group('value')!r}")
                continue
            value = float(m.group("value").replace("Inf", "inf"))
        family = base_family(name)
        seen[family] = typed.get(family, "untyped")
        if family not in typed:
            errors.append(f"line {i}: sample {name} has no # TYPE")
        if family not in helped:
            errors.append(f"line {i}: sample {name} has no # HELP")
        if typed.get(family) == "counter" and not name.endswith("_total"):
            errors.append(f"line {i}: counter {name} must end in _total")
        if typed.get(family) == "counter" and value < 0:
            errors.append(f"line {i}: counter {name} is negative")
        if name.endswith("_bucket"):
            le = parse_le(labels or "")
            if le is None:
                errors.append(f"line {i}: bucket {name} has no le label")
            else:
                buckets.setdefault(family, []).append((i, le, value))
        elif name.endswith("_count") and typed.get(family) == "histogram":
            counts[family] = (i, value)

    for family, rows in buckets.items():
        prev = -1.0
        prev_le = -math.inf
        for i, le, value in rows:
            if le <= prev_le:
                errors.append(f"line {i}: {family} buckets not sorted by le")
            if value < prev:
                errors.append(
                    f"line {i}: {family} bucket le={le} count {value} "
                    f"below previous {prev} (buckets are cumulative)")
            prev, prev_le = value, le
        if not rows or rows[-1][1] != math.inf:
            errors.append(f"{family}: missing +Inf bucket")
        elif family in counts and rows[-1][2] != counts[family][1]:
            errors.append(
                f"{family}: +Inf bucket {rows[-1][2]} != _count "
                f"{counts[family][1]}")
        if family not in counts:
            errors.append(f"{family}: histogram has no _count sample")

    return seen


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("metrics", help="exposition text file, or - for stdin")
    ap.add_argument("--require-series", default="",
                    help="comma-separated families that must appear "
                         "(added to the serve defaults)")
    ap.add_argument("--no-default-series", action="store_true",
                    help="skip the default parlap_serve_* requirements")
    opts = ap.parse_args()

    try:
        if opts.metrics == "-":
            text = sys.stdin.read()
        else:
            with open(opts.metrics, encoding="utf-8") as f:
                text = f.read()
    except OSError as e:
        print(f"error: {opts.metrics}: {e}", file=sys.stderr)
        return 1

    errors = []
    seen = check(text.split("\n"), errors)

    required = [] if opts.no_default_series else list(DEFAULT_REQUIRED)
    required += [s for s in opts.require_series.split(",") if s]
    for family in required:
        # Counters are registered without the _total suffix; accept both.
        if family not in seen and family.removesuffix("_total") not in seen:
            errors.append(f"required series {family!r} absent")

    if errors:
        for e in errors[:40]:
            print(f"error: {opts.metrics}: {e}", file=sys.stderr)
        if len(errors) > 40:
            print(f"error: ... {len(errors) - 40} more", file=sys.stderr)
        return 1
    print(f"{opts.metrics}: {len(seen)} series OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
