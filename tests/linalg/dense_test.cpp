// Dense oracle tests: the eigensolver, pseudo-inverse, Cholesky, exact
// Schur complements, leverage scores, and the Loewner certificates every
// randomized-component test depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

TEST(DenseMatrix, BasicOps) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const DenseMatrix at = a.transpose();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
  const DenseMatrix aa = a.multiply(a);
  EXPECT_DOUBLE_EQ(aa(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(aa(1, 1), 22.0);
  const DenseMatrix i = DenseMatrix::identity(2);
  EXPECT_DOUBLE_EQ(a.add(i, -1.0)(0, 0), 0.0);
  EXPECT_NEAR(a.frobenius_norm(), std::sqrt(30.0), 1e-12);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const EigenDecomposition eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(SymmetricEigen, Known2x2) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const EigenDecomposition eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  Multigraph g = make_erdos_renyi(20, 60, 1);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 2);
  const DenseMatrix l = laplacian_dense(g);
  const EigenDecomposition eig = symmetric_eigen(l);
  // L == V diag(values) V'.
  const int n = l.rows();
  DenseMatrix lambda(n, n);
  for (int i = 0; i < n; ++i) lambda(i, i) = eig.values[static_cast<std::size_t>(i)];
  const DenseMatrix rec =
      eig.vectors.multiply(lambda).multiply(eig.vectors.transpose());
  EXPECT_LT(rec.max_abs_diff(l), 1e-9);
}

TEST(SymmetricEigen, OrthonormalVectors) {
  const Multigraph g = make_cycle(15);
  const EigenDecomposition eig = symmetric_eigen(laplacian_dense(g));
  const DenseMatrix vtv = eig.vectors.transpose().multiply(eig.vectors);
  EXPECT_LT(vtv.max_abs_diff(DenseMatrix::identity(15)), 1e-10);
}

TEST(PseudoInverse, SatisfiesPenroseOnLaplacian) {
  const Multigraph g = make_grid2d(4, 4);
  const DenseMatrix l = laplacian_dense(g);
  const DenseMatrix p = pseudo_inverse(l);
  // L P L == L and P L P == P.
  EXPECT_LT(l.multiply(p).multiply(l).max_abs_diff(l), 1e-8);
  EXPECT_LT(p.multiply(l).multiply(p).max_abs_diff(p), 1e-8);
  // P is symmetric and annihilates the ones vector.
  EXPECT_LT(p.max_abs_diff(p.transpose()), 1e-10);
  const Vector ones(16, 1.0);
  for (const double v : p.apply(ones)) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Cholesky, FactorAndSolve) {
  // SPD matrix: L_path + I.
  const Multigraph g = make_path(8);
  DenseMatrix a = laplacian_dense(g);
  for (int i = 0; i < 8; ++i) a(i, i) += 1.0;
  const DenseMatrix chol = cholesky_factor(a);
  Vector b(8);
  Rng rng(1, RngTag::kTest, 0);
  for (auto& v : b) v = rng.next_in(-1.0, 1.0);
  const Vector x = cholesky_solve(chol, b);
  const Vector ax = a.apply(x);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(ax[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW((void)cholesky_factor(a), std::runtime_error);
}

TEST(SchurDense, PathEliminationIsSeriesReduction) {
  // Path 0-1-2 with unit weights: eliminating the middle vertex leaves a
  // single edge of weight 1/2 (series resistors add).
  const Multigraph g = make_path(3);
  const DenseMatrix l = laplacian_dense(g);
  const std::vector<Vertex> keep{0, 2};
  const DenseMatrix sc = schur_complement_dense(l, keep);
  EXPECT_NEAR(sc(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(sc(0, 1), -0.5, 1e-12);
  EXPECT_NEAR(sc(1, 1), 0.5, 1e-12);
}

TEST(SchurDense, IsLaplacianOfConnectedGraph) {
  // Fact 2.4: SC of a connected Laplacian is a connected Laplacian.
  Multigraph g = make_erdos_renyi(25, 80, 3);
  apply_weights(g, WeightModel::uniform(0.5, 3.0), 4);
  const DenseMatrix l = laplacian_dense(g);
  std::vector<Vertex> keep;
  for (Vertex v = 0; v < 10; ++v) keep.push_back(v);
  const DenseMatrix sc = schur_complement_dense(l, keep);
  // Zero row sums, nonpositive off-diagonals.
  for (int i = 0; i < sc.rows(); ++i) {
    double row = 0.0;
    for (int j = 0; j < sc.cols(); ++j) {
      row += sc(i, j);
      if (i != j) {
        EXPECT_LE(sc(i, j), 1e-10);
      }
    }
    EXPECT_NEAR(row, 0.0, 1e-9);
  }
}

TEST(SchurDense, NoEliminationIsIdentity) {
  const Multigraph g = make_cycle(6);
  const DenseMatrix l = laplacian_dense(g);
  std::vector<Vertex> keep;
  for (Vertex v = 0; v < 6; ++v) keep.push_back(v);
  EXPECT_LT(schur_complement_dense(l, keep).max_abs_diff(l), 1e-14);
}

TEST(LeverageScoresDense, TreeEdgesHaveLeverageOne) {
  const Multigraph g = make_binary_tree(15);
  const Vector tau = leverage_scores_dense(g);
  for (const double t : tau) EXPECT_NEAR(t, 1.0, 1e-8);
}

TEST(LeverageScoresDense, SumIsNMinusComponents) {
  // Foster's theorem: sum of leverage scores = n - 1 for connected G.
  Multigraph g = make_erdos_renyi(20, 70, 5);
  apply_weights(g, WeightModel::uniform(0.2, 4.0), 6);
  const Vector tau = leverage_scores_dense(g);
  double total = 0.0;
  for (const double t : tau) {
    EXPECT_GE(t, -1e-10);
    EXPECT_LE(t, 1.0 + 1e-10);
    total += t;
  }
  EXPECT_NEAR(total, 19.0, 1e-7);
}

TEST(RelativeSpectralBounds, IdentityPair) {
  const Multigraph g = make_grid2d(4, 3);
  const DenseMatrix l = laplacian_dense(g);
  const SpectralBounds sb = relative_spectral_bounds(l, l);
  EXPECT_NEAR(sb.lo, 1.0, 1e-9);
  EXPECT_NEAR(sb.hi, 1.0, 1e-9);
  EXPECT_LT(sb.kernel_leakage, 1e-9);
}

TEST(RelativeSpectralBounds, ScaledPair) {
  const Multigraph g = make_cycle(9);
  const DenseMatrix l = laplacian_dense(g);
  DenseMatrix l2 = l;
  for (int i = 0; i < 9; ++i)
    for (int j = 0; j < 9; ++j) l2(i, j) *= 1.5;
  const SpectralBounds sb = relative_spectral_bounds(l2, l);
  EXPECT_NEAR(sb.lo, 1.5, 1e-9);
  EXPECT_NEAR(sb.hi, 1.5, 1e-9);
}

TEST(IsEpsApproximation, AcceptsWithinAndRejectsBeyond) {
  const Multigraph g = make_grid2d(3, 4);
  const DenseMatrix l = laplacian_dense(g);
  DenseMatrix scaled = l;
  const double factor = std::exp(0.3);
  for (int i = 0; i < l.rows(); ++i)
    for (int j = 0; j < l.cols(); ++j) scaled(i, j) *= factor;
  EXPECT_TRUE(is_eps_approximation(scaled, l, 0.31));
  EXPECT_FALSE(is_eps_approximation(scaled, l, 0.29));
}

TEST(IsEpsApproximation, RejectsKernelMismatch) {
  // B has a bigger kernel than A: disconnected vs connected.
  const Multigraph connected = make_path(4);
  Multigraph disconnected(4);
  disconnected.add_edge(0, 1, 1.0);
  disconnected.add_edge(2, 3, 1.0);
  EXPECT_FALSE(is_eps_approximation(laplacian_dense(connected),
                                    laplacian_dense(disconnected), 0.5));
}

}  // namespace
}  // namespace parlap
