#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.hpp"

namespace parlap {
namespace {

TEST(VectorOps, DotSmallAndLarge) {
  const Vector x{1.0, 2.0, 3.0};
  const Vector y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);

  // Large: exercise the chunked parallel path against a closed form.
  const std::size_t n = 1 << 20;
  Vector ones(n, 1.0);
  EXPECT_DOUBLE_EQ(dot(ones, ones), static_cast<double>(n));
}

TEST(VectorOps, DotDeterministicAcrossCalls) {
  const std::size_t n = (1 << 18) + 3;
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(static_cast<double>(i));
  const double a = dot(x, x);
  const double b = dot(x, x);
  EXPECT_EQ(a, b);  // bit-identical
}

TEST(VectorOps, Norm2) {
  const Vector x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, AxpyScaleAssignFill) {
  Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  scale(y, 0.5);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  assign(x, y);
  EXPECT_DOUBLE_EQ(x[1], 12.0);
  fill(x, -1.0);
  EXPECT_DOUBLE_EQ(x[0], -1.0);
}

TEST(VectorOps, ProjectOutOnes) {
  Vector x{1.0, 2.0, 3.0, 6.0};
  project_out_ones(x);
  EXPECT_NEAR(sum(x), 0.0, 1e-14);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
}

TEST(VectorOps, ProjectOutOnesPerComponent) {
  Vector x{1.0, 3.0, 10.0, 20.0};
  const std::vector<Vertex> label{0, 0, 1, 1};
  project_out_ones_per_component(x, label, 2);
  EXPECT_DOUBLE_EQ(x[0], -1.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], -5.0);
  EXPECT_DOUBLE_EQ(x[3], 5.0);
}

TEST(VectorOps, MaxAbsDiff) {
  const Vector x{1.0, 5.0, -2.0};
  const Vector y{1.5, 5.0, -4.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 2.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  const Vector x{1.0};
  const Vector y{1.0, 2.0};
  EXPECT_THROW((void)dot(x, y), std::runtime_error);
}

}  // namespace
}  // namespace parlap
