// LaplacianOperator vs the dense Laplacian, plus the quadratic-form and
// kernel identities that the solver's correctness rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "linalg/laplacian_op.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Vector x(n);
  Rng rng(seed, RngTag::kTest, 0);
  for (auto& v : x) v = rng.next_in(-1.0, 1.0);
  return x;
}

class LaplacianOpFamilyTest : public ::testing::TestWithParam<int> {
 protected:
  Multigraph graph() const {
    switch (GetParam()) {
      case 0:
        return make_path(40);
      case 1:
        return make_grid2d(6, 7);
      case 2:
        return make_complete(12);
      case 3: {
        Multigraph g = make_erdos_renyi(30, 120, 5);
        apply_weights(g, WeightModel::power_law(0.1, 10.0, 2.0), 6);
        return g;
      }
      default:
        return make_barbell(8, 4);
    }
  }
};

TEST_P(LaplacianOpFamilyTest, MatchesDenseApply) {
  const Multigraph g = graph();
  const LaplacianOperator op(g);
  const DenseMatrix l = laplacian_dense(g);
  const Vector x = random_vector(static_cast<std::size_t>(g.num_vertices()), 1);
  const Vector sparse = op.apply(x);
  const Vector dense = l.apply(x);
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    EXPECT_NEAR(sparse[i], dense[i], 1e-10);
  }
}

TEST_P(LaplacianOpFamilyTest, KernelIsOnes) {
  const Multigraph g = graph();
  const LaplacianOperator op(g);
  const Vector ones(static_cast<std::size_t>(g.num_vertices()), 3.7);
  const Vector y = op.apply(ones);
  for (const double v : y) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST_P(LaplacianOpFamilyTest, QuadraticFormMatchesXtLx) {
  const Multigraph g = graph();
  const LaplacianOperator op(g);
  const Vector x = random_vector(static_cast<std::size_t>(g.num_vertices()), 2);
  const Vector lx = op.apply(x);
  EXPECT_NEAR(op.quadratic_form(x), dot(x, lx), 1e-8);
  EXPECT_GE(op.quadratic_form(x), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Families, LaplacianOpFamilyTest,
                         ::testing::Range(0, 5));

TEST(LaplacianOp, MultiEdgesSumWeights) {
  Multigraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.5);
  const LaplacianOperator op(g);
  const Vector x{1.0, 0.0};
  const Vector y = op.apply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], -3.5);
}

TEST(LaplacianOp, LaplacianNormIsSqrtQuadraticForm) {
  const Multigraph g = make_cycle(10);
  const LaplacianOperator op(g);
  const Vector x = random_vector(10, 3);
  EXPECT_NEAR(op.laplacian_norm(x), std::sqrt(op.quadratic_form(x)), 1e-12);
}

}  // namespace
}  // namespace parlap
