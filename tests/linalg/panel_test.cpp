// Panel kernel contracts (linalg/panel.hpp): column-major layout,
// per-column bit-equality of the blocked kernels with their scalar
// counterparts, and gather/scatter round trips.
#include "linalg/panel.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/rng.hpp"

namespace parlap {
namespace {

Panel random_panel(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Panel p(rows, cols);
  Rng rng(seed, RngTag::kTest, 7);
  for (std::size_t c = 0; c < cols; ++c) {
    for (double& v : p.col(c)) v = rng.next_in(-2.0, 2.0);
  }
  return p;
}

TEST(Panel, ColumnsAreContiguousColumnMajor) {
  Panel p(5, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 5; ++i) p.at(i, c) = 10.0 * c + i;
  }
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(p.col(c).data(), p.data() + c * 5);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(p.col(c)[i], 10.0 * c + i);
    }
  }
}

TEST(Panel, FromToVectorsRoundTrip) {
  std::vector<Vector> bs = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Panel p;
  panel_from_vectors(bs, p);
  EXPECT_EQ(p.rows(), 3u);
  EXPECT_EQ(p.cols(), 2u);
  std::vector<Vector> out(2);
  panel_to_vectors(p, out);
  EXPECT_EQ(out[0], bs[0]);
  EXPECT_EQ(out[1], bs[1]);
}

TEST(Panel, AxpyMatchesScalarPerColumnAndHonorsMask) {
  const std::size_t n = 1000;
  const Panel x = random_panel(n, 4, 1);
  Panel y = random_panel(n, 4, 2);
  const Panel y0 = y;

  // Scalar reference per column.
  Panel want = y0;
  for (std::size_t c = 0; c < 4; ++c) axpy(0.37, x.col(c), want.col(c));

  const std::vector<unsigned char> mask = {1, 0, 1, 0};
  panel_axpy(0.37, x, y, mask);
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& ref = (mask[c] != 0) ? want : y0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y.at(i, c), ref.at(i, c)) << "col " << c << " row " << i;
    }
  }
}

TEST(Panel, ColNormsAndDotsMatchScalar) {
  const Panel a = random_panel(5000, 3, 3);
  const Panel b = random_panel(5000, 3, 4);
  std::vector<double> norms(3);
  std::vector<double> dots(3);
  panel_col_norms(a, norms);
  panel_col_dots(a, b, dots);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(norms[c], norm2(a.col(c)));  // bit-exact, same kernel
    EXPECT_EQ(dots[c], dot(a.col(c), b.col(c)));
  }
}

TEST(Panel, GatherScatterRoundTrip) {
  const Panel src = random_panel(50, 3, 5);
  std::vector<Vertex> rows = {7, 0, 49, 13, 13};
  Panel picked;
  panel_gather_rows(src, rows, picked);
  ASSERT_EQ(picked.rows(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(picked.at(i, c),
                src.at(static_cast<std::size_t>(rows[i]), c));
    }
  }

  std::vector<Vertex> distinct(50);
  std::iota(distinct.begin(), distinct.end(), Vertex{0});
  std::swap(distinct[3], distinct[41]);
  Panel all;
  panel_gather_rows(src, distinct, all);
  Panel back(50, 3);
  panel_scatter_rows(all, distinct, back);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(back.at(i, c), src.at(i, c));
    }
  }
}

TEST(Panel, ProjectOutOnesMatchesScalar) {
  Panel p = random_panel(777, 2, 6);
  Vector ref0(p.col(0).begin(), p.col(0).end());
  Vector ref1(p.col(1).begin(), p.col(1).end());
  project_out_ones(ref0);
  project_out_ones(ref1);
  panel_project_out_ones(p);
  for (std::size_t i = 0; i < 777; ++i) {
    EXPECT_EQ(p.at(i, 0), ref0[i]);
    EXPECT_EQ(p.at(i, 1), ref1[i]);
  }
}

}  // namespace
}  // namespace parlap
