// Dispatch parity for the SIMD kernel layer (linalg/kernels): every
// kernel in every AVAILABLE vector table must produce bit-identical
// output to the scalar reference table — the "lane = column" contract
// docs/PERFORMANCE.md documents. Coverage is deliberately hostile to
// vector-width assumptions: panel widths {1, 3, 8, 17} (below, at, and
// past both AVX2 and AVX-512 lane counts, none a multiple of the
// other), row ranges starting at unaligned offsets, remainder tails
// shorter than a vector, misaligned base pointers, and CSR rows of
// irregular degree including empty ones.
//
// Levels the host cannot run are skipped (table_for would hand back the
// scalar table and the comparison would be vacuous); the test logs what
// it actually exercised. Under PARLAP_SIMD=scalar the active() table
// must BE the scalar table — the CI smoke leg asserts that env routing
// works end to end.
#include "linalg/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cfloat>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "linalg/kernels/aligned_buffer.hpp"
#include "support/rng.hpp"

namespace parlap::kernels {
namespace {

constexpr std::size_t kRows = 259;  // odd: every width leaves a tail
const std::size_t kWidths[] = {1, 3, 8, 17};

/// (lo, hi) row ranges: full, off-by-one front, deep unaligned start
/// with a short tail.
const std::pair<std::size_t, std::size_t> kRanges[] = {
    {0, kRows}, {1, kRows - 2}, {7, kRows - 3}, {250, kRows}};

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Rng rng(seed, RngTag::kTest, 19);
  for (double& x : v) x = rng.next_in(-2.0, 2.0);
  return v;
}

/// Vector tables present on this machine (compiled in AND CPUID-backed).
std::vector<SimdLevel> available_vector_levels() {
  std::vector<SimdLevel> out;
  for (SimdLevel lvl : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (simd_level_available(lvl)) out.push_back(lvl);
  }
  return out;
}

/// A deliberately irregular CSR block: degrees cycle 0..6 (empty rows
/// included), neighbor ids and weights from the seeded stream.
struct CsrFixture {
  std::vector<EdgeId> off;
  std::vector<Vertex> nbr;
  std::vector<Weight> w;

  CsrFixture(std::size_t rows, std::size_t n_src, std::uint64_t seed) {
    Rng rng(seed, RngTag::kTest, 23);
    off.assign(rows + 1, 0);
    for (std::size_t i = 0; i < rows; ++i) {
      const std::size_t deg = i % 7;
      off[i + 1] = off[i] + static_cast<EdgeId>(deg);
      for (std::size_t d = 0; d < deg; ++d) {
        nbr.push_back(static_cast<Vertex>(
            rng.next_below(static_cast<std::uint64_t>(n_src))));
        w.push_back(rng.next_in(0.1, 3.0));
      }
    }
  }
};

/// Misaligned view: a buffer whose data pointer is one double past any
/// allocator alignment, so vector loads can never assume 16/32/64-byte
/// alignment of the base.
struct Misaligned {
  explicit Misaligned(std::vector<double> v) : store(std::move(v)) {
    store.insert(store.begin(), 0.5);
  }
  [[nodiscard]] const double* data() const { return store.data() + 1; }
  [[nodiscard]] double* data() { return store.data() + 1; }
  std::vector<double> store;
};

void expect_bits_equal(const std::vector<double>& got,
                       const std::vector<double>& want, const char* kernel,
                       SimdLevel lvl, std::size_t k, std::size_t lo,
                       std::size_t hi) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i])
        << kernel << " diverges from scalar at flat index " << i << " (level "
        << simd_level_name(lvl) << ", k=" << k << ", rows [" << lo << ", "
        << hi << "))";
  }
}

TEST(KernelDispatch, ReportsCoverage) {
  const auto levels = available_vector_levels();
  std::string msg = "scalar";
  for (SimdLevel lvl : levels) msg += std::string(" ") + simd_level_name(lvl);
  std::fprintf(stderr, "kernel_dispatch: comparing levels: %s\n", msg.c_str());
  if (levels.empty()) {
    GTEST_SKIP() << "no vector ISA available; scalar-only host";
  }
}

TEST(KernelDispatch, ActiveTableHonorsEnv) {
  // The CI smoke leg runs this binary under PARLAP_SIMD=scalar and
  // PARLAP_SIMD=auto; assert the routing the env var promises.
  const char* env = std::getenv("PARLAP_SIMD");
  if (env != nullptr && std::string_view(env) == "scalar") {
    EXPECT_EQ(active().level, SimdLevel::kScalar);
  } else if (env == nullptr || std::string_view(env) == "auto") {
    EXPECT_EQ(active().level, detected_simd_level());
  }
  EXPECT_EQ(table_for(active().level).level, active().level);
}

TEST(KernelDispatch, UnavailableLevelFallsBackToScalar) {
  // table_for must never hand out a table the CPU cannot execute.
  for (SimdLevel lvl : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!simd_level_available(lvl)) {
      EXPECT_EQ(table_for(lvl).level, SimdLevel::kScalar);
    }
  }
}

TEST(KernelDispatch, AxpyColsMatchesScalarBitwise) {
  const KernelTable& ref = table_for(SimdLevel::kScalar);
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTable& vec = table_for(lvl);
    for (std::size_t k : kWidths) {
      const std::size_t ld = kRows + 5;  // padded columns
      const Misaligned x(random_doubles(ld * k, 101));
      const std::vector<double> y0 = random_doubles(ld * k, 102);
      std::vector<unsigned char> mask(k, 1);
      if (k > 1) mask[k / 2] = 0;
      for (const auto& [lo, hi] : kRanges) {
        for (const unsigned char* m : {static_cast<const unsigned char*>(
                                           nullptr),
                                       static_cast<const unsigned char*>(
                                           mask.data())}) {
          std::vector<double> want = y0;
          std::vector<double> got = y0;
          ref.axpy_cols(0.37, x.data(), want.data(), lo, hi, ld, k, m);
          vec.axpy_cols(0.37, x.data(), got.data(), lo, hi, ld, k, m);
          expect_bits_equal(got, want, "axpy_cols", lvl, k, lo, hi);
        }
      }
    }
  }
}

TEST(KernelDispatch, ChunkDotsMatchesScalarBitwise) {
  const KernelTable& ref = table_for(SimdLevel::kScalar);
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTable& vec = table_for(lvl);
    for (std::size_t k : kWidths) {
      const std::size_t ld = kRows + 3;
      const Misaligned a(random_doubles(ld * k, 201));
      const Misaligned b(random_doubles(ld * k, 202));
      for (const auto& [lo, hi] : kRanges) {
        std::vector<double> want(k, -1.0);
        std::vector<double> got(k, -2.0);
        ref.chunk_dots(a.data(), b.data(), lo, hi, ld, k, want.data());
        vec.chunk_dots(a.data(), b.data(), lo, hi, ld, k, got.data());
        expect_bits_equal(got, want, "chunk_dots", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatch, GatherScatterRowsMatchScalarBitwise) {
  const KernelTable& ref = table_for(SimdLevel::kScalar);
  // Index list with duplicates (legal for gather) and an irregular
  // permutation prefix; scatter uses the distinct prefix only.
  std::vector<Vertex> rows;
  Rng rng(7, RngTag::kTest, 29);
  for (std::size_t i = 0; i < kRows; ++i) {
    rows.push_back(static_cast<Vertex>((i * 97 + 13) % kRows));
  }
  rows[5] = rows[4];  // duplicate source rows for gather
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTable& vec = table_for(lvl);
    for (std::size_t k : kWidths) {
      const std::size_t src_ld = kRows + 2;
      const std::size_t dst_ld = kRows + 9;
      const Misaligned src(random_doubles(src_ld * k, 301));
      const std::vector<double> dst0 = random_doubles(dst_ld * k, 302);
      for (const auto& [lo, hi] : kRanges) {
        {
          std::vector<double> want = dst0;
          std::vector<double> got = dst0;
          ref.gather_rows(src.data(), src_ld, rows.data(), lo, hi, dst_ld, k,
                          want.data());
          vec.gather_rows(src.data(), src_ld, rows.data(), lo, hi, dst_ld, k,
                          got.data());
          expect_bits_equal(got, want, "gather_rows", lvl, k, lo, hi);
        }
        {
          // Distinct targets for scatter: (i * 97 + 13) mod kRows is a
          // bijection (97 coprime to 259), except the duplicate we
          // planted at 5 — restore it for the scatter run.
          std::vector<Vertex> distinct = rows;
          distinct[5] = static_cast<Vertex>((5 * 97 + 13) % kRows);
          std::vector<double> want = dst0;
          std::vector<double> got = dst0;
          ref.scatter_rows(src.data(), src_ld, distinct.data(), lo, hi,
                           dst_ld, k, want.data());
          vec.scatter_rows(src.data(), src_ld, distinct.data(), lo, hi,
                           dst_ld, k, got.data());
          expect_bits_equal(got, want, "scatter_rows", lvl, k, lo, hi);
        }
      }
    }
  }
}

TEST(KernelDispatch, CsrJacobiMatchesScalarBitwise) {
  const KernelTable& ref = table_for(SimdLevel::kScalar);
  const CsrFixture csr(kRows, kRows, 401);
  const std::vector<double> inv_x = random_doubles(kRows, 402);
  const std::vector<double> y_diag = random_doubles(kRows, 403);
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTable& vec = table_for(lvl);
    for (std::size_t k : kWidths) {
      const Misaligned xb(random_doubles(kRows * k, 404));
      const Misaligned cur(random_doubles(kRows * k, 405));
      const std::vector<double> tmp0 = random_doubles(kRows * k, 406);
      for (const auto& [lo, hi] : kRanges) {
        std::vector<double> want = tmp0;
        std::vector<double> got = tmp0;
        ref.csr_jacobi(lo, hi, k, csr.off.data(), csr.nbr.data(),
                       csr.w.data(), inv_x.data(), y_diag.data(), xb.data(),
                       cur.data(), want.data());
        vec.csr_jacobi(lo, hi, k, csr.off.data(), csr.nbr.data(),
                       csr.w.data(), inv_x.data(), y_diag.data(), xb.data(),
                       cur.data(), got.data());
        expect_bits_equal(got, want, "csr_jacobi", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatch, CsrFwdMatchesScalarBitwise) {
  const KernelTable& ref = table_for(SimdLevel::kScalar);
  const std::size_t n_src = 180;
  const std::size_t n_seed = 300;
  const CsrFixture csr(kRows, n_src, 501);
  std::vector<Vertex> idx(kRows);
  for (std::size_t j = 0; j < kRows; ++j) {
    idx[j] = static_cast<Vertex>((j * 31 + 7) % n_seed);
  }
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTable& vec = table_for(lvl);
    for (std::size_t k : kWidths) {
      const Misaligned seed(random_doubles(n_seed * k, 502));
      const Misaligned src(random_doubles(n_src * k, 503));
      const std::vector<double> out0 = random_doubles(kRows * k, 504);
      for (const auto& [lo, hi] : kRanges) {
        std::vector<double> want = out0;
        std::vector<double> got = out0;
        ref.csr_fwd(lo, hi, k, csr.off.data(), csr.nbr.data(), csr.w.data(),
                    idx.data(), seed.data(), src.data(), want.data());
        vec.csr_fwd(lo, hi, k, csr.off.data(), csr.nbr.data(), csr.w.data(),
                    idx.data(), seed.data(), src.data(), got.data());
        expect_bits_equal(got, want, "csr_fwd", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatch, CsrBwdMatchesScalarBitwise) {
  const KernelTable& ref = table_for(SimdLevel::kScalar);
  const std::size_t n_src = 140;
  const CsrFixture csr(kRows, n_src, 601);
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTable& vec = table_for(lvl);
    for (std::size_t k : kWidths) {
      const Misaligned src(random_doubles(n_src * k, 602));
      const std::vector<double> out0 = random_doubles(kRows * k, 603);
      for (const auto& [lo, hi] : kRanges) {
        std::vector<double> want = out0;
        std::vector<double> got = out0;
        ref.csr_bwd(lo, hi, k, csr.off.data(), csr.nbr.data(), csr.w.data(),
                    src.data(), want.data());
        vec.csr_bwd(lo, hi, k, csr.off.data(), csr.nbr.data(), csr.w.data(),
                    src.data(), got.data());
        expect_bits_equal(got, want, "csr_bwd", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatch, DenseRowsMatchesScalarBitwise) {
  const KernelTable& ref = table_for(SimdLevel::kScalar);
  const std::size_t n = 53;  // dense base blocks are small; odd on purpose
  const std::vector<double> a = random_doubles(n * n, 701);
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, n}, {1, n - 1}, {n - 5, n}};
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTable& vec = table_for(lvl);
    for (std::size_t k : kWidths) {
      const Misaligned in(random_doubles(n * k, 702));
      const std::vector<double> out0 = random_doubles(n * k, 703);
      for (const auto& [lo, hi] : ranges) {
        std::vector<double> want = out0;
        std::vector<double> got = out0;
        ref.dense_rows(lo, hi, k, n, a.data(), in.data(), want.data());
        vec.dense_rows(lo, hi, k, n, a.data(), in.data(), got.data());
        expect_bits_equal(got, want, "dense_rows", lvl, k, lo, hi);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// fp32 tier. The same "lane = column" contract holds per storage type:
// the float tables accumulate in double registers and narrow once on
// store, so fp32-scalar and fp32-vector must agree to the bit — even on
// inputs that stress the float range (denormals that double arithmetic
// keeps exact, and magnitudes whose double sum overflows the float
// range so the narrow yields ±inf in every tier alike). Comparisons go
// through the bit pattern, not operator==, so a NaN produced by both
// tiers still counts as agreement.
// ---------------------------------------------------------------------------

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed, RngTag::kTest, 19);
  for (float& x : v) x = static_cast<float>(rng.next_in(-2.0, 2.0));
  return v;
}

/// Plants fp32 edge-case values at deterministic positions: a denormal,
/// a negative denormal, ±0, and near-FLT_MAX magnitudes whose products
/// or sums leave the float range (finite in the double accumulator,
/// ±inf after the narrowing store).
void inject_specials(std::vector<float>& v) {
  if (v.empty()) return;
  const float specials[] = {1e-42f,    -1e-42f, 0.0f,
                            -0.0f,     FLT_MAX, -FLT_MAX / 2,
                            FLT_MIN,   3e38f};
  const std::size_t n_special = std::size(specials);
  for (std::size_t i = 0; i < n_special && i * 13 + 3 < v.size(); ++i) {
    v[i * 13 + 3] = specials[i];
  }
}

struct MisalignedF {
  explicit MisalignedF(std::vector<float> v) : store(std::move(v)) {
    store.insert(store.begin(), 0.5f);
  }
  [[nodiscard]] const float* data() const { return store.data() + 1; }
  [[nodiscard]] float* data() { return store.data() + 1; }
  std::vector<float> store;
};

void expect_bits_equal_f32(const std::vector<float>& got,
                           const std::vector<float>& want, const char* kernel,
                           SimdLevel lvl, std::size_t k, std::size_t lo,
                           std::size_t hi) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::uint32_t gb = 0;
    std::uint32_t wb = 0;
    std::memcpy(&gb, &got[i], sizeof gb);
    std::memcpy(&wb, &want[i], sizeof wb);
    ASSERT_EQ(gb, wb) << kernel << " (fp32) diverges from scalar at flat index "
                      << i << " (got " << got[i] << ", want " << want[i]
                      << ", level " << simd_level_name(lvl) << ", k=" << k
                      << ", rows [" << lo << ", " << hi << "))";
  }
}

TEST(KernelDispatchF32, TableFollowsActiveLevel) {
  // The fp32 table is dispatched off the SAME level slot as fp64: one
  // --simd / PARLAP_SIMD decision governs both storage types.
  EXPECT_EQ(active_f32().level, active().level);
  EXPECT_EQ(table_for_f32(active().level).level, active().level);
  for (SimdLevel lvl : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!simd_level_available(lvl)) {
      EXPECT_EQ(table_for_f32(lvl).level, SimdLevel::kScalar);
    }
  }
  EXPECT_EQ(&active_for<float>(), &active_f32());
  EXPECT_EQ(&active_for<double>(), &active());
  EXPECT_EQ(&table_for_type<float>(SimdLevel::kScalar),
            &table_for_f32(SimdLevel::kScalar));
}

TEST(KernelDispatchF32, AxpyColsMatchesScalarBitwise) {
  const KernelTableF32& ref = table_for_f32(SimdLevel::kScalar);
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTableF32& vec = table_for_f32(lvl);
    for (std::size_t k : kWidths) {
      const std::size_t ld = kRows + 5;
      std::vector<float> xv = random_floats(ld * k, 111);
      inject_specials(xv);
      const MisalignedF x(std::move(xv));
      std::vector<float> y0 = random_floats(ld * k, 112);
      inject_specials(y0);
      std::vector<unsigned char> mask(k, 1);
      if (k > 1) mask[k / 2] = 0;
      for (const auto& [lo, hi] : kRanges) {
        for (const unsigned char* m : {static_cast<const unsigned char*>(
                                           nullptr),
                                       static_cast<const unsigned char*>(
                                           mask.data())}) {
          std::vector<float> want = y0;
          std::vector<float> got = y0;
          ref.axpy_cols(0.37, x.data(), want.data(), lo, hi, ld, k, m);
          vec.axpy_cols(0.37, x.data(), got.data(), lo, hi, ld, k, m);
          expect_bits_equal_f32(got, want, "axpy_cols", lvl, k, lo, hi);
        }
      }
    }
  }
}

TEST(KernelDispatchF32, ChunkDotsMatchesScalarBitwise) {
  // Dots reduce fp32 storage into DOUBLE outputs — the accumulator
  // never narrows, so the result vectors compare as doubles.
  const KernelTableF32& ref = table_for_f32(SimdLevel::kScalar);
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTableF32& vec = table_for_f32(lvl);
    for (std::size_t k : kWidths) {
      const std::size_t ld = kRows + 3;
      std::vector<float> av = random_floats(ld * k, 211);
      std::vector<float> bv = random_floats(ld * k, 212);
      inject_specials(av);
      inject_specials(bv);
      const MisalignedF a(std::move(av));
      const MisalignedF b(std::move(bv));
      for (const auto& [lo, hi] : kRanges) {
        std::vector<double> want(k, -1.0);
        std::vector<double> got(k, -2.0);
        ref.chunk_dots(a.data(), b.data(), lo, hi, ld, k, want.data());
        vec.chunk_dots(a.data(), b.data(), lo, hi, ld, k, got.data());
        expect_bits_equal(got, want, "chunk_dots(f32)", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatchF32, GatherScatterRowsMatchScalarBitwise) {
  const KernelTableF32& ref = table_for_f32(SimdLevel::kScalar);
  std::vector<Vertex> rows;
  for (std::size_t i = 0; i < kRows; ++i) {
    rows.push_back(static_cast<Vertex>((i * 97 + 13) % kRows));
  }
  rows[5] = rows[4];  // duplicate source rows for gather
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTableF32& vec = table_for_f32(lvl);
    for (std::size_t k : kWidths) {
      const std::size_t src_ld = kRows + 2;
      const std::size_t dst_ld = kRows + 9;
      std::vector<float> srcv = random_floats(src_ld * k, 311);
      inject_specials(srcv);
      const MisalignedF src(std::move(srcv));
      const std::vector<float> dst0 = random_floats(dst_ld * k, 312);
      for (const auto& [lo, hi] : kRanges) {
        {
          std::vector<float> want = dst0;
          std::vector<float> got = dst0;
          ref.gather_rows(src.data(), src_ld, rows.data(), lo, hi, dst_ld, k,
                          want.data());
          vec.gather_rows(src.data(), src_ld, rows.data(), lo, hi, dst_ld, k,
                          got.data());
          expect_bits_equal_f32(got, want, "gather_rows", lvl, k, lo, hi);
        }
        {
          std::vector<Vertex> distinct = rows;
          distinct[5] = static_cast<Vertex>((5 * 97 + 13) % kRows);
          std::vector<float> want = dst0;
          std::vector<float> got = dst0;
          ref.scatter_rows(src.data(), src_ld, distinct.data(), lo, hi,
                           dst_ld, k, want.data());
          vec.scatter_rows(src.data(), src_ld, distinct.data(), lo, hi,
                           dst_ld, k, got.data());
          expect_bits_equal_f32(got, want, "scatter_rows", lvl, k, lo, hi);
        }
      }
    }
  }
}

TEST(KernelDispatchF32, CsrJacobiMatchesScalarBitwise) {
  const KernelTableF32& ref = table_for_f32(SimdLevel::kScalar);
  const CsrFixture csr(kRows, kRows, 411);
  const std::vector<float> w(csr.w.begin(), csr.w.end());
  std::vector<float> inv_x = random_floats(kRows, 412);
  std::vector<float> y_diag = random_floats(kRows, 413);
  // Denormal scale rows and a float-overflow diagonal: the double
  // accumulator handles both exactly; the narrow decides the bits.
  inv_x[3] = 1e-42f;
  inv_x[17] = FLT_MIN;
  y_diag[9] = 3e38f;
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTableF32& vec = table_for_f32(lvl);
    for (std::size_t k : kWidths) {
      std::vector<float> xbv = random_floats(kRows * k, 414);
      std::vector<float> curv = random_floats(kRows * k, 415);
      inject_specials(xbv);
      inject_specials(curv);
      const MisalignedF xb(std::move(xbv));
      const MisalignedF cur(std::move(curv));
      const std::vector<float> tmp0 = random_floats(kRows * k, 416);
      for (const auto& [lo, hi] : kRanges) {
        std::vector<float> want = tmp0;
        std::vector<float> got = tmp0;
        ref.csr_jacobi(lo, hi, k, csr.off.data(), csr.nbr.data(), w.data(),
                       inv_x.data(), y_diag.data(), xb.data(), cur.data(),
                       want.data());
        vec.csr_jacobi(lo, hi, k, csr.off.data(), csr.nbr.data(), w.data(),
                       inv_x.data(), y_diag.data(), xb.data(), cur.data(),
                       got.data());
        expect_bits_equal_f32(got, want, "csr_jacobi", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatchF32, CsrFwdMatchesScalarBitwise) {
  const KernelTableF32& ref = table_for_f32(SimdLevel::kScalar);
  const std::size_t n_src = 180;
  const std::size_t n_seed = 300;
  const CsrFixture csr(kRows, n_src, 511);
  const std::vector<float> w(csr.w.begin(), csr.w.end());
  std::vector<Vertex> idx(kRows);
  for (std::size_t j = 0; j < kRows; ++j) {
    idx[j] = static_cast<Vertex>((j * 31 + 7) % n_seed);
  }
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTableF32& vec = table_for_f32(lvl);
    for (std::size_t k : kWidths) {
      std::vector<float> seedv = random_floats(n_seed * k, 512);
      std::vector<float> srcv = random_floats(n_src * k, 513);
      inject_specials(seedv);
      inject_specials(srcv);
      const MisalignedF seed(std::move(seedv));
      const MisalignedF src(std::move(srcv));
      const std::vector<float> out0 = random_floats(kRows * k, 514);
      for (const auto& [lo, hi] : kRanges) {
        std::vector<float> want = out0;
        std::vector<float> got = out0;
        ref.csr_fwd(lo, hi, k, csr.off.data(), csr.nbr.data(), w.data(),
                    idx.data(), seed.data(), src.data(), want.data());
        vec.csr_fwd(lo, hi, k, csr.off.data(), csr.nbr.data(), w.data(),
                    idx.data(), seed.data(), src.data(), got.data());
        expect_bits_equal_f32(got, want, "csr_fwd", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatchF32, CsrBwdMatchesScalarBitwise) {
  const KernelTableF32& ref = table_for_f32(SimdLevel::kScalar);
  const std::size_t n_src = 140;
  const CsrFixture csr(kRows, n_src, 611);
  const std::vector<float> w(csr.w.begin(), csr.w.end());
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTableF32& vec = table_for_f32(lvl);
    for (std::size_t k : kWidths) {
      std::vector<float> srcv = random_floats(n_src * k, 612);
      inject_specials(srcv);
      const MisalignedF src(std::move(srcv));
      const std::vector<float> out0 = random_floats(kRows * k, 613);
      for (const auto& [lo, hi] : kRanges) {
        std::vector<float> want = out0;
        std::vector<float> got = out0;
        ref.csr_bwd(lo, hi, k, csr.off.data(), csr.nbr.data(), w.data(),
                    src.data(), want.data());
        vec.csr_bwd(lo, hi, k, csr.off.data(), csr.nbr.data(), w.data(),
                    src.data(), got.data());
        expect_bits_equal_f32(got, want, "csr_bwd", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatchF32, DenseRowsMatchesScalarBitwise) {
  const KernelTableF32& ref = table_for_f32(SimdLevel::kScalar);
  const std::size_t n = 53;
  std::vector<float> a = random_floats(n * n, 711);
  inject_specials(a);
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, n}, {1, n - 1}, {n - 5, n}};
  for (SimdLevel lvl : available_vector_levels()) {
    const KernelTableF32& vec = table_for_f32(lvl);
    for (std::size_t k : kWidths) {
      std::vector<float> inv = random_floats(n * k, 712);
      inject_specials(inv);
      const MisalignedF in(std::move(inv));
      const std::vector<float> out0 = random_floats(n * k, 713);
      for (const auto& [lo, hi] : ranges) {
        std::vector<float> want = out0;
        std::vector<float> got = out0;
        ref.dense_rows(lo, hi, k, n, a.data(), in.data(), want.data());
        vec.dense_rows(lo, hi, k, n, a.data(), in.data(), got.data());
        expect_bits_equal_f32(got, want, "dense_rows", lvl, k, lo, hi);
      }
    }
  }
}

TEST(KernelDispatchF32, AlignedBufferReuseAcrossWidths) {
  // The fp32 apply path reuses one AlignedBuffer<float> as panel scratch
  // across jobs of different widths (resize does NOT preserve or zero
  // contents on shrink). A kernel run into the reused, stale-contented
  // buffer must produce the same bits as a run into a fresh vector.
  const KernelTableF32& tab = active_f32();
  const CsrFixture csr(kRows, kRows, 811);
  const std::vector<float> w(csr.w.begin(), csr.w.end());
  const std::vector<float> inv_x = random_floats(kRows, 812);
  const std::vector<float> y_diag = random_floats(kRows, 813);
  AlignedBuffer<float> reused;
  // Widths descending then ascending: shrink reuses the allocation
  // (stale tail), growth reallocates — both paths must not leak stale
  // values into [lo, hi) output rows.
  for (std::size_t k : {16u, 8u, 1u, 16u}) {
    const std::vector<float> xb = random_floats(kRows * k, 820 + k);
    const std::vector<float> cur = random_floats(kRows * k, 840 + k);
    reused.resize(kRows * k);
    ASSERT_EQ(reused.size(), kRows * k);
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(reused.data()) % kBufferAlign,
              0u);
    std::vector<float> fresh(kRows * k, -7.0f);
    std::copy(fresh.begin(), fresh.end(), reused.data());
    tab.csr_jacobi(0, kRows, k, csr.off.data(), csr.nbr.data(), w.data(),
                   inv_x.data(), y_diag.data(), xb.data(), cur.data(),
                   fresh.data());
    tab.csr_jacobi(0, kRows, k, csr.off.data(), csr.nbr.data(), w.data(),
                   inv_x.data(), y_diag.data(), xb.data(), cur.data(),
                   reused.data());
    const std::vector<float> got(reused.data(), reused.data() + kRows * k);
    expect_bits_equal_f32(got, fresh, "csr_jacobi(reused buffer)",
                          tab.level, k, 0, kRows);
  }
}

}  // namespace
}  // namespace parlap::kernels
