// Unit tests for the benchmark-harness JSON reporter: string escaping,
// number formatting, median/stddev aggregation, measure(), and the
// metadata fields of a full BenchReporter document.
#include "harness/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace parlap::bench {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(JsonWriter::escape("grid2d/n=4096"), "\"grid2d/n=4096\"");
  EXPECT_EQ(JsonWriter::escape(""), "\"\"");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonWriter::escape("\b\f\r"), "\"\\b\\f\\r\"");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01\x1f", 2)),
            "\"\\u0001\\u001f\"");
}

TEST(JsonNumbers, IntegralDoublesPrintWithoutFraction) {
  EXPECT_EQ(JsonWriter::format_number(4096.0), "4096");
  EXPECT_EQ(JsonWriter::format_number(-3.0), "-3");
  EXPECT_EQ(JsonWriter::format_number(0.0), "0");
}

TEST(JsonNumbers, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonWriter::format_number(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::format_number(
                std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonNumbers, FractionsRoundTrip) {
  const double x = 0.1234567890123;
  EXPECT_DOUBLE_EQ(std::strtod(JsonWriter::format_number(x).c_str(), nullptr),
                   x);
}

TEST(JsonWriterTest, NestedStructureHasBalancedCommas) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.member("a", std::int64_t{1});
  w.member("b", "x");
  w.key("c");
  w.begin_array();
  w.value(1.5);
  w.null();
  w.begin_object();
  w.member("d", true);
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(), R"({"a":1,"b":"x","c":[1.5,null,{"d":true}]})");
}

TEST(Summarize, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).reps, 0);

  const std::vector<double> one{2.5};
  const TimingSummary s = summarize(one);
  EXPECT_EQ(s.reps, 1);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
}

TEST(Summarize, OddCountMedianIsMiddleOfSorted) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(v).median, 2.0);
}

TEST(Summarize, EvenCountMedianAveragesMiddlePair) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  const TimingSummary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, SampleStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known dataset: population variance 4, sample variance 32/7.
  EXPECT_NEAR(summarize(v).stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Measure, RunsWarmupPlusReps) {
  int calls = 0;
  const std::vector<double> samples = measure(3, 2, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  ASSERT_EQ(samples.size(), 3u);
  for (const double s : samples) EXPECT_GE(s, 0.0);
}

TEST(Metadata, FieldsArePopulated) {
  const RunMetadata md = collect_metadata();
  EXPECT_FALSE(md.commit.empty());
  EXPECT_FALSE(md.hostname.empty());
  EXPECT_FALSE(md.compiler.empty());
  EXPECT_GE(md.threads, 1);
  // ISO 8601 UTC shape: YYYY-MM-DDTHH:MM:SSZ.
  ASSERT_EQ(md.timestamp_utc.size(), 20u);
  EXPECT_EQ(md.timestamp_utc[4], '-');
  EXPECT_EQ(md.timestamp_utc[10], 'T');
  EXPECT_EQ(md.timestamp_utc.back(), 'Z');
}

TEST(Metadata, EnvCommitOverridesBuildValue) {
  ASSERT_EQ(setenv("PARLAP_GIT_COMMIT", "deadbeef1234", 1), 0);
  EXPECT_EQ(collect_metadata().commit, "deadbeef1234");
  unsetenv("PARLAP_GIT_COMMIT");
}

TEST(BenchReporterTest, DocumentContainsMetadataAndAggregates) {
  BenchReporter r;
  r.set_experiment("E0");
  const std::vector<double> times{0.25, 0.5, 1.0};
  r.record("grid2d/n=16", {{"n", 16.0}, {"m", 480.0}}, times);
  r.record_time("path/n=8", {{"n", 8.0}}, 0.125);

  std::ostringstream out;
  r.write(out);
  const std::string doc = out.str();

  EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"experiment\":\"E0\""), std::string::npos);
  EXPECT_NE(doc.find("\"commit\":"), std::string::npos);
  EXPECT_NE(doc.find("\"threads\":"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"grid2d/n=16\""), std::string::npos);
  EXPECT_NE(doc.find("\"n\":16,\"m\":480"), std::string::npos);
  EXPECT_NE(doc.find("\"reps\":3,\"median\":0.5"), std::string::npos);
  EXPECT_NE(doc.find("\"reps\":1,\"median\":0.125"), std::string::npos);

  // Balanced braces/brackets outside of strings: cheap well-formedness
  // check for the streamed document.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(BenchReporterTest, WriteToEnvPathRoundTrips) {
  const std::string path =
      testing::TempDir() + "/parlap_json_writer_test.json";
  ASSERT_EQ(setenv("PARLAP_BENCH_JSON", path.c_str(), 1), 0);
  {
    BenchReporter r;
    r.set_experiment("E0");
    r.record_time("case", {{"n", 4.0}}, 0.5);
    EXPECT_TRUE(r.write_to_env_path());
    // Second call is a no-op: the report is written once.
    EXPECT_FALSE(r.write_to_env_path());
  }
  unsetenv("PARLAP_BENCH_JSON");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"median\":0.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SmokeFlag, ReadsEnvironment) {
  unsetenv("PARLAP_SMOKE");
  EXPECT_FALSE(smoke());
  ASSERT_EQ(setenv("PARLAP_SMOKE", "1", 1), 0);
  EXPECT_TRUE(smoke());
  ASSERT_EQ(setenv("PARLAP_SMOKE", "0", 1), 0);
  EXPECT_FALSE(smoke());
  unsetenv("PARLAP_SMOKE");
}

}  // namespace
}  // namespace parlap::bench
