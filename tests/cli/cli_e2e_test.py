#!/usr/bin/env python3
"""End-to-end contract test for parlap_cli (ctest suite `cli.e2e`).

Drives the installed binary exactly as a user would: solves a checked-in
Matrix Market fixture under every registered method, validates the JSON
report schema (docs/CLI.md), checks that the methods agree on the
solution, and exercises the documented failure modes (malformed input,
disconnected-graph RHS incompatibility, unknown method, usage errors)
with their exit codes.

Usage: cli_e2e_test.py <parlap_cli-binary> <tests/data-dir>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

EPS = 1e-8
METHODS = ["parlap", "parlap-lev", "cg", "cg-jacobi", "cg-tree", "ks16", "dense"]

failures = []


def check(cond, what):
    tag = "ok  " if cond else "FAIL"
    print(f"{tag} {what}")
    if not cond:
        failures.append(what)


def run(cli, *args):
    return subprocess.run([str(cli), *args], capture_output=True, text=True)


def load_solution(path):
    rows = [[float(v) for v in line.split()] for line in Path(path).read_text().split("\n") if line.strip()]
    cols = list(zip(*rows))
    # Solutions are defined up to a per-component constant; the fixture is
    # connected, so compare mean-centered vectors.
    out = []
    for col in cols:
        mean = sum(col) / len(col)
        out.append([v - mean for v in col])
    return out


def validate_solve_json(doc, method, n_runs):
    check(doc.get("schema") == "parlap-cli-solve-v1", f"{method}: json schema tag")
    md = doc.get("metadata", {})
    for key in ("commit", "timestamp_utc", "hostname", "compiler", "build_type", "threads"):
        check(key in md, f"{method}: metadata.{key} present")
    inp = doc.get("input", {})
    check(inp.get("vertices") == 25 and inp.get("edges") == 40,
          f"{method}: input dims 25/40, got {inp.get('vertices')}/{inp.get('edges')}")
    check(inp.get("components") == 1, f"{method}: one component")
    check(doc.get("method") == method, f"{method}: method echoed")
    check(doc.get("eps") == EPS, f"{method}: eps echoed")
    check(doc.get("setup_seconds", -1) >= 0, f"{method}: setup_seconds >= 0")
    runs = doc.get("runs", [])
    check(len(runs) == n_runs, f"{method}: {n_runs} run(s), got {len(runs)}")
    for r in runs:
        check(r.get("converged") is True, f"{method}: run converged")
        check(0 <= r.get("relative_residual", 1) <= EPS,
              f"{method}: residual {r.get('relative_residual')} <= eps")
        check(r.get("iterations", -1) >= 0 and r.get("solve_seconds", -1) >= 0,
              f"{method}: iterations/solve_seconds sane")
    check(doc.get("all_converged") is True, f"{method}: all_converged")


def main():
    cli = Path(sys.argv[1])
    data = Path(sys.argv[2])
    fixture = data / "grid5x5.mtx"
    with tempfile.TemporaryDirectory(prefix="parlap_cli_e2e_") as tmpdir:
        return run_checks(cli, data, fixture, Path(tmpdir))


def run_checks(cli, data, fixture, tmp):

    # --- every method solves the same fixture and the reports agree ------
    solutions = {}
    for method in METHODS:
        out_json = tmp / f"{method}.json"
        out_x = tmp / f"{method}.x"
        p = run(cli, "solve", "--input", str(fixture), "--method", method,
                "--eps", str(EPS), "--json", str(out_json), "--out", str(out_x))
        check(p.returncode == 0, f"{method}: exit 0 (got {p.returncode}: {p.stderr.strip()})")
        if p.returncode != 0:
            continue
        validate_solve_json(json.loads(out_json.read_text()), method, 1)
        solutions[method] = load_solution(out_x)[0]

    dense = solutions.get("dense")
    check(dense is not None, "dense solution available as ground truth")
    for method, x in solutions.items():
        err = max(abs(a - b) for a, b in zip(x, dense))
        check(err < 1e-5, f"{method}: matches dense ground truth (max err {err:.2e})")

    # --- multiple right-hand sides --------------------------------------
    out_json = tmp / "multi.json"
    p = run(cli, "solve", "--input", str(fixture), "--method", "parlap",
            "--rhs-random", "3", "--eps", str(EPS), "--json", str(out_json))
    check(p.returncode == 0, f"multi-rhs: exit 0 (got {p.returncode})")
    if p.returncode == 0:
        validate_solve_json(json.loads(out_json.read_text()), "parlap", 3)

    # --- build-phase telemetry (docs/CLI.md "build" object) --------------
    out_json = tmp / "build_stats.json"
    p = run(cli, "solve", "--input", str(fixture), "--method", "parlap",
            "--build-stats", "--eps", str(EPS), "--json", str(out_json))
    check(p.returncode == 0, f"build-stats: exit 0 (got {p.returncode})")
    if p.returncode == 0:
        doc = json.loads(out_json.read_text())
        build = doc.get("build", {})
        check(build.get("total_seconds", -1) >= 0 and
              build.get("base_seconds", -1) >= 0,
              "build-stats: build timings present")
        check(build.get("levels") == len(build.get("levels_detail", [])),
              "build-stats: one levels_detail entry per level")
        check(build.get("arena_allocations", -1) >= 0 and
              build.get("peak_arena_bytes", -1) >= 0,
              "build-stats: arena counters present")
        phases = build.get("phases", {})
        for key in ("degrees_seconds", "five_dd_seconds", "partition_seconds",
                    "walk_graph_seconds", "schur_seconds", "extract_seconds"):
            check(phases.get(key, -1) >= 0, f"build-stats: phases.{key}")
    # Methods outside the chain pipeline report no build object.
    out_json = tmp / "build_stats_cg.json"
    p = run(cli, "solve", "--input", str(fixture), "--method", "cg",
            "--build-stats", "--eps", str(EPS), "--json", str(out_json))
    check(p.returncode == 0, f"build-stats cg: exit 0 (got {p.returncode})")
    if p.returncode == 0:
        check("build" not in json.loads(out_json.read_text()),
              "build-stats: cg reports no build object")

    # --- documented failure modes ---------------------------------------
    p = run(cli, "solve", "--input", str(data / "malformed.mtx"))
    check(p.returncode == 3, f"malformed mtx: exit 3 (got {p.returncode})")
    check("error" in p.stderr, "malformed mtx: message on stderr")

    p = run(cli, "solve", "--input", str(data / "disconnected.mtx"))
    check(p.returncode == 3, f"disconnected rhs: exit 3 (got {p.returncode})")
    check("incompatible" in p.stderr and "--project-rhs" in p.stderr,
          "disconnected rhs: explains the fix")

    p = run(cli, "solve", "--input", str(data / "disconnected.mtx"), "--project-rhs")
    check(p.returncode == 0, f"disconnected + --project-rhs: exit 0 (got {p.returncode})")

    p = run(cli, "solve", "--input", str(fixture), "--method", "nope")
    check(p.returncode == 3, f"unknown method: exit 3 (got {p.returncode})")
    check("known methods" in p.stderr and "parlap" in p.stderr,
          "unknown method: lists alternatives")

    p = run(cli, "solve", "--input", str(fixture), "--bogus-flag")
    check(p.returncode == 2, f"bad flag: exit 2 (got {p.returncode})")

    p = run(cli, "solve")
    check(p.returncode == 2, f"missing input: exit 2 (got {p.returncode})")

    # Demand endpoints are validated as 64-bit before narrowing to the
    # 32-bit vertex type (no silent truncation to a different system).
    p = run(cli, "solve", "--gen", "grid2d:5", "--rhs-demand", "4294967296,1")
    check(p.returncode == 3, f"overflowing demand id: exit 3 (got {p.returncode})")
    check("out of range" in p.stderr, "overflowing demand id: clear message")

    p = run(cli, "solve", "--gen", "path:1")
    check(p.returncode == 3, f"single-vertex default rhs: exit 3 (got {p.returncode})")
    check("single vertex" in p.stderr, "single-vertex: clear message")

    p = run(cli, "solve", "--gen", "grid2d:4294967297")
    check(p.returncode == 3, f"oversized generator: exit 3 (got {p.returncode})")
    check("vertex-id limit" in p.stderr, "oversized generator: clear message")

    p = run(cli, "solve", "--gen", "grid2d:5", "--rhs-random", "0")
    check(p.returncode == 2, f"--rhs-random 0: exit 2 (got {p.returncode})")

    # --- gen -> info round trip ------------------------------------------
    gen_path = tmp / "gen.mtx"
    p = run(cli, "gen", "--gen", "grid2d:6", "--out", str(gen_path))
    check(p.returncode == 0, f"gen: exit 0 (got {p.returncode})")
    info_json = tmp / "info.json"
    p = run(cli, "info", "--input", str(gen_path), "--json", str(info_json))
    check(p.returncode == 0, f"info: exit 0 (got {p.returncode})")
    if p.returncode == 0:
        doc = json.loads(info_json.read_text())
        check(doc.get("schema") == "parlap-cli-info-v1", "info: schema tag")
        check(doc.get("vertices") == 36 and doc.get("edges") == 60,
              "info: grid2d:6 has 36 vertices / 60 edges")
        check(doc.get("components") == 1, "info: connected")

    # --- batch: engine, cache, and worker-count determinism ---------------
    jobs_file = data / "batch_jobs.jsonl"
    batch_docs = {}
    for workers in ("1", "4"):
        batch_json = tmp / f"batch{workers}.json"
        p = run(cli, "batch", "--jobs", str(jobs_file), "--workers", workers,
                "--json", str(batch_json))
        check(p.returncode == 0,
              f"batch workers={workers}: exit 0 (got {p.returncode}: {p.stderr.strip()})")
        if p.returncode != 0:
            continue
        batch_docs[workers] = json.loads(batch_json.read_text())

    if "4" in batch_docs:
        doc = batch_docs["4"]
        check(doc.get("schema") == "parlap-cli-batch-v3", "batch: schema tag")
        check(doc.get("all_converged") is True, "batch: all jobs converged")
        check(doc.get("cache", {}).get("hits", 0) > 0,
              "batch: repeated graphs produce cache hits")
        check(doc.get("block_width") == 1, "batch: default block width is 1")
        agg = doc.get("aggregate", {})
        check(agg.get("failed") == 0 and agg.get("succeeded") == agg.get("jobs"),
              "batch: aggregate counts consistent")
        check(agg.get("solves_per_second", 0) > 0, "batch: throughput reported")
        check(agg.get("p95_solve_seconds", 0) >= agg.get("p50_solve_seconds", 1),
              "batch: p95 >= p50")
        check(agg.get("panels") == agg.get("jobs"),
              "batch: width 1 puts every job in its own panel")
        check(agg.get("panel_occupancy") == 1.0,
              "batch: width-1 panels are full by definition")
        check(doc.get("cache", {}).get("build_seconds", -1) > 0,
              "batch: miss cost attributed in cache.build_seconds")
        check(len(doc.get("panels", [])) == agg.get("jobs"),
              "batch: per-panel telemetry present")
        check(agg.get("p99_solve_seconds", 0) >= agg.get("p95_solve_seconds", 1),
              "batch: p99 >= p95")
        metrics = doc.get("metrics", {})
        solve_m = metrics.get("solve_seconds", {})
        queue_m = metrics.get("queue_wait_seconds", {})
        check(solve_m.get("count", 0) == agg.get("jobs"),
              "batch: metrics.solve_seconds counts every job")
        check(0 <= solve_m.get("p50", -1) <= solve_m.get("p95", -1)
              <= solve_m.get("p99", -1),
              "batch: metrics solve percentiles monotone")
        check(queue_m.get("count", 0) == agg.get("panels"),
              "batch: metrics.queue_wait_seconds counts every task")
        check(0 <= queue_m.get("p50", -1) <= queue_m.get("p95", -1)
              <= queue_m.get("p99", -1),
              "batch: metrics queue percentiles monotone")
        check(0.0 <= metrics.get("cache_hit_rate", -1) <= 1.0,
              "batch: metrics.cache_hit_rate in [0, 1]")
        check(doc.get("cache", {}).get("single_flight_waits", -1) >= 0,
              "batch: cache.single_flight_waits present")
        for pn in doc.get("panels", []):
            check(pn.get("queue_seconds", -1) >= 0
                  and pn.get("exec_seconds", -1) >= 0,
                  "batch: panel queue/exec seconds present")
        for job in doc.get("jobs", []):
            check("build_seconds" in job and "build_arena_allocations" in job,
                  f"batch: job {job.get('id')} carries build-cost fields")
            check(job.get("panel_width") == 1 and "apply_seconds" in job,
                  f"batch: job {job.get('id')} carries panel fields")

    if set(batch_docs) == {"1", "4"}:
        a = batch_docs["1"]["jobs"]
        b = batch_docs["4"]["jobs"]
        check([j["id"] for j in a] == [j["id"] for j in b],
              "batch: job order is input order for every worker count")
        for ja, jb in zip(a, b):
            check(ja.get("solution_hash") == jb.get("solution_hash")
                  and ja.get("relative_residual") == jb.get("relative_residual")
                  and ja.get("iterations") == jb.get("iterations"),
                  f"batch: job {ja.get('id')} identical at workers 1 vs 4")

    # --- batch: panel grouping (--block-width) is bit-identical ----------
    blocked_json = tmp / "batch_blocked.json"
    p = run(cli, "batch", "--jobs", str(jobs_file), "--workers", "2",
            "--block-width", "4", "--json", str(blocked_json))
    check(p.returncode == 0,
          f"batch --block-width 4: exit 0 (got {p.returncode}: {p.stderr.strip()})")
    if p.returncode == 0 and "1" in batch_docs:
        blocked = json.loads(blocked_json.read_text())
        check(blocked.get("block_width") == 4, "batch: block_width echoed")
        agg = blocked.get("aggregate", {})
        check(0 < agg.get("panels", 0) < agg.get("jobs", 0),
              "batch: width 4 groups same-factorization jobs into panels")
        widths = [pn.get("width") for pn in blocked.get("panels", [])]
        check(max(widths, default=0) > 1, "batch: at least one multi-job panel")
        check(sum(widths) == agg.get("jobs"),
              "batch: every job lands in exactly one panel")
        for pn in blocked.get("panels", []):
            check(pn.get("solve_seconds", -1) >= 0
                  and pn.get("apply_seconds", -1) >= 0,
                  "batch: per-panel apply seconds reported")
        for ja, jb in zip(batch_docs["1"]["jobs"], blocked["jobs"]):
            check(ja.get("solution_hash") == jb.get("solution_hash")
                  and ja.get("iterations") == jb.get("iterations")
                  and ja.get("relative_residual") == jb.get("relative_residual"),
                  f"batch: job {ja.get('id')} identical at block width 1 vs 4")

    # --- batch: span tracing (--trace-out) -------------------------------
    trace_path = tmp / "trace.json"
    traced_json = tmp / "batch_traced.json"
    p = run(cli, "batch", "--jobs", str(jobs_file), "--workers", "2",
            "--block-width", "4", "--trace-out", str(trace_path),
            "--json", str(traced_json))
    check(p.returncode == 0,
          f"batch --trace-out: exit 0 (got {p.returncode}: {p.stderr.strip()})")
    if p.returncode == 0:
        trace = json.loads(trace_path.read_text())
        events = trace.get("traceEvents", [])
        check(len(events) > 0, "trace: events recorded")
        cats = {ev.get("cat") for ev in events}
        for cat in ("build", "apply", "cache", "queue", "cli"):
            check(cat in cats, f"trace: category {cat} present")
        bad = [ev for ev in events
               if ev.get("ph") != "X"
               or not isinstance(ev.get("ts"), (int, float))
               or not isinstance(ev.get("dur"), (int, float))]
        check(not bad, f"trace: all {len(events)} events are complete events")

    p = run(cli, "batch", "--jobs", str(data / "nope.jsonl"))
    check(p.returncode == 3, f"batch missing job file: exit 3 (got {p.returncode})")

    p = run(cli, "batch")
    check(p.returncode == 2, f"batch without --jobs: exit 2 (got {p.returncode})")

    bad_jobs = tmp / "bad.jsonl"
    bad_jobs.write_text('{"method": "parlap"}\n')  # no graph
    p = run(cli, "batch", "--jobs", str(bad_jobs))
    check(p.returncode == 3, f"batch malformed job: exit 3 (got {p.returncode})")
    check("line 1" in p.stderr, "batch malformed job: names the line")

    # A failing job is isolated: exit 1, the rest still solve.
    mixed_jobs = tmp / "mixed.jsonl"
    mixed_jobs.write_text(
        '{"id": "good", "graph": "grid2d:6"}\n'
        '{"id": "bad", "graph": "grid2d:6", "method": "no-such"}\n')
    p = run(cli, "batch", "--jobs", str(mixed_jobs))
    check(p.returncode == 1, f"batch with failing job: exit 1 (got {p.returncode})")
    check("no-such" in p.stderr, "batch with failing job: error surfaced")

    # --- bench smoke ------------------------------------------------------
    bench_json = tmp / "bench.json"
    p = run(cli, "bench", "--family", "path", "--sizes", "64,128", "--reps", "1",
            "--json", str(bench_json))
    check(p.returncode == 0, f"bench: exit 0 (got {p.returncode})")
    if p.returncode == 0:
        doc = json.loads(bench_json.read_text())
        check(doc.get("experiment") == "cli-bench", "bench: experiment tag")
        check(len(doc.get("cases", [])) == 2, "bench: one case per size")

    # --- help is complete -------------------------------------------------
    p = run(cli, "help")
    check(p.returncode == 0, "help: exit 0")
    for method in METHODS:
        check(method in p.stdout, f"help: lists method {method}")

    if failures:
        print(f"\n{len(failures)} check(s) failed")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
