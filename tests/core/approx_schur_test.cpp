// ApproxSchur tests (Algorithm 6, Theorem 7.1): spectral closeness to the
// exact Schur complement, the edge-count bound, level count, and terminal
// index mapping.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/alpha_bound.hpp"
#include "core/approx_schur.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"

namespace parlap {
namespace {

TEST(ApproxSchur, EdgeCountNeverExceedsInput) {
  const Multigraph g = make_erdos_renyi(400, 2000, 1);
  const Multigraph split = split_edges_uniform(g, 4);
  std::vector<Vertex> c(40);
  std::iota(c.begin(), c.end(), Vertex{0});
  const ApproxSchurResult r = approx_schur(split, c, 2);
  EXPECT_EQ(r.schur.num_vertices(), 40);
  EXPECT_LE(r.schur.num_edges(), split.num_edges());
  for (const WalkStats& ws : r.walk_stats) {
    EXPECT_LE(ws.edges_out, ws.edges_in);
  }
}

TEST(ApproxSchur, LevelsLogarithmicInNonTerminals) {
  const Multigraph g = make_grid2d(40, 40);
  const Multigraph split = split_edges_uniform(g, 2);
  std::vector<Vertex> c{0, 1599};
  const ApproxSchurResult r = approx_schur(split, c, 3);
  const double s = static_cast<double>(g.num_vertices() - 2);
  // Practical bound ~20 ln s + slack (paper: O(log s)).
  EXPECT_LE(r.levels, static_cast<int>(25.0 * std::log(s)) + 5);
}

TEST(ApproxSchur, SpectrallyApproximatesExactSchur) {
  // Theorem 7.1-(1) on a small weighted graph, with the eps folded into
  // the split factor via approx_schur_simple.
  Multigraph g = make_erdos_renyi(60, 300, 5);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 6);
  std::vector<Vertex> c(12);
  std::iota(c.begin(), c.end(), Vertex{0});

  const double eps = 0.5;
  const ApproxSchurResult r =
      approx_schur_simple(g, c, eps, 7, /*scale=*/1.0);
  const DenseMatrix approx = laplacian_dense(r.schur);
  const DenseMatrix exact = schur_complement_dense(laplacian_dense(g), c);
  const SpectralBounds sb = relative_spectral_bounds(approx, exact, 1e-8);
  EXPECT_GT(sb.lo, std::exp(-eps));
  EXPECT_LT(sb.hi, std::exp(eps));
  EXPECT_LT(sb.kernel_leakage, 1e-8);
}

TEST(ApproxSchur, TerminalIndexingMatchesInputOrder) {
  // Eliminate the middle of a path; the result must connect terminal 0
  // (= input vertex 0) to terminal 1 (= input vertex n-1) with the series
  // weight 1/(n-1), regardless of c_set order.
  const Vertex n = 30;
  const Multigraph g = make_path(n);
  const std::vector<Vertex> c{n - 1, 0};  // reversed on purpose
  const ApproxSchurResult r = approx_schur(split_edges_uniform(g, 8), c, 9);
  ASSERT_EQ(r.schur.num_vertices(), 2);
  const DenseMatrix l = laplacian_dense(r.schur);
  EXPECT_NEAR(l(0, 1), -1.0 / static_cast<double>(n - 1), 0.15);
  // Laplacian structure intact.
  EXPECT_NEAR(l(0, 0) + l(0, 1), 0.0, 1e-12);
}

TEST(ApproxSchur, ExpectationOverSeedsMatchesExact) {
  // Average over seeds -> exact SC entrywise (unbiasedness through the
  // whole multi-level pipeline; each level is unbiased by Lemma 5.1).
  const Multigraph g = make_grid2d(5, 4);
  std::vector<Vertex> c{0, 3, 16, 19};
  const Multigraph split = split_edges_uniform(g, 3);
  const int trials = 400;
  DenseMatrix mean(4, 4);
  for (int t = 0; t < trials; ++t) {
    const ApproxSchurResult r =
        approx_schur(split, c, 1000 + static_cast<std::uint64_t>(t));
    const DenseMatrix l = laplacian_dense(r.schur);
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) mean(i, j) += l(i, j) / trials;
  }
  const DenseMatrix exact = schur_complement_dense(laplacian_dense(g), c);
  EXPECT_LT(mean.max_abs_diff(exact), 0.15);
}

TEST(ApproxSchur, ResultStaysConnectedWhp) {
  const Multigraph g = make_random_regular(300, 4, 11);
  std::vector<Vertex> c(30);
  std::iota(c.begin(), c.end(), Vertex{0});
  const ApproxSchurResult r =
      approx_schur_simple(g, c, 0.5, 13, /*scale=*/0.5);
  EXPECT_TRUE(is_connected(r.schur));
}

TEST(ApproxSchur, RejectsBadTerminalSets) {
  const Multigraph g = make_path(10);
  const std::vector<Vertex> empty;
  EXPECT_THROW((void)approx_schur(g, empty, 1), std::runtime_error);
  std::vector<Vertex> everything(10);
  std::iota(everything.begin(), everything.end(), Vertex{0});
  EXPECT_THROW((void)approx_schur(g, everything, 1), std::runtime_error);
  const std::vector<Vertex> duplicate{1, 1};
  EXPECT_THROW((void)approx_schur(g, duplicate, 1), std::runtime_error);
}

TEST(ApproxSchur, Deterministic) {
  const Multigraph g = make_erdos_renyi(100, 500, 15);
  std::vector<Vertex> c(10);
  std::iota(c.begin(), c.end(), Vertex{0});
  const Multigraph split = split_edges_uniform(g, 3);
  const ApproxSchurResult a = approx_schur(split, c, 17);
  const ApproxSchurResult b = approx_schur(split, c, 17);
  ASSERT_EQ(a.schur.num_edges(), b.schur.num_edges());
  for (EdgeId e = 0; e < a.schur.num_edges(); ++e) {
    EXPECT_EQ(a.schur.edge_u(e), b.schur.edge_u(e));
    EXPECT_DOUBLE_EQ(a.schur.edge_weight(e), b.schur.edge_weight(e));
  }
}

}  // namespace
}  // namespace parlap
