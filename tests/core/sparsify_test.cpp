// Spectral sparsifier tests: size bounds, spectral closeness on small
// graphs (dense oracle), weight preservation in expectation, and the
// degenerate no-op path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sparsify.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"

namespace parlap {
namespace {

TEST(Sparsify, SampleBudgetRespected) {
  const Multigraph g = make_complete(200);  // m = 19900
  const SparsifyResult r = spectral_sparsify(g, 0.5, 1);
  EXPECT_LE(r.graph.num_edges(), r.samples);
  EXPECT_LT(r.graph.num_edges(), g.num_edges() / 2);
  EXPECT_EQ(r.graph.num_vertices(), g.num_vertices());
}

TEST(Sparsify, SparseInputIsCopied) {
  const Multigraph g = make_path(50);  // q >> m
  const SparsifyResult r = spectral_sparsify(g, 0.3, 2);
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
}

TEST(Sparsify, SpectralApproximationOnCompleteGraph) {
  // K_n sparsifies well (all leverage scores equal); verify Loewner
  // closeness densely with slack over the requested eps.
  const Multigraph g = make_complete(80);
  const double eps = 0.4;
  SparsifyOptions opts;
  opts.oversample = 4.0;
  const SparsifyResult r = spectral_sparsify(g, eps, 3, opts);
  ASSERT_TRUE(is_connected(r.graph));
  const SpectralBounds sb = relative_spectral_bounds(
      laplacian_dense(r.graph), laplacian_dense(g), 1e-8);
  EXPECT_GT(sb.lo, std::exp(-2.0 * eps));
  EXPECT_LT(sb.hi, std::exp(2.0 * eps));
}

TEST(Sparsify, SpectralApproximationOnWeightedGnm) {
  Multigraph g = make_erdos_renyi(100, 3000, 5);
  apply_weights(g, WeightModel::uniform(0.5, 2.0), 6);
  const double eps = 0.5;
  SparsifyOptions opts;
  opts.oversample = 4.0;
  const SparsifyResult r = spectral_sparsify(g, eps, 7, opts);
  const SpectralBounds sb = relative_spectral_bounds(
      laplacian_dense(r.graph), laplacian_dense(g), 1e-8);
  EXPECT_GT(sb.lo, std::exp(-2.0 * eps));
  EXPECT_LT(sb.hi, std::exp(2.0 * eps));
}

TEST(Sparsify, TotalWeightRoughlyPreserved) {
  // E[L_H] = L_G, so total edge weight concentrates near the original.
  const Multigraph g = make_complete(60);
  const SparsifyResult r = spectral_sparsify(g, 0.3, 9);
  EXPECT_NEAR(r.graph.total_weight(), g.total_weight(),
              0.2 * g.total_weight());
}

TEST(Sparsify, Deterministic) {
  const Multigraph g = make_complete(50);
  const SparsifyResult a = spectral_sparsify(g, 0.5, 11);
  const SparsifyResult b = spectral_sparsify(g, 0.5, 11);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge_u(e), b.graph.edge_u(e));
    EXPECT_DOUBLE_EQ(a.graph.edge_weight(e), b.graph.edge_weight(e));
  }
}

TEST(Sparsify, RejectsBadEps) {
  const Multigraph g = make_complete(10);
  EXPECT_THROW((void)spectral_sparsify(g, 0.0, 1), std::runtime_error);
  EXPECT_THROW((void)spectral_sparsify(g, 1.0, 1), std::runtime_error);
}

}  // namespace
}  // namespace parlap
