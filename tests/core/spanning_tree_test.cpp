// Wilson's UST sampler tests: structural validity, the exact weighted-UST
// distribution against the matrix-tree theorem, and weighted bias.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/spanning_tree.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace parlap {
namespace {

TEST(SpanningTree, IsSpanningAndAcyclic) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Multigraph g = make_erdos_renyi(200, 800, seed);
    const Multigraph tree = sample_spanning_tree(g, seed);
    EXPECT_EQ(tree.num_vertices(), 200);
    EXPECT_EQ(tree.num_edges(), 199);
    EXPECT_TRUE(is_connected(tree));  // n-1 edges + connected => tree
  }
}

TEST(SpanningTree, TreeInputReturnsItself) {
  const Multigraph g = make_binary_tree(63);
  const Multigraph tree = sample_spanning_tree(g, 7);
  EXPECT_EQ(tree.num_edges(), 62);
  // Same edge multiset (order may differ).
  auto canon = [](const Multigraph& t) {
    std::multiset<std::pair<Vertex, Vertex>> s;
    for (EdgeId e = 0; e < t.num_edges(); ++e) {
      s.insert({std::min(t.edge_u(e), t.edge_v(e)),
                std::max(t.edge_u(e), t.edge_v(e))});
    }
    return s;
  };
  EXPECT_EQ(canon(g), canon(tree));
}

TEST(SpanningTree, MatrixTreeTheoremOnCycle) {
  // C_4 has exactly 4 spanning trees, each omitting one edge; the sampler
  // must hit each with probability 1/4.
  const Multigraph g = make_cycle(4);
  EXPECT_NEAR(spanning_tree_weight_dense(g), 4.0, 1e-9);
  std::map<EdgeId, int> omitted_counts;
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    const Multigraph tree =
        sample_spanning_tree(g, 100 + static_cast<std::uint64_t>(t));
    // Identify the omitted cycle edge.
    std::vector<bool> present(4, false);
    for (EdgeId e = 0; e < tree.num_edges(); ++e) {
      const Vertex u = std::min(tree.edge_u(e), tree.edge_v(e));
      const Vertex v = std::max(tree.edge_u(e), tree.edge_v(e));
      for (EdgeId ge = 0; ge < 4; ++ge) {
        const Vertex gu = std::min(g.edge_u(ge), g.edge_v(ge));
        const Vertex gv = std::max(g.edge_u(ge), g.edge_v(ge));
        if (gu == u && gv == v) present[static_cast<std::size_t>(ge)] = true;
      }
    }
    for (EdgeId ge = 0; ge < 4; ++ge) {
      if (!present[static_cast<std::size_t>(ge)]) ++omitted_counts[ge];
    }
  }
  for (EdgeId ge = 0; ge < 4; ++ge) {
    EXPECT_NEAR(static_cast<double>(omitted_counts[ge]) / trials, 0.25, 0.02);
  }
}

TEST(SpanningTree, WeightedDistributionMatchesMatrixTree) {
  // Triangle with weights 1, 2, 3: trees are edge pairs with weights
  // {1*2, 1*3, 2*3} = {2, 3, 6}, total 11 (= matrix-tree cofactor).
  Multigraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  EXPECT_NEAR(spanning_tree_weight_dense(g), 11.0, 1e-9);

  std::map<EdgeId, int> omitted;
  const int trials = 22000;
  for (int t = 0; t < trials; ++t) {
    const Multigraph tree =
        sample_spanning_tree(g, 500 + static_cast<std::uint64_t>(t));
    double tree_weight_product = 1.0;
    for (EdgeId e = 0; e < tree.num_edges(); ++e) {
      tree_weight_product *= tree.edge_weight(e);
    }
    // Identify tree by its weight product (distinct per tree here).
    if (tree_weight_product == 2.0) ++omitted[2];       // omitted edge 0-2
    else if (tree_weight_product == 3.0) ++omitted[1];  // omitted edge 1-2
    else ++omitted[0];                                  // product 6
  }
  EXPECT_NEAR(static_cast<double>(omitted[2]) / trials, 2.0 / 11.0, 0.015);
  EXPECT_NEAR(static_cast<double>(omitted[1]) / trials, 3.0 / 11.0, 0.015);
  EXPECT_NEAR(static_cast<double>(omitted[0]) / trials, 6.0 / 11.0, 0.015);
}

TEST(SpanningTree, Deterministic) {
  const Multigraph g = make_grid2d(10, 10);
  const Multigraph a = sample_spanning_tree(g, 42);
  const Multigraph b = sample_spanning_tree(g, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
  }
}

TEST(SpanningTree, StatsAccountForErasure) {
  const Multigraph g = make_grid2d(15, 15);
  SpanningTreeStats stats;
  (void)sample_spanning_tree(g, 3, &stats);
  EXPECT_EQ(stats.walk_steps - stats.erased_steps, 224);  // n-1 kept steps
  EXPECT_GE(stats.erased_steps, 0);
}

TEST(SpanningTree, RejectsDisconnected) {
  Multigraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_THROW((void)sample_spanning_tree(g, 1), std::runtime_error);
}

}  // namespace
}  // namespace parlap
