// Chain-equivalence contract of the arena-backed build pipeline
// (core/build_arena.hpp): the chain BlockCholeskyChain::build produces
// must be bit-identical whether scratch comes from the shared pool, a
// fresh arena, or an arena already warmed by previous builds — across
// thread counts and across repeated builds — and a warmed arena must
// rebuild with zero scratch reallocations.
#include <gtest/gtest.h>

#include <bit>
#include <numeric>

#include <omp.h>

#include "core/alpha_bound.hpp"
#include "core/block_cholesky.hpp"
#include "core/build_arena.hpp"
#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace parlap {
namespace {

std::uint64_t solution_hash(std::span<const double> x) {
  std::uint64_t h = 0x736F6C75'74696F6Eull;
  h = fingerprint_mix(h, static_cast<std::uint64_t>(x.size()));
  for (const double v : x) {
    h = fingerprint_mix(h, std::bit_cast<std::uint64_t>(v));
  }
  return h;
}

Vector apply_chain(const BlockCholeskyChain& chain) {
  Vector b(static_cast<std::size_t>(chain.dimension()));
  std::iota(b.begin(), b.end(), 0.0);
  project_out_ones(b);
  Vector y(b.size());
  chain.apply(b, y);
  return y;
}

template <typename T>
void expect_same_span(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

void expect_same_chain(const BlockCholeskyChain& a,
                       const BlockCholeskyChain& b) {
  ASSERT_EQ(a.dimension(), b.dimension());
  ASSERT_EQ(a.depth(), b.depth());
  EXPECT_EQ(a.base_size(), b.base_size());
  EXPECT_EQ(a.jacobi_terms(), b.jacobi_terms());
  EXPECT_EQ(a.stored_entries(), b.stored_entries());
  // The packed ApplyChain arrays cover every level's f/c lists, Jacobi
  // diagonals, and sub-CSR blocks; bit-equality of the six arrays (plus
  // the per-level metadata) is bit-equality of the whole factorization.
  const ApplyChain& pa = a.apply_chain();
  const ApplyChain& pb = b.apply_chain();
  ASSERT_EQ(pa.levels().size(), pb.levels().size());
  for (std::size_t k = 0; k < pa.levels().size(); ++k) {
    const ApplyChain::Level& la = pa.levels()[k];
    const ApplyChain::Level& lb = pb.levels()[k];
    EXPECT_EQ(la.n, lb.n);
    EXPECT_EQ(la.nf, lb.nf);
    EXPECT_EQ(la.nc, lb.nc);
    EXPECT_EQ(la.f_base, lb.f_base);
    EXPECT_EQ(la.c_base, lb.c_base);
    EXPECT_EQ(la.ff_off, lb.ff_off);
    EXPECT_EQ(la.fc_off, lb.fc_off);
    EXPECT_EQ(la.cf_off, lb.cf_off);
  }
  expect_same_span(pa.f_lists(), pb.f_lists());
  expect_same_span(pa.c_lists(), pb.c_lists());
  expect_same_span(pa.inv_x(), pb.inv_x());
  expect_same_span(pa.y_diag(), pb.y_diag());
  expect_same_span(pa.offsets(), pb.offsets());
  expect_same_span(pa.columns(), pb.columns());
  expect_same_span(pa.weights(), pb.weights());  // bit-exact
  const Vector ya = apply_chain(a);
  const Vector yb = apply_chain(b);
  EXPECT_EQ(solution_hash(ya), solution_hash(yb));
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

Multigraph test_graph() {
  return split_edges_uniform(make_grid2d(22, 22), 4);
}

TEST(ChainBuildArena, ArenaBuildMatchesPooledAndFreshBuilds) {
  const Multigraph g = test_graph();
  const BlockCholeskyChain pooled = BlockCholeskyChain::build(g, 5);
  ASSERT_GT(pooled.depth(), 1);

  ChainBuildArena fresh;
  const BlockCholeskyChain fresh_built =
      BlockCholeskyChain::build(g, 5, {}, fresh);
  expect_same_chain(pooled, fresh_built);

  // The same arena, reused: still bit-identical, build after build.
  ChainBuildArena reused;
  for (int round = 0; round < 3; ++round) {
    const BlockCholeskyChain again =
        BlockCholeskyChain::build(g, 5, {}, reused);
    expect_same_chain(pooled, again);
  }
}

TEST(ChainBuildArena, EquivalentAcrossThreadCounts) {
  // OMP_NUM_THREADS ∈ {1, min(4, available)}: under sanitizer presets
  // that pin OpenMP to one thread both runs are serial (and trivially
  // equal); on a normal machine this crosses 1 vs 4 threads.
  const Multigraph g = test_graph();
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const BlockCholeskyChain serial = BlockCholeskyChain::build(g, 11);
  omp_set_num_threads(std::min(4, saved));
  ChainBuildArena arena;
  const BlockCholeskyChain parallel =
      BlockCholeskyChain::build(g, 11, {}, arena);
  omp_set_num_threads(saved);
  expect_same_chain(serial, parallel);
}

TEST(ChainBuildArena, SteadyStateBuildsPerformZeroReallocations) {
  const Multigraph g = test_graph();
  ChainBuildArena arena;
  const BlockCholeskyChain first = BlockCholeskyChain::build(g, 7, {}, arena);
  // The very first build grows every buffer from empty.
  EXPECT_GT(first.build_stats().arena_allocations, 0);
  EXPECT_GT(first.build_stats().peak_arena_bytes, 0u);
  for (int round = 0; round < 2; ++round) {
    const BlockCholeskyChain rebuilt =
        BlockCholeskyChain::build(g, 7, {}, arena);
    EXPECT_EQ(rebuilt.build_stats().arena_allocations, 0)
        << "steady-state rebuild " << round << " grew arena scratch";
    expect_same_chain(first, rebuilt);
  }
}

TEST(ChainBuildArena, ConsumingOverloadMatchesAndReleasesInput) {
  const Multigraph g = test_graph();
  const BlockCholeskyChain from_view = BlockCholeskyChain::build(g, 3);
  Multigraph copy = g;
  const BlockCholeskyChain from_move =
      BlockCholeskyChain::build(std::move(copy), 3);
  expect_same_chain(from_view, from_move);
}

TEST(ChainBuildArena, BuildStatsAreCoherent) {
  const Multigraph g = test_graph();
  const BlockCholeskyChain chain = BlockCholeskyChain::build(g, 9);
  const BuildStats& bs = chain.build_stats();
  EXPECT_EQ(bs.levels, chain.depth());
  EXPECT_EQ(bs.level_timings.size(),
            static_cast<std::size_t>(chain.depth()));
  EXPECT_GE(bs.total_seconds, 0.0);
  EXPECT_GE(bs.base_seconds, 0.0);
  // Phase totals are a partial breakdown of the whole build.
  EXPECT_LE(bs.phases.total(), bs.total_seconds + 1e-9);
  EXPECT_EQ(bs.level_timings.front().n, g.num_vertices());
  EXPECT_EQ(bs.level_timings.front().edges, g.num_edges());
  double level_sum = 0.0;
  for (const BuildLevelTiming& lt : bs.level_timings) {
    level_sum += lt.phases.total();
  }
  EXPECT_NEAR(level_sum, bs.phases.total(), 1e-9);
}

}  // namespace
}  // namespace parlap
