// Blocked-solve determinism contract (the acceptance property of the
// panel path): solve_many / solve_panel results are bit-identical to a
// sequential loop of solve() across block widths {1, 3, 8} and OpenMP
// thread counts 1 vs 4, chain-level panel applies equal scalar applies
// column for column, and a pooled ApplyWorkspace re-prepared across
// block widths never reuses k=1 scratch for a wider panel.
// Labeled core+parallel+panel so the TSan preset runs it.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include <omp.h>

#include "api/solver_registry.hpp"
#include "core/alpha_bound.hpp"
#include "core/block_cholesky.hpp"
#include "core/solver.hpp"
#include "graph/generators.hpp"
#include "linalg/panel.hpp"
#include "support/rng.hpp"

namespace parlap {
namespace {

Vector random_rhs_vec(std::size_t n, std::uint64_t seed) {
  Vector b(n);
  Rng rng(seed, RngTag::kTest, 321);
  for (double& v : b) v = rng.next_in(-1.0, 1.0);
  return b;
}

/// Two components (ws + grid), so the panel path crosses the
/// per-component gather/scatter and kernel projection.
Multigraph two_component_graph() {
  const Multigraph a = make_watts_strogatz(140, 4, 0.2, 9);
  const Multigraph b = make_grid2d(8, 8);
  Multigraph g(a.num_vertices() + b.num_vertices());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    g.add_edge(a.edge_u(e), a.edge_v(e), a.edge_weight(e));
  }
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    g.add_edge(a.num_vertices() + b.edge_u(e),
               a.num_vertices() + b.edge_v(e), b.edge_weight(e));
  }
  return g;
}

void expect_bitwise(const Vector& a, const Vector& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " differs at " << i;
  }
}

TEST(PanelSolve, ChainPanelApplyMatchesScalarApplyPerColumn) {
  const Multigraph split = split_edges_uniform(make_grid2d(20, 20), 4);
  const BlockCholeskyChain chain = BlockCholeskyChain::build(split, 5);
  const auto n = static_cast<std::size_t>(chain.dimension());

  const std::size_t k = 5;
  Panel b(n, k);
  for (std::size_t c = 0; c < k; ++c) {
    const Vector bc = random_rhs_vec(n, 100 + c);
    std::copy(bc.begin(), bc.end(), b.col(c).begin());
  }

  // Scalar reference, one workspace reused like a pooled caller would.
  ApplyWorkspace ws;
  std::vector<Vector> want;
  for (std::size_t c = 0; c < k; ++c) {
    Vector y(n);
    chain.apply(b.col(c), y, ws);
    want.push_back(std::move(y));
  }

  // Same workspace crosses k=1 -> k=5: the width-aware identity stamp
  // must re-prepare it (a stale k=1 workspace would be undersized).
  Panel y_panel;
  chain.apply(b, y_panel, ws);
  for (std::size_t c = 0; c < k; ++c) {
    const Vector got(y_panel.col(c).begin(), y_panel.col(c).end());
    expect_bitwise(got, want[c], "panel apply column");
  }
  // And back down to k=1 with the same workspace.
  Vector y1(n);
  chain.apply(b.col(2), y1, ws);
  expect_bitwise(y1, want[2], "k=1 after panel");
}

TEST(PanelSolve, SolveManyBitIdenticalToSequentialAcrossWidthsAndThreads) {
  const Multigraph g = two_component_graph();
  const std::size_t n = g.num_vertices();
  const std::size_t jobs = 8;
  std::vector<Vector> bs;
  for (std::size_t j = 0; j < jobs; ++j) {
    bs.push_back(random_rhs_vec(n, 50 + j));
  }
  const double eps = 1e-8;

  const int saved = omp_get_max_threads();
  // Sequential scalar reference at 1 thread.
  omp_set_num_threads(1);
  std::vector<Vector> want(jobs, Vector(n));
  std::vector<SolveStats> want_stats;
  {
    SolverOptions opts;
    opts.seed = 11;
    const LaplacianSolver solver(g, opts);
    for (std::size_t j = 0; j < jobs; ++j) {
      want_stats.push_back(solver.solve(bs[j], want[j], eps));
      EXPECT_TRUE(want_stats.back().converged) << "rhs " << j;
    }
  }

  for (const int threads : {1, std::min(4, saved)}) {
    omp_set_num_threads(threads);
    for (const int width : {1, 3, 8}) {
      SolverOptions opts;
      opts.seed = 11;
      opts.max_block_width = width;
      const LaplacianSolver solver(g, opts);
      std::vector<Vector> xs(jobs, Vector(n));
      const std::vector<SolveStats> stats =
          solver.solve_many(bs, xs, eps);
      ASSERT_EQ(stats.size(), jobs);
      for (std::size_t j = 0; j < jobs; ++j) {
        expect_bitwise(xs[j], want[j], "solve_many solution");
        EXPECT_EQ(stats[j].iterations, want_stats[j].iterations)
            << "width " << width << " threads " << threads << " rhs " << j;
        EXPECT_EQ(stats[j].relative_residual,
                  want_stats[j].relative_residual);
        EXPECT_EQ(stats[j].converged, want_stats[j].converged);
        EXPECT_EQ(stats[j].rebuilds, want_stats[j].rebuilds);
      }

      // solve_panel: the whole batch as one panel.
      Panel bp;
      panel_from_vectors(bs, bp);
      Panel xp;
      const std::vector<SolveStats> pstats =
          solver.solve_panel(bp, xp, eps);
      ASSERT_EQ(pstats.size(), jobs);
      for (std::size_t j = 0; j < jobs; ++j) {
        const Vector got(xp.col(j).begin(), xp.col(j).end());
        expect_bitwise(got, want[j], "solve_panel column");
        EXPECT_EQ(pstats[j].iterations, want_stats[j].iterations);
      }
    }
  }
  omp_set_num_threads(saved);
}

TEST(PanelSolve, AnySolverPanelReportsMatchScalarPerRhs) {
  // The api layer: solve_panel returns per-RHS reports whose solutions,
  // iteration counts, and residuals (measured against the input
  // operator, never a panel max) equal a loop of solve() — for the
  // blocked paper solver and for a loop-fallback baseline alike.
  const Multigraph g = make_watts_strogatz(120, 4, 0.1, 3);
  const std::size_t n = g.num_vertices();
  const std::size_t jobs = 5;
  std::vector<Vector> bs;
  for (std::size_t j = 0; j < jobs; ++j) {
    bs.push_back(random_rhs_vec(n, 900 + j));
  }
  for (const char* method : {"parlap", "cg"}) {
    SolverConfig config;
    config.seed = 21;
    const auto solver = SolverRegistry::instance().create(method, g, config);

    std::vector<Vector> want(jobs, Vector(n));
    std::vector<RunReport> want_reports;
    for (std::size_t j = 0; j < jobs; ++j) {
      want_reports.push_back(solver->solve(bs[j], want[j], 1e-8));
    }

    std::vector<Vector> xs(jobs);
    const std::vector<RunReport> reports =
        solver->solve_panel(bs, xs, 1e-8);
    ASSERT_EQ(reports.size(), jobs) << method;
    for (std::size_t j = 0; j < jobs; ++j) {
      expect_bitwise(xs[j], want[j], method);
      EXPECT_EQ(reports[j].iterations, want_reports[j].iterations);
      EXPECT_EQ(reports[j].relative_residual,
                want_reports[j].relative_residual)
          << method << " rhs " << j;
      EXPECT_EQ(reports[j].converged, want_reports[j].converged);
      EXPECT_EQ(reports[j].panel_width, static_cast<int>(jobs));
    }
  }
}

TEST(PanelSolve, ZeroColumnsComeBackZeroInsidePanels) {
  const Multigraph g = make_grid2d(9, 9);
  const std::size_t n = g.num_vertices();
  std::vector<Vector> bs = {random_rhs_vec(n, 1), Vector(n, 0.0),
                            random_rhs_vec(n, 2)};
  SolverConfig config;
  const auto solver = SolverRegistry::instance().create("parlap", g, config);
  std::vector<Vector> xs(bs.size());
  const std::vector<RunReport> reports = solver->solve_panel(bs, xs, 1e-8);
  EXPECT_TRUE(reports[1].converged);
  EXPECT_EQ(reports[1].iterations, 0);
  for (const double v : xs[1]) EXPECT_EQ(v, 0.0);
  // Flanking nonzero columns still solve.
  EXPECT_TRUE(reports[0].converged);
  EXPECT_TRUE(reports[2].converged);
}

}  // namespace
}  // namespace parlap
